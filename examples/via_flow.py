#!/usr/bin/env python3
"""Via-layer OPC flow: train CAMO, compare all four engines (Table 1).

The full Table 1 regeneration; scale with ``REPRO_SCALE`` (smoke / repro /
paper) or the ``--scale`` flag.

Usage::

    python examples/via_flow.py --scale smoke
    python examples/via_flow.py                 # repro scale, several min
"""

import argparse

from repro.eval import experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "repro", "paper"],
        help="effort profile (default: REPRO_SCALE env or 'repro')",
    )
    args = parser.parse_args()

    text, results = experiments.table1(args.scale)
    print(text)
    camo = results["CAMO"]
    exits = sum(row.early_exited for row in camo.rows)
    print()
    print(f"CAMO early-exited on {exits}/{len(camo.rows)} clips")


if __name__ == "__main__":
    main()
