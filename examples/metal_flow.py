#!/usr/bin/env python3
"""Metal-layer OPC flow: Table 2, plus the Fig. 5 trajectories and the
Fig. 6 visualization panels.

Usage::

    python examples/metal_flow.py --scale smoke
    python examples/metal_flow.py --visualize          # adds Fig. 6 PGMs
"""

import argparse

from repro.eval import experiments
from repro.eval.experiments import figure6_ascii


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default=None, choices=["smoke", "repro", "paper"]
    )
    parser.add_argument(
        "--visualize",
        action="store_true",
        help="render Fig. 6 panels (ASCII + PGM files under results/)",
    )
    args = parser.parse_args()

    text, _results = experiments.table2(args.scale)
    print(text)

    print()
    fig5_text, _curves = experiments.figure5(args.scale)
    print(fig5_text)

    if args.visualize:
        panels = experiments.figure6(args.scale, out_dir="results")
        print()
        print(figure6_ascii(panels))
        print("\nPGM panels written to results/fig6_M10_*.pgm")


if __name__ == "__main__":
    main()
