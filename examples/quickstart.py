#!/usr/bin/env python3
"""Quickstart: optimize a tiny via clip with CAMO in under a minute.

Runs the modulator-driven CAMO engine (no training needed — the policy
starts uniform and the OPC-inspired modulator alone already converges) and
the Calibre-like model-based baseline on one generated 2-via clip, then
prints both results and a squish-pattern demo (paper Fig. 3).  Both
engines go through the :class:`repro.service.MaskOptService` front door,
so their final masks are re-verified in one shape-binned batched litho
call; the equivalent CLI is ``python -m repro optimize --suite tiny``.

Usage::

    python examples/quickstart.py
"""

from repro import quick_opc
from repro.geometry import Polygon, Rect
from repro.squish import encode_squish


def main() -> None:
    print("=" * 60)
    print("CAMO quickstart")
    print("=" * 60)
    result = quick_opc()
    print(result.summary())

    print()
    print("Squish-pattern encoding demo (paper Fig. 3)")
    window = Rect(0, 0, 100, 100)
    pattern = encode_squish([Polygon.from_rect(Rect(20, 30, 60, 70))], window)
    print("matrix M:")
    for row in pattern.matrix[::-1]:
        print("   ", row.tolist())
    print("    delta_x:", pattern.delta_x.tolist())
    print("    delta_y:", pattern.delta_y.tolist())
    print("    covered area:", pattern.covered_area, "nm^2")


if __name__ == "__main__":
    main()
