#!/usr/bin/env python3
"""Modulator demo (paper Fig. 4): preference vectors across signed EPE.

Shows both the paper's polynomial projection (f(x) = 0.02 x^4 + 1) and
this reproduction's calibrated "matched" mode, and demonstrates Eq. 6
modulation of a policy distribution.

Usage::

    python examples/modulator_demo.py
"""

import numpy as np

from repro.core.modulator import Modulator
from repro.eval.experiments import figure4


def main() -> None:
    print(figure4())

    print()
    print("Matched mode (this repo's calibrated variant, epe_scale=0.5):")
    matched = Modulator(mode="matched", epe_scale=0.5)
    print("EPE(nm)   m1(-2)  m2(-1)  m3(0)   m4(+1)  m5(+2)")
    for epe in (-8, -4, -2, 0, 2, 4, 8):
        pref = matched.preference(float(epe))
        print(f"{epe:+6.1f}   " + "  ".join(f"{p:.4f}" for p in pref))

    print()
    print("Eq. 6 in action: a hesitant policy sharpened by the modulator")
    policy = np.array([[0.3, 0.25, 0.2, 0.15, 0.1]])
    for epe in (-6.0, 0.0, 6.0):
        mod = Modulator(mode="matched", epe_scale=0.5)
        mixed = mod.modulate(policy, np.array([epe]))
        choice = int(mixed.argmax()) - 2
        print(
            f"  EPE {epe:+5.1f}: modulated = "
            + " ".join(f"{v:.3f}" for v in mixed[0])
            + f"  -> move {choice:+d} nm"
        )


if __name__ == "__main__":
    main()
