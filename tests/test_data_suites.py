"""Tests for the benchmark suites (Table 1 / Table 2 dataset shapes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    metal_test_suite,
    metal_train_suite,
    regular_metal_clip,
    stdcell_metal_clip,
    via_test_suite,
    via_train_suite,
)
from repro.data.metal_bench import METAL_TEST_POINTS
from repro.data.via_bench import VIA_TEST_COUNTS, generate_via_clip
from repro.errors import DataError
from repro.geometry import fragment_clip


class TestViaSuites:
    def test_table1_via_counts(self):
        suite = via_test_suite()
        assert [c.target_count for c in suite] == list(VIA_TEST_COUNTS)
        assert sum(c.target_count for c in suite) == 58  # Table 1 "Sum"
        assert [c.name for c in suite] == [f"V{i}" for i in range(1, 14)]

    def test_train_suite_shape(self):
        suite = via_train_suite()
        assert len(suite) == 11
        assert all(2 <= c.target_count <= 5 for c in suite)

    def test_deterministic(self):
        a = via_test_suite()
        b = via_test_suite()
        for clip_a, clip_b in zip(a, b):
            assert clip_a.targets == clip_b.targets

    def test_srafs_inserted(self):
        suite = via_test_suite()
        assert all(len(c.srafs) > 0 for c in suite)
        bare = via_test_suite(with_srafs=False)
        assert all(len(c.srafs) == 0 for c in bare)

    def test_via_spacing_respected(self):
        for clip in via_test_suite():
            centers = [t.bbox.center for t in clip.targets]
            for i, a in enumerate(centers):
                for b in centers[i + 1 :]:
                    assert np.hypot(a[0] - b[0], a[1] - b[1]) >= 250

    def test_bad_params(self):
        with pytest.raises(DataError):
            generate_via_clip("x", n_vias=0, seed=1)
        with pytest.raises(DataError):
            generate_via_clip("x", n_vias=2, seed=1, clip_nm=500)

    @given(
        n=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_generation_valid(self, n, seed):
        clip = generate_via_clip("p", n_vias=n, seed=seed)
        assert clip.target_count == n
        for target in clip.targets:
            assert target.bbox.width == 70
            assert clip.bbox.contains_rect(target.bbox)


class TestMetalSuites:
    def test_table2_point_counts(self):
        suite = metal_test_suite()
        assert [c.name for c in suite] == [f"M{i}" for i in range(1, 11)]
        for clip, wanted in zip(suite, METAL_TEST_POINTS):
            segments = fragment_clip(clip)
            points = sum(1 for s in segments if s.measure_point is not None)
            assert points == wanted, clip.name
        assert sum(METAL_TEST_POINTS) == 886  # Table 2 "Sum" of Point #

    def test_categories(self):
        suite = metal_test_suite()
        by_name = {c.name: c for c in suite}
        assert by_name["M8"].metadata["category"] == "regular"
        assert by_name["M9"].metadata["category"] == "regular"
        assert by_name["M1"].metadata["category"] == "stdcell"

    def test_train_suite_counts_exact(self):
        for clip in metal_train_suite():
            segments = fragment_clip(clip)
            points = sum(1 for s in segments if s.measure_point is not None)
            assert points == clip.metadata["points"]

    def test_wires_inside_window_with_margin(self):
        for clip in metal_test_suite():
            for wire in clip.targets:
                assert clip.bbox.expanded(-100).contains_rect(wire.bbox)

    def test_regular_clip_uniform(self):
        clip = regular_metal_clip("reg", 48)
        widths = {t.bbox.width for t in clip.targets}
        heights = {t.bbox.height for t in clip.targets}
        assert len(widths) == 1 and len(heights) == 1

    def test_odd_points_rejected(self):
        with pytest.raises(DataError):
            stdcell_metal_clip("odd", 25, seed=1)
        with pytest.raises(DataError):
            regular_metal_clip("odd", 25)

    @given(
        points=st.integers(min_value=2, max_value=60).map(lambda v: v * 2),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_stdcell_point_budget_exact(self, points, seed):
        clip = stdcell_metal_clip("p", points, seed=seed)
        segments = fragment_clip(clip)
        measured = sum(1 for s in segments if s.measure_point is not None)
        assert measured == points
