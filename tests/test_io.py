"""Tests for GDSII and JSON clip I/O."""

import pytest

from repro.data.via_bench import generate_via_clip
from repro.errors import DataError
from repro.geometry import Polygon, Rect
from repro.io import (
    clip_from_json,
    clip_to_json,
    load_clip,
    read_gds_polygons,
    save_clip,
    write_gds,
)


class TestGDS:
    def test_roundtrip_rect(self, tmp_path):
        path = str(tmp_path / "one.gds")
        poly = Polygon.from_rect(Rect(100, 200, 170, 270))
        write_gds(path, [poly])
        loaded = read_gds_polygons(path)
        assert len(loaded) == 1
        assert loaded[0].area == pytest.approx(poly.area)
        assert loaded[0].bbox == poly.bbox

    def test_roundtrip_clip_geometry(self, tmp_path):
        path = str(tmp_path / "clip.gds")
        clip = generate_via_clip("g", n_vias=4, seed=9)
        polys = list(clip.all_polygons())
        write_gds(path, polys)
        loaded = read_gds_polygons(path)
        assert len(loaded) == len(polys)
        assert sum(p.area for p in loaded) == pytest.approx(
            sum(p.area for p in polys)
        )

    def test_l_shape_roundtrip(self, tmp_path):
        path = str(tmp_path / "l.gds")
        l_poly = Polygon(((0, 0), (20, 0), (20, 10), (10, 10), (10, 20), (0, 20)))
        write_gds(path, [l_poly])
        (loaded,) = read_gds_polygons(path)
        assert loaded.area == pytest.approx(300)

    def test_header_is_valid_gdsii(self, tmp_path):
        path = str(tmp_path / "hdr.gds")
        write_gds(path, [Polygon.from_rect(Rect(0, 0, 10, 10))])
        with open(path, "rb") as handle:
            raw = handle.read(6)
        # First record: length 6, tag 0x0002 (HEADER), version 600.
        assert raw[:4] == b"\x00\x06\x00\x02"

    def test_corrupt_file_rejected(self, tmp_path):
        path = str(tmp_path / "bad.gds")
        with open(path, "wb") as handle:
            handle.write(b"\x00\x01\x00\x02garbage")
        with pytest.raises(DataError):
            read_gds_polygons(path)


class TestClipJSON:
    def test_roundtrip(self):
        clip = generate_via_clip("j", n_vias=3, seed=4)
        restored = clip_from_json(clip_to_json(clip))
        assert restored.name == clip.name
        assert restored.layer == clip.layer
        assert restored.bbox == clip.bbox
        assert restored.targets == clip.targets
        assert restored.srafs == clip.srafs
        assert restored.metadata["n_vias"] == 3

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "clip.json")
        clip = generate_via_clip("f", n_vias=2, seed=8)
        save_clip(clip, path)
        assert load_clip(path).targets == clip.targets

    def test_version_check(self):
        with pytest.raises(DataError):
            clip_from_json('{"version": 99}')
