"""Tests for the RL substrate: reward, trajectory, env, REINFORCE, imitation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RLError
from repro.data.via_bench import generate_via_clip
from repro.litho import LithoConfig, LithographySimulator
from repro.nn.layers import Linear
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.rl import (
    OPCEnvironment,
    collect_teacher_actions,
    collect_teacher_actions_population,
    compute_reward,
    discounted_returns,
    greedy_teacher_actions,
    policy_gradient_step,
    population_gradient_step,
    select_log_probs,
    select_log_probs_population,
)
from repro.rl.trajectory import Trajectory, TrajectoryStep


class TestReward:
    def test_improvement_positive(self):
        assert compute_reward(100, 50, 1000, 900) > 0

    def test_regression_negative(self):
        assert compute_reward(50, 100, 1000, 1100) < 0

    def test_paper_formula(self):
        r = compute_reward(100, 80, 1000, 950, epsilon=0.1, beta=1.0)
        assert r == pytest.approx((100 - 80) / 100.1 + (1000 - 950) / 1000)

    def test_beta_weighting(self):
        low = compute_reward(100, 100, 1000, 900, beta=0.5)
        high = compute_reward(100, 100, 1000, 900, beta=2.0)
        assert high == pytest.approx(4 * low)

    def test_zero_pvband_drops_term(self):
        r = compute_reward(100, 50, 0, 100)
        assert r == pytest.approx(50 / 100.1)

    def test_validation(self):
        with pytest.raises(RLError):
            compute_reward(1, 1, 1, 1, epsilon=0)
        with pytest.raises(RLError):
            compute_reward(-1, 1, 1, 1)


class TestTrajectory:
    def make(self):
        traj = Trajectory(epe_initial=100.0)
        for k, (r, e) in enumerate([(1.0, 80.0), (0.5, 60.0), (-0.2, 65.0)]):
            traj.append(
                TrajectoryStep(
                    actions=np.zeros(4, dtype=int),
                    reward=r,
                    epe_after=e,
                    pvband_after=1000.0 + k,
                )
            )
        return traj

    def test_epe_curve(self):
        assert self.make().epe_curve == [100.0, 80.0, 60.0, 65.0]

    def test_total_reward(self):
        assert self.make().total_reward == pytest.approx(1.3)

    def test_returns_discounting(self):
        returns = self.make().returns(gamma=0.5)
        assert returns[2] == pytest.approx(-0.2)
        assert returns[1] == pytest.approx(0.5 + 0.5 * -0.2)
        assert returns[0] == pytest.approx(1.0 + 0.5 * returns[1])

    def test_discounted_returns_validation(self):
        with pytest.raises(RLError):
            discounted_returns([1.0], gamma=1.5)

    @given(
        rewards=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_gamma1_is_suffix_sum(self, rewards):
        returns = discounted_returns(rewards, gamma=1.0)
        assert returns[0] == pytest.approx(sum(rewards))


@pytest.fixture(scope="module")
def env():
    simulator = LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=6)
    )
    clip = generate_via_clip("rl", n_vias=2, seed=21, clip_nm=1280)
    return OPCEnvironment(clip, simulator, initial_bias_nm=3.0)


class TestEnvironment:
    def test_reset_state(self, env):
        state = env.reset()
        assert state.epe.count == 8  # 2 vias x 4 measure points
        assert len(state.seg_epe) == env.n_segments == 8
        assert state.total_epe > 0  # initial mask underprints

    def test_reset_with_bias_override(self, env):
        lean = env.reset(bias_nm=0.0)
        fat = env.reset(bias_nm=10.0)
        assert fat.total_epe != lean.total_epe

    def test_step_moves_and_rewards(self, env):
        state = env.reset()
        outward = np.full(env.n_segments, 4)  # all +2 nm
        next_state, reward = env.step(state, outward)
        assert np.all(next_state.mask.offsets == state.mask.offsets + 2)
        assert reward > 0  # growing an underprinting via helps

    def test_noop_step_zero_reward(self, env):
        state = env.reset()
        hold = np.full(env.n_segments, 2)  # all 0 nm
        _, reward = env.step(state, hold)
        assert reward == pytest.approx(0.0, abs=1e-9)

    def test_action_validation(self, env):
        state = env.reset()
        with pytest.raises(RLError):
            env.step(state, np.zeros(3, dtype=int))
        with pytest.raises(RLError):
            env.step(state, np.full(env.n_segments, 9))


class TestStepBatch:
    def test_matches_sequential_steps(self, env):
        """step_batch on P distinct states is bit-for-bit equal to P
        sequential step calls — the population-training invariant."""
        base = env.reset()
        rng = np.random.default_rng(3)
        states = [base, env.evaluate(base.mask.moved(np.full(env.n_segments, 2.0)))]
        actions = rng.integers(0, env.n_actions, size=(2, env.n_segments))
        batched = env.step_batch(states, actions)
        for state, row, (next_state, reward) in zip(states, actions, batched):
            ref_state, ref_reward = env.step(state, row)
            assert reward == ref_reward
            assert np.array_equal(next_state.seg_epe, ref_state.seg_epe)
            assert np.array_equal(next_state.epe.values, ref_state.epe.values)
            assert next_state.pvband == ref_state.pvband

    def test_shape_validation(self, env):
        state = env.reset()
        with pytest.raises(RLError):
            env.step_batch([state], np.zeros((2, env.n_segments), dtype=int))
        with pytest.raises(RLError):
            env.step_batch([], np.zeros((0, env.n_segments), dtype=int))


class TestPopulationReinforce:
    def test_select_log_probs_population_matches_scalar(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4, 5))
        actions = rng.integers(0, 5, size=(3, 4))
        joint = select_log_probs_population(Tensor(logits), actions)
        assert joint.shape == (3,)
        for p in range(3):
            single = select_log_probs(Tensor(logits[p]), actions[p])
            assert joint.numpy()[p] == pytest.approx(single.item(), abs=1e-12)

    def test_population_shape_validation(self):
        with pytest.raises(RLError):
            select_log_probs_population(
                Tensor(np.zeros((2, 3, 5))), np.zeros((3, 3), dtype=int)
            )
        layer = Linear(3, 5, rng=np.random.default_rng(0))
        optimizer = SGD(layer.parameters(), lr=0.1)
        with pytest.raises(RLError):
            population_gradient_step(
                optimizer, Tensor(np.zeros((2, 2))), np.zeros(2)
            )

    def test_population_step_moves_toward_advantage(self):
        """Positive-advantage trajectories gain probability, negative lose."""
        rng = np.random.default_rng(1)
        layer = Linear(3, 5, rng=rng)
        optimizer = SGD(layer.parameters(), lr=0.1)
        x = Tensor(np.ones((2, 1, 3)))
        actions = np.array([[4], [2]])

        def joint():
            return select_log_probs_population(layer(x), actions).numpy()

        before = joint()
        population_gradient_step(
            optimizer,
            select_log_probs_population(layer(x), actions),
            np.array([1.0, -1.0]),
        )
        after = joint()
        assert after[0] > before[0]
        assert after[1] < before[1]


class TestLockstepImitation:
    def test_matches_sequential_collection(self, env):
        starts = [env.reset(bias_nm=0.0), env.reset(bias_nm=5.0)]
        lockstep = collect_teacher_actions_population(
            env, steps=3, initial_states=starts
        )
        assert len(lockstep) == 2
        for start, trajectory in zip(starts, lockstep):
            reference = collect_teacher_actions(env, steps=3, initial_state=start)
            assert len(trajectory) == len(reference)
            for (s_a, a_a, r_a), (s_b, a_b, r_b) in zip(trajectory, reference):
                assert np.array_equal(a_a, a_b)
                assert r_a == r_b
                assert np.array_equal(s_a.seg_epe, s_b.seg_epe)

    def test_default_start_is_reset(self, env):
        trajectories = collect_teacher_actions_population(env, steps=2)
        assert len(trajectories) == 1
        reference = collect_teacher_actions(env, steps=2)
        for (s_a, a_a, r_a), (s_b, a_b, r_b) in zip(trajectories[0], reference):
            assert np.array_equal(a_a, a_b) and r_a == r_b

    def test_validation(self, env):
        with pytest.raises(RLError):
            collect_teacher_actions_population(env, steps=0)
        with pytest.raises(RLError):
            collect_teacher_actions_population(env, steps=1, initial_states=[])


class TestReinforce:
    def test_select_log_probs_matches_manual(self):
        logits = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]])))
        log_prob = select_log_probs(logits, np.array([0, 1]))
        assert log_prob.item() == pytest.approx(np.log(0.7) + np.log(0.8))

    def test_shape_validation(self):
        with pytest.raises(RLError):
            select_log_probs(Tensor(np.zeros((2, 5))), np.array([0, 1, 2]))

    def test_positive_reward_increases_action_probability(self):
        layer = Linear(3, 5, rng=np.random.default_rng(0))
        optimizer = SGD(layer.parameters(), lr=0.1)
        x = Tensor(np.ones((1, 3)))
        actions = np.array([4])
        before = select_log_probs(layer(x), actions).item()
        policy_gradient_step(optimizer, select_log_probs(layer(x), actions), 1.0)
        after = select_log_probs(layer(x), actions).item()
        assert after > before

    def test_negative_reward_decreases_action_probability(self):
        layer = Linear(3, 5, rng=np.random.default_rng(0))
        optimizer = SGD(layer.parameters(), lr=0.1)
        x = Tensor(np.ones((1, 3)))
        actions = np.array([4])
        before = select_log_probs(layer(x), actions).item()
        policy_gradient_step(optimizer, select_log_probs(layer(x), actions), -1.0)
        after = select_log_probs(layer(x), actions).item()
        assert after < before


class TestImitation:
    def test_teacher_sign_convention(self, env):
        state = env.reset()
        actions = greedy_teacher_actions(state)
        # Initial vias underprint (negative EPE) -> teacher moves outward.
        assert np.all(actions >= 2)
        assert np.any(actions > 2)

    def test_teacher_deadband_holds(self, env):
        state = env.reset()
        fake = type(state)(
            mask=state.mask,
            litho=state.litho,
            epe=state.epe,
            seg_epe=np.full(env.n_segments, 0.5),
            pvband=state.pvband,
        )
        assert np.all(greedy_teacher_actions(fake) == 2)

    def test_collect_trajectory(self, env):
        samples = collect_teacher_actions(env, steps=3)
        assert len(samples) == 3
        for state, actions, reward in samples:
            assert actions.shape == (env.n_segments,)
        # Teacher improves the mask overall.
        assert samples[0][0].total_epe >= samples[-1][0].total_epe

    def test_collect_validation(self, env):
        with pytest.raises(RLError):
            collect_teacher_actions(env, steps=0)
        with pytest.raises(RLError):
            greedy_teacher_actions(env.reset(), gain=-1)
