"""Tests for squish encoding, adaptive re-gridding and node features."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SquishError
from repro.geometry import (
    Clip,
    MaskState,
    Polygon,
    Rect,
    fragment_clip,
)
from repro.squish import (
    NodeFeatureEncoder,
    SquishPattern,
    adaptive_squish_tensor,
    encode_squish,
    scanline_positions,
)


WINDOW = Rect(0, 0, 100, 100)


def squares(*rects):
    return [Polygon.from_rect(r) for r in rects]


class TestScanlines:
    def test_window_borders_always_present(self):
        xs, ys = scanline_positions([], WINDOW)
        assert xs.tolist() == [0, 100]
        assert ys.tolist() == [0, 100]

    def test_polygon_edges_add_lines(self):
        polys = squares(Rect(20, 30, 60, 70))
        xs, ys = scanline_positions(polys, WINDOW)
        assert xs.tolist() == [0, 20, 60, 100]
        assert ys.tolist() == [0, 30, 70, 100]

    def test_outside_edges_ignored(self):
        polys = squares(Rect(-50, -50, 150, 20))  # only y=20 is inside
        xs, ys = scanline_positions(polys, WINDOW)
        assert xs.tolist() == [0, 100]
        assert ys.tolist() == [0, 20, 100]

    def test_extra_scanlines(self):
        xs, ys = scanline_positions([], WINDOW, extra_x=[33.0], extra_y=[66.0, 200.0])
        assert 33.0 in xs.tolist()
        assert 66.0 in ys.tolist()
        assert 200.0 not in ys.tolist()

    def test_duplicates_merged(self):
        polys = squares(Rect(20, 20, 60, 60), Rect(20, 70, 60, 90))
        xs, _ = scanline_positions(polys, WINDOW)
        assert xs.tolist() == [0, 20, 60, 100]


class TestSquishEncoding:
    def test_figure3_style_single_rect(self):
        """One rect in a window: 3x3 matrix with centre cell set."""
        pattern = encode_squish(squares(Rect(20, 30, 60, 70)), WINDOW)
        assert pattern.matrix.shape == (3, 3)
        assert pattern.matrix.tolist() == [[0, 0, 0], [0, 1, 0], [0, 0, 0]]
        assert pattern.delta_x.tolist() == [20, 40, 40]
        assert pattern.delta_y.tolist() == [30, 40, 30]

    def test_covered_area_matches_geometry(self):
        pattern = encode_squish(squares(Rect(20, 30, 60, 70)), WINDOW)
        assert pattern.covered_area == pytest.approx(40 * 40)

    def test_two_rects(self):
        pattern = encode_squish(
            squares(Rect(10, 10, 30, 30), Rect(60, 60, 90, 90)), WINDOW
        )
        assert pattern.covered_area == pytest.approx(20 * 20 + 30 * 30)

    def test_empty_window(self):
        pattern = encode_squish([], WINDOW)
        assert pattern.matrix.sum() == 0
        assert pattern.covered_area == 0

    def test_dense_roundtrip(self):
        pattern = encode_squish(squares(Rect(20, 30, 60, 70)), WINDOW)
        dense = pattern.to_dense(pixel_nm=10)
        assert dense.shape == (10, 10)
        assert dense.sum() * 100 == pytest.approx(1600)

    def test_extra_scanlines_do_not_change_area(self):
        base = encode_squish(squares(Rect(20, 30, 60, 70)), WINDOW)
        refined = encode_squish(
            squares(Rect(20, 30, 60, 70)), WINDOW, extra_x=[40.0], extra_y=[50.0]
        )
        assert refined.matrix.shape == (4, 4)
        assert refined.covered_area == pytest.approx(base.covered_area)

    def test_pattern_validation(self):
        with pytest.raises(SquishError):
            SquishPattern(
                matrix=np.zeros((2, 2), dtype=np.uint8),
                delta_x=np.ones(3),
                delta_y=np.ones(2),
                origin=(0, 0),
            )

    def test_width_height(self):
        pattern = encode_squish(squares(Rect(20, 30, 60, 70)), WINDOW)
        assert pattern.width == 100
        assert pattern.height == 100


class TestAdaptive:
    def pattern(self):
        return encode_squish(squares(Rect(20, 30, 60, 70)), WINDOW)

    def test_output_shape(self):
        tensor = adaptive_squish_tensor(self.pattern(), 16, 16)
        assert tensor.shape == (3, 16, 16)

    def test_occupancy_area_preserved_by_splitting(self):
        tensor = adaptive_squish_tensor(self.pattern(), 16, 16)
        occ, dx, dy = tensor
        # Spacing channels are log1p of uniform-cell units: invert with
        # expm1, then cell width in nm is rel * (W / out_x).
        rel_x = np.expm1(dx)
        rel_y = np.expm1(dy)
        area = float((occ * rel_x * rel_y).sum()) * (100 / 16) * (100 / 16)
        assert area == pytest.approx(1600)

    def test_spacing_channels_uniform_relative(self):
        tensor = adaptive_squish_tensor(self.pattern(), 16, 16)
        # Each row of decoded widths sums to out_x in uniform-cell units.
        assert np.expm1(tensor[1]).sum(axis=1).max() == pytest.approx(16.0)
        assert np.expm1(tensor[2]).sum(axis=0).max() == pytest.approx(16.0)

    def test_merge_path(self):
        """More scanlines than the target shape forces merging."""
        rects = [Rect(5 + 10 * i, 5, 12 + 10 * i, 95) for i in range(9)]
        pattern = encode_squish(squares(*rects), WINDOW)
        assert pattern.matrix.shape[1] > 8
        tensor = adaptive_squish_tensor(pattern, 8, 8)
        assert tensor.shape == (3, 8, 8)
        assert tensor[0].sum() > 0  # geometry still visible after merging

    def test_too_small_output_rejected(self):
        with pytest.raises(SquishError):
            adaptive_squish_tensor(self.pattern(), 1, 16)


def via_state():
    clip = Clip(
        name="f",
        bbox=Rect(0, 0, 2000, 2000),
        targets=(
            Polygon.from_rect(Rect.square(500, 500, 70)),
            Polygon.from_rect(Rect.square(700, 500, 70)),
        ),
        layer="via",
    )
    segments = fragment_clip(clip)
    return MaskState.initial(clip, segments, bias_nm=3.0)


class TestNodeFeatures:
    def test_camo_six_channels(self):
        state = via_state()
        encoder = NodeFeatureEncoder(window_nm=500, out_size=32, channels=6)
        tensor = encoder.encode_segment(state, state.segments[0])
        assert tensor.shape == (6, 32, 32)

    def test_rlopc_three_channels(self):
        state = via_state()
        encoder = NodeFeatureEncoder(window_nm=500, out_size=32, channels=3)
        assert encoder.encode_segment(state, state.segments[0]).shape == (3, 32, 32)

    def test_encode_all_shape(self):
        state = via_state()
        encoder = NodeFeatureEncoder(window_nm=500, out_size=16, channels=6)
        feats = encoder.encode_all(state)
        assert feats.shape == (8, 6, 16, 16)

    def test_features_respond_to_mask_movement(self):
        state = via_state()
        encoder = NodeFeatureEncoder(window_nm=500, out_size=32, channels=6)
        before = encoder.encode_segment(state, state.segments[0])
        moved = state.moved(np.full(8, 4.0))
        after = encoder.encode_segment(moved, moved.segments[0])
        assert not np.allclose(before, after)

    def test_highlight_channels_differ_from_mask_channels(self):
        """With a moved mask, the target-edge scanlines must produce a
        different grid from the plain mask encoding."""
        state = via_state().moved(np.full(8, 4.0))
        encoder = NodeFeatureEncoder(window_nm=500, out_size=32, channels=6)
        tensor = encoder.encode_segment(state, state.segments[0])
        assert not np.allclose(tensor[:3], tensor[3:])

    def test_neighbor_via_visible_in_window(self):
        state = via_state()
        wide = NodeFeatureEncoder(window_nm=500, out_size=32, channels=3)
        narrow = NodeFeatureEncoder(window_nm=120, out_size=32, channels=3)
        # Segment 0 belongs to the via at (500, 500); the neighbour sits
        # 200 nm away so only the wide window sees both patterns.
        wide_occupied = wide.encode_segment(state, state.segments[0])[0].sum()
        narrow_occupied = narrow.encode_segment(state, state.segments[0])[0].sum()
        assert wide_occupied != narrow_occupied

    def test_validation(self):
        with pytest.raises(SquishError):
            NodeFeatureEncoder(window_nm=-1)
        with pytest.raises(SquishError):
            NodeFeatureEncoder(out_size=2)
        with pytest.raises(SquishError):
            NodeFeatureEncoder(channels=4)


class TestPopulationEncoding:
    """Shared-scanline-union population encoding parity (the batched
    per-trajectory feature path used by population RL training)."""

    def encoder(self, channels=6):
        return NodeFeatureEncoder(window_nm=500, out_size=32, channels=channels)

    def population(self, deltas=(0.0, 2.0, -2.0)):
        base = via_state()
        return [base.moved(np.full(8, d)) for d in deltas]

    def test_single_member_is_bitwise_per_window(self):
        """P=1: the union degenerates to the per-window grid, so the
        population path must be bit-for-bit the per-window encoding."""
        encoder = self.encoder()
        state = via_state()
        assert np.array_equal(
            encoder.encode_all_population([state]),
            encoder.encode_all(state)[None],
        )

    def test_identical_members_match_per_window(self):
        """Members with identical masks add no scanlines to each other's
        union — every row equals the per-window encoding (the shared
        start state of population training)."""
        encoder = self.encoder()
        state = via_state()
        feats = encoder.encode_all_population([state, state, state])
        reference = encoder.encode_all(state)
        for row in feats:
            assert np.array_equal(row, reference)

    def test_population_matches_per_window_on_union_grid(self):
        """Parity against per-window encoding: each member's tensors
        equal the per-window encode run on the same scanline union."""
        from repro.squish.features import _clip_polygons, _vertex_scanlines

        encoder = self.encoder()
        states = self.population()
        feats = encoder.encode_all_population(states)
        assert feats.shape == (3, 8, 6, 32, 32)
        for j, segment in enumerate(states[0].segments):
            window = encoder._window(segment)
            target_polys = _clip_polygons(states[0].clip.targets, window)
            union_x, union_y = _vertex_scanlines(target_polys)
            for state in states:
                xs, ys = _vertex_scanlines(
                    _clip_polygons(state.mask_polygons(), window)
                )
                union_x, union_y = union_x + xs, union_y + ys
            for p, state in enumerate(states):
                mask_polys = _clip_polygons(state.mask_polygons(), window)
                expected_mask = encoder._mask_tensor(
                    mask_polys, window, union_x, union_y
                )
                assert np.array_equal(feats[p, j, :3], expected_mask)

    def test_target_channels_shared_across_members(self):
        """The payoff: on the union grid the target encoding is identical
        for every member (computed once, broadcast)."""
        encoder = self.encoder()
        feats = encoder.encode_all_population(self.population())
        for p in range(1, feats.shape[0]):
            assert np.array_equal(feats[0, :, 3:], feats[p, :, 3:])

    def test_distinct_members_encode_distinct_masks(self):
        encoder = self.encoder()
        feats = encoder.encode_all_population(self.population())
        assert not np.array_equal(feats[0, :, :3], feats[1, :, :3])

    def test_three_channel_population_falls_back(self):
        encoder = self.encoder(channels=3)
        states = self.population()
        feats = encoder.encode_all_population(states)
        for state, row in zip(states, feats):
            assert np.array_equal(row, encoder.encode_all(state))

    def test_empty_population_rejected(self):
        with pytest.raises(SquishError):
            self.encoder().encode_all_population([])


@given(
    x0=st.integers(min_value=1, max_value=40),
    y0=st.integers(min_value=1, max_value=40),
    w=st.integers(min_value=5, max_value=50),
    h=st.integers(min_value=5, max_value=50),
)
def test_property_squish_area_exact(x0, y0, w, h):
    """Squish encoding is lossless for any rect inside the window."""
    rect = Rect(x0, y0, min(x0 + w, 99), min(y0 + h, 99))
    pattern = encode_squish([Polygon.from_rect(rect)], WINDOW)
    assert pattern.covered_area == pytest.approx(rect.area)


@given(
    out=st.integers(min_value=4, max_value=48),
    x0=st.integers(min_value=1, max_value=40),
    w=st.integers(min_value=5, max_value=50),
)
def test_property_adaptive_split_preserves_area(out, x0, w):
    rect = Rect(x0, 20, min(x0 + w, 99), 70)
    pattern = encode_squish([Polygon.from_rect(rect)], WINDOW)
    if pattern.matrix.shape[0] > out or pattern.matrix.shape[1] > out:
        return  # merging is lossy by design; only splitting is exact
    tensor = adaptive_squish_tensor(pattern, out, out)
    occ, dx, dy = tensor
    area = float((occ * np.expm1(dx) * np.expm1(dy)).sum()) * (100 / out) * (100 / out)
    assert area == pytest.approx(rect.area, rel=1e-9)
