"""Tests for segment-graph construction and RNN visit orders."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.geometry import Clip, Polygon, Rect, fragment_clip
from repro.graphs import (
    bfs_order,
    build_segment_graph,
    nearest_neighbor_order,
    snake_order,
)
from repro.graphs.ordering import get_ordering


def via_clip(centers):
    targets = tuple(Polygon.from_rect(Rect.square(cx, cy, 70)) for cx, cy in centers)
    return Clip(name="g", bbox=Rect(0, 0, 2000, 2000), targets=targets, layer="via")


class TestConstruction:
    def test_single_via_fully_connected(self):
        """Four segments of one 70 nm via are all within 250 nm."""
        segments = fragment_clip(via_clip([(500, 500)]))
        graph = build_segment_graph(segments)
        assert graph.n_nodes == 4
        assert graph.n_edges == 6  # complete graph K4

    def test_far_vias_disconnected(self):
        segments = fragment_clip(via_clip([(300, 300), (1500, 1500)]))
        graph = build_segment_graph(segments)
        # Two K4 components, no cross edges.
        assert graph.n_edges == 12
        nx_graph = graph.to_networkx()
        import networkx as nx

        assert nx.number_connected_components(nx_graph) == 2

    def test_close_vias_connected(self):
        segments = fragment_clip(via_clip([(500, 500), (680, 500)]))
        graph = build_segment_graph(segments)
        import networkx as nx

        assert nx.number_connected_components(graph.to_networkx()) == 1

    def test_threshold_controls_edges(self):
        segments = fragment_clip(via_clip([(500, 500), (680, 500)]))
        tight = build_segment_graph(segments, threshold_nm=100)
        loose = build_segment_graph(segments, threshold_nm=400)
        assert tight.n_edges < loose.n_edges

    def test_no_self_loops(self):
        segments = fragment_clip(via_clip([(500, 500)]))
        graph = build_segment_graph(segments)
        for i, adj in enumerate(graph.neighbors):
            assert i not in adj

    def test_symmetry(self):
        segments = fragment_clip(via_clip([(500, 500), (650, 620)]))
        graph = build_segment_graph(segments)
        for i, adj in enumerate(graph.neighbors):
            for j in adj:
                assert i in graph.neighbors[j]

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            build_segment_graph([])

    def test_bad_threshold(self):
        segments = fragment_clip(via_clip([(500, 500)]))
        with pytest.raises(GraphError):
            build_segment_graph(segments, threshold_nm=0)

    def test_degree(self):
        segments = fragment_clip(via_clip([(500, 500)]))
        graph = build_segment_graph(segments)
        assert all(graph.degree(i) == 3 for i in range(4))


class TestOrdering:
    def graph(self):
        segments = fragment_clip(
            via_clip([(300, 300), (600, 300), (300, 900), (1500, 1500)])
        )
        return build_segment_graph(segments)

    @pytest.mark.parametrize("order_fn", [snake_order, nearest_neighbor_order, bfs_order])
    def test_permutation(self, order_fn):
        graph = self.graph()
        order = order_fn(graph)
        assert sorted(order) == list(range(graph.n_nodes))

    def test_snake_bands_monotone_y(self):
        graph = self.graph()
        order = snake_order(graph, band_nm=150)
        ys = [graph.segments[i].control[1] for i in order]
        bands = [int(y // 150) for y in ys]
        assert bands == sorted(bands)

    def test_nearest_neighbor_consecutive_close(self):
        graph = self.graph()
        order = nearest_neighbor_order(graph)
        controls = np.asarray([s.control for s in graph.segments])
        # Average hop inside a via cluster must be far below clip size.
        hops = [
            np.hypot(*(controls[a] - controls[b]))
            for a, b in zip(order, order[1:])
        ]
        assert np.median(hops) < 300

    def test_bfs_visits_components_in_order(self):
        graph = self.graph()
        order = bfs_order(graph)
        assert order[0] == 0

    def test_get_ordering_lookup(self):
        assert get_ordering("snake") is snake_order
        with pytest.raises(GraphError):
            get_ordering("random")

    def test_snake_bad_band(self):
        with pytest.raises(GraphError):
            snake_order(self.graph(), band_nm=0)


@given(
    n_vias=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_orderings_are_permutations(n_vias, seed):
    rng = np.random.default_rng(seed)
    centers = []
    while len(centers) < n_vias:
        cx, cy = rng.integers(200, 1800, size=2)
        if all(abs(cx - a) + abs(cy - b) > 200 for a, b in centers):
            centers.append((int(cx), int(cy)))
    segments = fragment_clip(via_clip(centers))
    graph = build_segment_graph(segments)
    for fn in (snake_order, nearest_neighbor_order, bfs_order):
        assert sorted(fn(graph)) == list(range(graph.n_nodes))
