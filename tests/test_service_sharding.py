"""Tests for process-sharded suite execution and streaming verification
(repro/service/sharding.py + MaskOptService.run_suite_sharded).

The acceptance pin: a sharded sweep (``workers=N``) over a mixed
via+metal suite is bit-for-bit identical to the sequential sweep —
sharding reorders work, never numbers.  Worker death and worker
exceptions must fail the sweep loudly (naming the clip) instead of
hanging the queue.

The crashing/stub engines live at module level so ``spawn`` workers can
rebuild them by qualified name.
"""

import os
import pickle

import numpy as np
import pytest

from repro.baselines.mbopc import MBOPC, MBOPCConfig
from repro.data.stdcell import stdcell_metal_clip
from repro.data.via_bench import generate_via_clip
from repro.errors import ServiceError
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service import (
    EngineSpec,
    MaskOptService,
    OptOutcome,
    OptRequest,
    ShardedSuiteRunner,
    ShapeBinScheduler,
)

OVERRIDES = {"max_updates": 3, "initial_bias_nm": 3.0}


def _litho_config(**extra):
    return LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=4, **extra)


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(_litho_config())


@pytest.fixture(scope="module")
def mixed_suite():
    """Mixed via+metal suite spanning two raster grid shapes."""
    return [
        generate_via_clip("sv1", n_vias=2, seed=31, clip_nm=1280),
        generate_via_clip("sv2", n_vias=2, seed=32, clip_nm=1280),
        generate_via_clip("sv3", n_vias=2, seed=33, clip_nm=1024),
        stdcell_metal_clip("sm1", 8, seed=5, clip_nm=1280),
    ]


@pytest.fixture(scope="module")
def sequential_reference(sim, mixed_suite):
    """The pinned reference: a sequential submit/run_all sweep."""
    service = MaskOptService(simulator=sim)
    for clip in mixed_suite:
        service.submit(OptRequest(
            clip=clip, engine="mbopc", engine_overrides=OVERRIDES,
        ))
    return service.run_all()


def assert_results_identical(results, reference):
    assert [r.clip_name for r in results] == [r.clip_name for r in reference]
    for got, ref in zip(results, reference):
        assert got.engine == ref.engine
        assert got.epe_nm == ref.epe_nm
        assert got.pvband_nm2 == ref.pvband_nm2
        assert got.steps == ref.steps
        assert got.early_exited == ref.early_exited
        assert got.verified_epe_nm == ref.verified_epe_nm
        assert got.outcome == ref.outcome


# -- stub/crash engines (importable from spawned workers) ---------------------

class _StubOutcome:
    """Minimal outcome: reported numbers plus a mask image."""

    def __init__(self, shape):
        self.epe_total = 1.5
        self.pvband = 10.0
        self.runtime_s = 0.0
        self.steps = 1
        self.early_exited = False
        self.mask_image = np.zeros(shape)


class _ScriptedEngine:
    """Returns stub outcomes; misbehaves on clips named after its mode."""

    def __init__(self, simulator, mode):
        self.simulator = simulator
        self.mode = mode

    def optimize(self, clip, **kwargs):
        if clip.name == "boom":
            if self.mode == "crash":
                os._exit(17)
            raise RuntimeError("scripted engine failure")
        return _StubOutcome(self.simulator.grid_for(clip).shape)


def crashing_factory(simulator, overrides):
    return _ScriptedEngine(simulator, "crash")


def raising_factory(simulator, overrides):
    return _ScriptedEngine(simulator, "raise")


def unbuildable_factory(simulator, overrides):
    raise RuntimeError("no engine for you")


# -- the acceptance pin -------------------------------------------------------

class TestShardedBitForBit:
    def test_sharded_matches_sequential(
        self, sim, mixed_suite, sequential_reference
    ):
        """workers=2 over a mixed via+metal suite: every reported and
        verified number is bit-for-bit identical to the sequential
        sweep."""
        service = MaskOptService(simulator=sim)
        results = service.run_suite_sharded(
            "mbopc", mixed_suite, workers=2, engine_overrides=OVERRIDES,
        )
        assert_results_identical(results, sequential_reference)
        assert all(r.outcome == "verified" for r in results)
        assert service.scheduler.items_flushed == len(mixed_suite)
        # Streamed payloads replace the in-process outcome object.
        assert all(isinstance(r.raw_outcome, OptOutcome) for r in results)

    def test_workers_one_runs_inline_and_matches(
        self, sim, mixed_suite, sequential_reference
    ):
        results = MaskOptService(simulator=sim).run_suite_sharded(
            "mbopc", mixed_suite, workers=1, engine_overrides=OVERRIDES,
        )
        assert_results_identical(results, sequential_reference)

    def test_eager_streaming_never_changes_numbers(
        self, sim, mixed_suite, sequential_reference
    ):
        """stream_min_bin=1 flushes every bin as soon as it has one mask
        — maximally different batching, identical measurements."""
        service = MaskOptService(simulator=sim)
        results = service.run_suite_sharded(
            "mbopc", mixed_suite, workers=2, engine_overrides=OVERRIDES,
            stream_min_bin=1,
        )
        assert_results_identical(results, sequential_reference)

    def test_map_suite_workers_matches_threaded_path(
        self, sim, mixed_suite, sequential_reference
    ):
        suites = MaskOptService(simulator=sim).map_suite(
            {"MB": ("mbopc", OVERRIDES)}, mixed_suite, workers=2,
        )
        rows = suites["MB"].rows
        assert [row.clip_name for row in rows] == [
            r.clip_name for r in sequential_reference
        ]
        for row, ref in zip(rows, sequential_reference):
            assert row.epe_nm == ref.epe_nm
            assert row.pvband_nm2 == ref.pvband_nm2

    def test_engine_search_range_reaches_payloads(self, sim, mixed_suite):
        results = MaskOptService(simulator=sim).run_suite_sharded(
            "mbopc", mixed_suite[:2], workers=2,
            engine_overrides={**OVERRIDES, "epe_search_nm": 30.0},
        )
        assert all(
            r.raw_outcome.epe_search_nm == 30.0 for r in results
        )
        assert all(r.outcome == "verified" for r in results)


class TestShardedStoreSharing:
    def test_workers_share_one_spectra_store(self, tmp_path, mixed_suite):
        store_dir = tmp_path / "spectra"
        service = MaskOptService(
            litho_config=_litho_config(spectra_store=str(store_dir))
        )
        results = service.run_suite_sharded(
            "mbopc", mixed_suite, workers=2, engine_overrides=OVERRIDES,
        )
        assert len(results) == len(mixed_suite)
        # Two grid shapes x two defocus settings worth of entries were
        # persisted by whoever built them first (workers or the parent's
        # verification pass), and they are plain .npz files on disk.
        names = [n for n in os.listdir(store_dir) if n.endswith(".npz")]
        assert len(names) >= 2
        assert not any(n.startswith(".tmp-") for n in names)


# -- failure modes ------------------------------------------------------------

class TestShardedFailures:
    def test_worker_crash_fails_sweep_naming_clip(self, sim, mixed_suite):
        """A worker that dies mid-suite must surface as a ServiceError
        naming the in-flight clip — never hang the queue."""
        import dataclasses

        # Round-robin puts the first clip on worker 0; name it so the
        # scripted engine os._exit()s that worker mid-suite.
        boom = dataclasses.replace(mixed_suite[0], name="boom")
        suite = [boom, *mixed_suite[1:]]
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="'boom'") as excinfo:
            service.run_suite_sharded(
                crashing_factory, suite, workers=2, verify=False,
            )
        assert "exit code 17" in str(excinfo.value)

    def test_worker_exception_fails_sweep_naming_clip(
        self, sim, mixed_suite
    ):
        import dataclasses

        boom = dataclasses.replace(mixed_suite[1], name="boom")
        suite = [mixed_suite[0], boom, *mixed_suite[2:]]
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="'boom'") as excinfo:
            service.run_suite_sharded(
                raising_factory, suite, workers=2, verify=False,
            )
        assert "scripted engine failure" in str(excinfo.value)

    def test_aborted_sweep_leaves_scheduler_clean(self, sim, mixed_suite):
        """Outcomes streamed before a crash must not linger in the
        service's shared scheduler — a retried or later verification
        pass would re-simulate the stale masks."""
        import dataclasses

        # Worker 1 crashes on its first clip while worker 0's stub
        # outcomes (with masks) stream into the scheduler.
        boom = dataclasses.replace(mixed_suite[1], name="boom")
        suite = [mixed_suite[0], boom, *mixed_suite[2:]]
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError):
            service.run_suite_sharded(
                crashing_factory, suite, workers=2, verify=True,
                stream_min_bin=100,
            )
        assert service.scheduler.pending == 0

    def test_instance_rejected_eagerly_by_run_suite_sharded(
        self, sim, mixed_suite
    ):
        engine = MBOPC(MBOPCConfig(**OVERRIDES), sim)
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="registry name or a factory"):
            service.run_suite_sharded(engine, mixed_suite, workers=2)

    def test_engine_build_failure_is_clean(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="could not build"):
            service.run_suite_sharded(
                unbuildable_factory, mixed_suite, workers=2, verify=False,
            )

    def test_instances_rejected_by_sharded_map_suite(self, sim, mixed_suite):
        engine = MBOPC(MBOPCConfig(**OVERRIDES), sim)
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="instance"):
            service.map_suite({"MB": engine}, mixed_suite, workers=2)

    def test_bad_worker_counts_rejected(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="workers"):
            service.run_suite_sharded("mbopc", mixed_suite, workers=0)
        with pytest.raises(ServiceError, match="at least one clip"):
            service.run_suite_sharded("mbopc", [], workers=2)
        with pytest.raises(ServiceError, match="stream_min_bin"):
            service.run_suite_sharded(
                "mbopc", mixed_suite, workers=2, stream_min_bin=0,
            )


# -- components ---------------------------------------------------------------

class TestStreamingScheduler:
    def test_flush_ready_drains_only_full_bins(self, sim, mixed_suite):
        engine = MBOPC(MBOPCConfig(**OVERRIDES), sim)
        outcomes = [engine.optimize(clip) for clip in mixed_suite]

        reference = ShapeBinScheduler()
        for ticket, (clip, outcome) in enumerate(zip(mixed_suite, outcomes)):
            reference.add_outcome(ticket, clip, outcome, sim, 40.0)
        expected = reference.flush(sim)

        streaming = ShapeBinScheduler()
        for ticket, (clip, outcome) in enumerate(zip(mixed_suite, outcomes)):
            streaming.add_outcome(ticket, clip, outcome, sim, 40.0)
        # Three clips share the 160x160 bin; one metal clip sits alone.
        early = streaming.flush_ready(sim, min_bin=3)
        assert set(early) == {0, 1, 3}
        assert streaming.pending == 1
        late = streaming.flush(sim)
        assert set(late) == {2}
        assert {**early, **late} == expected
        assert streaming.batch_calls == reference.batch_calls == 2
        assert streaming.items_flushed == len(mixed_suite)

    def test_flush_ready_validates_min_bin(self, sim):
        with pytest.raises(ValueError, match="min_bin"):
            ShapeBinScheduler().flush_ready(sim, min_bin=0)

    def test_discard_takes_back_only_named_keys(self, sim, mixed_suite):
        engine = MBOPC(MBOPCConfig(**OVERRIDES), sim)
        scheduler = ShapeBinScheduler()
        for ticket, clip in enumerate(mixed_suite):
            scheduler.add_outcome(
                ticket, clip, engine.optimize(clip), sim, 40.0
            )
        assert scheduler.discard([0, 3, 99]) == 2
        assert scheduler.pending == 2
        remaining = scheduler.flush(sim)
        assert set(remaining) == {1, 2}


class TestShardingComponents:
    def test_opt_outcome_payloads_pickle(self, sim, mixed_suite):
        engine = MBOPC(MBOPCConfig(**OVERRIDES), sim)
        clip = mixed_suite[0]
        payload = OptOutcome.from_raw(
            engine.optimize(clip), clip, sim, 40.0, worker=3
        )
        clone = pickle.loads(pickle.dumps(payload))
        assert clone.clip_name == payload.clip_name
        assert clone.epe_total == payload.epe_total
        assert clone.worker == 3
        np.testing.assert_array_equal(clone.mask_image, payload.mask_image)

    def test_engine_spec_pickles(self, sim):
        spec = EngineSpec(
            engine="mbopc", litho=sim.config,
            overrides=tuple(sorted(OVERRIDES.items())),
        )
        clone = pickle.loads(pickle.dumps(spec))
        engine, simulator = clone.build()
        assert engine.config.max_updates == OVERRIDES["max_updates"]
        assert simulator.config.pixel_nm == sim.config.pixel_nm

    def test_runner_validates_inputs(self, sim):
        spec = EngineSpec(engine="mbopc", litho=sim.config)
        with pytest.raises(ServiceError, match="workers"):
            ShardedSuiteRunner(spec, workers=0)
        with pytest.raises(ServiceError, match="EngineSpec"):
            ShardedSuiteRunner("mbopc", workers=2)
        with pytest.raises(ServiceError, match="at least one clip"):
            ShardedSuiteRunner(spec, workers=2).run([])

    def test_unverified_sweeps_ship_no_masks(self, sim, mixed_suite):
        """verify=False must not rasterize + pickle masks the parent
        would immediately discard."""
        results = MaskOptService(simulator=sim).run_suite_sharded(
            "mbopc", mixed_suite, workers=2, engine_overrides=OVERRIDES,
            verify=False,
        )
        assert all(r.raw_outcome.mask_image is None for r in results)
        assert all(r.outcome == "unverified" for r in results)

    def test_inline_seed_does_not_touch_global_rng(self, sim, mixed_suite):
        """workers=1 runs in the caller's process; spec.seed must be
        honored worker-style but leave the caller's numpy RNG stream
        exactly where it was."""
        spec = EngineSpec(
            engine="mbopc", litho=sim.config,
            overrides=tuple(sorted(OVERRIDES.items())), seed=7,
        )
        np.random.seed(12345)
        expected = np.random.RandomState(12345).random_sample(4)
        outcomes = ShardedSuiteRunner(spec, workers=1).run(mixed_suite[:1])
        assert len(outcomes) == 1
        np.testing.assert_array_equal(np.random.random_sample(4), expected)

    def test_worker_clamp_to_clip_count(self, sim, mixed_suite):
        """More workers than clips must not spawn idle processes (and
        2 clips / 8 workers runs with 2)."""
        service = MaskOptService(simulator=sim)
        results = service.run_suite_sharded(
            "mbopc", mixed_suite[:2], workers=8,
            engine_overrides=OVERRIDES,
        )
        assert [r.clip_name for r in results] == ["sv1", "sv2"]
        workers_used = {r.raw_outcome.worker for r in results}
        assert workers_used == {0, 1}
