"""Tests for the repro.service front door (API, registry, scheduler,
MaskOptService, CLI).

The acceptance pin: ``MaskOptService.run_all`` over a mixed via+metal
suite is bit-for-bit identical to the pre-redesign per-script path
(direct ``engine.optimize`` + one-at-a-time re-simulation) under
``verify_eval="dense"``, while the verification pass issues at most one
batched litho call per (grid-shape, search-range) bin.  The sparse
default (``verify_eval="sparse"``) must reproduce the dense verified
EPE to <= 1e-9 nm.
"""

import json

import numpy as np
import pytest

from repro.baselines.mbopc import MBOPC, MBOPCConfig
from repro.data.stdcell import stdcell_metal_clip
from repro.data.via_bench import generate_via_clip
from repro.errors import MetrologyError, ServiceError
from repro.geometry.segmentation import fragment_clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service import (
    MaskOptService,
    OptRequest,
    available_engines,
    create_engine,
    final_mask_image,
    register_engine,
)


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=4)
    )


@pytest.fixture(scope="module")
def mixed_suite():
    """Mixed via+metal suite spanning two raster grid shapes (160x160
    and 128x128)."""
    return [
        generate_via_clip("sv1", n_vias=2, seed=31, clip_nm=1280),
        generate_via_clip("sv2", n_vias=2, seed=32, clip_nm=1280),
        generate_via_clip("sv3", n_vias=2, seed=33, clip_nm=1024),
        stdcell_metal_clip("sm1", 8, seed=5, clip_nm=1280),
    ]


def make_engine(sim):
    """A deterministic, training-free engine (fresh per call: MB-OPC is
    stateless across optimize() calls, so two instances agree
    bit-for-bit)."""
    return MBOPC(MBOPCConfig(max_updates=3, initial_bias_nm=3.0), sim)


class TestRequestValidation:
    def test_rejects_non_clip(self):
        with pytest.raises(ServiceError, match="Clip"):
            OptRequest(clip="not-a-clip")

    def test_rejects_empty_engine_name(self, mixed_suite):
        with pytest.raises(ServiceError, match="non-empty"):
            OptRequest(clip=mixed_suite[0], engine="")

    def test_rejects_engine_without_optimize(self, mixed_suite):
        with pytest.raises(ServiceError, match="optimize"):
            OptRequest(clip=mixed_suite[0], engine=object())

    def test_rejects_overrides_on_instances(self, sim, mixed_suite):
        with pytest.raises(ServiceError, match="overrides"):
            OptRequest(
                clip=mixed_suite[0],
                engine=make_engine(sim),
                engine_overrides={"max_updates": 1},
            )

    def test_rejects_bad_search_range(self, mixed_suite):
        with pytest.raises(ServiceError, match="positive"):
            OptRequest(clip=mixed_suite[0], epe_search_nm=0.0)

    def test_engine_label(self, sim, mixed_suite):
        assert OptRequest(clip=mixed_suite[0], engine="camo").engine_label == "camo"
        instance = OptRequest(clip=mixed_suite[0], engine=make_engine(sim))
        assert instance.engine_label == "mbopc"


class TestRegistry:
    def test_all_engines_constructible(self, sim):
        for name in available_engines():
            engine = create_engine(name, sim)
            assert callable(engine.optimize)

    def test_unknown_engine(self, sim):
        with pytest.raises(ServiceError, match="unknown engine"):
            create_engine("resolve-by-vibes", sim)

    def test_overrides_reach_config(self, sim):
        engine = create_engine("mbopc", sim, {"max_updates": 7})
        assert engine.config.max_updates == 7

    def test_bad_override_key(self, sim):
        with pytest.raises(ServiceError, match="bad overrides"):
            create_engine("mbopc", sim, {"no_such_knob": 1})

    def test_register_requires_overwrite(self, sim):
        def factory(simulator, overrides):
            return make_engine(simulator)

        register_engine("test-dummy", factory)
        try:
            with pytest.raises(ServiceError, match="already registered"):
                register_engine("test-dummy", factory)
            register_engine("test-dummy", factory, overwrite=True)
            assert "test-dummy" in available_engines()
        finally:
            from repro.service import registry

            registry._REGISTRY.pop("test-dummy", None)


class TestRunAllBitForBit:
    def test_matches_pre_redesign_path_and_bins_batches(
        self, sim, mixed_suite
    ):
        """The acceptance criterion, both halves.

        Reference: the pre-redesign per-script wiring — direct
        ``engine.optimize`` per clip, then an independent one-clip-at-a-
        time re-simulation + measurement (no cross-clip batching; batched
        results are batch-size independent, so the service's grouped pass
        must reproduce these values exactly).  The bit-for-bit half runs
        under ``verify_eval="dense"``; the sparse default is pinned to
        the same values separately in
        ``test_sparse_default_matches_dense_verifier``.
        """
        from repro.metrology.epe import measure_epe_grouped

        reference_engine = make_engine(sim)
        expected = [reference_engine.optimize(clip) for clip in mixed_suite]
        expected_epe = {}
        for clip, outcome in zip(mixed_suite, expected):
            grid = sim.grid_for(clip)
            mask = final_mask_image(outcome, grid)
            litho = sim.simulate_batch(mask[None], grid)[0]
            (report,) = measure_epe_grouped(
                litho.aerial[None], [grid], [fragment_clip(clip)],
                sim.config.threshold, search_nm=40.0,
            )
            expected_epe[clip.name] = report.total_abs

        service = MaskOptService(simulator=sim, verify_eval="dense")
        engine = make_engine(sim)
        for clip in mixed_suite:
            service.submit(OptRequest(clip=clip, engine=engine))
        results = service.run_all()

        # Bit-for-bit identical reported numbers (frozen per-iteration
        # sweep) and verified EPE equal to the independent single-mask
        # measurements.
        assert [r.clip_name for r in results] == [c.name for c in mixed_suite]
        for result, outcome in zip(results, expected):
            assert result.epe_nm == outcome.epe_total
            assert result.pvband_nm2 == outcome.pvband
            assert result.steps == outcome.steps
            assert result.early_exited == outcome.early_exited
            assert result.verified_epe_nm == expected_epe[result.clip_name]

        # At most one simulate_batch per (grid-shape, search-range) bin
        # per verification pass: 2 distinct shapes -> 2 batched calls.
        shapes = {sim.grid_for(clip).shape for clip in mixed_suite}
        assert service.scheduler.batch_calls == len(shapes) == 2
        assert service.scheduler.items_flushed == len(mixed_suite)

    def test_sparse_default_matches_dense_verifier(self, sim, mixed_suite):
        """The default sparse verifier (EPE-only band-spectrum gather)
        must reproduce the dense verified EPE to <= 1e-9 nm — far inside
        the service's 1e-6 nm drift gate — with the same bin counters."""
        engine = make_engine(sim)

        dense = MaskOptService(simulator=sim, verify_eval="dense")
        for clip in mixed_suite:
            dense.submit(OptRequest(clip=clip, engine=engine))
        dense_results = dense.run_all()

        sparse = MaskOptService(simulator=sim)
        assert sparse.scheduler.verify_eval == "sparse"
        for clip in mixed_suite:
            sparse.submit(OptRequest(clip=clip, engine=engine))
        sparse_results = sparse.run_all()

        for got, ref in zip(sparse_results, dense_results):
            # Identical optimization numbers (verification never feeds
            # back into the engine) ...
            assert got.epe_nm == ref.epe_nm
            assert got.pvband_nm2 == ref.pvband_nm2
            # ... and sparse-vs-dense verified EPE inside 1e-9 nm.
            assert got.verified_epe_nm == pytest.approx(
                ref.verified_epe_nm, abs=1e-9
            )
        # Same binning: one batched call per grid shape either way.
        assert sparse.scheduler.batch_calls == dense.scheduler.batch_calls == 2
        assert sparse.scheduler.items_flushed == len(mixed_suite)

    def test_rejects_unknown_verify_eval(self, sim):
        with pytest.raises(ServiceError, match="verify_eval"):
            MaskOptService(simulator=sim, verify_eval="approximate")

    @pytest.mark.parametrize("verify_eval", ["sparse", "dense"])
    def test_scheduler_counter_matches_real_litho_calls(
        self, sim, mixed_suite, monkeypatch, verify_eval
    ):
        """`scheduler.batch_calls` (what the other tests assert on) must
        track actual batched litho invocations one-for-one — sparse bins
        flush through `simulate_epe_batch`, dense ones through
        `simulate_batch`."""
        from repro.service.scheduler import ShapeBinScheduler

        engine = make_engine(sim)
        scheduler = ShapeBinScheduler(verify_eval=verify_eval)
        for ticket, clip in enumerate(mixed_suite):
            added = scheduler.add_outcome(
                ticket, clip, engine.optimize(clip), sim, 40.0
            )
            assert added
        assert scheduler.pending == len(mixed_suite)
        assert scheduler.bin_count == 2

        calls = {"simulate_batch": 0, "simulate_epe_batch": 0}
        original_dense = LithographySimulator.simulate_batch
        original_sparse = LithographySimulator.simulate_epe_batch

        def counting_dense(self, masks, grid, mode=None):
            calls["simulate_batch"] += 1
            return original_dense(self, masks, grid, mode)

        def counting_sparse(self, masks, grid, plans, **kwargs):
            calls["simulate_epe_batch"] += 1
            return original_sparse(self, masks, grid, plans, **kwargs)

        monkeypatch.setattr(
            LithographySimulator, "simulate_batch", counting_dense
        )
        monkeypatch.setattr(
            LithographySimulator, "simulate_epe_batch", counting_sparse
        )
        measured = scheduler.flush(sim)
        expected_method = (
            "simulate_epe_batch" if verify_eval == "sparse"
            else "simulate_batch"
        )
        assert calls[expected_method] == scheduler.batch_calls == 2
        assert sum(calls.values()) == 2  # the other engine never runs
        assert set(measured) == set(range(len(mixed_suite)))
        assert scheduler.pending == 0  # queue drained

    def test_lying_engine_caught(self, sim, mixed_suite):
        truthful = make_engine(sim).optimize(mixed_suite[0])

        class LyingEngine:
            simulator = sim

            def optimize(self, clip, **kwargs):
                class Fake:
                    epe_total = truthful.epe_total + 5.0
                    pvband = truthful.pvband
                    runtime_s = truthful.runtime_s
                    steps = truthful.steps
                    early_exited = truthful.early_exited
                    final_state = truthful.final_state

                return Fake()

        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(clip=mixed_suite[0], engine=LyingEngine()))
        with pytest.raises(MetrologyError, match="re-simulation"):
            service.run_all()

    def test_verify_disabled(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(clip=mixed_suite[0], engine=make_engine(sim)))
        (result,) = service.run_all(verify=False)
        assert result.verified_epe_nm is None
        assert service.scheduler.batch_calls == 0

    def test_registry_engine_cached_across_requests(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        for clip in mixed_suite[:2]:
            service.submit(OptRequest(
                clip=clip, engine="mbopc",
                engine_overrides={"max_updates": 2},
            ))
        service.run_all()
        assert service.stats()["engines_cached"] == 1


class TestMapSuite:
    def test_matches_run_all_and_shares_one_verify_pass(
        self, sim, mixed_suite
    ):
        sequential = MaskOptService(simulator=sim)
        for clip in mixed_suite:
            sequential.submit(OptRequest(clip=clip, engine=make_engine(sim)))
        expected = sequential.run_all()

        pooled = MaskOptService(simulator=sim)
        suites = pooled.map_suite(
            {"MB-A": make_engine(sim), "MB-B": make_engine(sim)},
            mixed_suite,
            max_workers=2,
        )
        assert list(suites) == ["MB-A", "MB-B"]
        for label in suites:
            rows = suites[label].rows
            assert [row.clip_name for row in rows] == [
                c.name for c in mixed_suite
            ]
            for row, ref in zip(rows, expected):
                assert row.epe_nm == ref.epe_nm
                assert row.pvband_nm2 == ref.pvband_nm2
        # Cross-engine batching: 2 engines x 4 clips over 2 shapes still
        # flush in exactly 2 batched litho calls.
        assert pooled.scheduler.batch_calls == 2
        assert pooled.scheduler.items_flushed == 2 * len(mixed_suite)

    def test_empty_inputs_rejected(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="at least one engine"):
            service.map_suite({}, mixed_suite)
        with pytest.raises(ServiceError, match="at least one clip"):
            service.map_suite(["mbopc"], [])

    def test_name_overrides_pairs_accepted(self, sim, mixed_suite):
        """(name, overrides) specs work on the threaded path too, and
        match an identically-configured instance bit-for-bit."""
        expected = MaskOptService(simulator=sim).map_suite(
            {"MB": MBOPC(MBOPCConfig(max_updates=3, initial_bias_nm=3.0), sim)},
            mixed_suite[:2],
        )
        suites = MaskOptService(simulator=sim).map_suite(
            {"MB": ("mbopc", {"max_updates": 3, "initial_bias_nm": 3.0})},
            mixed_suite[:2],
        )
        for row, ref in zip(suites["MB"].rows, expected["MB"].rows):
            assert row.epe_nm == ref.epe_nm
            assert row.pvband_nm2 == ref.pvband_nm2


class TestUnverifiableOutcomes:
    class MaskFreeEngine:
        """Reports numbers but exposes neither final_state nor
        mask_image — nothing to re-simulate."""

        name = "maskfree"

        def optimize(self, clip, **kwargs):
            class Opaque:
                epe_total = 2.0
                pvband = 5.0
                runtime_s = 0.01
                steps = 1
                early_exited = False

            return Opaque()

    def test_unrecoverable_mask_is_explicit_not_silent(self, sim, mixed_suite):
        """final_mask_image -> None must surface as outcome="unverifiable",
        not crash and not masquerade as a clean unverified result."""
        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(clip=mixed_suite[0], engine=self.MaskFreeEngine()))
        (result,) = service.run_all()
        assert result.outcome == "unverifiable"
        assert result.verified_epe_nm is None
        assert result.epe_nm == 2.0
        assert result.to_dict()["outcome"] == "unverifiable"

    def test_opted_out_is_unverified_not_unverifiable(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(
            clip=mixed_suite[0], engine=self.MaskFreeEngine(), verify=False,
        ))
        (result,) = service.run_all()
        assert result.outcome == "unverified"

    def test_verified_results_say_so(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(clip=mixed_suite[0], engine=make_engine(sim)))
        (result,) = service.run_all()
        assert result.outcome == "verified"
        assert result.verified_epe_nm is not None

    def test_bad_outcome_status_rejected(self):
        from repro.service.api import OptResult

        with pytest.raises(ServiceError, match="outcome"):
            OptResult(
                request_id=0, clip_name="c", engine="e", epe_nm=0.0,
                pvband_nm2=0.0, runtime_s=0.0, steps=0, early_exited=False,
                outcome="sideways",
            )


class TestTicketAllocation:
    def test_concurrent_submitters_never_share_a_ticket(self, sim, mixed_suite):
        """_next_id is read-modify-write; without the service lock two
        threads could mint the same ticket."""
        import threading

        service = MaskOptService(simulator=sim)
        tickets: list[int] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def submitter():
            barrier.wait()
            mine = [
                service.submit(OptRequest(
                    clip=mixed_suite[0], engine="mbopc", verify=False,
                ))
                for _ in range(50)
            ]
            with lock:
                tickets.extend(mine)

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tickets) == 8 * 50
        assert len(set(tickets)) == 8 * 50
        assert service.stats()["requests_issued"] == 8 * 50


class TestServiceConstruction:
    def test_simulator_xor_config(self, sim):
        with pytest.raises(ServiceError, match="not both"):
            MaskOptService(simulator=sim, litho_config=LithoConfig())

    def test_submit_rejects_non_request(self, sim):
        service = MaskOptService(simulator=sim)
        with pytest.raises(ServiceError, match="OptRequest"):
            service.submit("clip please")

    def test_stats_shape(self, sim, mixed_suite):
        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(clip=mixed_suite[0], engine=make_engine(sim)))
        service.run_all()
        stats = service.stats()
        assert stats["requests_issued"] == 1
        assert stats["pending"] == 0
        assert stats["verify_batch_calls"] == 1


class TestRunnerStillBitForBit:
    def test_run_engine_on_suite_routes_through_service(
        self, sim, mixed_suite
    ):
        """The re-routed runner returns the same rows as driving the
        engine directly (pre-redesign semantics preserved)."""
        from repro.eval.runner import run_engine_on_suite

        expected = [make_engine(sim).optimize(clip) for clip in mixed_suite]
        suite = run_engine_on_suite(
            make_engine(sim), mixed_suite, "MB-OPC", verify_simulator=sim
        )
        assert suite.engine == "MB-OPC"
        for row, outcome in zip(suite.rows, expected):
            assert row.epe_nm == outcome.epe_total
            assert row.pvband_nm2 == outcome.pvband

    def test_sharded_runner_path_matches(self, sim, mixed_suite):
        """run_engine_on_suite(workers=2) shards through the service and
        still returns the sequential rows bit-for-bit."""
        from repro.eval.runner import run_engine_on_suite

        overrides = {"max_updates": 3, "initial_bias_nm": 3.0}
        expected = [make_engine(sim).optimize(clip) for clip in mixed_suite]
        suite = run_engine_on_suite(
            "mbopc", mixed_suite, "MB-OPC", verify_simulator=sim,
            workers=2, engine_overrides=overrides,
        )
        for row, outcome in zip(suite.rows, expected):
            assert row.epe_nm == outcome.epe_total
            assert row.pvband_nm2 == outcome.pvband

    def test_sharded_runner_requires_simulator(self, mixed_suite):
        from repro.eval.runner import run_engine_on_suite

        with pytest.raises(ServiceError, match="verify_simulator"):
            run_engine_on_suite("mbopc", mixed_suite, "MB-OPC", workers=2)


class TestOverrideParser:
    """Direct unit tests for the CLI's key=value coercion."""

    def parse(self, text):
        from repro.__main__ import _parse_override

        return _parse_override(text)

    def test_plain_json_scalars(self):
        assert self.parse("max_updates=5") == ("max_updates", 5)
        assert self.parse("gain=0.25") == ("gain", 0.25)
        assert self.parse("early_exit=true") == ("early_exit", True)
        assert self.parse("mode=per_target") == ("mode", "per_target")

    def test_bool_capitalization_variants(self):
        for raw in ("True", "TRUE", "tRuE"):
            assert self.parse(f"flag={raw}") == ("flag", True)
        for raw in ("False", "FALSE", "falsE"):
            assert self.parse(f"flag={raw}") == ("flag", False)

    def test_none_variants(self):
        assert self.parse("knob=null") == ("knob", None)
        assert self.parse("knob=None") == ("knob", None)
        assert self.parse("knob=NONE") == ("knob", None)

    def test_scientific_notation(self):
        assert self.parse("temp=1e-3") == ("temp", 1e-3)
        assert self.parse("temp=1E6") == ("temp", 1e6)
        assert self.parse("temp=.5") == ("temp", 0.5)
        assert self.parse("temp=+2.5") == ("temp", 2.5)
        assert self.parse("count=+3") == ("count", 3)

    def test_quoted_strings_stay_strings(self):
        assert self.parse('tag="1e-3"') == ("tag", "1e-3")
        assert self.parse("tag='true'") == ("tag", "true")
        assert self.parse('name="per_target"') == ("name", "per_target")
        assert self.parse('empty=""') == ("empty", "")

    def test_values_may_contain_equals(self):
        assert self.parse("expr=a=b") == ("expr", "a=b")

    def test_whitespace_tolerated(self):
        assert self.parse(" gain = 0.5 ") == ("gain", 0.5)

    def test_rejects_malformed(self):
        import argparse as argparse_mod

        with pytest.raises(argparse_mod.ArgumentTypeError, match="key=value"):
            self.parse("no-equals-here")
        with pytest.raises(argparse_mod.ArgumentTypeError, match="empty key"):
            self.parse("=5")


class TestCLI:
    def test_optimize_tiny_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "result.json"
        store = tmp_path / "spectra"
        code = main([
            "optimize", "--suite", "tiny", "--engine", "mbopc",
            "--pixel-nm", "8", "--max-kernels", "4",
            "--opt", "max_updates=2",
            "--json", str(out), "--store", str(store),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "verified" in captured
        payload = json.loads(out.read_text())
        assert payload["engine"] == "mbopc"
        assert payload["engine_overrides"] == {"max_updates": 2}
        assert len(payload["results"]) == 1
        row = payload["results"][0]
        # The CLI verifies through the sparse default: agreement with the
        # engine's self-reported (dense) EPE inside the 1e-6 nm drift
        # gate, not bit-for-bit.
        assert row["verified_epe_nm"] == pytest.approx(
            row["epe_nm"], abs=1e-9
        )
        assert payload["service_stats"]["verify_batch_calls"] == 1
        assert payload["service_stats"]["spectra_store"]["writes"] >= 1

    def test_optimize_sharded_workers(self, tmp_path, capsys):
        """--workers 2 process-shards the sweep against a shared spectra
        store and reports the same schema (plus the workers count)."""
        from repro.__main__ import main

        out = tmp_path / "sharded.json"
        store = tmp_path / "spectra"
        code = main([
            "optimize", "--suite", "tiny", "--count", "2",
            "--engine", "mbopc", "--pixel-nm", "8", "--max-kernels", "4",
            "--opt", "max_updates=2", "--workers", "2",
            "--json", str(out), "--store", str(store),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "workers=2" in captured
        payload = json.loads(out.read_text())
        assert payload["workers"] == 2
        assert len(payload["results"]) == 2
        assert all(
            row["outcome"] == "verified" for row in payload["results"]
        )
        assert store.is_dir()

    def test_optimize_rejects_bad_workers(self, capsys):
        from repro.__main__ import main

        code = main([
            "optimize", "--suite", "tiny", "--engine", "mbopc",
            "--pixel-nm", "8", "--max-kernels", "4", "--workers", "0",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_bench_info(self, capsys):
        from repro.__main__ import main

        code = main([
            "bench-info", "--pixel-nm", "8", "--max-kernels", "4",
            "--window-nm", "1280",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "engines" in captured
        assert "mbopc" in captured
        assert "pupil band" in captured

    def test_unknown_engine_is_clean_error(self, capsys):
        from repro.__main__ import main

        code = main(["optimize", "--suite", "tiny", "--engine", "nope",
                     "--pixel-nm", "8", "--max-kernels", "4"])
        assert code == 2
        assert "unknown engine" in capsys.readouterr().err


class TestBuildClips:
    """``_build_clips`` — the ``--suite`` / ``--count`` / ``--names``
    contract shared by ``optimize`` and ``serve``."""

    @staticmethod
    def _clips(*argv):
        from repro.__main__ import _build_clips, build_parser

        args = build_parser().parse_args([
            "optimize", "--pixel-nm", "8", "--max-kernels", "4", *argv,
        ])
        return _build_clips(args)

    def test_tiny_default_count_is_one_clip(self):
        clips = self._clips("--suite", "tiny")
        assert [clip.name for clip in clips] == ["tiny1"]

    def test_tiny_count_generates_that_many(self):
        clips = self._clips("--suite", "tiny", "--count", "3")
        assert [clip.name for clip in clips] == ["tiny1", "tiny2", "tiny3"]

    def test_fixed_suite_count_truncates(self):
        clips = self._clips("--suite", "via", "--count", "2")
        assert [clip.name for clip in clips] == ["V1", "V2"]

    def test_names_select_from_fixed_suite(self):
        clips = self._clips("--suite", "metal", "--names", "M3,M1")
        assert [clip.name for clip in clips] == ["M1", "M3"]

    def test_names_filter_before_count_truncation(self):
        clips = self._clips(
            "--suite", "via", "--names", "V2,V5,V9", "--count", "2",
        )
        assert [clip.name for clip in clips] == ["V2", "V5"]

    def test_tiny_with_names_is_an_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="generated on demand"):
            self._clips("--suite", "tiny", "--names", "tiny1")

    def test_negative_count_is_an_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="--count must be >= 0"):
            self._clips("--suite", "via", "--count", "-1")

    def test_unknown_names_are_an_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="V99"):
            self._clips("--suite", "via", "--names", "V1,V99")

    def test_serve_parser_shares_the_contract(self):
        from repro.__main__ import _build_clips, build_parser

        args = build_parser().parse_args([
            "serve", "--pixel-nm", "8", "--max-kernels", "4",
            "--suite", "via", "--names", "V4",
        ])
        assert args.dispatch == "steal"
        assert args.workers == 2
        assert args.max_pending == 32
        assert [clip.name for clip in _build_clips(args)] == ["V4"]

    def test_tiny_with_names_fails_via_cli(self, capsys):
        from repro.__main__ import main

        code = main([
            "optimize", "--suite", "tiny", "--names", "tiny1",
            "--engine", "mbopc", "--pixel-nm", "8", "--max-kernels", "4",
        ])
        assert code == 2
        assert "generated on demand" in capsys.readouterr().err
