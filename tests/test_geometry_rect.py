"""Unit and property tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.rect import Rect


def test_basic_properties():
    r = Rect(0, 0, 10, 20)
    assert r.width == 10
    assert r.height == 20
    assert r.area == 200
    assert r.center == (5, 10)


def test_degenerate_rect_raises():
    with pytest.raises(GeometryError):
        Rect(0, 0, 0, 10)
    with pytest.raises(GeometryError):
        Rect(0, 0, 10, 0)
    with pytest.raises(GeometryError):
        Rect(5, 5, 1, 10)


def test_from_center_and_square():
    r = Rect.from_center(50, 60, 20, 10)
    assert (r.x0, r.y0, r.x1, r.y1) == (40, 55, 60, 65)
    s = Rect.square(0, 0, 70)
    assert s.width == 70 and s.height == 70
    assert s.center == (0, 0)


def test_contains_point_boundary_inclusive():
    r = Rect(0, 0, 10, 10)
    assert r.contains_point(0, 0)
    assert r.contains_point(10, 10)
    assert r.contains_point(5, 5)
    assert not r.contains_point(-0.1, 5)
    assert not r.contains_point(5, 10.1)


def test_contains_rect():
    outer = Rect(0, 0, 100, 100)
    assert outer.contains_rect(Rect(10, 10, 90, 90))
    assert outer.contains_rect(outer)
    assert not outer.contains_rect(Rect(10, 10, 110, 90))


def test_intersects_positive_area_only():
    a = Rect(0, 0, 10, 10)
    assert a.intersects(Rect(5, 5, 15, 15))
    assert not a.intersects(Rect(10, 0, 20, 10))  # touching edge: no area
    assert not a.intersects(Rect(20, 20, 30, 30))


def test_distance_to():
    a = Rect(0, 0, 10, 10)
    assert a.distance_to(Rect(20, 0, 30, 10)) == 10
    assert a.distance_to(Rect(0, 25, 10, 30)) == 15
    assert a.distance_to(Rect(13, 14, 20, 20)) == 5  # 3-4-5 triangle
    assert a.distance_to(Rect(5, 5, 15, 15)) == 0


def test_expanded_and_translated():
    r = Rect(10, 10, 20, 20)
    grown = r.expanded(5)
    assert (grown.x0, grown.y0, grown.x1, grown.y1) == (5, 5, 25, 25)
    shrunk = r.expanded(-2)
    assert shrunk.width == 6
    moved = r.translated(-10, 3)
    assert (moved.x0, moved.y0) == (0, 13)


def test_union_bbox():
    a = Rect(0, 0, 10, 10)
    b = Rect(5, -5, 20, 3)
    u = a.union_bbox(b)
    assert (u.x0, u.y0, u.x1, u.y1) == (0, -5, 20, 10)


coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
sizes = st.floats(min_value=0.5, max_value=1e4, allow_nan=False)


@given(cx=coords, cy=coords, w=sizes, h=sizes)
def test_property_from_center_roundtrip(cx, cy, w, h):
    r = Rect.from_center(cx, cy, w, h)
    gx, gy = r.center
    assert abs(gx - cx) < 1e-6 * max(1, abs(cx))
    assert abs(gy - cy) < 1e-6 * max(1, abs(cy))
    assert abs(r.area - w * h) <= 1e-6 * w * h + 1e-9


@given(cx=coords, cy=coords, w=sizes, h=sizes, dx=coords, dy=coords)
def test_property_translation_preserves_area(cx, cy, w, h, dx, dy):
    r = Rect.from_center(cx, cy, w, h)
    assert r.translated(dx, dy).area == pytest.approx(r.area)


@given(cx=coords, cy=coords, w=sizes, h=sizes, m=st.floats(min_value=0, max_value=100))
def test_property_expansion_monotonic(cx, cy, w, h, m):
    r = Rect.from_center(cx, cy, w, h)
    assert r.expanded(m).area >= r.area
    assert r.expanded(m).contains_rect(r)
