"""Tests for the always-on async daemon (repro/service/daemon.py) and
the work-stealing pool's liveness fix (repro/service/workqueue.py).

The acceptance pins:

* The daemon path is **bit-for-bit identical** to ``run_suite_sharded``
  on a mixed via+metal suite — continuous submission, work stealing,
  and threaded streaming verification reorder work, never numbers.
* Admission control sheds load with :class:`ServiceBusy` (per tenant).
* A crashed worker fails only its claimed request and is revived — the
  event loop and the daemon keep serving.
* Graceful shutdown drains in-flight clips; an abandoning shutdown
  fails leftover futures loudly.

The scripted engines live at module level so ``spawn`` workers can
rebuild them by qualified name.  There is no pytest-asyncio here: every
async scenario runs under a plain ``asyncio.run``.
"""

import asyncio
import dataclasses
import os
import time

import numpy as np
import pytest

from repro.data.stdcell import stdcell_metal_clip
from repro.data.via_bench import generate_via_clip
from repro.errors import MetrologyError, ServiceBusy, ServiceError
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service import (
    EngineSpec,
    MaskOptDaemon,
    MaskOptService,
    OptRequest,
    WorkStealingPool,
)

OVERRIDES = {"max_updates": 3, "initial_bias_nm": 3.0}


def _litho_config(**extra):
    return LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=4, **extra)


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(_litho_config())


@pytest.fixture(scope="module")
def mixed_suite():
    """Mixed via+metal suite spanning two raster grid shapes."""
    return [
        generate_via_clip("dv1", n_vias=2, seed=41, clip_nm=1280),
        generate_via_clip("dv2", n_vias=2, seed=42, clip_nm=1280),
        generate_via_clip("dv3", n_vias=2, seed=43, clip_nm=1024),
        stdcell_metal_clip("dm1", 8, seed=6, clip_nm=1280),
    ]


@pytest.fixture(scope="module")
def sharded_reference(sim, mixed_suite):
    """The pinned reference: a work-stealing sharded sweep."""
    return MaskOptService(simulator=sim).run_suite_sharded(
        "mbopc", mixed_suite, workers=2, engine_overrides=OVERRIDES,
    )


def assert_matches_reference(results, reference):
    """Field-by-field equality, ignoring ticket ids (the daemon mints
    its own)."""
    assert [r.clip_name for r in results] == [r.clip_name for r in reference]
    for got, ref in zip(results, reference):
        assert got.epe_nm == ref.epe_nm
        assert got.pvband_nm2 == ref.pvband_nm2
        assert got.steps == ref.steps
        assert got.early_exited == ref.early_exited
        assert got.verified_epe_nm == ref.verified_epe_nm
        assert got.outcome == ref.outcome


async def submit_suite(daemon, clips, engine="mbopc", **request_kwargs):
    return [
        await daemon.submit(OptRequest(
            clip=clip, engine=engine, **request_kwargs,
        ))
        for clip in clips
    ]


async def gather_by_ticket(daemon, tickets):
    """Collect results (completion order) and return them ticket-order."""
    by_ticket = {}
    async for result in daemon.results(tickets):
        by_ticket[result.request_id] = result
    return [by_ticket[ticket] for ticket in tickets]


# -- stub/crash engines (importable from spawned workers) ---------------------

class _StubOutcome:
    def __init__(self, shape):
        self.epe_total = 1.5
        self.pvband = 10.0
        self.runtime_s = 0.0
        self.steps = 1
        self.early_exited = False
        self.mask_image = np.zeros(shape)


class _ScriptedEngine:
    """Instant stub outcomes; misbehaves on clips named after its mode."""

    def __init__(self, simulator, mode):
        self.simulator = simulator
        self.mode = mode

    def optimize(self, clip, **kwargs):
        if clip.name == "boom":
            if self.mode == "crash":
                os._exit(23)
            raise RuntimeError("scripted engine failure")
        return _StubOutcome(self.simulator.grid_for(clip).shape)


def crashing_factory(simulator, overrides):
    return _ScriptedEngine(simulator, "crash")


def raising_factory(simulator, overrides):
    return _ScriptedEngine(simulator, "raise")


def unbuildable_factory(simulator, overrides):
    raise RuntimeError("no engine for you")


# -- the acceptance pin -------------------------------------------------------

class TestDaemonBitForBit:
    def test_daemon_matches_sharded_sweep(
        self, sim, mixed_suite, sharded_reference
    ):
        """Continuous async submission through warm work-stealing pools
        with threaded streaming verification: every reported and
        verified number is bit-for-bit identical to run_suite_sharded
        (and therefore to the sequential sweep)."""
        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=2,
            )
            async with daemon:
                tickets = await submit_suite(
                    daemon, mixed_suite, engine_overrides=OVERRIDES,
                )
                return await gather_by_ticket(daemon, tickets)

        results = asyncio.run(main())
        assert_matches_reference(results, sharded_reference)
        assert all(r.outcome == "verified" for r in results)

    def test_static_dispatch_also_matches(
        self, sim, mixed_suite, sharded_reference
    ):
        """dispatch="static" (the round-robin baseline) through the
        daemon: different placement, identical numbers."""
        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=2,
                dispatch="static",
            )
            async with daemon:
                tickets = await submit_suite(
                    daemon, mixed_suite, engine_overrides=OVERRIDES,
                )
                return await gather_by_ticket(daemon, tickets)

        results = asyncio.run(main())
        assert_matches_reference(results, sharded_reference)


class TestDaemonLifecycle:
    def test_submit_while_running(self, sim, mixed_suite):
        """New requests are accepted while earlier ones are in flight —
        the daemon never needs a batch boundary."""
        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=2,
            )
            async with daemon:
                first = await submit_suite(
                    daemon, mixed_suite[:2], engine_overrides=OVERRIDES,
                )
                head = await daemon.result(first[0])
                # The daemon is mid-stream; keep submitting.
                second = await submit_suite(
                    daemon, mixed_suite[2:], engine_overrides=OVERRIDES,
                )
                rest = await gather_by_ticket(daemon, first[1:] + second)
                stats = daemon.stats()
                return [head, *rest], stats

        results, stats = asyncio.run(main())
        assert [r.clip_name for r in results] == [
            clip.name for clip in mixed_suite
        ]
        assert all(r.outcome == "verified" for r in results)
        assert stats["submitted"] == stats["completed"] == len(mixed_suite)
        assert stats["failed"] == 0
        # One warm pool served both submission waves.
        assert len(stats["pools"]) == 1
        assert stats["pools"][0]["tasks_completed"] == len(mixed_suite)

    def test_graceful_shutdown_drains_in_flight(self, sim, mixed_suite):
        """shutdown(drain=True) resolves every accepted request before
        stopping; results stay retrievable afterwards."""
        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=2,
            )
            await daemon.start()
            tickets = await submit_suite(
                daemon, mixed_suite, engine_overrides=OVERRIDES,
            )
            await daemon.shutdown(drain=True)
            assert daemon.stats()["state"] == "stopped"
            return [await daemon.result(ticket) for ticket in tickets]

        results = asyncio.run(main())
        assert [r.clip_name for r in results] == [
            clip.name for clip in mixed_suite
        ]
        assert all(r.outcome == "verified" for r in results)

    def test_abandoning_shutdown_fails_leftovers(self, sim, mixed_suite):
        """shutdown(drain=False) must not leave callers hanging on
        futures that will never resolve — they fail loudly."""
        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=2,
            )
            await daemon.start()
            tickets = await submit_suite(
                daemon, mixed_suite, engine_overrides=OVERRIDES,
            )
            await daemon.shutdown(drain=False)
            outcomes = []
            for ticket in tickets:
                try:
                    outcomes.append(await daemon.result(ticket))
                except ServiceError as exc:
                    outcomes.append(exc)
            return outcomes

        outcomes = asyncio.run(main())
        # Depending on timing some clips may have finished before the
        # abandon; everything else must carry the shutdown error.
        assert any(isinstance(o, ServiceError) for o in outcomes) or all(
            o.outcome == "verified" for o in outcomes
        )
        assert all(
            "shut down" in str(o) for o in outcomes
            if isinstance(o, ServiceError)
        )

    def test_lifecycle_state_errors(self, sim):
        clip = generate_via_clip("lv1", n_vias=2, seed=44, clip_nm=1024)

        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=1,
            )
            with pytest.raises(ServiceError, match="not running"):
                await daemon.submit(OptRequest(clip=clip))
            await daemon.start()
            with pytest.raises(ServiceError, match="daemon is running"):
                await daemon.start()
            await daemon.shutdown()
            with pytest.raises(ServiceError, match="not running"):
                await daemon.submit(OptRequest(clip=clip))
            await daemon.shutdown()  # idempotent

        asyncio.run(main())

    def test_unknown_ticket_rejected(self, sim):
        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=1,
            )
            async with daemon:
                with pytest.raises(ServiceError, match="unknown"):
                    await daemon.result(9999)

        asyncio.run(main())


class TestDaemonAdmission:
    def test_backpressure_sheds_load_per_tenant(self, sim, mixed_suite):
        """Past max_pending outstanding requests a tenant gets
        ServiceBusy — but other tenants still have headroom, and after
        the backlog drains the tenant is admitted again."""
        clips = mixed_suite[:3]

        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=1,
                max_pending=2,
            )
            async with daemon:
                t1 = await daemon.submit(
                    OptRequest(clip=clips[0], engine=crashing_factory,
                               verify=False), tenant="alice",
                )
                t2 = await daemon.submit(
                    OptRequest(clip=clips[1], engine=crashing_factory,
                               verify=False), tenant="alice",
                )
                with pytest.raises(ServiceBusy, match="alice"):
                    await daemon.submit(
                        OptRequest(clip=clips[2], engine=crashing_factory,
                                   verify=False), tenant="alice",
                    )
                # A different tenant is not starved by alice's backlog.
                t3 = await daemon.submit(
                    OptRequest(clip=clips[2], engine=crashing_factory,
                               verify=False), tenant="bob",
                )
                await gather_by_ticket(daemon, [t1, t2, t3])
                # Backlog drained: alice is admitted again.
                t4 = await daemon.submit(
                    OptRequest(clip=clips[0], engine=crashing_factory,
                               verify=False), tenant="alice",
                )
                await daemon.result(t4)
                return daemon.stats()

        stats = asyncio.run(main())
        assert stats["rejected"] == 1
        assert stats["completed"] == 4
        assert stats["tenants"]["alice"]["outstanding"] == 0

    def test_spawn_unsafe_requests_rejected_eagerly(self, sim):
        clip = generate_via_clip("av1", n_vias=2, seed=45, clip_nm=1024)
        train_clip = generate_via_clip("av2", n_vias=2, seed=46,
                                       clip_nm=1024)

        class _InstanceEngine:
            def optimize(self, c, **kwargs):
                return _StubOutcome((4, 4))

        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=1,
            )
            async with daemon:
                with pytest.raises(ServiceError, match="factory"):
                    await daemon.submit(
                        OptRequest(clip=clip, engine=_InstanceEngine())
                    )
                with pytest.raises(ServiceError, match="train_clips"):
                    await daemon.submit(OptRequest(
                        clip=clip, engine="camo",
                        train_clips=(train_clip,),
                    ))
                assert daemon.stats()["submitted"] == 0

        asyncio.run(main())


class TestDaemonFailures:
    def test_worker_crash_fails_one_request_and_daemon_survives(
        self, sim, mixed_suite
    ):
        """A worker dying mid-clip fails *that* future with a
        ServiceError naming the clip; the slot is revived and the daemon
        keeps serving — including brand-new submissions afterwards."""
        boom = dataclasses.replace(mixed_suite[0], name="boom")

        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=2,
                grace_s=0.3,
            )
            async with daemon:
                ok1 = await daemon.submit(OptRequest(
                    clip=mixed_suite[1], engine=crashing_factory,
                    verify=False,
                ))
                doomed = await daemon.submit(OptRequest(
                    clip=boom, engine=crashing_factory, verify=False,
                ))
                ok2 = await daemon.submit(OptRequest(
                    clip=mixed_suite[2], engine=crashing_factory,
                    verify=False,
                ))
                with pytest.raises(ServiceError, match="'boom'") as err:
                    await daemon.result(doomed)
                assert "exit code 23" in str(err.value)
                first = await daemon.result(ok1)
                second = await daemon.result(ok2)
                # The daemon survived the crash: submit again.
                ok3 = await daemon.submit(OptRequest(
                    clip=mixed_suite[3], engine=crashing_factory,
                    verify=False,
                ))
                third = await daemon.result(ok3)
                return [first, second, third], daemon.stats()

        results, stats = asyncio.run(main())
        assert [r.epe_nm for r in results] == [1.5, 1.5, 1.5]
        assert stats["state"] == "running"
        assert stats["completed"] == 3
        assert stats["failed"] == 1
        assert stats["pools"][0]["workers_revived"] >= 1
        assert stats["pools"][0]["workers_alive"] == 2

    def test_task_exception_fails_one_request_only(self, sim, mixed_suite):
        """An engine exception is a per-request failure, not an outage:
        the worker itself survives and keeps pulling tasks."""
        boom = dataclasses.replace(mixed_suite[0], name="boom")

        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=1,
            )
            async with daemon:
                doomed = await daemon.submit(OptRequest(
                    clip=boom, engine=raising_factory, verify=False,
                ))
                ok = await daemon.submit(OptRequest(
                    clip=mixed_suite[1], engine=raising_factory,
                    verify=False,
                ))
                with pytest.raises(ServiceError, match="scripted engine"):
                    await daemon.result(doomed)
                result = await daemon.result(ok)
                return result, daemon.stats()

        result, stats = asyncio.run(main())
        assert result.epe_nm == 1.5
        assert stats["pools"][0]["workers_revived"] == 0

    def test_unbuildable_engine_fails_its_requests(self, sim, mixed_suite):
        """A pool whose workers cannot build their engine fails every
        request routed to it — and the daemon stays up for other
        engines."""
        async def main():
            daemon = MaskOptDaemon(
                service=MaskOptService(simulator=sim), workers=1,
            )
            async with daemon:
                doomed = await daemon.submit(OptRequest(
                    clip=mixed_suite[0], engine=unbuildable_factory,
                    verify=False,
                ))
                with pytest.raises(ServiceError, match="could not build"):
                    await daemon.result(doomed)
                ok = await daemon.submit(OptRequest(
                    clip=mixed_suite[1], engine=crashing_factory,
                    verify=False,
                ))
                result = await daemon.result(ok)
                assert daemon.stats()["state"] == "running"
                return result

        assert asyncio.run(main()).epe_nm == 1.5


# -- satellite regressions ----------------------------------------------------

class _FakeProc:
    """Stands in for a dead worker process in liveness unit tests."""

    def __init__(self, exitcode):
        self.exitcode = exitcode

    def is_alive(self):
        return self.exitcode is None


class TestPoolLiveness:
    """The PR 5 false positive: the crash-suspicion window armed on the
    first dry poll and never reset, so a slow-draining healthy worker
    was declared crashed.  Any message must reset the window."""

    def _pool(self, sim, grace_s):
        pool = WorkStealingPool(
            EngineSpec(engine="mbopc", litho=sim.config),
            workers=1, grace_s=grace_s,
        )
        pool._procs[0] = _FakeProc(exitcode=9)
        return pool

    def test_message_resets_suspicion_window(self, sim):
        pool = self._pool(sim, grace_s=0.2)
        assert pool.check_dead() == []  # suspicion armed, not elapsed
        time.sleep(0.25)
        # The worker's exitcode has been visible for longer than the
        # grace window — but a message just arrived, so it was alive
        # moments ago (its pipe is still draining).  Pre-fix code
        # declared it dead here.
        pool.observe(("ok", 0, 7, None))
        assert pool.check_dead() == []
        time.sleep(0.25)
        dead = pool.check_dead()
        assert [d.worker_id for d in dead] == [0]
        assert dead[0].exitcode == 9

    def test_dead_worker_reported_exactly_once(self, sim):
        pool = self._pool(sim, grace_s=0.0)
        assert [d.worker_id for d in pool.check_dead()] == [0]
        assert pool.check_dead() == []

    def test_clean_exit_is_never_suspected(self, sim):
        pool = self._pool(sim, grace_s=0.0)
        pool.observe(("exit", 0, None, None))
        assert pool.check_dead() == []

    def test_dead_worker_names_claimed_task(self, sim, mixed_suite):
        from repro.service import Task

        pool = self._pool(sim, grace_s=0.0)
        pool._started = True
        pool.submit(Task(task_id=5, clip=mixed_suite[0]))
        pool._claims[0] = 5
        (dead,) = pool.check_dead()
        assert dead.task.task_id == 5
        assert dead.task.clip.name == mixed_suite[0].name


class TestVerificationAbortCleanup:
    """The PR 5 state leak: run_all queued outcomes into the shared
    scheduler, and an aborted flush / drift check left them there to
    poison the next verification pass."""

    def _stub_service(self, sim, clips):
        service = MaskOptService(simulator=sim)

        class _InstanceStub:
            def optimize(self, clip, **kwargs):
                return _StubOutcome(sim.grid_for(clip).shape)

        engine = _InstanceStub()
        for clip in clips:
            service.submit(OptRequest(clip=clip, engine=engine))
        return service

    def test_aborted_run_all_discards_queued_outcomes(
        self, sim, mixed_suite, monkeypatch
    ):
        service = self._stub_service(sim, mixed_suite)

        def exploding_flush(simulator):
            raise MetrologyError("scripted flush failure")

        monkeypatch.setattr(service.scheduler, "flush", exploding_flush)
        with pytest.raises(MetrologyError, match="scripted"):
            service.run_all()
        assert service.scheduler.pending == 0

    def test_drift_abort_discards_queued_outcomes(self, sim, mixed_suite):
        """A genuine drift failure (reported != re-measured) must also
        take this run's outcomes back out of the scheduler."""
        service = self._stub_service(sim, mixed_suite)
        # The stub reports 1.5 nm for an all-zero mask; re-measurement
        # will disagree (or fail to find a contour) — either way the
        # run aborts and the scheduler must come back clean.
        with pytest.raises((MetrologyError, ServiceError)):
            service.run_all()
        assert service.scheduler.pending == 0

    def test_scheduler_counters_snapshot(self, sim, mixed_suite):
        """stats() readers racing the verifier thread get one locked
        snapshot, including the new pending gauge."""
        service = MaskOptService(simulator=sim)
        counters = service.scheduler.counters()
        assert set(counters) == {
            "batch_calls", "items_flushed", "pending", "bins",
        }
        stats = service.stats()
        assert stats["verify_pending"] == 0
        assert stats["verify_batch_calls"] == 0
