"""Tests for the ``surrogate`` service engine: registry wiring,
checkpoint override, the screener opt-in on ``OPCEnvironment.score_moves``,
exact-verified service results, and the unverifiable fallback."""

import numpy as np
import pytest

from repro.data.via_bench import generate_via_clip
from repro.errors import ConfigError, RLError, ServiceError
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.rl.env import OPCEnvironment
from repro.service import (
    MaskOptService,
    OptRequest,
    available_engines,
    create_engine,
)
from repro.surrogate import (
    SurrogateConfig,
    SurrogateOPC,
    SurrogateScreener,
    SurrogateTrainConfig,
    save_surrogate,
    train_surrogate,
)


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=4)
    )


@pytest.fixture(scope="module")
def checkpoint(sim, tmp_path_factory):
    """A quick-trained checkpoint good enough for mechanics tests."""
    model, _ = train_surrogate(sim, SurrogateTrainConfig(
        width=16, n_clips=2, samples_per_clip=8, steps=250,
        selftrain_rounds=0, seed=3,
    ))
    path = str(tmp_path_factory.mktemp("ckpt") / "surrogate.npz")
    save_surrogate(path, model)
    return path


@pytest.fixture(scope="module")
def clip():
    return generate_via_clip("se1", n_vias=2, seed=31, clip_nm=1024.0)


class TestRegistry:
    def test_available_engines_lists_surrogate(self):
        assert "surrogate" in available_engines()

    def test_create_engine_builds_surrogate(self, sim):
        engine = create_engine("surrogate", sim)
        assert isinstance(engine, SurrogateOPC)
        assert engine.name == "surrogate"
        assert engine.config.checkpoint is None

    def test_create_engine_honors_checkpoint_override(self, sim, checkpoint):
        engine = create_engine("surrogate", sim,
                               {"checkpoint": checkpoint, "max_updates": 3})
        assert engine.config.checkpoint == checkpoint
        assert engine.config.max_updates == 3

    def test_unknown_override_fails_loudly(self, sim):
        with pytest.raises(ServiceError, match="bad overrides"):
            create_engine("surrogate", sim, {"no_such_knob": 1})

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="screen_keep"):
            SurrogateConfig(screen_keep=0)
        with pytest.raises(ConfigError, match="early_exit_mode"):
            SurrogateConfig(early_exit_mode="bogus")
        with pytest.raises(ConfigError, match="calibrate"):
            SurrogateConfig(calibrate_samples=1)


class TestScreenerOptIn:
    """score_moves(screener=...) semantics: exact survivors, None for
    screened-out candidates, exact numbers only."""

    def _screener(self, sim, checkpoint):
        from repro.surrogate import load_surrogate
        return SurrogateScreener(load_surrogate(checkpoint))

    def test_survivors_match_unscreened_evaluation(self, sim, clip,
                                                   checkpoint):
        env = OPCEnvironment(clip, sim)
        state = env.reset()
        candidates = env.uniform_move_candidates()
        screener = self._screener(sim, checkpoint)
        screened = env.score_moves(state, candidates, screener=screener,
                                   screen_keep=2)
        full = env.score_moves(state, candidates)
        kept = [i for i, pair in enumerate(screened) if pair is not None]
        assert len(kept) == 2
        assert len(screened) == len(candidates)
        for index in kept:
            exact_state, exact_reward = full[index]
            got_state, got_reward = screened[index]
            assert got_reward == exact_reward
            assert got_state.total_epe == exact_state.total_epe
            np.testing.assert_array_equal(
                got_state.seg_epe, exact_state.seg_epe
            )

    def test_keep_one_returns_single_survivor(self, sim, clip, checkpoint):
        env = OPCEnvironment(clip, sim)
        state = env.reset()
        candidates = env.uniform_move_candidates()
        screened = env.score_moves(
            state, candidates,
            screener=self._screener(sim, checkpoint), screen_keep=1,
        )
        assert sum(pair is not None for pair in screened) == 1

    def test_keep_beyond_panel_keeps_all(self, sim, clip, checkpoint):
        env = OPCEnvironment(clip, sim)
        state = env.reset()
        candidates = env.uniform_move_candidates()
        screened = env.score_moves(
            state, candidates,
            screener=self._screener(sim, checkpoint), screen_keep=99,
        )
        assert all(pair is not None for pair in screened)

    def test_bad_keep_rejected(self, sim, clip, checkpoint):
        env = OPCEnvironment(clip, sim)
        state = env.reset()
        with pytest.raises(RLError, match="screen_keep"):
            env.score_moves(
                state, env.uniform_move_candidates(),
                screener=self._screener(sim, checkpoint), screen_keep=0,
            )


class TestEngine:
    def test_optimize_with_checkpoint(self, sim, clip, checkpoint):
        engine = SurrogateOPC(
            SurrogateConfig(checkpoint=checkpoint, max_updates=4), sim
        )
        result = engine.optimize(clip)
        assert result.final_state is not None
        assert result.steps <= 4
        assert len(result.trajectory.steps) == result.steps
        # Every trajectory state came from exact evaluation; the final
        # EPE must match re-measuring the final state exactly.
        assert result.final_state.total_epe <= result.trajectory.epe_initial

    def test_deterministic_across_runs(self, sim, clip, checkpoint):
        config = SurrogateConfig(checkpoint=checkpoint, max_updates=3)
        a = SurrogateOPC(config, sim).optimize(clip)
        b = SurrogateOPC(config, sim).optimize(clip)
        assert a.final_state.total_epe == b.final_state.total_epe
        np.testing.assert_array_equal(
            a.final_state.mask.offsets, b.final_state.mask.offsets
        )

    def test_self_calibration_without_checkpoint(self, sim, clip):
        engine = SurrogateOPC(
            SurrogateConfig(max_updates=2, calibrate_samples=6,
                            calibrate_steps=40, width=8), sim
        )
        result = engine.optimize(clip)
        assert result.final_state is not None
        # The calibrated model is cached per grid shape: a second clip
        # with the same shape must not retrain.
        clip2 = generate_via_clip("se2", n_vias=2, seed=39, clip_nm=1024.0)
        engine.optimize(clip2)
        assert len(engine._calibrated) == 1


class TestService:
    def test_service_result_is_exactly_verified(self, sim, clip, checkpoint):
        """The reported metrology comes from exact evaluation — the
        surrogate only ranked candidates — so the verifier's independent
        re-simulation agrees to the same <= 1e-9 nm round-off pin every
        exact engine meets (far inside the 1e-6 nm drift gate)."""
        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(
            clip=clip, engine="surrogate",
            engine_overrides={"checkpoint": checkpoint, "max_updates": 3},
        ))
        (result,) = service.run_all()
        assert result.outcome == "verified"
        assert abs(result.verified_epe_nm - result.epe_nm) <= 1e-9

    def test_unverifiable_surrogate_result(self, sim, clip, checkpoint):
        """A surrogate outcome whose final mask cannot be recovered must
        surface as outcome="unverifiable", never as silently trusted."""

        class MasklessSurrogate(SurrogateOPC):
            def optimize(self, clip, max_updates=None, early_exit=True):
                full = super().optimize(clip, max_updates, early_exit)

                class Opaque:
                    epe_total = float(full.final_state.total_epe)
                    pvband = float(full.final_state.pvband)
                    runtime_s = full.runtime_s
                    steps = full.steps
                    early_exited = full.early_exited

                return Opaque()

        engine = MasklessSurrogate(
            SurrogateConfig(checkpoint=checkpoint, max_updates=2), sim
        )
        service = MaskOptService(simulator=sim)
        service.submit(OptRequest(clip=clip, engine=engine))
        (result,) = service.run_all()
        assert result.outcome == "unverifiable"
        assert result.verified_epe_nm is None


class TestCLIWiring:
    def test_train_surrogate_parser_defaults(self):
        from repro.__main__ import build_parser
        args = build_parser().parse_args(
            ["train-surrogate", "--out", "/tmp/x.npz"]
        )
        assert args.func.__name__ == "cmd_train_surrogate"
        assert args.width == 24
        assert args.selftrain_rounds == 2

    def test_optimize_accepts_surrogate_engine(self):
        from repro.__main__ import build_parser
        args = build_parser().parse_args([
            "optimize", "--engine", "surrogate",
            "--opt", "checkpoint=/tmp/x.npz",
        ])
        assert args.engine == "surrogate"
        assert dict(args.opt)["checkpoint"] == "/tmp/x.npz"
