"""Gradient checks and behaviour tests for nn.functional ops."""

import numpy as np
import pytest

from nn_gradcheck import check_gradient
from repro.errors import NNError
from repro.nn import (
    Tensor,
    concat,
    conv2d,
    cross_entropy,
    log_softmax,
    max_pool2d,
    relu,
    sigmoid,
    softmax,
    stack,
    tanh,
)

rng = np.random.default_rng(11)


class TestActivations:
    def test_relu_values(self):
        x = Tensor([-1.0, 0.0, 2.0])
        assert relu(x).numpy().tolist() == [0.0, 0.0, 2.0]

    def test_tanh_sigmoid_range(self):
        x = Tensor(rng.normal(size=10) * 5)
        assert np.all(np.abs(tanh(x).numpy()) <= 1)
        s = sigmoid(x).numpy()
        assert np.all((s > 0) & (s < 1))

    def test_relu_grad(self):
        value = rng.normal(size=(4, 3)) + 0.1  # keep away from the kink
        check_gradient(lambda t: (relu(t) * 3.0).sum(), value)

    def test_tanh_grad(self):
        check_gradient(lambda t: tanh(t).sum(), rng.normal(size=(3, 3)))

    def test_sigmoid_grad(self):
        check_gradient(lambda t: sigmoid(t).sum(), rng.normal(size=(3, 3)))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(rng.normal(size=(5, 7)) * 10)
        p = softmax(x).numpy()
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_stability_with_huge_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        p = softmax(x).numpy()
        assert np.allclose(p, [[0.5, 0.5, 0.0]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(rng.normal(size=(4, 6)))
        assert np.allclose(log_softmax(x).numpy(), np.log(softmax(x).numpy()))

    def test_softmax_grad(self):
        value = rng.normal(size=(3, 5))
        weights = Tensor(rng.normal(size=(3, 5)))
        check_gradient(lambda t: (softmax(t) * weights).sum(), value)

    def test_log_softmax_grad(self):
        value = rng.normal(size=(2, 4))
        check_gradient(lambda t: log_softmax(t)[0, 1].sum(), value)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(logits, np.array([1, 2]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_grad(self):
        value = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        check_gradient(lambda t: cross_entropy(t, targets), value)

    def test_shape_validation(self):
        with pytest.raises(NNError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))


class TestConcatStack:
    def test_concat_values(self):
        a, b = Tensor([[1.0]]), Tensor([[2.0]])
        assert concat([a, b], axis=0).numpy().tolist() == [[1.0], [2.0]]
        assert concat([a, b], axis=1).numpy().tolist() == [[1.0, 2.0]]

    def test_concat_grads_split(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        (concat([a, b], axis=0) * 2.0).sum().backward()
        assert np.all(a.grad == 2) and a.grad.shape == (2, 2)
        assert np.all(b.grad == 2) and b.grad.shape == (3, 2)

    def test_stack_values_and_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        assert a.grad.tolist() == [1.0, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(NNError):
            concat([])
        with pytest.raises(NNError):
            stack([])


class TestConv2d:
    def test_identity_kernel(self):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        w = Tensor(np.ones((1, 1, 1, 1)))
        out = conv2d(x, w)
        assert np.allclose(out.numpy(), x.numpy())

    def test_averaging_kernel(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        w = Tensor(np.full((1, 1, 2, 2), 0.25))
        out = conv2d(x, w)
        assert out.shape == (1, 1, 3, 3)
        assert np.allclose(out.numpy(), 1.0)

    def test_stride_and_padding_shapes(self):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        assert conv2d(x, w, stride=2, padding=1).shape == (2, 4, 4, 4)
        assert conv2d(x, w, stride=1, padding=0).shape == (2, 4, 6, 6)

    def test_matches_direct_convolution(self):
        """Cross-check im2col against a naive loop implementation."""
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w)).numpy()
        naive = np.zeros((1, 3, 4, 4))
        for f in range(3):
            for i in range(4):
                for j in range(4):
                    naive[0, f, i, j] = np.sum(x[0, :, i : i + 3, j : j + 3] * w[f])
        assert np.allclose(out, naive)

    def test_input_grad(self):
        w = Tensor(rng.normal(size=(2, 2, 3, 3)))
        value = rng.normal(size=(1, 2, 6, 6))
        check_gradient(
            lambda t: (conv2d(t, w, stride=2, padding=1) ** 2.0).sum(), value
        )

    def test_weight_grad(self):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)))
        value = rng.normal(size=(3, 2, 3, 3))

        def loss(wt):
            return (conv2d(x, wt, stride=1, padding=1) ** 2.0).sum()

        check_gradient(loss, value)

    def test_bias_grad(self):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        value = rng.normal(size=(2,))
        check_gradient(lambda b: (conv2d(x, w, b) ** 2.0).sum(), value)

    def test_validation(self):
        with pytest.raises(NNError):
            conv2d(Tensor(np.zeros((2, 2))), Tensor(np.zeros((1, 1, 3, 3))))
        with pytest.raises(NNError):
            conv2d(
                Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3)))
            )
        with pytest.raises(NNError):
            conv2d(
                Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 5, 5)))
            )


class TestMaxPool:
    def test_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        assert max_pool2d(x, 2).numpy().tolist() == [[[[4.0]]]]

    def test_shape(self):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        assert max_pool2d(x, 2).shape == (2, 3, 4, 4)

    def test_grad_routes_to_max(self):
        data = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        x = Tensor(data, requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        assert x.grad.tolist() == [[[[0.0, 0.0], [0.0, 1.0]]]]

    def test_gradcheck(self):
        value = rng.normal(size=(1, 2, 4, 4))
        # Perturb away from ties so the max is stable under eps.
        value += np.arange(value.size).reshape(value.shape) * 0.01
        check_gradient(lambda t: (max_pool2d(t, 2) ** 2.0).sum(), value)

    def test_validation(self):
        with pytest.raises(NNError):
            max_pool2d(Tensor(np.zeros((2, 2))), 2)
        with pytest.raises(NNError):
            max_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)
