"""Tests for rasterization and bilinear sampling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RasterError
from repro.geometry.polygon import Polygon
from repro.geometry.raster import Grid, bilinear_sample, bilinear_sample_many, rasterize
from repro.geometry.rect import Rect


class TestGrid:
    def test_for_window(self):
        g = Grid.for_window(Rect(0, 0, 100, 60), pixel_nm=4)
        assert g.shape == (15, 25)
        assert g.window.width == 100
        assert g.window.height == 60

    def test_bad_pixel_size(self):
        with pytest.raises(RasterError):
            Grid(0, 0, 0, 10, 10)

    def test_empty_grid(self):
        with pytest.raises(RasterError):
            Grid(0, 0, 4, 0, 10)

    def test_centers(self):
        g = Grid(0, 0, 4, 2, 3)
        assert list(g.x_centers()) == [2, 6, 10]
        assert list(g.y_centers()) == [2, 6]

    def test_fractional_index_roundtrip(self):
        g = Grid(10, 20, 4, 8, 8)
        row, col = g.nm_to_fractional_index(10 + 4 * 2.5, 20 + 4 * 6.5)
        assert (row, col) == (6.0, 2.0)


class TestRasterize:
    def test_full_window_square(self):
        g = Grid(0, 0, 4, 10, 10)
        image = rasterize([Polygon.from_rect(Rect(0, 0, 40, 40))], g)
        assert image.sum() == 100

    def test_centered_square_area(self):
        g = Grid(0, 0, 4, 50, 50)
        # 72 nm square aligned to the pixel grid: exactly 18x18 pixels.
        image = rasterize([Polygon.from_rect(Rect.square(100, 100, 72))], g)
        assert image.sum() == 18 * 18

    def test_disjoint_union(self):
        g = Grid(0, 0, 4, 50, 50)
        polys = [
            Polygon.from_rect(Rect(0, 0, 40, 40)),
            Polygon.from_rect(Rect(100, 100, 140, 140)),
        ]
        image = rasterize(polys, g)
        assert image.sum() == 200

    def test_l_shape_pixel_count(self):
        g = Grid(0, 0, 1, 30, 30)
        poly = Polygon(((0, 0), (20, 0), (20, 10), (10, 10), (10, 20), (0, 20)))
        image = rasterize([poly], g)
        assert image.sum() == 300  # matches polygon.area at 1 nm pixels

    def test_empty_polygon_list(self):
        g = Grid(0, 0, 4, 5, 5)
        assert rasterize([], g).sum() == 0

    def test_outside_window_clips_to_nothing(self):
        g = Grid(0, 0, 4, 10, 10)
        image = rasterize([Polygon.from_rect(Rect(100, 100, 140, 140))], g)
        assert image.sum() == 0


class TestBilinear:
    def test_constant_field(self):
        g = Grid(0, 0, 4, 10, 10)
        field = np.full(g.shape, 7.5)
        assert bilinear_sample(field, g, 13.3, 27.9) == pytest.approx(7.5)

    def test_linear_field_exact(self):
        """Bilinear interpolation reproduces affine fields exactly."""
        g = Grid(0, 0, 2, 20, 20)
        xs = g.x_centers()
        ys = g.y_centers()
        field = ys[:, None] * 3.0 + xs[None, :] * 2.0 + 1.0
        for (x, y) in [(5.0, 7.0), (10.5, 3.25), (30.0, 30.0)]:
            assert bilinear_sample(field, g, x, y) == pytest.approx(
                3.0 * y + 2.0 * x + 1.0
            )

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        g = Grid(0, 0, 4, 16, 16)
        field = rng.random(g.shape)
        xs = rng.uniform(0, 64, size=20)
        ys = rng.uniform(0, 64, size=20)
        many = bilinear_sample_many(field, g, xs, ys)
        for x, y, v in zip(xs, ys, many):
            assert bilinear_sample(field, g, x, y) == pytest.approx(v)

    def test_clamps_outside(self):
        g = Grid(0, 0, 4, 4, 4)
        field = np.arange(16, dtype=float).reshape(4, 4)
        assert bilinear_sample(field, g, -100, -100) == field[0, 0]
        assert bilinear_sample(field, g, 1e6, 1e6) == field[-1, -1]


@given(
    size=st.integers(min_value=8, max_value=96),
    cx=st.integers(min_value=60, max_value=140),
    cy=st.integers(min_value=60, max_value=140),
)
def test_property_raster_area_close_to_polygon_area(size, cx, cy):
    """Pixel count * pixel area approximates polygon area within one pixel
    ring around the perimeter."""
    g = Grid(0, 0, 4, 50, 50)
    poly = Polygon.from_rect(Rect.square(cx, cy, size))
    image = rasterize([poly], g)
    pixel_area = 16.0
    measured = image.sum() * pixel_area
    tolerance = poly.perimeter * 4 + 16
    assert abs(measured - poly.area) <= tolerance
