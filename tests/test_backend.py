"""Tests for the array/device backend (``repro.backend``).

Four contracts pinned here:

* **Resolution semantics** — ``"auto"`` only ever picks a host backend;
  ``"torch"`` raises when torch is absent (never degrades silently);
  ``"cupy"`` is a named seam with a clear error; host backends reject
  device strings.
* **Dtype policy** — every transform-derived artifact on the sparse and
  surrogate GEMM paths is float64/complex128 under the numpy backend,
  and the torch adapter pins the same dtypes so the process-global
  ``torch.set_default_dtype`` (float32 out of the box) can never
  degrade parity.
* **Cache identity** — caches of transform-derived artifacts key on
  backend identity + device: numpy and scipy share one host copy
  (same ``array_identity``), a device backend always gets its own
  entry, and a backend swap can never serve wrong-residency arrays.
* **Torch parity** — the torch CPU backend agrees with numpy to <= 1e-9
  nm EPE on the sparse screening path (skipped when torch is not
  installed).
"""

import warnings

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    ArrayBackend,
    cupy_available,
    resolve_backend,
    resolve_fft_backend,
    scipy_fft_available,
    torch_available,
)
from repro.errors import LithoError
from repro.geometry import Grid, Polygon, Rect, rasterize
from repro.geometry.segmentation import fragment_clip
from repro.litho.kernels import (
    _BAND_DFT_CACHE,
    _PHASE_CACHE,
    _band_dft_matrices,
    _sparse_phase_matrix,
    band_limited_mask_subgrid_direct,
    band_values_at_pixels,
    gather_band_rfft,
)
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.metrology.epe import measure_epe_grouped_sparse, measure_stencil_plan
from repro.service.sharding import FINGERPRINT_EXCLUDED_LITHO_FIELDS

requires_torch = pytest.mark.skipif(
    not torch_available(), reason="torch not installed"
)

EPE_TOLERANCE_NM = 1e-9


@pytest.fixture(scope="module")
def numpy_sim():
    return LithographySimulator(LithoConfig(
        pixel_nm=8.0, period_nm=1024.0, max_kernels=4, backend="numpy",
    ))


@pytest.fixture(scope="module")
def band_geometry(numpy_sim):
    """A compact pupil band plus its kernel set, shared across tests."""
    kset = numpy_sim.kernel_set(0.0)
    return kset.band_spectra((160, 160)), kset


def small_mask_stack(count=2, n=160, seed=3):
    grid = Grid(0, 0, 8.0, n, n)
    rng = np.random.default_rng(seed)
    masks = []
    for _ in range(count):
        cx = float(rng.integers(300, n * 8 - 300))
        cy = float(rng.integers(300, n * 8 - 300))
        masks.append(rasterize(
            [Polygon.from_rect(Rect.square(cx, cy, 90))], grid
        ))
    return np.stack(masks)


class TestResolution:
    def test_backend_names_are_the_public_contract(self):
        assert BACKEND_NAMES == ("auto", "numpy", "scipy", "torch", "cupy")

    @pytest.mark.parametrize("workers", [1, 4])
    def test_auto_never_picks_a_device_backend(self, workers):
        """Device execution is explicit opt-in: whatever is installed,
        ``auto`` resolves to a host backend."""
        assert resolve_backend("auto", workers).name in ("numpy", "scipy")

    def test_cupy_is_a_named_seam(self):
        """The name resolves through validation but reports a clear
        error either way — absent, or present with no adapters yet."""
        with pytest.raises(LithoError, match="cupy"):
            resolve_backend("cupy")

    @pytest.mark.skipif(torch_available(), reason="torch is installed")
    def test_torch_raises_when_absent(self):
        """A device request must never degrade silently to host."""
        with pytest.raises(LithoError, match="torch"):
            resolve_backend("torch")

    @requires_torch
    def test_torch_cpu_resolves(self):
        backend = resolve_backend("torch", device="cpu")
        assert backend.name == "torch"
        assert backend.device == "cpu"
        assert not backend.is_numpy

    def test_host_backends_reject_device_strings(self):
        with pytest.raises(LithoError, match="host-only"):
            resolve_backend("numpy", device="cuda")

    def test_identity_vs_array_identity(self):
        """numpy and scipy differ in transform identity but share the
        array representation (host numpy) — residency-only caches key
        on ``array_identity`` so the two share one copy."""
        np1 = resolve_backend("numpy", 1)
        np2 = resolve_backend("numpy", 2)
        assert np1.identity != np2.identity
        assert np1.array_identity == np2.array_identity == ("numpy", "cpu")
        if scipy_fft_available():
            sp = resolve_backend("scipy", 2)
            assert sp.identity != np1.identity
            assert sp.array_identity == ("numpy", "cpu")
        # array_identity is a pure function of (name, device): true for
        # the torch spelling whether or not torch is importable.
        torch_cuda = ArrayBackend(name="torch", workers=1, device="cuda:1")
        assert torch_cuda.array_identity == ("torch", "cuda:1")

    def test_deprecated_fft_backend_spelling_still_resolves(self):
        assert resolve_fft_backend("numpy", 1) is resolve_backend("numpy", 1)


class TestDeprecatedConfigKnob:
    def test_fft_backend_warns_and_aliases_into_backend(self):
        with pytest.warns(DeprecationWarning, match="use backend="):
            cfg = LithoConfig(pixel_nm=8.0, fft_backend="numpy")
        assert cfg.backend == "numpy"

    def test_explicit_backend_wins_over_the_alias(self):
        with pytest.warns(DeprecationWarning):
            cfg = LithoConfig(
                pixel_nm=8.0, backend="numpy", fft_backend="scipy"
            )
        assert cfg.backend == "numpy"

    def test_new_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = LithoConfig(pixel_nm=8.0, backend="numpy")
        assert cfg.backend == "numpy"
        assert cfg.fft_backend is None

    def test_bad_backend_rejected_at_config_time(self):
        with pytest.raises(LithoError):
            LithoConfig(pixel_nm=8.0, backend="fftw")


class TestFingerprintExclusion:
    def test_backend_and_device_are_deployment_knobs(self):
        """Journals written under one backend must resume under any
        other: backend/device never enter the engine fingerprint."""
        for field in ("backend", "device", "fft_backend", "fft_workers"):
            assert field in FINGERPRINT_EXCLUDED_LITHO_FIELDS


class TestDtypePolicy:
    def test_sparse_phase_matrix_is_float64(self, band_geometry):
        band, _ = band_geometry
        rows = np.array([5, 80, 120], dtype=np.int64)
        cols = np.array([7, 40, 150], dtype=np.int64)
        matrix = _sparse_phase_matrix(
            (160, 160), band, rows, cols, resolve_backend("numpy", 1)
        )
        assert matrix.dtype == np.float64

    def test_band_dft_matrices_are_complex128_float64(self, band_geometry):
        band, _ = band_geometry
        left, right_ri = _band_dft_matrices(
            (160, 160), band, resolve_backend("numpy", 1)
        )
        assert left.dtype == np.complex128
        assert right_ri.dtype == np.float64

    def test_band_gather_promotes_to_complex128(self, band_geometry):
        band, kset = band_geometry
        masks = small_mask_stack()
        sub = gather_band_rfft(np.fft.rfft2(masks, axes=(-2, -1)), band)
        assert sub.dtype == np.complex128

    def test_surrogate_gemm_path_is_float64(self, band_geometry):
        band, _ = band_geometry
        features = band_limited_mask_subgrid_direct(small_mask_stack(), band)
        assert features.dtype == np.float64
        from repro.surrogate.model import CFNOLite, pupil_modes

        net = CFNOLite(pupil_modes(band), width=4)
        out = net.forward_fast(features[:, None, :, :])
        assert out.dtype == np.float64

    def test_sparse_values_are_float64(self, band_geometry):
        band, kset = band_geometry
        masks = small_mask_stack()
        rows = np.array([12, 100], dtype=np.int64)
        cols = np.array([30, 88], dtype=np.int64)
        values = kset.intensity_at_pixels(
            kset.fft.fft2(masks, axes=(-2, -1)), rows, cols
        )
        assert isinstance(values, np.ndarray)
        assert values.dtype == np.float64


class TestCacheIdentity:
    def test_numpy_and_scipy_share_host_phase_matrices(self, band_geometry):
        """Same array_identity -> literally the same cached object; no
        duplicate host copies for a transform-library swap."""
        if not scipy_fft_available():
            pytest.skip("scipy not installed")
        band, _ = band_geometry
        rows = np.array([3, 9], dtype=np.int64)
        cols = np.array([4, 11], dtype=np.int64)
        via_numpy = _sparse_phase_matrix(
            (160, 160), band, rows, cols, resolve_backend("numpy", 1)
        )
        via_scipy = _sparse_phase_matrix(
            (160, 160), band, rows, cols, resolve_backend("scipy", 2)
        )
        assert via_scipy is via_numpy

    def test_phase_cache_keys_carry_array_identity(self, band_geometry):
        band, _ = band_geometry
        rows = np.array([1, 2], dtype=np.int64)
        cols = np.array([3, 4], dtype=np.int64)
        _sparse_phase_matrix(
            (160, 160), band, rows, cols, resolve_backend("numpy", 1)
        )
        key = (
            (160, 160), band.band, rows.tobytes(), cols.tobytes(),
            ("numpy", "cpu"),
        )
        assert key in _PHASE_CACHE

    def test_band_dft_cache_keys_carry_array_identity(self, band_geometry):
        band, _ = band_geometry
        _band_dft_matrices((160, 160), band, resolve_backend("numpy", 1))
        assert ((160, 160), band.band, ("numpy", "cpu")) in _BAND_DFT_CACHE

    @requires_torch
    def test_torch_gets_its_own_device_entries(self, band_geometry):
        """A device backend must never be served the host copy (or vice
        versa): distinct array_identity -> distinct cache entry, holding
        a tensor on the backend's device."""
        import torch

        band, _ = band_geometry
        rows = np.array([3, 9], dtype=np.int64)
        cols = np.array([4, 11], dtype=np.int64)
        host = _sparse_phase_matrix(
            (160, 160), band, rows, cols, resolve_backend("numpy", 1)
        )
        backend = resolve_backend("torch", device="cpu")
        device_copy = _sparse_phase_matrix(
            (160, 160), band, rows, cols, backend
        )
        assert isinstance(host, np.ndarray)
        assert isinstance(device_copy, torch.Tensor)
        assert device_copy.dtype == torch.float64
        np.testing.assert_array_equal(host, device_copy.cpu().numpy())
        # And the host entry is still served to host backends afterwards
        # (no cross-backend eviction/overwrite).
        again = _sparse_phase_matrix(
            (160, 160), band, rows, cols, resolve_backend("numpy", 1)
        )
        assert again is host

    def test_contour_plan_cache_is_backend_independent(self):
        """Stencil plans are pure geometry — no FFT input — so one plan
        deliberately serves every backend (documented invariant)."""
        from repro.metrology.contour import plan_contour_stencils

        grid = Grid(0, 0, 8.0, 64, 64)
        points = np.array([[256.0, 256.0], [300.0, 180.0]])
        normals = np.array([[1.0, 0.0], [0.0, 1.0]])
        first = plan_contour_stencils(grid, points, normals)
        second = plan_contour_stencils(grid, points.copy(), normals.copy())
        assert second is first


@requires_torch
class TestTorchParity:
    """CPU torch vs numpy on the screening stack (CI optional-deps job)."""

    @pytest.fixture(scope="class")
    def torch_sim(self):
        return LithographySimulator(LithoConfig(
            pixel_nm=8.0, period_nm=1024.0, max_kernels=4,
            backend="torch", device="cpu",
        ))

    @pytest.fixture(scope="class")
    def clip(self):
        from repro.data.via_bench import generate_via_clip

        return generate_via_clip("tb1", n_vias=2, seed=41, clip_nm=1280)

    def test_sparse_epe_parity(self, numpy_sim, torch_sim, clip):
        grid = numpy_sim.grid_for(clip)
        mask = rasterize(clip.targets, grid)
        plan = measure_stencil_plan(grid, fragment_clip(clip))
        threshold = numpy_sim.config.threshold
        (ref,) = numpy_sim.simulate_epe_batch(mask[None], grid, plan)
        (got,) = torch_sim.simulate_epe_batch(mask[None], grid, plan)
        assert isinstance(got.values, np.ndarray)  # host at the boundary
        (ref_report,) = measure_epe_grouped_sparse([ref], threshold)
        (got_report,) = measure_epe_grouped_sparse([got], threshold)
        assert got_report.count == ref_report.count > 0
        assert np.abs(
            got_report.values - ref_report.values
        ).max() < EPE_TOLERANCE_NM

    def test_device_masks_accepted_at_the_boundary(self, torch_sim, clip):
        """simulate_epe_batch takes device-resident masks directly and
        still returns host numpy sparse values."""
        import torch

        grid = torch_sim.grid_for(clip)
        mask = rasterize(clip.targets, grid)
        plan = measure_stencil_plan(grid, fragment_clip(clip))
        (host_in,) = torch_sim.simulate_epe_batch(mask[None], grid, plan)
        device_masks = torch.as_tensor(mask[None], device="cpu")
        (dev_in,) = torch_sim.simulate_epe_batch(device_masks, grid, plan)
        assert isinstance(dev_in.values, np.ndarray)
        np.testing.assert_array_equal(dev_in.values, host_in.values)

    def test_dense_aerial_parity(self, numpy_sim, torch_sim):
        masks = small_mask_stack()
        grid = Grid(0, 0, 8.0, 160, 160)
        ref = numpy_sim.simulate_batch(masks, grid)
        got = torch_sim.simulate_batch(masks, grid)
        for r, g in zip(ref, got):
            assert isinstance(g.aerial, np.ndarray)
            assert np.abs(g.aerial - r.aerial).max() < 1e-12

    def test_surrogate_forward_fast_parity(self, band_geometry):
        from repro.surrogate.model import CFNOLite, pupil_modes

        band, _ = band_geometry
        net = CFNOLite(pupil_modes(band), width=4)
        features = band_limited_mask_subgrid_direct(
            small_mask_stack(), band
        )[:, None, :, :]
        host = net.forward_fast(features)
        backend = resolve_backend("torch", device="cpu")
        device_out = net.forward_fast(features, backend)
        assert np.abs(
            host - backend.to_host(device_out)
        ).max() < 1e-12

    def test_default_dtype_float32_cannot_leak(
        self, numpy_sim, torch_sim, clip
    ):
        """The documented torch dtype policy: with the process-global
        default dtype degraded to float32, every value this package
        computes is still float64 and parity still holds."""
        import torch

        previous = torch.get_default_dtype()
        torch.set_default_dtype(torch.float32)
        try:
            grid = numpy_sim.grid_for(clip)
            mask = rasterize(clip.targets, grid)
            plan = measure_stencil_plan(grid, fragment_clip(clip))
            (ref,) = numpy_sim.simulate_epe_batch(mask[None], grid, plan)
            (got,) = torch_sim.simulate_epe_batch(mask[None], grid, plan)
            assert got.values.dtype == np.float64
            assert np.abs(got.values - ref.values).max() < 1e-12
        finally:
            torch.set_default_dtype(previous)


class TestAdapterSemantics:
    """ArrayBackend method contracts that the numpy family must honor
    bit-for-bit (the torch legs live in TestTorchParity)."""

    def test_host_movement_is_passthrough(self):
        backend = resolve_backend("numpy", 1)
        a = np.arange(6.0).reshape(2, 3)
        assert backend.to_device(a) is a
        assert backend.to_host(a) is a
        assert backend.index(a.astype(np.int64)) is not None
        assert backend.asarray_f64(a) is a  # already float64: no copy

    def test_numpy_ops_match_np_exactly(self):
        backend = resolve_backend("numpy", 1)
        rng = np.random.default_rng(9)
        stack = rng.random((2, 8, 8))
        assert np.array_equal(
            backend.rfft2(stack), np.fft.rfft2(stack, axes=(-2, -1))
        )
        assert np.array_equal(
            backend.concat([stack, stack], axis=0),
            np.concatenate([stack, stack], axis=0),
        )
        assert np.array_equal(
            backend.einsum("bij->b", stack), np.einsum("bij->b", stack)
        )
        assert backend.zeros((2, 2), backend.float64).dtype == np.float64
        assert backend.empty((2, 2), backend.complex128).dtype == np.complex128

    @requires_torch
    def test_torch_adapter_round_trips(self):
        import torch

        backend = resolve_backend("torch", device="cpu")
        a = np.arange(6.0).reshape(2, 3)
        t = backend.to_device(a)
        assert isinstance(t, torch.Tensor) and t.dtype == torch.float64
        np.testing.assert_array_equal(backend.to_host(t), a)
        # Negative strides (views like a[::-1]) must not trip as_tensor.
        flipped = backend.to_device(a[::-1])
        np.testing.assert_array_equal(backend.to_host(flipped), a[::-1])
        assert backend.index(np.array([1, 0])).dtype == torch.int64
