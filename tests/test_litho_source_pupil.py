"""Tests for illumination source and pupil models."""

import numpy as np
import pytest

from repro.constants import NUMERICAL_APERTURE, WAVELENGTH_NM
from repro.errors import LithoError
from repro.litho.pupil import pupil_function
from repro.litho.source import SourceSpec, source_weights

CUTOFF = NUMERICAL_APERTURE / WAVELENGTH_NM


class TestSourceSpec:
    def test_default_circular(self):
        spec = SourceSpec()
        assert spec.shape == "circular"
        assert spec.outer_sigma == spec.sigma

    def test_annular_outer(self):
        spec = SourceSpec(shape="annular")
        assert spec.outer_sigma == spec.sigma_out

    def test_bad_shape(self):
        with pytest.raises(LithoError):
            SourceSpec(shape="quasar")

    def test_bad_circular_sigma(self):
        with pytest.raises(LithoError):
            SourceSpec(sigma=0.0)
        with pytest.raises(LithoError):
            SourceSpec(sigma=1.5)

    def test_bad_annular_bounds(self):
        with pytest.raises(LithoError):
            SourceSpec(shape="annular", sigma_in=0.8, sigma_out=0.5)


class TestSourceWeights:
    def grid(self, n=41, extent=1.2):
        f = np.linspace(-extent * CUTOFF, extent * CUTOFF, n)
        fx, fy = np.meshgrid(f, f)
        return np.stack([fx.ravel(), fy.ravel()], axis=1)

    def test_circular_inside_outside(self):
        spec = SourceSpec(sigma=0.7)
        freqs = self.grid()
        w = source_weights(spec, freqs, CUTOFF)
        radius = np.hypot(freqs[:, 0], freqs[:, 1]) / CUTOFF
        assert np.all(w[radius <= 0.69] == 1)
        assert np.all(w[radius > 0.71] == 0)

    def test_annular_ring_only(self):
        spec = SourceSpec(shape="annular", sigma_in=0.5, sigma_out=0.8)
        freqs = self.grid()
        w = source_weights(spec, freqs, CUTOFF)
        radius = np.hypot(freqs[:, 0], freqs[:, 1]) / CUTOFF
        assert np.all(w[radius < 0.49] == 0)
        assert np.all(w[(radius > 0.51) & (radius < 0.79)] == 1)
        assert np.all(w[radius > 0.81] == 0)

    def test_empty_source_raises(self):
        spec = SourceSpec(sigma=0.7)
        far = np.array([[10 * CUTOFF, 0.0]])
        with pytest.raises(LithoError):
            source_weights(spec, far, CUTOFF)


class TestPupil:
    def test_disk_support(self):
        freqs = np.array([[0, 0], [0.99 * CUTOFF, 0], [1.01 * CUTOFF, 0]])
        p = pupil_function(freqs)
        assert p[0] == 1
        assert abs(p[1]) == pytest.approx(1)
        assert p[2] == 0

    def test_focus_is_real_unity(self):
        freqs = np.array([[0.5 * CUTOFF, 0.3 * CUTOFF]])
        p = pupil_function(freqs, defocus_nm=0.0)
        assert p[0] == pytest.approx(1.0 + 0.0j)

    def test_defocus_pure_phase(self):
        freqs = np.array([[0.5 * CUTOFF, 0.0]])
        p = pupil_function(freqs, defocus_nm=50.0)
        assert abs(p[0]) == pytest.approx(1.0)
        assert p[0].imag != 0

    def test_defocus_phase_quadratic(self):
        f1 = np.array([[0.3 * CUTOFF, 0.0]])
        f2 = np.array([[0.6 * CUTOFF, 0.0]])
        z = 40.0
        p1 = pupil_function(f1, defocus_nm=z)
        p2 = pupil_function(f2, defocus_nm=z)
        # |f| doubles -> phase quadruples (mod 2 pi).
        phase1 = np.angle(p1[0])
        phase2 = np.angle(p2[0])
        assert np.exp(1j * 4 * phase1) == pytest.approx(np.exp(1j * phase2), abs=1e-9)

    def test_invalid_optics(self):
        with pytest.raises(LithoError):
            pupil_function(np.zeros((1, 2)), wavelength_nm=0)
