"""Integration tests for the lithography simulator facade."""

import numpy as np
import pytest

from repro.errors import LithoError
from repro.geometry import Clip, Grid, Polygon, Rect, rasterize
from repro.litho import LithoConfig, LithographySimulator
from repro.litho.process import nominal_corner, standard_corners
from repro.litho.resist import printed_image


@pytest.fixture(scope="module")
def sim():
    # Module-scoped: kernel construction is the expensive part.
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, ambit_nm=512.0, max_kernels=8)
    )


@pytest.fixture(scope="module")
def grid():
    return Grid(0, 0, 8.0, 160, 160)  # 1280 nm window


def via_mask(grid, size=90, cx=640, cy=640):
    return rasterize([Polygon.from_rect(Rect.square(cx, cy, size))], grid)


class TestCorners:
    def test_nominal(self):
        c = nominal_corner()
        assert c.defocus_nm == 0 and c.dose == 1

    def test_standard_triple(self):
        nominal, inner, outer = standard_corners()
        assert inner.dose < 1 < outer.dose
        assert inner.defocus_nm == outer.defocus_nm > 0

    def test_bad_dose_variation(self):
        with pytest.raises(LithoError):
            standard_corners(dose_variation=1.5)


class TestResist:
    def test_threshold_cut(self):
        aerial = np.array([[0.1, 0.3], [0.225, 0.2]])
        printed = printed_image(aerial, threshold=0.225)
        assert printed.tolist() == [[0, 1], [1, 0]]

    def test_dose_scales_threshold(self):
        aerial = np.array([[0.22]])
        assert printed_image(aerial, 0.225, dose=1.0)[0, 0] == 0
        assert printed_image(aerial, 0.225, dose=1.05)[0, 0] == 1

    def test_invalid_params(self):
        with pytest.raises(LithoError):
            printed_image(np.ones((2, 2)), threshold=0)
        with pytest.raises(LithoError):
            printed_image(np.ones((2, 2)), dose=-1)


class TestSimulator:
    def test_larger_mask_prints_larger(self, sim, grid):
        small = sim.simulate_mask(via_mask(grid, size=90), grid)
        large = sim.simulate_mask(via_mask(grid, size=110), grid)
        assert large.nominal.sum() > small.nominal.sum()

    def test_corner_ordering_inner_outer(self, sim, grid):
        """Within the defocused pair, dose is monotone: the under-dosed
        corner prints a subset of the over-dosed one.  (The focused nominal
        image is *not* ordered against the defocused corners — defocus blur
        can outweigh the dose excursion.)"""
        result = sim.simulate_mask(via_mask(grid, size=100), grid)
        inner = result.inner.astype(bool)
        outer = result.outer.astype(bool)
        assert inner.sum() <= outer.sum()
        assert np.all(outer[inner])  # strict subset relation, not just area

    def test_defocus_blurs(self, sim, grid):
        mask = via_mask(grid, size=100)
        focus = sim.aerial(mask, defocus_nm=0.0)
        blur = sim.aerial(mask, defocus_nm=sim.config.defocus_nm)
        assert blur.max() < focus.max()

    def test_simulate_polygons_matches_mask(self, sim, grid):
        poly = Polygon.from_rect(Rect.square(640, 640, 100))
        from_polys = sim.simulate_polygons([poly], grid)
        from_mask = sim.simulate_mask(rasterize([poly], grid), grid)
        assert np.array_equal(from_polys.nominal, from_mask.nominal)

    def test_simulate_state(self, sim):
        from repro.geometry import MaskState, fragment_clip

        clip = Clip(
            name="t",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 70)),),
            layer="via",
        )
        segments = fragment_clip(clip)
        state = MaskState.initial(clip, segments, bias_nm=15.0)
        result = sim.simulate_state(state)
        assert result.nominal.sum() > 0

    def test_grid_for_clip(self, sim):
        clip = Clip(
            name="t",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 70)),),
        )
        g = sim.grid_for(clip)
        assert g.shape == (160, 160)
        assert g.pixel_nm == sim.config.pixel_nm

    def test_aerial_symmetry_of_symmetric_mask(self, sim, grid):
        """A square mask centred on the grid diagonal gives an image
        symmetric under transposition (x <-> y exchange).  The tolerance
        allows for kernel-count truncation splitting degenerate x/y
        eigenvalue pairs of the TCC."""
        aerial = sim.aerial(via_mask(grid, size=100))
        assert np.allclose(aerial, aerial.T, atol=2e-3)

    def test_kernel_set_cached(self, sim):
        assert sim.kernel_set(0.0) is sim.kernel_set(0.0)

    def test_config_validation(self):
        with pytest.raises(LithoError):
            LithoConfig(pixel_nm=-1)
        with pytest.raises(LithoError):
            LithoConfig(period_nm=0.0)
        # ambit_nm is deprecated and ignored: a value that the old crop
        # validation rejected must no longer block construction.
        LithoConfig(ambit_nm=4096.0, period_nm=2048.0)
