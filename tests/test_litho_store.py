"""Tests for the disk-persistent kernel-spectra store (litho/store.py)."""

import os
import time

import numpy as np
import pytest

from repro.errors import LithoError
from repro.litho.kernels import OpticalKernelSet
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.litho.source import SourceSpec
from repro.litho.store import (
    KernelSpectraStore,
    open_store,
    optics_fingerprint,
)

SHAPE = (160, 160)
_SPECTRA_FIELDS = (
    "weights",
    "sub_spectra",
    "rows_src",
    "cols_src",
    "rows_dst",
    "cols_dst",
    "up_rows_src",
    "up_cols_src",
    "up_rows_dst",
    "up_cols_dst",
)


def fresh_set(store=None, defocus_nm=0.0, max_kernels=4):
    """An uncached kernel set (bypasses build_kernel_set's lru_cache), as
    a fresh worker process would construct it."""
    return OpticalKernelSet(
        pixel_nm=8.0,
        defocus_nm=defocus_nm,
        source=SourceSpec(),
        max_kernels=max_kernels,
        spectra_store=store,
    )


def assert_spectra_equal(a, b):
    assert a.shape == b.shape
    assert a.band == b.band
    assert a.subgrid == b.subgrid
    assert a.compact == b.compact
    for name in _SPECTRA_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestStoreRoundTrip:
    def test_warm_load_is_bit_for_bit(self, tmp_path):
        store = KernelSpectraStore(str(tmp_path))
        built = fresh_set(store).band_spectra(SHAPE)
        loaded = fresh_set(store).band_spectra(SHAPE)
        assert_spectra_equal(built, loaded)
        assert store.writes == 1
        assert store.hits == 1

    def test_simulation_unchanged_by_store(self, tmp_path):
        """A store-backed simulator must produce bit-identical images to
        a store-less one, cold and warm."""
        mask = np.zeros(SHAPE)
        mask[60:84, 60:84] = 1.0
        bare = fresh_set().convolve_intensity_batch(mask[None])
        store = KernelSpectraStore(str(tmp_path))
        cold = fresh_set(store).convolve_intensity_batch(mask[None])
        warm = fresh_set(store).convolve_intensity_batch(mask[None])
        assert np.array_equal(bare, cold)
        assert np.array_equal(bare, warm)

    def test_entries_keyed_by_shape_and_optics(self, tmp_path):
        store = KernelSpectraStore(str(tmp_path))
        focus = fresh_set(store)
        focus.band_spectra(SHAPE)
        focus.band_spectra((128, 128))
        fresh_set(store, defocus_nm=25.0).band_spectra(SHAPE)
        assert store.entry_count() == 3

    def test_fingerprint_sensitivity(self):
        base = fresh_set()
        assert optics_fingerprint(base) == optics_fingerprint(fresh_set())
        assert optics_fingerprint(base) != optics_fingerprint(
            fresh_set(defocus_nm=25.0)
        )
        assert optics_fingerprint(base) != optics_fingerprint(
            fresh_set(max_kernels=6)
        )

    def test_fingerprint_rejects_legacy(self):
        weights = np.ones(1)
        kernels = np.ones((1, 32, 32), dtype=np.complex128)
        legacy = OpticalKernelSet(
            pixel_nm=8.0, defocus_nm=0.0, weights=weights, kernels=kernels
        )
        with pytest.raises(LithoError, match="legacy"):
            optics_fingerprint(legacy)


class TestStoreRobustness:
    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        store = KernelSpectraStore(str(tmp_path))
        warmed = fresh_set(store)
        built = warmed.band_spectra(SHAPE)
        path = store.entry_path(optics_fingerprint(warmed), SHAPE)
        with open(path, "wb") as handle:
            handle.write(b"not a zip archive")
        rebuilt = fresh_set(store).band_spectra(SHAPE)
        assert_spectra_equal(built, rebuilt)
        assert store.writes == 2  # the corrupt entry was overwritten
        # ... and the overwritten entry now loads.
        assert_spectra_equal(built, fresh_set(store).band_spectra(SHAPE))

    def test_truncated_entry_is_rebuilt(self, tmp_path):
        """A crash/copy that cut the entry short reads as a miss."""
        store = KernelSpectraStore(str(tmp_path))
        warmed = fresh_set(store)
        built = warmed.band_spectra(SHAPE)
        path = store.entry_path(optics_fingerprint(warmed), SHAPE)
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        misses_before = store.misses
        rebuilt = fresh_set(store).band_spectra(SHAPE)
        assert_spectra_equal(built, rebuilt)
        assert store.misses == misses_before + 1
        assert store.writes == 2
        assert_spectra_equal(built, fresh_set(store).band_spectra(SHAPE))

    def test_bit_flipped_entry_is_rebuilt(self, tmp_path):
        """A single flipped payload byte (disk rot: the npz still opens,
        the arrays still parse, only the numbers are wrong) is caught by
        the content checksum and rebuilt — never served."""
        from repro.service.faults import corrupt_file

        store = KernelSpectraStore(str(tmp_path))
        warmed = fresh_set(store)
        built = warmed.band_spectra(SHAPE)
        path = store.entry_path(optics_fingerprint(warmed), SHAPE)
        # npz members are stored uncompressed, so flipping a byte well
        # inside the file body mutates array data while leaving the zip
        # directory (at the end) intact — the stale checksum is the only
        # thing standing between this entry and a wrong simulation.
        corrupt_file(path, offset=os.path.getsize(path) // 2)
        misses_before = store.misses
        rebuilt = fresh_set(store).band_spectra(SHAPE)
        assert_spectra_equal(built, rebuilt)
        assert store.misses == misses_before + 1
        assert store.writes == 2
        assert_spectra_equal(built, fresh_set(store).band_spectra(SHAPE))

    def test_injected_store_corruption_is_contained(self, tmp_path):
        """The fault harness's store.save corrupt rule flips a byte of
        the just-written entry; the next load detects and rebuilds."""
        from repro.service import (
            FaultPlan,
            FaultRule,
            clear_fault_plan,
            install_fault_plan,
        )

        store = KernelSpectraStore(str(tmp_path))
        install_fault_plan(FaultPlan([
            FaultRule(point="store.save", action="corrupt", at=(1,)),
        ]))
        try:
            built = fresh_set(store).band_spectra(SHAPE)
            rebuilt = fresh_set(store).band_spectra(SHAPE)
        finally:
            clear_fault_plan()
        assert_spectra_equal(built, rebuilt)
        assert store.misses >= 1  # the corrupted entry never served
        assert store.writes == 2

    def test_unwritable_store_never_fails_simulation(self, tmp_path):
        """The store is a cache, not a dependency: when its directory
        cannot be created (parent is a regular file), the build still
        succeeds and only warns."""
        blocker = tmp_path / "blocker.txt"
        blocker.write_text("in the way")
        store = KernelSpectraStore(str(blocker / "store"))
        bare = fresh_set().band_spectra(SHAPE)
        with pytest.warns(RuntimeWarning, match="store write failed"):
            built = fresh_set(store).band_spectra(SHAPE)
        assert_spectra_equal(bare, built)
        assert store.writes == 0

    def test_missing_directory_is_created(self, tmp_path):
        store = KernelSpectraStore(str(tmp_path / "nested" / "dir"))
        fresh_set(store).band_spectra(SHAPE)
        assert store.entry_count() == 1

    def test_empty_root_rejected(self):
        with pytest.raises(LithoError, match="directory"):
            KernelSpectraStore("")

    def test_open_store_is_per_root_singleton(self, tmp_path):
        a = open_store(str(tmp_path))
        b = open_store(str(tmp_path))
        assert a is b
        assert a == KernelSpectraStore(str(tmp_path))

    def test_singleton_survives_root_respellings(self, tmp_path):
        """A symlinked root, a trailing slash, and a ~-prefixed path are
        the same directory and must share one store instance — two
        instances over one directory would diverge on stats and race
        each other's views (the regression: keying on abspath only)."""
        real = tmp_path / "store"
        real.mkdir()
        link = tmp_path / "alias"
        link.symlink_to(real, target_is_directory=True)

        direct = open_store(str(real))
        assert open_store(str(link)) is direct
        assert open_store(str(real) + "/") is direct
        assert open_store(str(real) + "/./") is direct
        # One shared stats view, whichever spelling wrote the entry.
        spectra = fresh_set().band_spectra(SHAPE)
        open_store(str(link)).save(
            optics_fingerprint(fresh_set()), spectra
        )
        assert direct.stats()["writes"] == 1

    def test_singleton_expands_user_home(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        tilde = open_store("~/spectra-store")
        plain = open_store(str(tmp_path / "spectra-store"))
        assert tilde is plain

    def test_orphan_tmp_files_swept_and_uncounted(self, tmp_path):
        """Temp files from killed writers must not count as entries and
        must be reclaimed by the next open of their root."""
        import os as os_mod
        import time as time_mod

        root = tmp_path / "orphaned"
        root.mkdir()
        orphan = root / ".tmp-spectra-deadbeef.npz"
        orphan.write_bytes(b"torn half-write")
        old = time_mod.time() - 7200.0
        os_mod.utime(orphan, (old, old))
        fresh_orphan = root / ".tmp-spectra-cafe.npz"
        fresh_orphan.write_bytes(b"in-flight write")

        store = open_store(str(root))
        assert store.entry_count() == 0  # neither tmp file is an entry
        assert not orphan.exists()  # stale orphan swept on open
        assert fresh_orphan.exists()  # in-flight write left alone
        assert store.sweep_orphans(max_age_s=0.0) == 1
        assert not fresh_orphan.exists()


class TestStoreWarmup:
    def test_warm_store_beats_cold_build(self, tmp_path):
        """Acceptance gate: on a fresh 'process' (uncached kernel set), a
        warm store must eliminate TCC-rebuild time — generous > 1.5x
        margin (measured orders of magnitude higher)."""
        store = KernelSpectraStore(str(tmp_path))
        shape = (512, 512)  # production-scale grid: build >> npz read

        start = time.perf_counter()
        built = fresh_set(store, max_kernels=8).band_spectra(shape)
        t_cold = time.perf_counter() - start

        t_warm = float("inf")
        for _ in range(3):
            warm_set = fresh_set(store, max_kernels=8)
            start = time.perf_counter()
            loaded = warm_set.band_spectra(shape)
            t_warm = min(t_warm, time.perf_counter() - start)
        assert_spectra_equal(built, loaded)
        assert t_cold > 1.5 * t_warm, (
            f"cold build {t_cold * 1e3:.1f} ms should dwarf warm load "
            f"{t_warm * 1e3:.1f} ms"
        )


class TestSimulatorIntegration:
    def test_litho_config_wires_store(self, tmp_path):
        config = LithoConfig(
            pixel_nm=8.0, max_kernels=4, spectra_store=str(tmp_path)
        )
        simulator = LithographySimulator(config)
        store = simulator.spectra_store()
        assert store is not None
        assert simulator.kernel_set(0.0).spectra_store is store
        # Focus + defocus sets share the one per-simulator store object.
        assert simulator.kernel_set(25.0).spectra_store is store

    def test_store_disabled_by_default(self):
        simulator = LithographySimulator(LithoConfig(pixel_nm=8.0))
        assert simulator.spectra_store() is None
