"""Regenerate the golden lithography reference images.

Run from the repo root:

    PYTHONPATH=src python tests/golden/generate.py

Two canonical clips are pinned: V1 (first via-layer test clip, with the
paper's initial +3 nm outward bias so the printed corners are
non-trivial) and M1 (first metal-layer test clip, unbiased).  For each
we store the rasterized input mask alongside the aerial /
defocused-aerial / three printed images, so ``test_litho_golden.py``
exercises exactly the imaging path (kernel build + FFT convolution +
resist model) without depending on the rasterizer.

Only regenerate when the lithography *physics* is intentionally changed;
the whole point of these files is that refactors — batching, caching,
backend swaps — must NOT shift the images.
"""

from __future__ import annotations

import os

import numpy as np

from repro.constants import VIA_INITIAL_BIAS_NM
from repro.data.metal_bench import metal_test_suite
from repro.data.via_bench import via_test_suite
from repro.geometry.mask_edit import MaskState
from repro.geometry.raster import rasterize
from repro.geometry.segmentation import fragment_clip
from repro.litho.simulator import LithoConfig, LithographySimulator

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))

GOLDEN_CONFIG = LithoConfig(pixel_nm=8.0, max_kernels=8)
"""Fixed simulator settings for the goldens (independent of REPRO_SCALE)."""


def golden_clips():
    return {
        "via_v1": (via_test_suite()[0], float(VIA_INITIAL_BIAS_NM)),
        "metal_m1": (metal_test_suite()[0], 0.0),
    }


def generate() -> None:
    simulator = LithographySimulator(GOLDEN_CONFIG)
    for label, (clip, bias_nm) in golden_clips().items():
        grid = simulator.grid_for(clip)
        state = MaskState.initial(clip, fragment_clip(clip), bias_nm=bias_nm)
        mask = rasterize(state.mask_polygons(), grid)
        result = simulator.simulate_mask(mask, grid)
        path = os.path.join(GOLDEN_DIR, f"{label}.npz")
        np.savez_compressed(
            path,
            clip_name=clip.name,
            mask=mask,
            aerial=result.aerial,
            aerial_defocus=result.aerial_defocus,
            printed_nominal=result.printed["nominal"],
            printed_inner=result.printed["inner"],
            printed_outer=result.printed["outer"],
        )
        print(f"wrote {path}: grid {grid.shape}, aerial max {result.aerial.max():.4f}")


if __name__ == "__main__":
    generate()
