"""Tests for the learned litho surrogate (repro.surrogate): rasterless
band features, CFNO-lite forward paths, the seeded exact-labeled
dataset, deterministic training with litho-guided self-training, and the
versioned checkpoint round trip."""

import numpy as np
import pytest

from repro.constants import MOVE_SET_NM
from repro.data.via_bench import generate_via_clip
from repro.errors import SurrogateError
from repro.backend import scipy_fft_available, torch_available
from repro.geometry.raster import rasterize
from repro.litho.kernels import band_limited_mask_subgrid_direct
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.nn import Tensor, no_grad, save_checkpoint
from repro.rl.env import OPCEnvironment
from repro.surrogate import (
    CFNOLite,
    SurrogateModel,
    SurrogateTrainConfig,
    generate_dataset,
    interval_coverage_dft,
    load_surrogate,
    pupil_modes,
    rasterless_subgrid_masks,
    save_surrogate,
    surrogate_features,
    surrogate_features_from_polygons,
    train_surrogate,
)
from repro.surrogate.data import dataset_clips, exact_subgrid_labels


@pytest.fixture(scope="module")
def sim():
    # Coarse fast optics: 128x128 grid for a 1024 nm clip.
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=4)
    )


@pytest.fixture(scope="module")
def quick_config():
    return SurrogateTrainConfig(
        width=16, n_clips=2, samples_per_clip=8, steps=250,
        selftrain_rounds=1, selftrain_pool=6, selftrain_keep=2,
        selftrain_steps=50, seed=3,
    )


@pytest.fixture(scope="module")
def trained(sim, quick_config):
    return train_surrogate(sim, quick_config)


class TestIntervalCoverageDft:
    """Closed-form 1-D coverage transform vs explicit pixel weights."""

    def _brute(self, lo, hi, n, freqs):
        weights = np.zeros(n)
        for p in range(n):
            weights[p] = max(0.0, min(p + 1.0, hi) - max(float(p), lo))
        z = np.exp(-2j * np.pi * np.asarray(freqs) / n)
        return np.array([(weights * z_k ** np.arange(n)).sum() for z_k in z])

    @pytest.mark.parametrize("lo,hi", [
        (0.25, 0.75),      # single partial pixel
        (2.0, 5.0),        # integer-aligned
        (1.3, 1.9),        # sub-pixel interior
        (0.0, 12.0),       # whole axis
        (3.7, 9.2),        # fringes + interior
        (5.0, 6.0),        # exactly one full pixel
    ])
    def test_matches_brute_force(self, lo, hi):
        freqs = np.array([0, 1, 2, -1, -3])
        got = interval_coverage_dft(
            np.array([lo]), np.array([hi]), 12, freqs
        )[0]
        np.testing.assert_allclose(got, self._brute(lo, hi, 12, freqs),
                                   atol=1e-12)

    def test_zero_frequency_is_length(self):
        got = interval_coverage_dft(
            np.array([1.25]), np.array([7.5]), 16, np.array([0])
        )
        np.testing.assert_allclose(got, [[7.5 - 1.25]], atol=1e-12)

    def test_batched_matches_rowwise(self):
        rng = np.random.default_rng(0)
        lo = rng.uniform(0, 10, size=9)
        hi = lo + rng.uniform(0.1, 5, size=9)
        freqs = np.array([0, 2, -4, 7])
        batch = interval_coverage_dft(lo, hi, 16, freqs)
        for i in range(9):
            np.testing.assert_allclose(
                batch[i], self._brute(lo[i], hi[i], 16, freqs), atol=1e-11
            )


class TestRasterlessFeatures:
    """Slab-DFT features vs rasterize-then-gather, on real OPC states."""

    def test_matches_raster_route_on_candidates(self, sim):
        clip = generate_via_clip("rl1", n_vias=2, seed=31, clip_nm=1024.0)
        env = OPCEnvironment(clip, sim)
        state = env.reset()
        move_set = np.asarray(MOVE_SET_NM, dtype=np.float64)
        rng = np.random.default_rng(2)
        candidates = np.vstack([
            env.uniform_move_candidates(),
            rng.integers(0, 5, size=(3, env.n_segments)),
        ])
        polygon_sets = [
            state.mask.moved(move_set[row]).mask_polygons()
            for row in candidates
        ]
        band = sim.kernel_set(0.0).band_spectra(env.grid.shape)
        reference = band_limited_mask_subgrid_direct(
            np.stack([rasterize(p, env.grid) for p in polygon_sets]), band
        )
        fast = rasterless_subgrid_masks(polygon_sets, env.grid, band)
        np.testing.assert_allclose(fast, reference, atol=1e-10)

    def test_feature_helpers_agree(self, sim):
        clip = generate_via_clip("rl2", n_vias=2, seed=44, clip_nm=1024.0)
        grid = sim.grid_for(clip)
        polygons = [list(clip.targets)]
        raster = rasterize(clip.targets, grid)[None]
        from_masks, band_a, _ = surrogate_features(raster, sim, grid)
        from_polys, band_b, _ = surrogate_features_from_polygons(
            polygons, sim, grid
        )
        assert band_a.band == band_b.band
        np.testing.assert_allclose(from_polys, from_masks, atol=1e-10)

    def test_empty_polygon_set_gives_zero_features(self, sim):
        clip = generate_via_clip("rl3", n_vias=2, seed=45, clip_nm=1024.0)
        grid = sim.grid_for(clip)
        band = sim.kernel_set(0.0).band_spectra(grid.shape)
        sub = rasterless_subgrid_masks([[]], grid, band)
        np.testing.assert_allclose(sub, 0.0)

    def test_rejects_mismatched_grid(self, sim):
        clip = generate_via_clip("rl4", n_vias=2, seed=46, clip_nm=1024.0)
        grid = sim.grid_for(clip)
        band = sim.kernel_set(0.0).band_spectra((64, 64))
        with pytest.raises(SurrogateError, match="does not match"):
            rasterless_subgrid_masks([list(clip.targets)], grid, band)


class TestCFNOLite:
    def test_forward_fast_matches_autograd(self):
        for shape, modes in [((30, 30), (8, 8)), ((13, 17), (4, 6)),
                             ((8, 8), (4, 5))]:
            net = CFNOLite(modes=modes, width=5, corners=2,
                           rng=np.random.default_rng(7))
            x = np.random.default_rng(1).random((3, 1, *shape))
            with no_grad():
                slow = net(Tensor(x)).numpy()
            fast = net.forward_fast(x)
            np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_forward_fast_rejects_bad_shape(self):
        net = CFNOLite(modes=(2, 2), width=3)
        with pytest.raises(SurrogateError, match="forward_fast expects"):
            net.forward_fast(np.zeros((4, 2, 8, 8)))

    def test_rejects_bad_width(self):
        with pytest.raises(SurrogateError, match="width/corners"):
            CFNOLite(modes=(2, 2), width=0)

    def test_pupil_modes_cover_band(self, sim):
        band = sim.kernel_set(0.0).band_spectra((128, 128))
        m1, m2 = pupil_modes(band)
        assert (m1, m2) == (band.band[0] + 1, band.band[1] + 1)


class TestDataset:
    def test_seeded_dataset_is_reproducible(self, sim):
        a = generate_dataset(sim, seed=5, n_clips=2, samples_per_clip=3)
        b = generate_dataset(sim, seed=5, n_clips=2, samples_per_clip=3)
        np.testing.assert_array_equal(a.masks, b.masks)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_dataset_clips_skip_infeasible_seeds(self):
        # Seed 2 hits an infeasible via placement (the first via lands
        # centrally, leaving no legal second spot) — the deterministic
        # scan must step past it rather than raise.
        clips = dataset_clips(seed=2, n_clips=3, clip_nm=1024.0)
        assert len(clips) == 3
        again = dataset_clips(seed=2, n_clips=3, clip_nm=1024.0)
        assert [c.metadata["seed"] for c in clips] == [
            c.metadata["seed"] for c in again
        ]
        assert [c.name for c in clips] == [c.name for c in again]

    def test_labels_match_exact_simulation(self, sim):
        dataset = generate_dataset(sim, seed=1, n_clips=1,
                                   samples_per_clip=2)
        again = exact_subgrid_labels(dataset.masks, sim, dataset.grid)
        np.testing.assert_array_equal(dataset.labels, again)

    def test_shape_validation(self, sim):
        dataset = generate_dataset(sim, seed=1, n_clips=1,
                                   samples_per_clip=2)
        from repro.surrogate import SurrogateDataset
        with pytest.raises(SurrogateError, match="masks but"):
            SurrogateDataset(masks=dataset.masks,
                             labels=dataset.labels[:1], grid=dataset.grid)


class TestTraining:
    def test_reports_selftrain_rounds(self, trained, quick_config):
        _, report = trained
        assert len(report.selftrain_rounds) == quick_config.selftrain_rounds
        round_info = report.selftrain_rounds[0]
        assert round_info["relabeled"] == quick_config.selftrain_keep
        assert round_info["pool"] >= quick_config.selftrain_keep
        # worst is the pool max, so it bounds the pool mean
        assert round_info["worst_mse"] >= round_info["mean_mse"]
        assert report.samples > (
            quick_config.n_clips * quick_config.samples_per_clip
        )
        assert np.isfinite(report.final_loss)

    def test_training_learns_the_operator(self, sim, trained):
        """Predictions on held-out perturbations beat the zero baseline
        by a wide margin (relative L2 well under 1)."""
        model, _ = trained
        holdout = generate_dataset(sim, seed=991, n_clips=1,
                                   samples_per_clip=4)
        features, _, _ = surrogate_features(holdout.masks, sim, holdout.grid)
        predicted = model.net.forward_fast(features)
        rel = np.linalg.norm(predicted - holdout.labels) / np.linalg.norm(
            holdout.labels
        )
        assert rel < 0.5

    def test_deterministic_checkpoint_bytes(self, sim, quick_config,
                                            trained, tmp_path):
        model_a, _ = trained
        model_b, _ = train_surrogate(sim, quick_config)
        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_surrogate(str(path_a), model_a)
        save_surrogate(str(path_b), model_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_config_validation(self):
        with pytest.raises(SurrogateError, match="keep"):
            SurrogateTrainConfig(selftrain_keep=10, selftrain_pool=4)
        with pytest.raises(SurrogateError, match="lr"):
            SurrogateTrainConfig(lr=0.0)


class TestCheckpointRoundTrip:
    def test_load_reproduces_predictions(self, sim, trained, tmp_path):
        model, _ = trained
        path = str(tmp_path / "surrogate.npz")
        save_surrogate(path, model)
        loaded = load_surrogate(path)
        assert loaded.net.modes == model.net.modes
        assert loaded.net.width == model.net.width
        x = np.random.default_rng(0).random(
            (2, 1, *sim.kernel_set(0.0).band_spectra((128, 128)).subgrid)
        )
        np.testing.assert_array_equal(
            loaded.net.forward_fast(x), model.net.forward_fast(x)
        )

    def test_rejects_foreign_checkpoint(self, trained, tmp_path):
        model, _ = trained
        path = str(tmp_path / "foreign.npz")
        save_checkpoint(path, model.net.state_dict(),
                        extra={"kind": "something-else"})
        with pytest.raises(SurrogateError, match="not a cfno-lite"):
            load_surrogate(path)

    def test_rejects_plain_module_checkpoint(self, trained, tmp_path):
        model, _ = trained
        path = str(tmp_path / "plain.npz")
        model.net.save(path)  # no surrogate metadata
        with pytest.raises(SurrogateError, match="not a cfno-lite"):
            load_surrogate(path)


class TestPredictionPaths:
    def test_mask_and_polygon_totals_agree(self, sim, trained):
        model, _ = trained
        clip = generate_via_clip("pp1", n_vias=2, seed=52, clip_nm=1024.0)
        env = OPCEnvironment(clip, sim)
        state = env.reset()
        plan = env.measure_plan()
        assert plan is not None
        move_set = np.asarray(MOVE_SET_NM, dtype=np.float64)
        candidates = env.uniform_move_candidates()
        polygon_sets = [
            state.mask.moved(move_set[row]).mask_polygons()
            for row in candidates
        ]
        masks = np.stack([rasterize(p, env.grid) for p in polygon_sets])
        from_masks = model.predict_epe_totals(
            masks, sim, env.grid, plan, sim.config.threshold
        )
        from_polys = model.predict_epe_totals_from_polygons(
            polygon_sets, sim, env.grid, plan, sim.config.threshold
        )
        np.testing.assert_allclose(from_polys, from_masks, atol=1e-6)

    def test_rejects_non_3d_masks(self, sim, trained):
        model, _ = trained
        clip = generate_via_clip("pp2", n_vias=2, seed=53, clip_nm=1024.0)
        grid = sim.grid_for(clip)
        with pytest.raises(SurrogateError, match="3-D"):
            surrogate_features(np.zeros((128, 128)), sim, grid)


#: Every installed array backend; "numpy" doubles as the reference.
PARITY_BACKENDS = (
    ["numpy"]
    + (["scipy"] if scipy_fft_available() else [])
    + (["torch"] if torch_available() else [])
)


@pytest.mark.parametrize("backend", PARITY_BACKENDS)
class TestBackendParity:
    """The surrogate's litho-facing paths under every array backend.

    Features, ``forward_fast`` and ranked EPE totals must agree with the
    numpy reference to <= 1e-9 under scipy and CPU/CUDA torch — the
    screening decisions a device deployment makes are the same
    decisions the host makes.
    """

    def _sims(self, backend):
        base = dict(pixel_nm=8.0, period_nm=1024.0, max_kernels=4)
        return (
            LithographySimulator(LithoConfig(backend="numpy", **base)),
            LithographySimulator(LithoConfig(backend=backend, **base)),
        )

    def test_features_and_totals_match_numpy(self, backend, trained):
        model, _ = trained
        ref_sim, sim = self._sims(backend)
        clip = generate_via_clip("bp1", n_vias=2, seed=57, clip_nm=1024.0)
        env = OPCEnvironment(clip, ref_sim)
        state = env.reset()
        plan = env.measure_plan()
        masks = np.stack([
            rasterize(state.mask.mask_polygons(), env.grid),
            rasterize(clip.targets, env.grid),
        ])
        ref_features, band, ref_kset = surrogate_features(
            masks, ref_sim, env.grid
        )
        features, _, kset = surrogate_features(masks, sim, env.grid)
        host_features = kset.fft.to_host(features)
        assert np.abs(host_features - ref_features).max() < 1e-9
        ref_pred, _, _ = model.predict_subgrid(masks, ref_sim, env.grid)
        pred, _, _ = model.predict_subgrid(masks, sim, env.grid)
        assert isinstance(pred, np.ndarray)
        assert np.abs(pred - ref_pred).max() < 1e-9
        ref_totals = model.predict_epe_totals(
            masks, ref_sim, env.grid, plan, ref_sim.config.threshold
        )
        totals = model.predict_epe_totals(
            masks, sim, env.grid, plan, sim.config.threshold
        )
        assert np.abs(totals - ref_totals).max() < 1e-9
