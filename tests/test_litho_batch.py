"""Batch-parity property tests: the batched engine must match the
single-mask reference bit-for-bit across batch sizes, process corners and
grid shapes, so callers can switch on batch size alone."""

import numpy as np
import pytest

from repro.geometry import Clip, Grid, Polygon, Rect, rasterize
from repro.geometry.mask_edit import MaskState
from repro.geometry.segmentation import fragment_clip
from repro.litho import LithoConfig, LithographySimulator
from repro.rl.env import OPCEnvironment


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, ambit_nm=512.0, max_kernels=6)
    )


SQUARE = Grid(0, 0, 8.0, 160, 160)
TALL = Grid(0, 0, 8.0, 176, 144)  # non-square: rows != cols


def mask_stack(grid, count):
    """`count` distinct masks (varying via sizes/positions) on `grid`."""
    rng = np.random.default_rng(1234)
    masks = []
    for _ in range(count):
        cx = float(rng.integers(500, int(grid.cols * 8) - 500))
        cy = float(rng.integers(500, int(grid.rows * 8) - 500))
        size = float(rng.integers(60, 120))
        masks.append(
            rasterize([Polygon.from_rect(Rect.square(cx, cy, size))], grid)
        )
    return masks


def assert_results_identical(batch_result, single_result):
    assert np.array_equal(batch_result.aerial, single_result.aerial)
    assert np.array_equal(
        batch_result.aerial_defocus, single_result.aerial_defocus
    )
    for corner in ("nominal", "inner", "outer"):
        assert np.array_equal(
            batch_result.printed[corner], single_result.printed[corner]
        )


class TestBatchParity:
    @pytest.mark.parametrize("batch_size", [1, 2, 7])
    @pytest.mark.parametrize("grid", [SQUARE, TALL], ids=["square", "tall"])
    def test_simulate_batch_matches_simulate_mask(self, sim, grid, batch_size):
        masks = mask_stack(grid, batch_size)
        batched = sim.simulate_batch(masks, grid)
        assert len(batched) == batch_size
        for mask, result in zip(masks, batched):
            assert_results_identical(result, sim.simulate_mask(mask, grid))

    def test_array_and_list_inputs_agree(self, sim):
        masks = mask_stack(SQUARE, 3)
        from_list = sim.simulate_batch(masks, SQUARE)
        from_array = sim.simulate_batch(np.stack(masks), SQUARE)
        for a, b in zip(from_list, from_array):
            assert_results_identical(a, b)

    def test_convolve_batch_matches_single(self, sim):
        kernel_set = sim.kernel_set(0.0)
        masks = mask_stack(SQUARE, 4)
        batched = kernel_set.convolve_intensity_batch(np.stack(masks))
        for mask, intensity in zip(masks, batched):
            assert np.array_equal(intensity, kernel_set.convolve_intensity(mask))

    def test_simulate_polygons_still_matches_reference(self, sim):
        """simulate_polygons routes through the batched engine at B=1 and
        must stay bit-for-bit equal to the single-mask reference path."""
        poly = Polygon.from_rect(Rect.square(640, 640, 100))
        via_batch = sim.simulate_polygons([poly], SQUARE)
        via_reference = sim.simulate_mask(rasterize([poly], SQUARE), SQUARE)
        assert_results_identical(via_batch, via_reference)


class TestSpectralScreening:
    def test_close_to_exact(self, sim):
        masks = mask_stack(SQUARE, 3)
        exact = sim.simulate_batch(masks, SQUARE, mode="exact")
        screened = sim.simulate_batch(masks, SQUARE, mode="spectral")
        for e, s in zip(exact, screened):
            assert np.abs(e.aerial - s.aerial).max() < 5e-3
            assert np.abs(e.aerial_defocus - s.aerial_defocus).max() < 5e-3

    def test_plan_shrinks_grid(self, sim):
        plan = sim.spectral_convolver(0.0).plan(SQUARE.shape)
        assert plan.effective
        assert plan.subgrid[0] < SQUARE.rows and plan.subgrid[1] < SQUARE.cols

    def test_fallback_when_band_covers_grid(self):
        """When the transmitted band spans the whole grid, the screening
        path must fall back to (and exactly match) the exact engine."""
        from repro.litho import OpticalKernelSet, SpectralConvolver

        rng = np.random.default_rng(7)
        kernel_set = OpticalKernelSet(
            weights=np.array([0.6, 0.4]),
            kernels=rng.normal(size=(2, 5, 5))
            + 1j * rng.normal(size=(2, 5, 5)),
            pixel_nm=8.0,
            defocus_nm=0.0,
            cutoff_per_nm=10.0,  # band radius clamps to the full grid
        )
        convolver = SpectralConvolver(kernel_set)
        assert not convolver.plan((32, 32)).effective
        mask = np.zeros((32, 32))
        mask[10:20, 10:20] = 1.0
        screened = convolver.convolve_intensity_batch(mask[None])
        exact = kernel_set.convolve_intensity(mask)
        assert np.array_equal(screened[0], exact)


def _tiny_env(sim):
    clip = Clip(
        name="batch-env",
        bbox=Rect(0, 0, 1280, 1280),
        targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
        layer="via",
    )
    return OPCEnvironment(clip, sim, initial_bias_nm=3.0)


class TestEnvBatching:
    def test_evaluate_batch_matches_evaluate(self, sim):
        env = _tiny_env(sim)
        base = env.reset()
        deltas = [np.full(env.n_segments, d) for d in (-2.0, 0.0, 2.0)]
        masks = [base.mask.moved(d) for d in deltas]
        batched = env.evaluate_batch(masks)
        for mask, state in zip(masks, batched):
            reference = env.evaluate(mask)
            assert np.array_equal(state.litho.aerial, reference.litho.aerial)
            assert np.array_equal(state.seg_epe, reference.seg_epe)
            assert state.total_epe == reference.total_epe
            assert state.pvband == reference.pvband

    def test_score_moves_matches_step(self, sim):
        env = _tiny_env(sim)
        base = env.reset()
        candidates = env.uniform_move_candidates()
        scored = env.score_moves(base, candidates)
        assert len(scored) == env.n_actions
        for row, (state, reward) in zip(candidates, scored):
            step_state, step_reward = env.step(base, row)
            assert np.array_equal(state.litho.aerial, step_state.litho.aerial)
            assert state.total_epe == step_state.total_epe
            assert reward == step_reward

    def test_uniform_candidates_shape(self, sim):
        env = _tiny_env(sim)
        candidates = env.uniform_move_candidates()
        assert candidates.shape == (env.n_actions, env.n_segments)
        for action, row in enumerate(candidates):
            assert np.all(row == action)


class TestRunnerBatchVerification:
    def test_suite_recheck_passes_and_raises_on_drift(self, sim):
        from repro.baselines.mbopc import MBOPC, MBOPCConfig
        from repro.errors import MetrologyError
        from repro.eval.runner import batch_verify_epe, run_engine_on_suite

        clip = Clip(
            name="runner-clip",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        engine = MBOPC(MBOPCConfig(max_updates=2, initial_bias_nm=3.0), sim)
        result = run_engine_on_suite(
            engine, [clip], "MB-OPC", verify_simulator=sim
        )
        assert len(result.rows) == 1

        # A corrupted self-report must be caught by the batched recheck.
        outcome = engine.optimize(clip)
        measured = batch_verify_epe(sim, [clip], [outcome])
        assert measured["runner-clip"] == pytest.approx(outcome.epe_total)

        class LyingEngine:
            def optimize(self, clip, **kwargs):
                class Fake:
                    epe_total = outcome.epe_total + 5.0
                    pvband = outcome.pvband
                    runtime_s = outcome.runtime_s
                    steps = outcome.steps
                    early_exited = outcome.early_exited
                    final_state = outcome.final_state

                return Fake()

        with pytest.raises(MetrologyError, match="re-simulation"):
            run_engine_on_suite(
                LyingEngine(), [clip], "liar", verify_simulator=sim
            )

    def test_recheck_honours_engine_search_range(self, sim):
        """The verifier must re-measure with the engine's configured
        contour-search range, not the 40 nm default — otherwise engines
        with a custom epe_search_nm are falsely flagged as drifting."""
        from repro.baselines.mbopc import MBOPC, MBOPCConfig
        from repro.eval.runner import run_engine_on_suite

        from repro.eval.runner import batch_verify_epe

        clip = Clip(
            name="search-clip",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 130)),),
            layer="via",
        )
        # Over-biased, unoptimized mask: the printed contour sits 12-40 nm
        # outside the target, so the 12 nm and 40 nm search ranges measure
        # different EPE and a default-range recheck would false-alarm.
        engine = MBOPC(
            MBOPCConfig(max_updates=0, initial_bias_nm=12.0, epe_search_nm=12.0),
            sim,
        )
        outcome = engine.optimize(clip, early_exit=False)
        wide = batch_verify_epe(sim, [clip], [outcome], epe_search_nm=40.0)
        assert abs(wide["search-clip"] - outcome.epe_total) > 1.0  # sanity
        result = run_engine_on_suite(
            engine,
            [clip],
            "narrow-search",
            verify_simulator=sim,
            early_exit=False,
        )
        assert len(result.rows) == 1


class TestAgentLookahead:
    def test_lookahead_first_step_never_worse(self, sim):
        """With candidate_lookahead the agent picks the best of {policy
        action, five uniform moves} per step, so its first-step reward is
        >= the plain policy's (both runs are deterministic at inference)."""
        from repro.core.agent import CAMO
        from repro.core.config import CamoConfig

        clip = Clip(
            name="lookahead",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        plain = CAMO(
            CamoConfig.smoke(initial_bias_nm=3.0, max_updates=2), sim
        ).optimize(clip, early_exit=False)
        ahead = CAMO(
            CamoConfig.smoke(
                initial_bias_nm=3.0, max_updates=2, candidate_lookahead=True
            ),
            sim,
        ).optimize(clip, early_exit=False)
        assert ahead.steps == plain.steps == 2
        assert ahead.trajectory.steps[0].reward >= plain.trajectory.steps[0].reward
