"""Batch-parity property tests for the unified band-limited engine.

The batched engine must match the single-mask spatial reference to FFT
round-off (<= 1e-9 absolute intensity, with identical printed corners)
across batch sizes, process corners and grid shapes, and per-mask results
must be bit-for-bit independent of the batch size — so callers can switch
on batch size alone."""

import numpy as np
import pytest

from repro.geometry import Clip, Grid, Polygon, Rect, rasterize
from repro.geometry.mask_edit import MaskState
from repro.geometry.segmentation import fragment_clip
from repro.litho import LithoConfig, LithographySimulator
from repro.rl.env import OPCEnvironment

MAX_ABS_ERROR = 1e-9


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, ambit_nm=512.0, max_kernels=6)
    )


SQUARE = Grid(0, 0, 8.0, 160, 160)
TALL = Grid(0, 0, 8.0, 176, 144)  # non-square: rows != cols


def mask_stack(grid, count):
    """`count` distinct masks (varying via sizes/positions) on `grid`."""
    rng = np.random.default_rng(1234)
    masks = []
    for _ in range(count):
        cx = float(rng.integers(500, int(grid.cols * 8) - 500))
        cy = float(rng.integers(500, int(grid.rows * 8) - 500))
        size = float(rng.integers(60, 120))
        masks.append(
            rasterize([Polygon.from_rect(Rect.square(cx, cy, size))], grid)
        )
    return masks


def assert_results_close(batch_result, single_result):
    """Band engine vs spatial reference: round-off on aerials, identical
    printed corners."""
    assert np.abs(batch_result.aerial - single_result.aerial).max() < MAX_ABS_ERROR
    assert (
        np.abs(batch_result.aerial_defocus - single_result.aerial_defocus).max()
        < MAX_ABS_ERROR
    )
    for corner in ("nominal", "inner", "outer"):
        assert np.array_equal(
            batch_result.printed[corner], single_result.printed[corner]
        )


def assert_results_identical(result_a, result_b):
    assert np.array_equal(result_a.aerial, result_b.aerial)
    assert np.array_equal(result_a.aerial_defocus, result_b.aerial_defocus)
    for corner in ("nominal", "inner", "outer"):
        assert np.array_equal(
            result_a.printed[corner], result_b.printed[corner]
        )


class TestBatchParity:
    @pytest.mark.parametrize("batch_size", [1, 2, 7])
    @pytest.mark.parametrize("grid", [SQUARE, TALL], ids=["square", "tall"])
    def test_simulate_batch_matches_simulate_mask(self, sim, grid, batch_size):
        masks = mask_stack(grid, batch_size)
        batched = sim.simulate_batch(masks, grid)
        assert len(batched) == batch_size
        for mask, result in zip(masks, batched):
            assert_results_close(result, sim.simulate_mask(mask, grid))

    @pytest.mark.parametrize("grid", [SQUARE, TALL], ids=["square", "tall"])
    def test_batch_size_independence_is_bitwise(self, sim, grid):
        """Per-mask results must not depend on what else is in the batch."""
        masks = mask_stack(grid, 5)
        batched = sim.simulate_batch(masks, grid)
        for mask, result in zip(masks, batched):
            alone = sim.simulate_batch(mask[None], grid)[0]
            assert_results_identical(result, alone)

    def test_array_and_list_inputs_agree(self, sim):
        masks = mask_stack(SQUARE, 3)
        from_list = sim.simulate_batch(masks, SQUARE)
        from_array = sim.simulate_batch(np.stack(masks), SQUARE)
        for a, b in zip(from_list, from_array):
            assert_results_identical(a, b)

    def test_convolve_batch_matches_single(self, sim):
        """Band engine vs the full-grid spatial reference path."""
        kernel_set = sim.kernel_set(0.0)
        masks = mask_stack(SQUARE, 4)
        batched = kernel_set.convolve_intensity_batch(np.stack(masks))
        for mask, intensity in zip(masks, batched):
            reference = kernel_set.convolve_intensity(mask)
            assert np.abs(intensity - reference).max() < MAX_ABS_ERROR

    def test_simulate_polygons_still_matches_reference(self, sim):
        """simulate_polygons routes through the batched engine at B=1 and
        must stay within round-off of the single-mask reference path."""
        poly = Polygon.from_rect(Rect.square(640, 640, 100))
        via_batch = sim.simulate_polygons([poly], SQUARE)
        via_reference = sim.simulate_mask(rasterize([poly], SQUARE), SQUARE)
        assert_results_close(via_batch, via_reference)


class TestUnifiedBandEngine:
    def test_band_subgrid_is_compact_on_production_grids(self, sim):
        band = sim.kernel_set(0.0).band_spectra(SQUARE.shape)
        assert band.compact
        assert band.subgrid[0] < SQUARE.rows and band.subgrid[1] < SQUARE.cols
        # Alias-free intensity subgrid: m >= 4b + 1 on both axes.
        assert band.subgrid[0] >= 4 * band.band[0] + 1
        assert band.subgrid[1] >= 4 * band.band[1] + 1

    def test_spectra_vanish_outside_band(self, sim):
        """The exactness precondition: zero energy outside the gathered
        pupil band on the full grid."""
        kernel_set = sim.kernel_set(0.0)
        band = kernel_set.band_spectra(SQUARE.shape)
        full = kernel_set.kernel_spectra(SQUARE.shape)
        b0, b1 = band.band
        row_in = np.zeros(SQUARE.rows, dtype=bool)
        row_in[np.r_[0 : b0 + 1, SQUARE.rows - b0 : SQUARE.rows]] = True
        col_in = np.zeros(SQUARE.cols, dtype=bool)
        col_in[np.r_[0 : b1 + 1, SQUARE.cols - b1 : SQUARE.cols]] = True
        out_of_band = ~(row_in[:, None] & col_in[None, :])
        assert np.abs(full[:, out_of_band]).max() == 0.0
        assert np.abs(full[:, ~out_of_band]).max() > 0

    def test_deprecated_mode_values_do_not_change_results(self, sim):
        masks = np.stack(mask_stack(SQUARE, 2))
        plain = sim.simulate_batch(masks, SQUARE)
        for mode in ("exact", "spectral"):
            with pytest.warns(DeprecationWarning):
                shimmed = sim.simulate_batch(masks, SQUARE, mode=mode)
            for a, b in zip(plain, shimmed):
                assert_results_identical(a, b)

    def test_fallback_when_band_covers_grid(self):
        """When the pupil band spans the whole grid the subgrid cannot
        shrink; the unified engine must fall back to (and exactly match)
        the full-grid reference path."""
        from repro.litho import build_kernel_set

        # 40 nm pixels: the band radius is ~0.28 * n, so 4b + 1 > n.
        kernel_set = build_kernel_set(
            pixel_nm=40.0, period_nm=2048.0, max_kernels=4, fft_backend="numpy"
        )
        band = kernel_set.band_spectra((32, 32))
        assert not band.compact
        assert band.subgrid == (32, 32)
        mask = np.zeros((32, 32))
        mask[10:20, 10:20] = 1.0
        batched = kernel_set.convolve_intensity_batch(mask[None])
        reference = kernel_set.convolve_intensity(mask)
        assert np.array_equal(batched[0], reference)


def _tiny_env(sim):
    clip = Clip(
        name="batch-env",
        bbox=Rect(0, 0, 1280, 1280),
        targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
        layer="via",
    )
    return OPCEnvironment(clip, sim, initial_bias_nm=3.0)


class TestEnvBatching:
    def test_evaluate_batch_matches_evaluate(self, sim):
        env = _tiny_env(sim)
        base = env.reset()
        deltas = [np.full(env.n_segments, d) for d in (-2.0, 0.0, 2.0)]
        masks = [base.mask.moved(d) for d in deltas]
        batched = env.evaluate_batch(masks)
        for mask, state in zip(masks, batched):
            reference = env.evaluate(mask)
            assert np.array_equal(state.litho.aerial, reference.litho.aerial)
            assert np.array_equal(state.seg_epe, reference.seg_epe)
            assert state.total_epe == reference.total_epe
            assert state.pvband == reference.pvband

    def test_score_moves_matches_step(self, sim):
        env = _tiny_env(sim)
        base = env.reset()
        candidates = env.uniform_move_candidates()
        scored = env.score_moves(base, candidates)
        assert len(scored) == env.n_actions
        for row, (state, reward) in zip(candidates, scored):
            step_state, step_reward = env.step(base, row)
            assert np.array_equal(state.litho.aerial, step_state.litho.aerial)
            assert state.total_epe == step_state.total_epe
            assert reward == step_reward

    def test_uniform_candidates_shape(self, sim):
        env = _tiny_env(sim)
        candidates = env.uniform_move_candidates()
        assert candidates.shape == (env.n_actions, env.n_segments)
        for action, row in enumerate(candidates):
            assert np.all(row == action)


class TestRunnerBatchVerification:
    def test_suite_recheck_passes_and_raises_on_drift(self, sim):
        from repro.baselines.mbopc import MBOPC, MBOPCConfig
        from repro.errors import MetrologyError
        from repro.eval.runner import batch_verify_epe, run_engine_on_suite

        clip = Clip(
            name="runner-clip",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        engine = MBOPC(MBOPCConfig(max_updates=2, initial_bias_nm=3.0), sim)
        result = run_engine_on_suite(
            engine, [clip], "MB-OPC", verify_simulator=sim
        )
        assert len(result.rows) == 1

        # A corrupted self-report must be caught by the batched recheck.
        outcome = engine.optimize(clip)
        measured = batch_verify_epe(sim, [clip], [outcome])
        assert measured["runner-clip"] == pytest.approx(outcome.epe_total)

        class LyingEngine:
            def optimize(self, clip, **kwargs):
                class Fake:
                    epe_total = outcome.epe_total + 5.0
                    pvband = outcome.pvband
                    runtime_s = outcome.runtime_s
                    steps = outcome.steps
                    early_exited = outcome.early_exited
                    final_state = outcome.final_state

                return Fake()

        with pytest.raises(MetrologyError, match="re-simulation"):
            run_engine_on_suite(
                LyingEngine(), [clip], "liar", verify_simulator=sim
            )

    def test_recheck_honours_engine_search_range(self, sim):
        """The verifier must re-measure with the engine's configured
        contour-search range, not the 40 nm default — otherwise engines
        with a custom epe_search_nm are falsely flagged as drifting."""
        from repro.baselines.mbopc import MBOPC, MBOPCConfig
        from repro.eval.runner import run_engine_on_suite

        from repro.eval.runner import batch_verify_epe

        clip = Clip(
            name="search-clip",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 130)),),
            layer="via",
        )
        # Over-biased, unoptimized mask: the printed contour sits 12-40 nm
        # outside the target, so the 12 nm and 40 nm search ranges measure
        # different EPE and a default-range recheck would false-alarm.
        engine = MBOPC(
            MBOPCConfig(max_updates=0, initial_bias_nm=12.0, epe_search_nm=12.0),
            sim,
        )
        outcome = engine.optimize(clip, early_exit=False)
        wide = batch_verify_epe(sim, [clip], [outcome], epe_search_nm=40.0)
        assert abs(wide["search-clip"] - outcome.epe_total) > 1.0  # sanity
        result = run_engine_on_suite(
            engine,
            [clip],
            "narrow-search",
            verify_simulator=sim,
            early_exit=False,
        )
        assert len(result.rows) == 1


class TestAgentLookahead:
    def test_lookahead_first_step_never_worse(self, sim):
        """With candidate_lookahead the agent picks the best of {policy
        action, five uniform moves} per step, so its first-step reward is
        >= the plain policy's (both runs are deterministic at inference)."""
        from repro.core.agent import CAMO
        from repro.core.config import CamoConfig

        clip = Clip(
            name="lookahead",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        plain = CAMO(
            CamoConfig.smoke(initial_bias_nm=3.0, max_updates=2), sim
        ).optimize(clip, early_exit=False)
        ahead = CAMO(
            CamoConfig.smoke(
                initial_bias_nm=3.0, max_updates=2, candidate_lookahead=True
            ),
            sim,
        ).optimize(clip, early_exit=False)
        assert ahead.steps == plain.steps == 2
        assert ahead.trajectory.steps[0].reward >= plain.trajectory.steps[0].reward