"""Tests for segment-offset mask reconstruction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.layout import Clip
from repro.geometry.mask_edit import MaskState, apply_offsets
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.segmentation import fragment_clip


def via_clip():
    return Clip(
        name="v",
        bbox=Rect(0, 0, 2000, 2000),
        targets=(Polygon.from_rect(Rect.square(300, 300, 70)),),
        layer="via",
    )


def metal_clip():
    wire = Polygon.from_rect(Rect(100, 700, 700, 760))
    return Clip(name="m", bbox=Rect(0, 0, 1500, 1500), targets=(wire,), layer="metal")


class TestApplyOffsets:
    def test_zero_offsets_identity(self):
        clip = via_clip()
        segs = fragment_clip(clip)
        poly = apply_offsets(segs, np.zeros(4))
        assert poly.area == pytest.approx(70 * 70)
        assert poly.bbox == clip.targets[0].bbox

    def test_uniform_outward_bias_grows_square(self):
        segs = fragment_clip(via_clip())
        poly = apply_offsets(segs, np.full(4, 3.0))
        assert poly.area == pytest.approx(76 * 76)
        assert poly.bbox == Rect(262, 262, 338, 338)

    def test_uniform_inward_shrinks(self):
        segs = fragment_clip(via_clip())
        poly = apply_offsets(segs, np.full(4, -5.0))
        assert poly.area == pytest.approx(60 * 60)

    def test_single_edge_move(self):
        segs = fragment_clip(via_clip())
        offsets = np.zeros(4)
        offsets[0] = 2.0  # bottom edge outward (down)
        poly = apply_offsets(segs, offsets)
        assert poly.area == pytest.approx(70 * 72)
        assert poly.bbox.y0 == 263

    def test_metal_jogs_created(self):
        clip = metal_clip()
        segs = fragment_clip(clip)
        offsets = np.zeros(len(segs))
        # Move one interior bottom fragment outward: two jogs appear.
        bottom = [s for s in segs if s.normal == (0, -1) and s.measure_point]
        offsets[bottom[3].index] = 2.0
        poly = apply_offsets(segs, offsets)
        base = clip.targets[0]
        assert poly.area == pytest.approx(base.area + 2.0 * bottom[3].length)
        assert len(poly.vertices) == 8  # rectangle + one notch outward
        assert poly.is_simple()

    def test_mismatched_lengths_raise(self):
        segs = fragment_clip(via_clip())
        with pytest.raises(GeometryError):
            apply_offsets(segs, np.zeros(3))

    def test_area_linear_in_single_offset(self):
        """Moving one fragment changes area by offset * fragment length."""
        clip = metal_clip()
        segs = fragment_clip(clip)
        base_area = clip.targets[0].area
        for target_seg in segs[:6]:
            for off in (-2.0, -1.0, 1.0, 2.0):
                offsets = np.zeros(len(segs))
                offsets[target_seg.index] = off
                poly = apply_offsets(segs, offsets)
                assert poly.area == pytest.approx(
                    base_area + off * target_seg.length
                ), f"segment {target_seg.index} offset {off}"


class TestMaskState:
    def test_initial_bias(self):
        clip = via_clip()
        segs = fragment_clip(clip)
        state = MaskState.initial(clip, segs, bias_nm=3.0)
        assert np.all(state.offsets == 3.0)
        (poly, ) = state.mask_polygons()
        assert poly.area == pytest.approx(76 * 76)

    def test_moved_accumulates(self):
        clip = via_clip()
        segs = fragment_clip(clip)
        state = MaskState.initial(clip, segs)
        state = state.moved([1, 2, -1, 0])
        state = state.moved([1, -2, -1, 2])
        assert list(state.offsets) == [2, 0, -2, 2]

    def test_moved_clamps(self):
        clip = via_clip()
        segs = fragment_clip(clip)
        state = MaskState.initial(clip, segs, max_offset=5)
        state = state.moved([100, -100, 3, 0])
        assert list(state.offsets) == [5, -5, 3, 0]

    def test_moved_wrong_shape_raises(self):
        clip = via_clip()
        segs = fragment_clip(clip)
        state = MaskState.initial(clip, segs)
        with pytest.raises(GeometryError):
            state.moved([1, 2])

    def test_srafs_pass_through(self):
        clip = via_clip()
        sraf = Polygon.from_rect(Rect(500, 500, 520, 580))
        clip = clip.with_srafs((sraf,))
        segs = fragment_clip(clip)
        state = MaskState.initial(clip, segs)
        polys = state.mask_polygons()
        assert len(polys) == 2
        assert polys[1] is sraf

    def test_original_state_not_mutated(self):
        clip = via_clip()
        segs = fragment_clip(clip)
        state = MaskState.initial(clip, segs)
        _ = state.moved([2, 2, 2, 2])
        assert np.all(state.offsets == 0)


@given(
    offs=st.lists(
        st.integers(min_value=-10, max_value=10), min_size=4, max_size=4
    )
)
def test_property_via_offsets_keep_polygon_simple(offs):
    """Any clamped offset combination keeps a via polygon valid & simple."""
    segs = fragment_clip(via_clip())
    poly = apply_offsets(segs, np.asarray(offs, dtype=float))
    assert poly.is_simple()
    assert poly.area > 0


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    steps=st.integers(min_value=1, max_value=6),
)
def test_property_metal_random_walk_stays_valid(seed, steps):
    """Random +/-2 nm walks (clamped) always rebuild a valid mask."""
    clip = metal_clip()
    segs = fragment_clip(clip)
    state = MaskState.initial(clip, segs, max_offset=12)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        deltas = rng.choice([-2, -1, 0, 1, 2], size=len(segs))
        state = state.moved(deltas)
    polys = state.mask_polygons()
    assert all(p.area > 0 for p in polys)
