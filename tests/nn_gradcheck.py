"""Finite-difference gradient checking helper shared by nn tests."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numeric_gradient(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(array)`` at ``value``."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = fn(value)
        flat[i] = original - eps
        lo = fn(value)
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(build_loss, value: np.ndarray, atol=1e-6, rtol=1e-4) -> None:
    """Assert autograd gradient matches finite differences.

    ``build_loss(tensor) -> Tensor`` must return a scalar loss given a leaf
    tensor built from ``value``.
    """
    leaf = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(leaf)
    loss.backward()
    analytic = leaf.grad.copy()

    def scalar_fn(arr: np.ndarray) -> float:
        return float(build_loss(Tensor(arr)).data)

    numeric = numeric_gradient(scalar_fn, value.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
