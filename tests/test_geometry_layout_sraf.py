"""Tests for Clip construction and SRAF insertion."""

import pytest

from repro.errors import GeometryError
from repro.geometry.layout import Clip
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.sraf import SRAF_WIDTH_NM, insert_srafs


def make_clip(centers, layer="via", size=70, window=2000):
    targets = tuple(Polygon.from_rect(Rect.square(cx, cy, size)) for cx, cy in centers)
    return Clip(name="c", bbox=Rect(0, 0, window, window), targets=targets, layer=layer)


class TestClip:
    def test_valid_clip(self):
        clip = make_clip([(300, 300), (600, 600)])
        assert clip.target_count == 2
        assert clip.layer == "via"

    def test_empty_targets_rejected(self):
        with pytest.raises(GeometryError):
            Clip(name="x", bbox=Rect(0, 0, 100, 100), targets=(), layer="via")

    def test_unknown_layer_rejected(self):
        poly = Polygon.from_rect(Rect.square(50, 50, 20))
        with pytest.raises(GeometryError):
            Clip(name="x", bbox=Rect(0, 0, 100, 100), targets=(poly,), layer="poly")

    def test_out_of_window_polygon_rejected(self):
        poly = Polygon.from_rect(Rect.square(95, 95, 20))
        with pytest.raises(GeometryError):
            Clip(name="x", bbox=Rect(0, 0, 100, 100), targets=(poly,))

    def test_with_and_without_srafs(self):
        clip = make_clip([(300, 300)])
        sraf = Polygon.from_rect(Rect(500, 500, 520, 580))
        with_s = clip.with_srafs((sraf,))
        assert len(with_s.srafs) == 1
        assert len(with_s.without_srafs().srafs) == 0
        assert len(with_s.all_polygons()) == 2


class TestSrafInsertion:
    def test_isolated_via_gets_four_bars(self):
        clip = insert_srafs(make_clip([(1000, 1000)]))
        assert len(clip.srafs) == 4

    def test_bars_do_not_touch_targets(self):
        clip = insert_srafs(make_clip([(1000, 1000)]))
        via_bbox = clip.targets[0].bbox
        for sraf in clip.srafs:
            assert not sraf.bbox.intersects(via_bbox)
            assert sraf.bbox.distance_to(via_bbox) > 10

    def test_bars_are_subresolution(self):
        clip = insert_srafs(make_clip([(1000, 1000)]))
        for sraf in clip.srafs:
            assert min(sraf.bbox.width, sraf.bbox.height) == SRAF_WIDTH_NM

    def test_close_vias_drop_conflicting_bars(self):
        # Two vias 150 nm apart: bars between them would collide.
        far = insert_srafs(make_clip([(400, 400), (1500, 1500)]))
        near = insert_srafs(make_clip([(400, 400), (550, 400)]))
        assert len(near.srafs) < len(far.srafs)

    def test_via_near_window_edge_drops_outside_bars(self):
        clip = insert_srafs(make_clip([(60, 60)]))
        assert len(clip.srafs) < 4
        for sraf in clip.srafs:
            assert clip.bbox.contains_rect(sraf.bbox)

    def test_metal_clip_unchanged(self):
        wire = Polygon.from_rect(Rect(100, 100, 700, 160))
        clip = Clip(
            name="m", bbox=Rect(0, 0, 1500, 1500), targets=(wire,), layer="metal"
        )
        assert insert_srafs(clip) is clip

    def test_srafs_inside_window(self):
        clip = insert_srafs(make_clip([(150, 1000), (1000, 150), (1850, 1000)]))
        for sraf in clip.srafs:
            assert clip.bbox.contains_rect(sraf.bbox)
