"""End-to-end integration tests across the full stack.

Everything here uses the coarse 8 nm / 1280 nm-window profile so the whole
file stays CI-fast while still exercising clip generation -> fragmentation
-> graph -> features -> policy -> environment -> litho -> metrology ->
mask reconstruction in one loop.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines import MBOPC
from repro.baselines.mbopc import MBOPCConfig
from repro.core import CAMO, CamoConfig
from repro.data.via_bench import generate_via_clip
from repro.data.stdcell import stdcell_metal_clip
from repro.litho import LithoConfig, LithographySimulator


@pytest.fixture(scope="module")
def simulator():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=6)
    )


class TestViaEndToEnd:
    def test_untrained_camo_beats_initial_mask(self, simulator):
        clip = generate_via_clip("i1", n_vias=3, seed=77, clip_nm=1280)
        config = dataclasses.replace(
            CamoConfig.smoke(max_updates=8, policy_temperature=1e6),
            imitation_epochs=0,
            rl_epochs=0,
        )
        agent = CAMO(config, simulator)
        outcome = agent.optimize(clip, early_exit=False)
        assert outcome.epe_total < 0.5 * outcome.epe_curve[0]

    def test_trained_camo_full_loop(self, simulator):
        train = [generate_via_clip("i2", n_vias=2, seed=13, clip_nm=1280)]
        test = generate_via_clip("i3", n_vias=2, seed=14, clip_nm=1280)
        config = CamoConfig.smoke(
            imitation_epochs=3, rl_epochs=1, max_updates=6, policy_temperature=2.5
        )
        agent = CAMO(config, simulator)
        history = agent.train(train)
        assert history["imitation_logp"][-1] > history["imitation_logp"][0]
        outcome = agent.optimize(test, early_exit=False)
        assert outcome.epe_total < outcome.epe_curve[0]

    def test_camo_and_mbopc_agree_on_direction(self, simulator):
        """Both engines grow an underprinting via mask outward."""
        clip = generate_via_clip("i4", n_vias=2, seed=15, clip_nm=1280)
        config = dataclasses.replace(
            CamoConfig.smoke(max_updates=2, policy_temperature=1e6),
            imitation_epochs=0,
            rl_epochs=0,
        )
        camo_state = CAMO(config, simulator).optimize(clip, early_exit=False)
        mb_state = MBOPC(
            MBOPCConfig(initial_bias_nm=3.0, max_updates=2), simulator
        ).optimize(clip, early_exit=False)
        assert np.mean(camo_state.final_state.mask.offsets) > 3.0
        assert np.mean(mb_state.final_state.mask.offsets) > 3.0


class TestMetalEndToEnd:
    def test_metal_pipeline(self, simulator):
        clip = stdcell_metal_clip("im", 24, seed=5, clip_nm=1280)
        config = dataclasses.replace(
            CamoConfig.repro_metal(
                encode_size=16,
                embed_dim=32,
                rnn_hidden=16,
                rnn_layers=1,
                sage_layers=1,
                max_updates=5,
                policy_temperature=1e6,
            ),
            imitation_epochs=0,
            rl_epochs=0,
        )
        agent = CAMO(config, simulator)
        outcome = agent.optimize(clip, early_exit=False)
        assert outcome.epe_total < outcome.epe_curve[0]
        # The mask stayed geometrically valid throughout.
        polys = outcome.final_state.mask.mask_polygons()
        assert all(p.area > 0 for p in polys)

    def test_mbopc_metal(self, simulator):
        clip = stdcell_metal_clip("im2", 24, seed=6, clip_nm=1280)
        engine = MBOPC(
            MBOPCConfig(
                max_updates=8, early_exit_threshold=1.0, early_exit_mode="per_point"
            ),
            simulator,
        )
        outcome = engine.optimize(clip)
        assert outcome.epe_total < outcome.epe_curve[0]


class TestRewardConsistency:
    def test_trajectory_rewards_match_epe_curve(self, simulator):
        """Positive step rewards coincide with EPE decreases (when the PVB
        term is small)."""
        clip = generate_via_clip("i5", n_vias=2, seed=16, clip_nm=1280)
        config = dataclasses.replace(
            CamoConfig.smoke(max_updates=4, policy_temperature=1e6),
            imitation_epochs=0,
            rl_epochs=0,
            reward_beta=0.0,
        )
        agent = CAMO(config, simulator)
        outcome = agent.optimize(clip, early_exit=False)
        curve = outcome.epe_curve
        for step, record in enumerate(outcome.trajectory.steps):
            decreased = curve[step + 1] < curve[step]
            assert (record.reward > 0) == decreased
