"""Tests for the CAMO policy network, config and agent loop."""

import dataclasses

import numpy as np
import pytest

from repro.core import CAMO, CamoConfig, CamoPolicy
from repro.data.via_bench import generate_via_clip
from repro.errors import ConfigError, NNError
from repro.geometry import MaskState, fragment_clip
from repro.graphs import build_segment_graph, snake_order
from repro.litho import LithoConfig, LithographySimulator
from repro.nn.sage import mean_adjacency
from repro.squish import NodeFeatureEncoder


@pytest.fixture(scope="module")
def simulator():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=6)
    )


@pytest.fixture(scope="module")
def clip():
    return generate_via_clip("agent", n_vias=2, seed=5, clip_nm=1280)


class TestConfig:
    def test_defaults_valid(self):
        config = CamoConfig()
        assert config.n_actions == 5
        assert config.rnn_layers == 3

    def test_profiles(self):
        assert CamoConfig.paper_via().encode_size == 128
        assert CamoConfig.paper_metal().encode_size == 64
        assert CamoConfig.repro_metal().early_exit_mode == "per_point"
        assert CamoConfig.smoke().encode_size == 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            CamoConfig(encode_size=20)  # not divisible by 8
        with pytest.raises(ConfigError):
            CamoConfig(early_exit_mode="never")
        with pytest.raises(ConfigError):
            CamoConfig(sage_layers=0)
        with pytest.raises(ConfigError):
            CamoConfig(n_actions=3)
        with pytest.raises(ConfigError):
            CamoConfig(optimizer="lbfgs")
        with pytest.raises(ConfigError):
            CamoConfig(imitation_weighting="soft")
        with pytest.raises(ConfigError):
            CamoConfig(encoder_tail="attention")


class TestPolicy:
    def build(self, **overrides):
        config = CamoConfig.smoke(**overrides)
        clip = generate_via_clip("p", n_vias=2, seed=5, clip_nm=1280)
        segments = fragment_clip(clip)
        state = MaskState.initial(clip, segments, bias_nm=3.0)
        encoder = NodeFeatureEncoder(
            window_nm=config.window_nm,
            out_size=config.encode_size,
            channels=config.channels,
        )
        graph = build_segment_graph(segments)
        return (
            CamoPolicy(config),
            encoder.encode_all(state),
            mean_adjacency(graph),
            snake_order(graph),
        )

    def test_output_shape_and_order(self):
        policy, features, adjacency, order = self.build()
        logits = policy(features, adjacency, order)
        assert logits.shape == (features.shape[0], 5)

    def test_probabilities_normalized(self):
        policy, features, adjacency, order = self.build()
        probs = policy.probabilities(features, adjacency, order).numpy()
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_order_is_validated(self):
        policy, features, adjacency, _ = self.build()
        with pytest.raises(NNError):
            policy(features, adjacency, [0, 0, 1, 2, 3, 4, 5, 6])

    def test_rnn_couples_nodes(self):
        """With the RNN, perturbing an earlier node changes later logits."""
        policy, features, adjacency, order = self.build(use_gnn=False)
        base = policy(features, adjacency, order).numpy()
        bumped = features.copy()
        bumped[order[0]] += 0.5
        after = policy(bumped, adjacency, order).numpy()
        assert not np.allclose(base[order[-1]], after[order[-1]])

    def test_no_rnn_keeps_nodes_independent(self):
        policy, features, adjacency, order = self.build(
            use_gnn=False, use_rnn=False
        )
        base = policy(features, adjacency, order).numpy()
        bumped = features.copy()
        bumped[order[0]] += 0.5
        after = policy(bumped, adjacency, order).numpy()
        assert np.allclose(base[order[-1]], after[order[-1]])

    def test_ablation_flags_change_param_count(self):
        full, *_ = self.build()
        no_gnn, *_ = self.build(use_gnn=False)
        assert full.parameter_count() > no_gnn.parameter_count()

    def test_flatten_tail(self):
        policy, features, adjacency, order = self.build(encoder_tail="flatten")
        assert policy(features, adjacency, order).shape == (features.shape[0], 5)


class TestAgent:
    def test_optimize_improves_untrained(self, simulator, clip):
        """Even an untrained CAMO (uniform policy) must improve the mask —
        the modulator alone drives coarse convergence."""
        config = CamoConfig.smoke(max_updates=6, policy_temperature=1e6)
        config = dataclasses.replace(config, imitation_epochs=0, rl_epochs=0)
        agent = CAMO(config, simulator)
        outcome = agent.optimize(clip, early_exit=False)
        assert outcome.epe_total < outcome.epe_curve[0]
        assert outcome.steps == 6
        assert outcome.runtime_s > 0

    def test_training_histories(self, simulator, clip):
        config = CamoConfig.smoke(imitation_epochs=2, rl_epochs=1, max_updates=2)
        agent = CAMO(config, simulator)
        history = agent.train([clip])
        assert len(history["imitation_logp"]) == 2
        assert len(history["rl_reward"]) == 1
        # Behaviour cloning must improve the teacher-action likelihood.
        assert history["imitation_logp"][-1] >= history["imitation_logp"][0]

    def test_early_exit(self, simulator, clip):
        config = CamoConfig.smoke(max_updates=10, policy_temperature=1e6)
        config = dataclasses.replace(
            config, imitation_epochs=0, rl_epochs=0, early_exit_threshold=1e9
        )
        agent = CAMO(config, simulator)
        outcome = agent.optimize(clip)
        assert outcome.early_exited
        assert outcome.steps == 0  # threshold so loose it exits immediately

    def test_context_cached(self, simulator, clip):
        agent = CAMO(CamoConfig.smoke(), simulator)
        assert agent.context(clip) is agent.context(clip)

    def test_save_load_roundtrip(self, simulator, clip, tmp_path):
        config = CamoConfig.smoke()
        agent = CAMO(config, simulator)
        path = str(tmp_path / "policy.npz")
        agent.save(path)
        clone = CAMO(config, simulator)
        clone.load(path)
        ctx = agent.context(clip)
        state = ctx.env.reset()
        feats = agent.encoder.encode_all(state.mask)
        a = agent.policy(feats, ctx.adjacency, ctx.order).numpy()
        b = clone.policy(feats, ctx.adjacency, ctx.order).numpy()
        assert np.allclose(a, b)

    def test_train_requires_clips(self, simulator):
        from repro.errors import RLError

        agent = CAMO(CamoConfig.smoke(), simulator)
        with pytest.raises(RLError):
            agent.train([])

    def test_modulator_gain_decay(self, simulator, clip):
        agent = CAMO(CamoConfig.smoke(), simulator)
        assert agent._gain(0) == 1.0
        assert agent._gain(5) < 1.0

    def test_sample_actions_clips_rounding_overflow(self, simulator):
        """cumsum of a distribution can end below 1.0 by a few ulps; a
        draw landing above it must clip to the last action instead of
        indexing past MOVE_SET_NM."""
        agent = CAMO(CamoConfig.smoke(), simulator)
        short = np.full((3, 5), 0.2) - 1e-12  # cumulative[-1] < 1.0

        class AlwaysOne:
            def random(self, shape):
                return np.ones(shape)

        agent.rng = AlwaysOne()
        actions = agent._sample_actions(short)
        assert np.all(actions == 4)

    def test_sample_actions_follows_distribution(self, simulator):
        agent = CAMO(CamoConfig.smoke(), simulator)
        one_hot = np.zeros((4, 5))
        one_hot[np.arange(4), [0, 2, 3, 4]] = 1.0
        assert np.array_equal(
            agent._sample_actions(one_hot), np.array([0, 2, 3, 4])
        )


class TestPopulationTraining:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CamoConfig(rl_population=0)
        with pytest.raises(ConfigError):
            CamoConfig(rl_eval_mode="approximate")

    def test_forward_population_matches_single(self, simulator, clip):
        """Each population row must equal the single-state forward on
        that state (batched graph, no row mixing)."""
        from repro.nn.tensor import no_grad

        agent = CAMO(CamoConfig.smoke(), simulator)
        ctx = agent.context(clip)
        state_a = ctx.env.reset()
        state_b = ctx.env.evaluate(
            state_a.mask.moved(np.full(ctx.env.n_segments, 2.0))
        )
        feats = np.stack(
            [agent.encoder.encode_all(s.mask) for s in (state_a, state_b)]
        )
        with no_grad():
            pop = agent.policy.forward_population(
                feats, ctx.adjacency, ctx.order
            ).numpy()
            singles = [
                agent.policy(f, ctx.adjacency, ctx.order).numpy()
                for f in feats
            ]
        assert pop.shape == (2, ctx.env.n_segments, 5)
        for row, single in zip(pop, singles):
            assert np.allclose(row, single, atol=1e-12)

    def test_forward_population_validates_shape(self, simulator, clip):
        agent = CAMO(CamoConfig.smoke(), simulator)
        ctx = agent.context(clip)
        with pytest.raises(NNError):
            agent.policy.forward_population(
                np.zeros((2, 3)), ctx.adjacency, ctx.order
            )

    def test_population_training_runs(self, simulator, clip):
        config = CamoConfig.smoke(
            rl_population=3,
            imitation_epochs=1,
            rl_epochs=2,
            max_updates=2,
        )
        agent = CAMO(config, simulator)
        history = agent.train([clip])
        assert len(history["rl_reward"]) == 2
        assert all(np.isfinite(r) for r in history["rl_reward"])

    def test_population_one_uses_sequential_loop(self, simulator, clip):
        """rl_population=1 must take the original per-step loop — the
        bit-for-bit reproducibility path."""
        config = CamoConfig.smoke(imitation_epochs=0, rl_epochs=1, max_updates=2)
        agent = CAMO(config, simulator)
        called = []
        agent._train_rl_sequential = lambda *a, **k: called.append("seq")
        agent._train_rl_population = lambda *a, **k: called.append("pop")
        agent._train_rl([clip], {"rl_reward": []}, False)
        assert called == ["seq"]

    def test_spectral_eval_mode_deprecated_and_ignored(self, simulator, clip):
        """The retired screening knob warns and no longer affects routing:
        P=1 stays on the sequential loop."""
        with pytest.warns(DeprecationWarning, match="rl_eval_mode"):
            config = CamoConfig.smoke(rl_eval_mode="spectral")
        agent = CAMO(config, simulator)
        called = []
        agent._train_rl_sequential = lambda *a, **k: called.append("seq")
        agent._train_rl_population = lambda *a, **k: called.append("pop")
        agent._train_rl([clip], {"rl_reward": []}, False)
        assert called == ["seq"]

    def test_population_bias_jitter_offsets(self, simulator, clip):
        """Deterministic start-state jitter: offsets cycle across the
        population and every start matches the equivalent reset()."""
        config = CamoConfig.smoke(
            rl_population=3,
            rl_population_bias_offsets=(0.0, 2.0),
            imitation_epochs=0,
            rl_epochs=1,
            max_updates=1,
        )
        agent = CAMO(config, simulator)
        ctx = agent.context(clip)
        biases = [
            config.initial_bias_nm + config.rl_population_bias_offsets[p % 2]
            for p in range(3)
        ]
        starts = ctx.env.reset_population(biases)
        for bias, start in zip(biases, starts):
            reference = ctx.env.reset(bias_nm=bias)
            assert np.array_equal(start.seg_epe, reference.seg_epe)
            assert start.total_epe == reference.total_epe
        # Distinct biases must produce distinct start states.
        assert starts[0].total_epe != starts[1].total_epe
        history = agent.train([clip])
        assert all(np.isfinite(r) for r in history["rl_reward"])

    def test_bias_jitter_validation(self):
        with pytest.raises(ConfigError):
            CamoConfig(rl_population_bias_offsets=("big",))
