"""Tests for Module system, layers, RNN, GraphSAGE, optimizers."""

import numpy as np
import pytest

from nn_gradcheck import check_gradient
from repro.errors import NNError
from repro.geometry import Clip, Polygon, Rect, fragment_clip
from repro.graphs import build_segment_graph
from repro.nn import (
    SGD,
    Adam,
    Conv2d,
    ElmanRNN,
    Flatten,
    GraphSAGEConv,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    Tensor,
)
from repro.nn.sage import mean_adjacency

rng = np.random.default_rng(3)


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = Linear(4, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.parameter_count() == 4 * 2 + 2

    def test_nested_modules(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        assert model.parameter_count() == (4 * 8 + 8) + (8 * 2 + 2)
        names = [n for n, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer2.bias" in names

    def test_zero_grad(self):
        layer = Linear(3, 3)
        out = layer(Tensor(rng.normal(size=(2, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, tmp_path):
        model = Sequential(Linear(4, 8, rng=rng), Tanh(), Linear(8, 2, rng=rng))
        path = str(tmp_path / "model.npz")
        model.save(path)
        clone = Sequential(Linear(4, 8), Tanh(), Linear(8, 2))
        clone.load(path)
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(model(x).numpy(), clone(x).numpy())

    def test_load_mismatch_raises(self):
        a = Linear(4, 2)
        b = Linear(5, 2)
        with pytest.raises(NNError):
            b.load_state_dict(a.state_dict())

    def test_custom_module_forward_required(self):
        class Broken(Module):
            pass

        with pytest.raises(NotImplementedError):
            Broken()(Tensor([1.0]))


class TestLayers:
    def test_linear_shapes_and_grad(self):
        layer = Linear(6, 4, rng=rng)
        x = rng.normal(size=(5, 6))

        def loss(t):
            return (layer(t) ** 2.0).sum()

        check_gradient(loss, x)

    def test_linear_validation(self):
        with pytest.raises(NNError):
            Linear(4, 2)(Tensor(np.zeros((3, 5))))

    def test_conv_layer_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 8, 8, 8)

    def test_cnn_pipeline(self):
        model = Sequential(
            Conv2d(6, 4, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(4 * 4 * 4, 10, rng=rng),
        )
        out = model(Tensor(rng.normal(size=(3, 6, 16, 16))))
        assert out.shape == (3, 10)

    def test_training_reduces_loss(self):
        """A tiny regression problem must be learnable end to end."""
        model = Sequential(Linear(3, 16, rng=rng), Tanh(), Linear(16, 1, rng=rng))
        x = rng.normal(size=(64, 3))
        y = x[:, :1] * 2 - x[:, 1:2] + 0.5
        opt = Adam(model.parameters(), lr=1e-2)
        first = None
        for _ in range(200):
            opt.zero_grad()
            pred = model(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2.0).mean()
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first * 0.1


class TestElmanRNN:
    def test_output_shape(self):
        rnn = ElmanRNN(8, 5, num_layers=3, rng=rng)
        out = rnn(Tensor(rng.normal(size=(7, 8))))
        assert out.shape == (7, 5)

    def test_hidden_state_carries_information(self):
        """Changing an early element must change later outputs."""
        rnn = ElmanRNN(4, 6, num_layers=2, rng=rng)
        seq = rng.normal(size=(5, 4))
        base = rnn(Tensor(seq)).numpy()
        changed = seq.copy()
        changed[0] += 1.0
        after = rnn(Tensor(changed)).numpy()
        assert not np.allclose(base[-1], after[-1])

    def test_step_matches_forward(self):
        rnn = ElmanRNN(4, 6, num_layers=2, rng=rng)
        seq = rng.normal(size=(3, 4))
        full = rnn(Tensor(seq)).numpy()
        state = rnn.initial_state()
        outs = []
        for t in range(3):
            out, state = rnn.step(Tensor(seq[t : t + 1]), state)
            outs.append(out.numpy()[0])
        assert np.allclose(np.stack(outs), full)

    def test_grad_through_time(self):
        rnn = ElmanRNN(3, 4, num_layers=1, rng=rng)
        seq = rng.normal(size=(4, 3))
        check_gradient(lambda t: (rnn(t) ** 2.0).sum(), seq, rtol=1e-3)

    def test_validation(self):
        with pytest.raises(NNError):
            ElmanRNN(4, 4, num_layers=0)
        rnn = ElmanRNN(4, 4)
        with pytest.raises(NNError):
            rnn(Tensor(np.zeros((3, 5))))
        with pytest.raises(NNError):
            rnn.step(Tensor(np.zeros((1, 4))), [])


def tiny_graph():
    clip = Clip(
        name="g",
        bbox=Rect(0, 0, 2000, 2000),
        targets=(
            Polygon.from_rect(Rect.square(500, 500, 70)),
            Polygon.from_rect(Rect.square(1500, 1500, 70)),
        ),
        layer="via",
    )
    return build_segment_graph(fragment_clip(clip))


class TestGraphSAGE:
    def test_adjacency_row_normalized(self):
        graph = tiny_graph()
        adj = mean_adjacency(graph)
        sums = adj.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)
        assert np.all(np.diag(adj) == 0)

    def test_forward_shape(self):
        graph = tiny_graph()
        layer = GraphSAGEConv(6, 10, rng=rng)
        x = Tensor(rng.normal(size=(graph.n_nodes, 6)))
        out = layer(x, mean_adjacency(graph))
        assert out.shape == (graph.n_nodes, 10)

    def test_information_fuses_along_edges(self):
        """Perturbing one node changes its neighbours' embeddings."""
        graph = tiny_graph()
        layer = GraphSAGEConv(4, 4, rng=rng)
        adj = mean_adjacency(graph)
        x = rng.normal(size=(graph.n_nodes, 4))
        base = layer(Tensor(x), adj).numpy()
        x2 = x.copy()
        x2[0] += 10.0
        after = layer(Tensor(x2), adj).numpy()
        neighbor = graph.neighbors[0][0]
        non_neighbor = 4  # other via's segment: different component
        assert not np.allclose(base[neighbor], after[neighbor])
        assert np.allclose(base[non_neighbor], after[non_neighbor])

    def test_grad(self):
        graph = tiny_graph()
        layer = GraphSAGEConv(3, 2, rng=rng)
        adj = mean_adjacency(graph)
        x = rng.normal(size=(graph.n_nodes, 3))
        check_gradient(lambda t: (layer(t, adj) ** 2.0).sum(), x, rtol=1e-3)

    def test_validation(self):
        layer = GraphSAGEConv(3, 2)
        with pytest.raises(NNError):
            layer(Tensor(np.zeros((4, 5))), np.zeros((4, 4)))
        with pytest.raises(NNError):
            layer(Tensor(np.zeros((4, 3))), np.zeros((5, 5)))


class TestOptimizers:
    def quad_param(self):
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_descends(self):
        p = self.quad_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.all(np.abs(p.data) < 1e-3)

    def test_sgd_momentum_faster(self):
        p1, p2 = self.quad_param(), self.quad_param()
        plain = SGD([p1], lr=0.01)
        momentum = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((p1, plain), (p2, momentum)):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        assert np.abs(p2.data).sum() < np.abs(p1.data).sum()

    def test_adam_descends(self):
        p = self.quad_param()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.all(np.abs(p.data) < 1e-2)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 10.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(NNError):
            SGD([], lr=0.1)
        with pytest.raises(NNError):
            SGD([Parameter(np.zeros(2))], lr=-1)
        with pytest.raises(NNError):
            SGD([Parameter(np.zeros(2))], lr=0.1, momentum=1.5)

    def test_step_skips_gradless_params(self):
        p = Parameter(np.ones(2))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grads: must be a no-op
        assert np.all(p.data == 1.0)
