"""Tests for the evaluation harness (tables, runner, quick) and viz."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.eval.metrics import EngineRow, SuiteResult
from repro.eval.tables import format_comparison_table
from repro.viz import ascii_image, save_pgm


def make_result(engine, values):
    result = SuiteResult(engine=engine)
    for i, (epe, pvb, rt) in enumerate(values):
        result.add(
            EngineRow(
                clip_name=f"V{i + 1}", epe_nm=epe, pvband_nm2=pvb, runtime_s=rt
            )
        )
    return result


class TestMetrics:
    def test_sums(self):
        result = make_result("x", [(10, 100, 1.0), (20, 300, 2.0)])
        assert result.epe_sum == 30
        assert result.pvband_sum == 400
        assert result.runtime_sum == 3.0

    def test_row_lookup(self):
        result = make_result("x", [(10, 100, 1.0)])
        assert result.row_for("V1").epe_nm == 10
        with pytest.raises(KeyError):
            result.row_for("V9")


class TestTables:
    def test_paper_format(self):
        ours = make_result("CAMO", [(10, 100, 1.0), (20, 200, 2.0)])
        base = make_result("Calibre", [(15, 110, 2.0), (25, 190, 3.0)])
        text = format_comparison_table(
            [base, ours], design_counts={"V1": 2, "V2": 3}, count_header="Via #"
        )
        assert "Sum" in text and "Ratio" in text
        assert "Via #" in text
        # Ratio of baseline EPE sum (40) to ours (30).
        assert "1.33" in text
        # Ours normalizes to 1.00.
        assert "1.00" in text

    def test_mismatched_clips_rejected(self):
        a = make_result("A", [(1, 1, 1)])
        b = make_result("B", [(1, 1, 1), (2, 2, 2)])
        with pytest.raises(ReproError):
            format_comparison_table([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            format_comparison_table([])


class TestQuick:
    def test_quick_opc_improves(self):
        from repro.eval.quick import quick_opc

        result = quick_opc()
        assert result.camo.epe_total < result.camo.epe_curve[0]
        assert "CAMO" in result.summary()


class TestViz:
    def test_ascii_shape(self):
        image = np.zeros((64, 64))
        image[20:40, 20:40] = 1.0
        art = ascii_image(image, width=32)
        lines = art.split("\n")
        assert len(lines[0]) == 32
        assert "@" in art and " " in art

    def test_ascii_validation(self):
        with pytest.raises(ReproError):
            ascii_image(np.zeros(5))

    def test_pgm_roundtrippable_header(self, tmp_path):
        path = str(tmp_path / "img.pgm")
        image = np.linspace(0, 1, 64 * 48).reshape(48, 64)
        save_pgm(image, path)
        with open(path, "rb") as handle:
            header = handle.readline(), handle.readline(), handle.readline()
            payload = handle.read()
        assert header[0] == b"P5\n"
        assert header[1] == b"64 48\n"
        assert len(payload) == 64 * 48

    def test_pgm_validation(self, tmp_path):
        with pytest.raises(ReproError):
            save_pgm(np.zeros(4), str(tmp_path / "bad.pgm"))


class TestExperimentScales:
    def test_get_scale(self):
        from repro.eval.experiments import SCALES, get_scale

        assert get_scale("smoke") is SCALES["smoke"]
        assert get_scale(SCALES["repro"]) is SCALES["repro"]
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            get_scale("gigantic")

    def test_figure4_text(self):
        from repro.eval.experiments import figure4

        text = figure4((0, 5))
        assert "m1(-2)" in text
        assert "+5.0" in text
