"""Tests for EPE and PV-band metrology, including the sign convention."""

import numpy as np
import pytest

from repro.errors import MetrologyError
from repro.geometry import Clip, Grid, Polygon, Rect, fragment_clip, rasterize
from repro.litho import LithoConfig, LithographySimulator
from repro.metrology import (
    contour_offset_along_normal,
    contour_offset_along_normal_batch,
    contour_offset_reference,
    contour_offsets_grouped,
    measure_epe,
    measure_epe_batch,
    measure_epe_grouped,
    pvband_area,
    pvband_area_batch,
    pvband_image,
    segment_epe,
    segment_epe_batch,
)


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=8)
    )


@pytest.fixture(scope="module")
def grid():
    return Grid(0, 0, 8.0, 160, 160)


def clip_with_via(size=70):
    return Clip(
        name="t",
        bbox=Rect(0, 0, 1280, 1280),
        targets=(Polygon.from_rect(Rect.square(640, 640, size)),),
        layer="via",
    )


class TestContourOffset:
    def test_synthetic_step_field(self):
        """A synthetic linear intensity ramp has an exactly computable contour."""
        g = Grid(0, 0, 1.0, 64, 64)
        xs = g.x_centers()
        # Intensity falls linearly with x: I = 1 - x/64; threshold 0.5 at x=32.
        aerial = np.tile(1.0 - xs / 64.0, (64, 1))
        points = np.array([[30.0, 32.0]])
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(aerial, g, points, normals, 0.5)
        assert offset[0] == pytest.approx(2.0, abs=0.05)

    def test_negative_when_contour_inside(self):
        g = Grid(0, 0, 1.0, 64, 64)
        xs = g.x_centers()
        aerial = np.tile(1.0 - xs / 64.0, (64, 1))
        points = np.array([[40.0, 32.0]])  # target edge beyond the contour
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(aerial, g, points, normals, 0.5)
        assert offset[0] == pytest.approx(-8.0, abs=0.05)

    def test_clamps_when_unprinted(self):
        g = Grid(0, 0, 1.0, 64, 64)
        aerial = np.zeros((64, 64))
        points = np.array([[32.0, 32.0]])
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(
            aerial, g, points, normals, 0.5, search_nm=20
        )
        assert offset[0] == -20

    def test_clamps_when_flooded(self):
        g = Grid(0, 0, 1.0, 64, 64)
        aerial = np.ones((64, 64))
        points = np.array([[32.0, 32.0]])
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(
            aerial, g, points, normals, 0.5, search_nm=20
        )
        assert offset[0] == 20

    def test_shape_validation(self):
        g = Grid(0, 0, 1.0, 8, 8)
        with pytest.raises(MetrologyError):
            contour_offset_along_normal(
                np.ones((8, 8)), g, np.zeros((2, 2)), np.zeros((3, 2)), 0.5
            )

    def test_param_validation(self):
        g = Grid(0, 0, 1.0, 8, 8)
        with pytest.raises(MetrologyError):
            contour_offset_along_normal(
                np.ones((8, 8)), g, np.zeros((1, 2)), np.ones((1, 2)), 0.5,
                search_nm=-1,
            )

    def test_crossing_exactly_at_sample(self):
        """A sample that equals the threshold is 'printed' there, so the
        crossing interpolates to exactly that sample's offset."""
        g = Grid(0, 0, 1.0, 64, 64)
        xs = g.x_centers()
        aerial = np.tile(1.0 - xs / 64.0, (64, 1))
        # I(x) = 1 - x/64 = 0.5 exactly at x = 32; measure from x = 30.
        points = np.array([[30.0, 32.0]])
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(aerial, g, points, normals, 0.5)
        reference = contour_offset_reference(aerial, g, points, normals, 0.5)
        assert offset[0] == reference[0] == pytest.approx(2.0, abs=1e-12)

    def test_flat_profile_at_threshold_clamps(self):
        """An everywhere-at-threshold profile never falls below it, so
        the outward walk finds no crossing and clamps to +search_nm."""
        g = Grid(0, 0, 1.0, 32, 32)
        aerial = np.full((32, 32), 0.5)
        points = np.array([[16.0, 16.0], [10.0, 20.0]])
        normals = np.array([[1.0, 0.0], [0.0, 1.0]])
        offsets = contour_offset_along_normal(
            aerial, g, points, normals, 0.5, search_nm=12
        )
        assert np.all(offsets == 12)
        assert np.array_equal(
            offsets,
            contour_offset_reference(
                aerial, g, points, normals, 0.5, search_nm=12
            ),
        )

    def test_unprinted_feature_clamps_negative(self):
        """Zero intensity everywhere: the inward walk never rises above
        the threshold, so every point clamps to -search_nm (the
        reference agrees bit-for-bit)."""
        g = Grid(0, 0, 1.0, 32, 32)
        aerial = np.zeros((32, 32))
        points = np.array([[16.0, 16.0], [8.0, 24.0], [24.0, 8.0]])
        normals = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        offsets = contour_offset_along_normal(
            aerial, g, points, normals, 0.5, search_nm=15
        )
        assert np.all(offsets == -15)
        assert np.array_equal(
            offsets,
            contour_offset_reference(
                aerial, g, points, normals, 0.5, search_nm=15
            ),
        )


def _smooth_random_aerial(seed: int, n: int = 96) -> np.ndarray:
    rng = np.random.default_rng(seed)
    aerial = rng.random((n, n))
    for _ in range(3):
        aerial = (
            aerial
            + np.roll(aerial, 1, 0) + np.roll(aerial, -1, 0)
            + np.roll(aerial, 1, 1) + np.roll(aerial, -1, 1)
        ) / 5.0
    return aerial


class TestVectorizedParity:
    """The vectorized resolver is the production path; the retained scalar
    reference is its executable specification."""

    GRID = Grid(0, 0, 2.0, 96, 96)

    def _points(self, seed, count=64):
        rng = np.random.default_rng(seed)
        points = rng.uniform(10.0, 182.0, size=(count, 2))
        angles = rng.uniform(0.0, 2.0 * np.pi, count)
        normals = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        return points, normals

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.7])
    def test_bitwise_equal_to_reference_on_random_aerials(self, seed, threshold):
        aerial = _smooth_random_aerial(seed)
        points, normals = self._points(seed + 100)
        vectorized = contour_offset_along_normal(
            aerial, self.GRID, points, normals, threshold,
            search_nm=30, step_nm=1.5,
        )
        reference = contour_offset_reference(
            aerial, self.GRID, points, normals, threshold,
            search_nm=30, step_nm=1.5,
        )
        assert np.array_equal(vectorized, reference)

    def test_batch_matches_per_aerial(self):
        aerials = np.stack([_smooth_random_aerial(s) for s in range(4)])
        points, normals = self._points(7)
        batched = contour_offset_along_normal_batch(
            aerials, self.GRID, points, normals, 0.5
        )
        assert batched.shape == (4, len(points))
        for aerial, row in zip(aerials, batched):
            single = contour_offset_along_normal(
                aerial, self.GRID, points, normals, 0.5
            )
            assert np.array_equal(row, single)

    def test_grouped_matches_per_item(self):
        aerials = np.stack([_smooth_random_aerial(s + 10) for s in range(3)])
        groups = [self._points(s, count=8 * (s + 1)) for s in range(3)]
        results = contour_offsets_grouped(
            aerials,
            [self.GRID] * 3,
            [g[0] for g in groups],
            [g[1] for g in groups],
            0.5,
        )
        for aerial, (points, normals), row in zip(aerials, groups, results):
            assert np.array_equal(
                row,
                contour_offset_along_normal(
                    aerial, self.GRID, points, normals, 0.5
                ),
            )

    def test_batch_validates_stack_shape(self):
        points, normals = self._points(1, count=2)
        with pytest.raises(MetrologyError):
            contour_offset_along_normal_batch(
                np.ones((8, 8)), self.GRID, points, normals, 0.5
            )

    def test_grouped_validates_lengths(self):
        with pytest.raises(MetrologyError):
            contour_offsets_grouped(
                np.ones((2, 8, 8)), [self.GRID], [np.zeros((1, 2))],
                [np.zeros((1, 2))], 0.5,
            )


class TestEPESign:
    """The paper's convention: undersized print -> negative EPE -> the
    modulator should push segments outward."""

    def test_undersized_via_negative_epe(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        # Mask at target size: via underprints (intensity lacking).
        mask = rasterize(clip.targets, grid)
        aerial = sim.aerial(mask)
        report = measure_epe(aerial, grid, segments, sim.config.threshold)
        assert report.count == 4
        assert np.all(report.values < 0)

    def test_oversized_mask_moves_epe_positive(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        big = rasterize([Polygon.from_rect(Rect.square(640, 640, 120))], grid)
        small = rasterize([Polygon.from_rect(Rect.square(640, 640, 80))], grid)
        epe_big = measure_epe(sim.aerial(big), grid, segments, sim.config.threshold)
        epe_small = measure_epe(sim.aerial(small), grid, segments, sim.config.threshold)
        assert epe_big.values.mean() > epe_small.values.mean()

    def test_segment_epe_covers_all_segments(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        aerial = sim.aerial(rasterize(clip.targets, grid))
        values = segment_epe(aerial, grid, segments, sim.config.threshold)
        assert len(values) == len(segments)

    def test_report_statistics(self):
        from repro.metrology.epe import EPEReport

        report = EPEReport(values=np.array([3.0, -4.0, 0.5, 7.0]))
        assert report.total_abs == pytest.approx(14.5)
        assert report.mean_abs == pytest.approx(14.5 / 4)
        assert report.max_abs == 7.0
        assert report.violations(5.0) == 1
        assert report.count == 4

    def test_empty_report(self):
        from repro.metrology.epe import EPEReport

        report = EPEReport(values=np.zeros(0))
        assert report.total_abs == 0
        assert report.mean_abs == 0


class TestBatchedEPE:
    """Batched entry points vs mapping the scalar ones over the stack."""

    def _aerials(self, sim, grid, sizes):
        return np.stack(
            [
                sim.aerial(
                    rasterize(
                        [Polygon.from_rect(Rect.square(640, 640, size))], grid
                    )
                )
                for size in sizes
            ]
        )

    def test_measure_epe_batch_matches_scalar(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        aerials = self._aerials(sim, grid, (70, 90, 120))
        reports = measure_epe_batch(
            aerials, grid, segments, sim.config.threshold
        )
        assert len(reports) == 3
        for aerial, report in zip(aerials, reports):
            single = measure_epe(aerial, grid, segments, sim.config.threshold)
            assert np.array_equal(report.values, single.values)

    def test_segment_epe_batch_matches_scalar(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        aerials = self._aerials(sim, grid, (70, 110))
        batched = segment_epe_batch(
            aerials, grid, segments, sim.config.threshold
        )
        assert batched.shape == (2, len(segments))
        for aerial, row in zip(aerials, batched):
            assert np.array_equal(
                row, segment_epe(aerial, grid, segments, sim.config.threshold)
            )

    def test_measure_epe_grouped_heterogeneous(self, sim, grid):
        clips = [clip_with_via(70), clip_with_via(110)]
        segments = [fragment_clip(c) for c in clips]
        aerials = self._aerials(sim, grid, (70, 110))
        reports = measure_epe_grouped(
            aerials, [grid, grid], segments, sim.config.threshold
        )
        for aerial, segs, report in zip(aerials, segments, reports):
            single = measure_epe(aerial, grid, segs, sim.config.threshold)
            assert np.array_equal(report.values, single.values)

    def test_empty_segments(self, sim, grid):
        aerials = self._aerials(sim, grid, (70,))
        assert measure_epe_batch(aerials, grid, [], 0.3)[0].count == 0
        assert segment_epe_batch(aerials, grid, [], 0.3).shape == (1, 0)


class TestPVBand:
    def test_disjoint_band(self):
        inner = np.zeros((10, 10), dtype=np.uint8)
        outer = np.zeros((10, 10), dtype=np.uint8)
        inner[4:6, 4:6] = 1
        outer[3:7, 3:7] = 1
        band = pvband_image(inner, outer)
        assert band.sum() == 16 - 4
        assert pvband_area(inner, outer, pixel_nm=2.0) == 12 * 4

    def test_identical_corners_zero_band(self):
        img = np.ones((5, 5), dtype=np.uint8)
        assert pvband_area(img, img, 4.0) == 0

    def test_shape_mismatch(self):
        with pytest.raises(MetrologyError):
            pvband_image(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_bad_pixel(self):
        with pytest.raises(MetrologyError):
            pvband_area(np.zeros((2, 2)), np.zeros((2, 2)), 0)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(9)
        inner = rng.random((4, 12, 12)) > 0.6
        outer = inner | (rng.random((4, 12, 12)) > 0.5)
        areas = pvband_area_batch(inner, outer, pixel_nm=3.0)
        assert areas.shape == (4,)
        for i_img, o_img, area in zip(inner, outer, areas):
            assert area == pvband_area(i_img, o_img, pixel_nm=3.0)

    def test_batch_validation(self):
        with pytest.raises(MetrologyError):
            pvband_area_batch(np.zeros((2, 2)), np.zeros((2, 2)), 4.0)
        with pytest.raises(MetrologyError):
            pvband_area_batch(np.zeros((1, 2, 2)), np.zeros((1, 2, 2)), 0.0)

    def test_real_simulation_band(self, grid):
        # A wide dose excursion guarantees a visible band even on the
        # coarse 8 nm test grid (the +/-2% default can stay sub-pixel).
        sim = LithographySimulator(
            LithoConfig(
                pixel_nm=8.0, period_nm=1024.0, max_kernels=8, dose_variation=0.15
            )
        )
        mask = rasterize([Polygon.from_rect(Rect.square(640, 640, 100))], grid)
        result = sim.simulate_mask(mask, grid)
        area = pvband_area(result.inner, result.outer, grid.pixel_nm)
        assert area > 0
