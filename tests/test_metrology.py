"""Tests for EPE and PV-band metrology, including the sign convention."""

import numpy as np
import pytest

from repro.errors import MetrologyError
from repro.geometry import Clip, Grid, Polygon, Rect, fragment_clip, rasterize
from repro.litho import LithoConfig, LithographySimulator
from repro.metrology import (
    contour_offset_along_normal,
    measure_epe,
    pvband_area,
    pvband_image,
    segment_epe,
)


@pytest.fixture(scope="module")
def sim():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=8)
    )


@pytest.fixture(scope="module")
def grid():
    return Grid(0, 0, 8.0, 160, 160)


def clip_with_via(size=70):
    return Clip(
        name="t",
        bbox=Rect(0, 0, 1280, 1280),
        targets=(Polygon.from_rect(Rect.square(640, 640, size)),),
        layer="via",
    )


class TestContourOffset:
    def test_synthetic_step_field(self):
        """A synthetic linear intensity ramp has an exactly computable contour."""
        g = Grid(0, 0, 1.0, 64, 64)
        xs = g.x_centers()
        # Intensity falls linearly with x: I = 1 - x/64; threshold 0.5 at x=32.
        aerial = np.tile(1.0 - xs / 64.0, (64, 1))
        points = np.array([[30.0, 32.0]])
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(aerial, g, points, normals, 0.5)
        assert offset[0] == pytest.approx(2.0, abs=0.05)

    def test_negative_when_contour_inside(self):
        g = Grid(0, 0, 1.0, 64, 64)
        xs = g.x_centers()
        aerial = np.tile(1.0 - xs / 64.0, (64, 1))
        points = np.array([[40.0, 32.0]])  # target edge beyond the contour
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(aerial, g, points, normals, 0.5)
        assert offset[0] == pytest.approx(-8.0, abs=0.05)

    def test_clamps_when_unprinted(self):
        g = Grid(0, 0, 1.0, 64, 64)
        aerial = np.zeros((64, 64))
        points = np.array([[32.0, 32.0]])
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(
            aerial, g, points, normals, 0.5, search_nm=20
        )
        assert offset[0] == -20

    def test_clamps_when_flooded(self):
        g = Grid(0, 0, 1.0, 64, 64)
        aerial = np.ones((64, 64))
        points = np.array([[32.0, 32.0]])
        normals = np.array([[1.0, 0.0]])
        offset = contour_offset_along_normal(
            aerial, g, points, normals, 0.5, search_nm=20
        )
        assert offset[0] == 20

    def test_shape_validation(self):
        g = Grid(0, 0, 1.0, 8, 8)
        with pytest.raises(MetrologyError):
            contour_offset_along_normal(
                np.ones((8, 8)), g, np.zeros((2, 2)), np.zeros((3, 2)), 0.5
            )

    def test_param_validation(self):
        g = Grid(0, 0, 1.0, 8, 8)
        with pytest.raises(MetrologyError):
            contour_offset_along_normal(
                np.ones((8, 8)), g, np.zeros((1, 2)), np.ones((1, 2)), 0.5,
                search_nm=-1,
            )


class TestEPESign:
    """The paper's convention: undersized print -> negative EPE -> the
    modulator should push segments outward."""

    def test_undersized_via_negative_epe(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        # Mask at target size: via underprints (intensity lacking).
        mask = rasterize(clip.targets, grid)
        aerial = sim.aerial(mask)
        report = measure_epe(aerial, grid, segments, sim.config.threshold)
        assert report.count == 4
        assert np.all(report.values < 0)

    def test_oversized_mask_moves_epe_positive(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        big = rasterize([Polygon.from_rect(Rect.square(640, 640, 120))], grid)
        small = rasterize([Polygon.from_rect(Rect.square(640, 640, 80))], grid)
        epe_big = measure_epe(sim.aerial(big), grid, segments, sim.config.threshold)
        epe_small = measure_epe(sim.aerial(small), grid, segments, sim.config.threshold)
        assert epe_big.values.mean() > epe_small.values.mean()

    def test_segment_epe_covers_all_segments(self, sim, grid):
        clip = clip_with_via(70)
        segments = fragment_clip(clip)
        aerial = sim.aerial(rasterize(clip.targets, grid))
        values = segment_epe(aerial, grid, segments, sim.config.threshold)
        assert len(values) == len(segments)

    def test_report_statistics(self):
        from repro.metrology.epe import EPEReport

        report = EPEReport(values=np.array([3.0, -4.0, 0.5, 7.0]))
        assert report.total_abs == pytest.approx(14.5)
        assert report.mean_abs == pytest.approx(14.5 / 4)
        assert report.max_abs == 7.0
        assert report.violations(5.0) == 1
        assert report.count == 4

    def test_empty_report(self):
        from repro.metrology.epe import EPEReport

        report = EPEReport(values=np.zeros(0))
        assert report.total_abs == 0
        assert report.mean_abs == 0


class TestPVBand:
    def test_disjoint_band(self):
        inner = np.zeros((10, 10), dtype=np.uint8)
        outer = np.zeros((10, 10), dtype=np.uint8)
        inner[4:6, 4:6] = 1
        outer[3:7, 3:7] = 1
        band = pvband_image(inner, outer)
        assert band.sum() == 16 - 4
        assert pvband_area(inner, outer, pixel_nm=2.0) == 12 * 4

    def test_identical_corners_zero_band(self):
        img = np.ones((5, 5), dtype=np.uint8)
        assert pvband_area(img, img, 4.0) == 0

    def test_shape_mismatch(self):
        with pytest.raises(MetrologyError):
            pvband_image(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_bad_pixel(self):
        with pytest.raises(MetrologyError):
            pvband_area(np.zeros((2, 2)), np.zeros((2, 2)), 0)

    def test_real_simulation_band(self, grid):
        # A wide dose excursion guarantees a visible band even on the
        # coarse 8 nm test grid (the +/-2% default can stay sub-pixel).
        sim = LithographySimulator(
            LithoConfig(
                pixel_nm=8.0, period_nm=1024.0, max_kernels=8, dose_variation=0.15
            )
        )
        mask = rasterize([Polygon.from_rect(Rect.square(640, 640, 100))], grid)
        result = sim.simulate_mask(mask, grid)
        area = pvband_area(result.inner, result.outer, grid.pixel_nm)
        assert area > 0
