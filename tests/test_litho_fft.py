"""Tests for the pluggable FFT backend behind the lithography engines."""

import numpy as np
import pytest

from repro.errors import LithoError
from repro.litho import (
    LithoConfig,
    LithographySimulator,
    resolve_fft_backend,
    scipy_fft_available,
)
from repro.litho.fft import FFTBackend


class TestResolution:
    def test_numpy_backend(self):
        backend = resolve_fft_backend("numpy")
        assert backend.name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(LithoError):
            resolve_fft_backend("fftw")

    def test_bad_workers_rejected(self):
        with pytest.raises(LithoError):
            resolve_fft_backend("numpy", workers=0)

    def test_auto_resolves_to_concrete_backend(self):
        backend = resolve_fft_backend("auto")
        assert backend.name in ("numpy", "scipy")

    def test_auto_single_worker_is_numpy(self):
        """With one worker threading cannot help, so auto must pick the
        bit-for-bit reproducible numpy backend."""
        assert resolve_fft_backend("auto", workers=1).name == "numpy"

    def test_scipy_request_degrades_gracefully(self):
        backend = resolve_fft_backend("scipy", workers=2)
        expected = "scipy" if scipy_fft_available() else "numpy"
        assert backend.name == expected

    def test_backends_are_cached(self):
        assert resolve_fft_backend("numpy", 1) is resolve_fft_backend("numpy", 1)


class TestTransforms:
    def test_numpy_backend_matches_np_fft_exactly(self):
        rng = np.random.default_rng(0)
        stack = rng.random((3, 16, 16))
        backend = FFTBackend(name="numpy", workers=1)
        assert np.array_equal(backend.fft2(stack), np.fft.fft2(stack, axes=(-2, -1)))
        spec = np.fft.fft2(stack, axes=(-2, -1))
        assert np.array_equal(
            backend.ifft2(spec), np.fft.ifft2(spec, axes=(-2, -1))
        )

    @pytest.mark.skipif(
        not scipy_fft_available(), reason="scipy not installed"
    )
    def test_scipy_backend_close_to_numpy(self):
        """scipy and numpy both wrap pocketfft but sum in different SIMD
        orders; they must agree far inside the 1e-9 golden tolerance."""
        rng = np.random.default_rng(1)
        stack = rng.random((2, 64, 64))
        scipy_backend = FFTBackend(name="scipy", workers=2)
        numpy_backend = FFTBackend(name="numpy", workers=1)
        delta = np.abs(
            scipy_backend.fft2(stack) - numpy_backend.fft2(stack)
        ).max()
        assert delta < 1e-10


class TestSimulatorIntegration:
    def test_litho_config_validates_backend(self):
        with pytest.raises(LithoError):
            LithoConfig(fft_backend="fftw")

    def test_kernel_set_carries_backend(self):
        sim = LithographySimulator(
            LithoConfig(
                pixel_nm=8.0, period_nm=1024.0, max_kernels=4,
                fft_backend="numpy",
            )
        )
        assert sim.kernel_set(0.0).fft.name == "numpy"

    @pytest.mark.skipif(
        not scipy_fft_available(), reason="scipy not installed"
    )
    def test_scipy_simulation_close_to_numpy(self):
        """Full corner sweep under the scipy backend stays within the
        golden tolerance of the numpy reference, single and batched."""
        from repro.geometry import Grid, Polygon, Rect, rasterize

        grid = Grid(0, 0, 8.0, 128, 128)
        mask = rasterize(
            [Polygon.from_rect(Rect.square(512, 512, 90))], grid
        )
        base = dict(pixel_nm=8.0, period_nm=1024.0, max_kernels=4)
        sim_np = LithographySimulator(LithoConfig(fft_backend="numpy", **base))
        sim_sp = LithographySimulator(
            LithoConfig(fft_backend="scipy", fft_workers=2, **base)
        )
        ref = sim_np.simulate_mask(mask, grid)
        got = sim_sp.simulate_mask(mask, grid)
        assert np.abs(got.aerial - ref.aerial).max() < 1e-9
        # The batched band engine shares the backend: every member is
        # bit-for-bit equal to the others and within round-off of the
        # same-backend single-mask reference.
        batched = sim_sp.simulate_batch(np.stack([mask, mask]), grid)
        assert np.array_equal(batched[0].aerial, batched[1].aerial)
        for result in batched:
            assert np.abs(result.aerial - got.aerial).max() < 1e-9
