"""Tests for the durable outcome journal and crash-recovery resume
(repro/service/journal.py + the ``--journal`` wiring of service.py,
daemon.py, and the ``python -m repro resume`` CLI).

The acceptance pins:

* The journal survives torn tails (crash mid-append): corrupt bytes are
  truncated on open, intact records are kept.
* A journaled sweep SIGKILLed mid-suite resumes from the journal,
  re-runs *only* the unfinished clips, and the merged results are
  bit-for-bit identical to an uninterrupted run.
* Resume refuses a journal written under a different engine fingerprint.
"""

import json
import os
import signal
import struct
import subprocess
import sys
import textwrap
import time
import zlib

import pytest

from repro.backend import torch_available
from repro.data.via_bench import generate_via_clip
from repro.errors import JournalError, ServiceError
from repro.litho.simulator import LithoConfig
from repro.service import (
    EngineSpec,
    MaskOptService,
    OptResult,
    OutcomeJournal,
    open_journal,
    resume_suite,
)
from repro.service.journal import JOURNAL_MAGIC, _FRAME

OVERRIDES = {"max_updates": 3, "initial_bias_nm": 3.0}


def _litho_config(**extra):
    return LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=4, **extra)


def _suite():
    return [
        generate_via_clip("jv1", n_vias=2, seed=51, clip_nm=1024),
        generate_via_clip("jv2", n_vias=2, seed=52, clip_nm=1024),
        generate_via_clip("jv3", n_vias=2, seed=53, clip_nm=1024),
    ]


def _result(ticket=1, clip="jv1"):
    return OptResult(
        request_id=ticket, clip_name=clip, engine="mbopc",
        epe_nm=1.25, pvband_nm2=10.0, runtime_s=0.5, steps=3,
        early_exited=False, verified_epe_nm=1.25, outcome="verified",
    )


# -- framing / recovery units -------------------------------------------------

class TestJournalFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "a.journal")
        with OutcomeJournal(path) as journal:
            journal.log_admit(1, "jv1", "mbopc", "fp00")
            journal.log_result(1, _result(), "fp00")
        reopened = OutcomeJournal(path)
        kinds = [r["type"] for r in reopened.records]
        assert kinds == ["meta", "admit", "result"]
        assert reopened.results_for("fp00")["jv1"]["epe_nm"] == 1.25
        assert reopened.fingerprints() == ("fp00",)
        assert reopened.truncated_bytes == 0
        stats = reopened.stats()
        assert stats["admitted"] == 1 and stats["results"] == 1
        reopened.close()

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        path = str(tmp_path / "torn.journal")
        with OutcomeJournal(path) as journal:
            journal.log_admit(1, "jv1", "mbopc", "fp00")
            journal.log_result(1, _result(), "fp00")
        # Simulate a crash mid-append: half a frame of garbage.
        with open(path, "ab") as handle:
            handle.write(_FRAME.pack(9999, 123456))
            handle.write(b"only-part-of-the-payload")
        size_before = os.path.getsize(path)
        recovered = OutcomeJournal(path)
        assert [r["type"] for r in recovered.records] == [
            "meta", "admit", "result"
        ]
        assert recovered.truncated_bytes > 0
        assert os.path.getsize(path) < size_before
        # ...and the truncated journal keeps accepting appends.
        recovered.log_admit(2, "jv2", "mbopc", "fp00")
        recovered.close()
        assert OutcomeJournal(path).records[-1]["clip"] == "jv2"

    def test_bad_crc_stops_the_scan(self, tmp_path):
        path = str(tmp_path / "crc.journal")
        with OutcomeJournal(path) as journal:
            journal.log_admit(1, "jv1", "mbopc", "fp00")
        payload = json.dumps({"type": "admit", "ticket": 2}).encode()
        with open(path, "ab") as handle:
            handle.write(_FRAME.pack(
                len(payload), zlib.crc32(payload) ^ 0xFF
            ))
            handle.write(payload)
        recovered = OutcomeJournal(path)
        assert [r["type"] for r in recovered.records] == ["meta", "admit"]
        assert recovered.truncated_bytes > 0
        recovered.close()

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "notajournal"
        path.write_bytes(b"definitely not " + JOURNAL_MAGIC)
        with pytest.raises(JournalError, match="bad magic"):
            OutcomeJournal(str(path))

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = OutcomeJournal(str(tmp_path / "c.journal"))
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.log_admit(1, "jv1", "mbopc", "fp")

    def test_open_journal_normalizes(self, tmp_path):
        assert open_journal(None) == (None, False)
        owned, flag = open_journal(str(tmp_path / "n.journal"))
        assert isinstance(owned, OutcomeJournal) and flag is True
        passthrough, flag2 = open_journal(owned)
        assert passthrough is owned and flag2 is False
        owned.close()

    def test_result_record_round_trips_optresult(self):
        restored = OptResult.from_dict(_result().to_dict())
        assert restored == OptResult.from_dict(_result().to_dict())
        assert restored.epe_nm == 1.25
        assert restored.outcome == "verified"
        with pytest.raises(ServiceError, match="bad OptResult record"):
            OptResult.from_dict({"clip": "x"})


# -- resume semantics ---------------------------------------------------------

def test_partial_journal_resume_is_bit_for_bit(tmp_path):
    """Journal a full sweep, keep only a prefix of its records (as if
    killed mid-suite), resume: only the missing clips re-run and the
    merge equals the uninterrupted reference."""
    suite = _suite()
    reference = MaskOptService(
        litho_config=_litho_config()
    ).run_suite_sharded("mbopc", suite, workers=2,
                        engine_overrides=OVERRIDES)

    # Build a journal holding admissions for all clips but the result of
    # only the first: exactly the state a kill after one verification
    # flush leaves behind.
    spec = EngineSpec(
        engine="mbopc", litho=_litho_config(),
        overrides=tuple(sorted(OVERRIDES.items())),
    )
    fingerprint = spec.fingerprint()
    path = str(tmp_path / "partial.journal")
    with OutcomeJournal(path) as journal:
        for index, clip in enumerate(suite):
            journal.log_admit(index, clip, "mbopc", fingerprint)
        journal.log_result(0, reference[0], fingerprint)

    service = MaskOptService(litho_config=_litho_config())
    results, replayed = resume_suite(
        service, "mbopc", suite, path, workers=2,
        engine_overrides=OVERRIDES,
    )
    assert replayed == 1
    assert [r.clip_name for r in results] == [c.name for c in suite]
    for got, ref in zip(results, reference):
        assert got.epe_nm == ref.epe_nm
        assert got.pvband_nm2 == ref.pvband_nm2
        assert got.steps == ref.steps
        assert got.verified_epe_nm == ref.verified_epe_nm
    # The resumed run journaled the remainder: a second resume replays
    # everything and runs nothing.
    results2, replayed2 = resume_suite(
        service, "mbopc", suite, path, workers=2,
        engine_overrides=OVERRIDES,
    )
    assert replayed2 == len(suite)
    assert [r.epe_nm for r in results2] == [r.epe_nm for r in results]


def test_resume_refuses_fingerprint_mismatch(tmp_path):
    path = str(tmp_path / "foreign.journal")
    with OutcomeJournal(path) as journal:
        journal.log_admit(0, "jv1", "mbopc", "feedfacefeedface")
    service = MaskOptService(litho_config=_litho_config())
    with pytest.raises(JournalError, match="refusing to merge"):
        resume_suite(
            service, "mbopc", _suite(), path,
            engine_overrides=OVERRIDES,
        )


def test_resume_needs_clips(tmp_path):
    service = MaskOptService(litho_config=_litho_config())
    with pytest.raises(JournalError, match="at least one clip"):
        resume_suite(
            service, "mbopc", [], str(tmp_path / "x.journal"),
        )


def test_fingerprint_tracks_identity_not_backend():
    """The engine fingerprint covers everything that changes numbers
    (engine, overrides, litho optics, seed) and nothing that doesn't
    (array backend, device, FFT worker counts, store path)."""
    base = EngineSpec(engine="mbopc", litho=_litho_config(),
                      overrides=tuple(sorted(OVERRIDES.items())))
    with pytest.warns(DeprecationWarning, match="fft_backend"):
        legacy_spelling = _litho_config(fft_backend="numpy")
    same = EngineSpec(engine="mbopc", litho=legacy_spelling,
                      overrides=tuple(sorted(OVERRIDES.items())))
    assert base.fingerprint() == same.fingerprint()
    same_backend = EngineSpec(engine="mbopc",
                              litho=_litho_config(backend="scipy"),
                              overrides=tuple(sorted(OVERRIDES.items())))
    assert base.fingerprint() == same_backend.fingerprint()
    other_engine = EngineSpec(engine="ilt", litho=_litho_config(),
                              overrides=())
    assert base.fingerprint() != other_engine.fingerprint()
    other_overrides = EngineSpec(
        engine="mbopc", litho=_litho_config(),
        overrides=tuple(sorted({**OVERRIDES, "max_updates": 5}.items())),
    )
    assert base.fingerprint() != other_overrides.fingerprint()
    other_optics = EngineSpec(
        engine="mbopc", litho=_litho_config(defocus_nm=30.0),
        overrides=tuple(sorted(OVERRIDES.items())),
    )
    assert base.fingerprint() != other_optics.fingerprint()


@pytest.mark.parametrize("resume_backend", [
    "scipy",
    pytest.param("torch", marks=pytest.mark.skipif(
        not torch_available(), reason="torch not installed")),
])
def test_journal_written_under_numpy_resumes_under_other_backend(
    tmp_path, resume_backend
):
    """Array backend is a deployment knob: a journal written on a numpy
    host replays in full on a scipy-threaded or torch-device host (same
    fingerprint), with zero clips re-run."""
    suite = _suite()
    numpy_spec = EngineSpec(
        engine="mbopc", litho=_litho_config(backend="numpy"),
        overrides=tuple(sorted(OVERRIDES.items())),
    )
    fingerprint = numpy_spec.fingerprint()
    path = str(tmp_path / "numpy-host.journal")
    with OutcomeJournal(path) as journal:
        for index, clip in enumerate(suite):
            journal.log_admit(index, clip, "mbopc", fingerprint)
            journal.log_result(
                index, _result(ticket=index, clip=clip.name), fingerprint
            )

    service = MaskOptService(
        litho_config=_litho_config(backend=resume_backend)
    )
    results, replayed = resume_suite(
        service, "mbopc", suite, path, workers=2,
        engine_overrides=OVERRIDES,
    )
    assert replayed == len(suite)
    assert [r.clip_name for r in results] == [c.name for c in suite]


# -- SIGKILL + resume smoke (the whole point) ---------------------------------

_KILLABLE_SWEEP = textwrap.dedent("""
    import sys

    from repro.litho.simulator import LithoConfig
    from repro.service import MaskOptService
    from tests.test_service_journal import OVERRIDES, _litho_config, _suite

    service = MaskOptService(litho_config=_litho_config())
    service.run_suite_sharded(
        "mbopc", _suite(), workers=2, engine_overrides=OVERRIDES,
        journal=sys.argv[1], stream_min_bin=1,
    )
    print("SWEEP-COMPLETED", flush=True)
""")


def test_sigkilled_sweep_resumes_bit_for_bit(tmp_path):
    """Run a journaled sharded sweep in a subprocess, SIGKILL it once the
    journal holds at least one verified result, resume in-process: only
    the unfinished clips re-run and the merge equals an uninterrupted
    reference run."""
    path = str(tmp_path / "killed.journal")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), os.pardir, "src"),
            os.path.join(os.path.dirname(__file__), os.pardir),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILLABLE_SWEEP, path],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    try:
        deadline = time.monotonic() + 120.0
        killed = False
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it — also fine
            if os.path.exists(path):
                try:
                    journal = OutcomeJournal(path)
                    results = len(
                        [r for r in journal.records
                         if r["type"] == "result"]
                    )
                    journal.close()
                except JournalError:
                    results = 0  # racing the writer's first bytes
                if results >= 1:
                    proc.send_signal(signal.SIGKILL)
                    killed = True
                    break
            time.sleep(0.02)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)

    reference = MaskOptService(
        litho_config=_litho_config()
    ).run_suite_sharded("mbopc", _suite(), workers=2,
                        engine_overrides=OVERRIDES)
    service = MaskOptService(litho_config=_litho_config())
    results, replayed = resume_suite(
        service, "mbopc", _suite(), path, workers=2,
        engine_overrides=OVERRIDES,
    )
    if killed:
        assert replayed >= 1
    assert [r.clip_name for r in results] == [r.clip_name for r in reference]
    for got, ref in zip(results, reference):
        assert got.epe_nm == ref.epe_nm
        assert got.pvband_nm2 == ref.pvband_nm2
        assert got.steps == ref.steps
        assert got.verified_epe_nm == ref.verified_epe_nm
