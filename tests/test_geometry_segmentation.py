"""Tests for boundary fragmentation (via and metal rules)."""

import pytest

from repro.errors import SegmentationError
from repro.geometry.layout import Clip
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.segmentation import (
    Segment,
    fragment_clip,
    fragment_polygon,
    measure_points,
)


def via_clip(n=1):
    targets = tuple(
        Polygon.from_rect(Rect.square(300 + 300 * i, 300, 70)) for i in range(n)
    )
    return Clip(name="t", bbox=Rect(0, 0, 2000, 2000), targets=targets, layer="via")


def metal_clip(width=60, length=600):
    wire = Polygon.from_rect(Rect(100, 100, 100 + length, 100 + width))
    return Clip(name="m", bbox=Rect(0, 0, 1500, 1500), targets=(wire,), layer="metal")


class TestViaFragmentation:
    def test_one_via_four_segments(self):
        segs = fragment_clip(via_clip(1))
        assert len(segs) == 4
        assert all(s.measure_point is not None for s in segs)

    def test_measure_points_at_edge_centers(self):
        segs = fragment_clip(via_clip(1))
        centers = {s.measure_point for s in segs}
        assert centers == {(300, 265), (335, 300), (300, 335), (265, 300)}

    def test_segments_in_boundary_order(self):
        segs = fragment_clip(via_clip(1))
        for s, t in zip(segs, segs[1:] + segs[:1]):
            assert s.b == t.a

    def test_multi_via_counts(self):
        segs = fragment_clip(via_clip(3))
        assert len(segs) == 12
        assert {s.poly_index for s in segs} == {0, 1, 2}

    def test_normals_outward(self):
        segs = fragment_clip(via_clip(1))
        cx, cy = 300, 300
        for s in segs:
            mx, my = s.control
            nx, ny = s.normal
            # The normal must point away from the via centre.
            assert (mx - cx) * nx + (my - cy) * ny > 0


class TestMetalFragmentation:
    def test_horizontal_edge_split_60nm(self):
        segs = fragment_clip(metal_clip(width=60, length=600))
        horiz = [s for s in segs if s.axis == "h"]
        vert = [s for s in segs if s.axis == "v"]
        # 600 nm edge -> 10 measure points each on top and bottom.
        assert len([s for s in horiz if s.measure_point]) == 20
        assert len(vert) == 2
        assert all(s.measure_point is None for s in vert)

    def test_measure_point_spacing(self):
        segs = fragment_clip(metal_clip(width=60, length=600))
        bottom = sorted(
            s.measure_point[0]
            for s in segs
            if s.measure_point and s.normal == (0, -1)
        )
        gaps = [b - a for a, b in zip(bottom, bottom[1:])]
        assert all(g == pytest.approx(60) for g in gaps)

    def test_remainder_absorbed_by_line_ends(self):
        # 150 nm edge -> 2 measure points, end fragments longer than middles.
        segs = fragment_clip(metal_clip(width=60, length=150))
        bottom = [s for s in segs if s.measure_point and s.normal == (0, -1)]
        assert len(bottom) == 2
        lengths = [s.length for s in bottom]
        assert sum(lengths) == pytest.approx(150)
        assert lengths[0] == pytest.approx(lengths[1])

    def test_short_edge_single_unmeasured(self):
        segs = fragment_clip(metal_clip(width=60, length=50))
        horiz = [s for s in segs if s.axis == "h"]
        assert all(s.measure_point is None for s in horiz)
        assert all(s.length == pytest.approx(50) for s in horiz)

    def test_boundary_order_closes(self):
        segs = fragment_clip(metal_clip())
        for s, t in zip(segs, segs[1:] + segs[:1]):
            assert s.b == t.a

    def test_control_points_are_midpoints(self):
        for s in fragment_clip(metal_clip()):
            assert s.control == (
                pytest.approx((s.a[0] + s.b[0]) / 2),
                pytest.approx((s.a[1] + s.b[1]) / 2),
            )


class TestHelpers:
    def test_measure_points_helper(self):
        segs = fragment_clip(via_clip(2))
        assert len(measure_points(segs)) == 8

    def test_unknown_layer_raises(self):
        poly = Polygon.from_rect(Rect.square(100, 100, 70))
        with pytest.raises(SegmentationError):
            fragment_polygon(poly, 0, "poly")

    def test_global_indices_unique_and_ordered(self):
        segs = fragment_clip(via_clip(3))
        assert [s.index for s in segs] == list(range(len(segs)))

    def test_segment_level(self):
        s = Segment(
            index=0,
            poly_index=0,
            a=(0, 5),
            b=(10, 5),
            axis="h",
            normal=(0, -1),
            control=(5, 5),
            measure_point=(5, 5),
        )
        assert s.level == 5
