"""Spectral autograd ops, SpectralConv2d, and the versioned checkpoint format.

Also carries the finite-difference gradcheck coverage for the existing
``conv2d``/``max_pool2d`` ops (previously only elementwise/matmul paths
were checked).
"""

import os

import numpy as np
import pytest

from nn_gradcheck import check_gradient, numeric_gradient
from repro.errors import NNError
from repro.nn import (
    CHECKPOINT_FORMAT_VERSION,
    Linear,
    SpectralConv2d,
    Tensor,
    conv2d,
    irfft2,
    load_checkpoint,
    max_pool2d,
    rfft2,
    save_checkpoint,
)

rng = np.random.default_rng(42)


class TestRfft2:
    def test_forward_matches_numpy(self):
        x = rng.normal(size=(2, 5, 6))
        out = rfft2(Tensor(x)).numpy()
        spec = np.fft.rfft2(x, axes=(-2, -1))
        assert out.shape == (2, 5, 4, 2)
        np.testing.assert_allclose(out[..., 0], spec.real, atol=1e-12)
        np.testing.assert_allclose(out[..., 1], spec.imag, atol=1e-12)

    def test_rejects_1d(self):
        with pytest.raises(NNError):
            rfft2(Tensor(np.zeros(4)))

    @pytest.mark.parametrize("shape", [(4, 5), (4, 6), (2, 3, 4)])
    def test_gradcheck(self, shape):
        value = rng.normal(size=shape)
        weights = Tensor(rng.normal(size=np.fft.rfft2(value).shape + (2,)))
        check_gradient(lambda t: (rfft2(t) * weights).sum(), value)

    def test_roundtrip(self):
        x = rng.normal(size=(3, 6, 7))
        back = irfft2(rfft2(Tensor(x)), s=(6, 7)).numpy()
        np.testing.assert_allclose(back, x, atol=1e-12)


class TestIrfft2:
    @pytest.mark.parametrize("s", [(4, 6), (4, 5)])
    def test_forward_matches_numpy(self, s):
        half = s[1] // 2 + 1
        y = rng.normal(size=(2, s[0], half, 2))
        out = irfft2(Tensor(y), s=s).numpy()
        ref = np.fft.irfft2(y[..., 0] + 1j * y[..., 1], s=s, axes=(-2, -1))
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(NNError):
            irfft2(Tensor(np.zeros((4, 3, 2))), s=(4, 6))  # half should be 4

    @pytest.mark.parametrize("s", [(4, 6), (4, 5), (3, 4)])
    def test_gradcheck(self, s):
        # Even widths exercise the Nyquist-column adjoint scaling.
        half = s[1] // 2 + 1
        value = rng.normal(size=(s[0], half, 2))
        weights = Tensor(rng.normal(size=s))
        check_gradient(lambda t: (irfft2(t, s=s) * weights).sum(), value)


class TestSpectralConv2d:
    def test_output_shape(self):
        layer = SpectralConv2d(2, 3, modes=(2, 2), rng=np.random.default_rng(1))
        out = layer(Tensor(rng.normal(size=(4, 2, 8, 8))))
        assert out.shape == (4, 3, 8, 8)

    def test_resolution_independent(self):
        layer = SpectralConv2d(1, 2, modes=(2, 2), rng=np.random.default_rng(1))
        assert layer(Tensor(rng.normal(size=(1, 1, 8, 8)))).shape == (1, 2, 8, 8)
        assert layer(Tensor(rng.normal(size=(1, 1, 6, 10)))).shape == (1, 2, 6, 10)

    def test_validation(self):
        layer = SpectralConv2d(2, 2, modes=(3, 3), rng=np.random.default_rng(1))
        with pytest.raises(NNError):
            layer(Tensor(np.zeros((1, 2, 4, 8))))  # 2*m1 > H
        with pytest.raises(NNError):
            layer(Tensor(np.zeros((1, 1, 8, 8))))  # channel mismatch
        with pytest.raises(NNError):
            SpectralConv2d(1, 1, modes=(0, 2))

    def test_linear_in_input(self):
        layer = SpectralConv2d(1, 1, modes=(2, 2), rng=np.random.default_rng(2))
        a = rng.normal(size=(1, 1, 6, 6))
        b = rng.normal(size=(1, 1, 6, 6))
        out_sum = layer(Tensor(a + 2.0 * b)).numpy()
        parts = layer(Tensor(a)).numpy() + 2.0 * layer(Tensor(b)).numpy()
        np.testing.assert_allclose(out_sum, parts, atol=1e-10)

    def test_gradcheck_input(self):
        layer = SpectralConv2d(2, 2, modes=(2, 2), rng=np.random.default_rng(3))
        value = rng.normal(size=(1, 2, 6, 6))
        check_gradient(lambda t: (layer(t) ** 2).sum(), value, atol=1e-5)

    @pytest.mark.parametrize("name", ["weight_pos", "weight_neg"])
    def test_gradcheck_weights(self, name):
        layer = SpectralConv2d(2, 2, modes=(2, 2), rng=np.random.default_rng(4))
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        param = getattr(layer, name)
        value = param.data.copy()

        layer.zero_grad()
        (layer(x) ** 2).sum().backward()
        analytic = param.grad.copy()

        def scalar_fn(arr):
            param.data = arr
            return float(((layer(x) ** 2).sum()).data)

        numeric = numeric_gradient(scalar_fn, value.copy())
        param.data = value
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)


class TestConvPoolGradchecks:
    def test_conv2d_input_grad(self):
        weight = Tensor(rng.normal(size=(2, 3, 3, 3)))
        value = rng.normal(size=(2, 3, 5, 5))
        check_gradient(
            lambda t: (conv2d(t, weight, padding=1) ** 2).sum(), value, atol=1e-5
        )

    def test_conv2d_weight_grad(self):
        x = Tensor(rng.normal(size=(2, 3, 5, 5)))
        value = rng.normal(size=(2, 3, 3, 3))
        check_gradient(
            lambda t: (conv2d(x, t, stride=2) ** 2).sum(), value, atol=1e-5
        )

    def test_conv2d_bias_grad(self):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)))
        weight = Tensor(rng.normal(size=(3, 2, 3, 3)))
        value = rng.normal(size=(3,))
        check_gradient(
            lambda t: (conv2d(x, weight, bias=t) ** 2).sum(), value, atol=1e-5
        )

    def test_max_pool2d_grad(self):
        # Distinct values keep argmax ties (non-differentiable points) away.
        value = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)
        check_gradient(lambda t: (max_pool2d(t, kernel=2) ** 2).sum(), value)


class TestCheckpointFormat:
    def test_module_save_load_roundtrip(self, tmp_path):
        model = Linear(4, 3, rng=np.random.default_rng(5))
        path = str(tmp_path / "model.npz")
        model.save(path)

        other = Linear(4, 3, rng=np.random.default_rng(99))
        other.load(path)
        np.testing.assert_array_equal(other.weight.data, model.weight.data)
        # No temp residue left next to the checkpoint.
        assert os.listdir(tmp_path) == ["model.npz"]

    def test_checkpoint_bytes_deterministic(self, tmp_path):
        model = Linear(4, 3, rng=np.random.default_rng(5))
        p1, p2 = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        model.save(p1)
        model.save(p2)
        with open(p1, "rb") as f1, open(p2, "rb") as f2:
            assert f1.read() == f2.read()

    def test_extra_metadata_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        state = {"w": rng.normal(size=(2, 2))}
        save_checkpoint(path, state, extra={"width": 12, "modes": [3, 3]})
        loaded, extra = load_checkpoint(path)
        np.testing.assert_array_equal(loaded["w"], state["w"])
        assert int(extra["width"]) == 12
        assert extra["modes"].tolist() == [3, 3]

    def test_fingerprint_rejects_corruption(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, {"w": np.ones((2, 2))})
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["w"] = payload["w"] + 1.0  # corrupt a parameter, keep meta
        np.savez_compressed(path, **payload)
        with pytest.raises(NNError, match="fingerprint"):
            load_checkpoint(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, {"w": np.ones(2)})
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["__repro_ckpt_version"] = np.array(CHECKPOINT_FORMAT_VERSION + 1)
        np.savez_compressed(path, **payload)
        with pytest.raises(NNError, match="version"):
            load_checkpoint(path)

    def test_legacy_meta_free_npz_loads(self, tmp_path):
        model = Linear(3, 2, rng=np.random.default_rng(6))
        path = str(tmp_path / "legacy.npz")
        np.savez_compressed(path, **model.state_dict())
        other = Linear(3, 2, rng=np.random.default_rng(7))
        other.load(path)
        np.testing.assert_array_equal(other.weight.data, model.weight.data)

    def test_meta_name_collision_rejected(self, tmp_path):
        with pytest.raises(NNError, match="collides"):
            save_checkpoint(
                str(tmp_path / "x.npz"), {"__repro_ckpt_version": np.ones(1)}
            )
