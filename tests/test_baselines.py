"""Tests for the baseline OPC engines (MB-OPC, RL-OPC, DAMO-like, ILT)."""

import numpy as np
import pytest

from repro.baselines import MBOPC, RLOPC, DamoLikeOPC, PixelILT
from repro.baselines.damo import DamoConfig
from repro.baselines.ilt import ILTConfig
from repro.baselines.mbopc import MBOPCConfig
from repro.baselines.rlopc import RLOPCConfig
from repro.data.via_bench import generate_via_clip
from repro.errors import ConfigError
from repro.litho import LithoConfig, LithographySimulator


@pytest.fixture(scope="module")
def simulator():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=6)
    )


@pytest.fixture(scope="module")
def clip():
    return generate_via_clip("base", n_vias=2, seed=31, clip_nm=1280)


class TestMBOPC:
    def test_converges(self, simulator, clip):
        engine = MBOPC(MBOPCConfig(initial_bias_nm=3.0), simulator)
        outcome = engine.optimize(clip)
        assert outcome.epe_total < outcome.epe_curve[0]

    def test_gain_decay_schedule(self, simulator, clip):
        engine = MBOPC(
            MBOPCConfig(initial_bias_nm=3.0, gain=0.5, gain_decay=0.5), simulator
        )
        late_actions = engine._decide(np.full(8, -10.0), step=10)
        early_actions = engine._decide(np.full(8, -10.0), step=0)
        assert np.all(late_actions <= early_actions)

    def test_deadband(self, simulator):
        engine = MBOPC(MBOPCConfig(deadband_nm=1.5), simulator)
        actions = engine._decide(np.array([0.5, -1.0, 3.0, -4.0]), step=0)
        assert actions[0] == 2 and actions[1] == 2  # inside deadband: hold
        assert actions[2] < 2 and actions[3] > 2

    def test_early_exit(self, simulator, clip):
        engine = MBOPC(
            MBOPCConfig(initial_bias_nm=3.0, early_exit_threshold=1e9), simulator
        )
        outcome = engine.optimize(clip)
        assert outcome.early_exited and outcome.steps == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MBOPCConfig(gain=0)
        with pytest.raises(ConfigError):
            MBOPCConfig(gain_decay=-1)
        with pytest.raises(ConfigError):
            MBOPCConfig(early_exit_mode="sometimes")


class TestRLOPC:
    def test_train_and_optimize(self, simulator, clip):
        config = RLOPCConfig(
            encode_size=16, imitation_epochs=2, rl_epochs=1,
            max_updates=3, initial_bias_nm=3.0,
        )
        engine = RLOPC(config, simulator)
        history = engine.train([clip])
        assert len(history["imitation_logp"]) == 2
        outcome = engine.optimize(clip, early_exit=False)
        assert outcome.steps == 3
        assert outcome.trajectory.length == 3

    def test_metal_profile(self):
        config = RLOPCConfig.metal()
        assert config.max_updates == 15
        assert config.early_exit_mode == "per_point"

    def test_env_cached(self, simulator, clip):
        engine = RLOPC(RLOPCConfig(encode_size=16), simulator)
        assert engine._env(clip) is engine._env(clip)


class TestDamoLike:
    def test_one_shot_profile(self, simulator, clip):
        config = DamoConfig(
            encode_size=16, epochs=3, teacher_updates=3, initial_bias_nm=3.0
        )
        engine = DamoLikeOPC(config, simulator)
        losses = engine.train([clip])
        assert len(losses) == 3
        assert losses[-1] <= losses[0]  # regression loss decreases
        outcome = engine.optimize(clip)
        assert outcome.steps == 1  # single inference, no iteration
        assert outcome.runtime_s > 0

    def test_offsets_bounded(self, simulator, clip):
        config = DamoConfig(encode_size=16, epochs=1, max_offset_nm=6.0)
        engine = DamoLikeOPC(config, simulator)
        engine.train([clip])
        outcome = engine.optimize(clip)
        moved = outcome.final_state.mask.offsets
        assert np.all(np.abs(moved) <= config.max_offset_nm + 1)


class TestPixelILT:
    def test_objective_decreases(self, simulator, clip):
        engine = PixelILT(ILTConfig(iterations=5), simulator)
        outcome = engine.optimize(clip)
        assert outcome.epe_curve[-1] < outcome.epe_curve[0]
        assert outcome.mask_image.dtype == np.uint8

    def test_mask_prints_targets(self, simulator, clip):
        engine = PixelILT(ILTConfig(iterations=8), simulator)
        outcome = engine.optimize(clip)
        assert outcome.mask_image.sum() > 0
        assert outcome.epe_total < 8 * 40  # better than fully unprinted

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ILTConfig(iterations=0)
        with pytest.raises(ConfigError):
            ILTConfig(step_size=-1)
