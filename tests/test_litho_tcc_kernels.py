"""Tests for TCC construction and SOCS kernel generation."""

import numpy as np
import pytest

from repro.errors import LithoError
from repro.litho.kernels import build_kernel_set
from repro.litho.source import SourceSpec
from repro.litho.tcc import TCCResult, build_tcc, frequency_lattice, socs_kernels

SMALL = dict(period_nm=1024.0)


@pytest.fixture(scope="module")
def tcc():
    return build_tcc(SourceSpec(), **SMALL)


@pytest.fixture(scope="module")
def kernel_set():
    return build_kernel_set(pixel_nm=8.0, period_nm=1024.0, fft_backend="numpy")


class TestLattice:
    def test_origin_always_included(self):
        pts = frequency_lattice(3)
        assert [0, 0] in pts.tolist()

    def test_radius_respected(self):
        pts = frequency_lattice(5)
        assert np.all(pts[:, 0] ** 2 + pts[:, 1] ** 2 <= 25)

    def test_count_grows_quadratically(self):
        assert len(frequency_lattice(10)) > 3 * len(frequency_lattice(5))


class TestTCC:
    def test_hermitian(self, tcc):
        assert np.allclose(tcc.matrix, tcc.matrix.conj().T, atol=1e-12)

    def test_positive_semidefinite(self, tcc):
        eigvals = np.linalg.eigvalsh(tcc.matrix)
        assert eigvals.min() > -1e-10

    def test_dc_term_is_unity(self, tcc):
        """TCC(0,0) = 1: every source point passes the pupil unattenuated."""
        origin = np.nonzero(
            (tcc.shift_indices[:, 0] == 0) & (tcc.shift_indices[:, 1] == 0)
        )[0][0]
        assert tcc.matrix[origin, origin].real == pytest.approx(1.0)
        assert tcc.matrix[origin, origin].imag == pytest.approx(0.0, abs=1e-12)

    def test_focus_tcc_is_real(self):
        tcc = build_tcc(SourceSpec(), defocus_nm=0.0, **SMALL)
        assert np.abs(tcc.matrix.imag).max() < 1e-12

    def test_defocus_tcc_is_complex(self):
        tcc = build_tcc(SourceSpec(), defocus_nm=25.0, **SMALL)
        assert np.abs(tcc.matrix.imag).max() > 1e-6

    def test_coarse_lattice_rejected(self):
        with pytest.raises(LithoError):
            build_tcc(SourceSpec(), period_nm=100.0)

    def test_bad_period_rejected(self):
        with pytest.raises(LithoError):
            build_tcc(SourceSpec(), period_nm=-5)


class TestSOCS:
    def test_weights_descending_nonnegative(self, tcc):
        weights, _ = socs_kernels(tcc, pixel_nm=8.0)
        assert np.all(weights >= 0)
        assert np.all(np.diff(weights) <= 1e-12)

    def test_first_kernel_dominates(self, tcc):
        weights, _ = socs_kernels(tcc, pixel_nm=8.0)
        assert weights[0] > 0.5 * weights.sum()

    def test_kernel_count_capped(self, tcc):
        weights, kernels = socs_kernels(tcc, pixel_nm=8.0, max_kernels=3)
        assert len(weights) == len(kernels) == 3

    def test_kernel_centered(self, tcc):
        _, kernels = socs_kernels(tcc, pixel_nm=8.0, max_kernels=1)
        k = np.abs(kernels[0])
        centre = np.unravel_index(np.argmax(k), k.shape)
        assert centre == (k.shape[0] // 2, k.shape[1] // 2)

    def test_bad_energy_fraction(self, tcc):
        with pytest.raises(LithoError):
            socs_kernels(tcc, pixel_nm=8.0, energy_fraction=0.0)


class TestKernelSet:
    def test_open_frame_normalized(self, kernel_set):
        mask = np.ones((192, 192))
        intensity = kernel_set.convolve_intensity(mask)
        assert intensity.mean() == pytest.approx(1.0, rel=1e-6)
        assert intensity.std() < 1e-6

    def test_dark_frame_zero(self, kernel_set):
        mask = np.zeros((192, 192))
        assert kernel_set.convolve_intensity(mask).max() == 0

    def test_intensity_nonnegative(self, kernel_set):
        rng = np.random.default_rng(0)
        mask = (rng.random((192, 192)) > 0.7).astype(float)
        assert kernel_set.convolve_intensity(mask).min() >= 0

    def test_translation_equivariance(self, kernel_set):
        """Shifting the mask shifts the aerial image (circular)."""
        mask = np.zeros((192, 192))
        mask[60:80, 60:80] = 1
        base = kernel_set.convolve_intensity(mask)
        rolled = kernel_set.convolve_intensity(np.roll(mask, (7, 11), axis=(0, 1)))
        assert np.allclose(np.roll(base, (7, 11), axis=(0, 1)), rolled, atol=1e-9)

    def test_window_too_small_rejected(self, kernel_set):
        """A 128 nm window holds no usable pupil band."""
        with pytest.raises(LithoError, match="too coarse"):
            kernel_set.convolve_intensity(np.ones((16, 16)))

    def test_non_2d_rejected(self, kernel_set):
        with pytest.raises(LithoError):
            kernel_set.convolve_intensity(np.ones((4, 192, 192)))

    def test_save_load_roundtrip(self, kernel_set, tmp_path):
        """Native sets persist their optics and reload frequency-native:
        the reloaded set must simulate identically."""
        path = str(tmp_path / "kernels.npz")
        kernel_set.save(path)
        # The transform backend is an execution choice and is never
        # persisted; requesting the original backend restores bit-for-bit
        # equality with the pre-save set.
        loaded = type(kernel_set).load(path, fft_backend="numpy")
        assert loaded.is_native
        assert loaded.pixel_nm == kernel_set.pixel_nm
        weights, kernels = kernel_set.spatial_kernels()
        loaded_weights, loaded_kernels = loaded.spatial_kernels()
        assert np.allclose(loaded_weights, weights)
        assert np.allclose(loaded_kernels, kernels)
        mask = np.zeros((128, 128))
        mask[50:70, 50:70] = 1.0
        assert np.array_equal(
            loaded.convolve_intensity(mask),
            kernel_set.convolve_intensity(mask),
        )

    def test_legacy_file_without_optics_loads_spatial(self, kernel_set, tmp_path):
        """Old .npz files (spatial arrays only) still load and simulate
        through the full-grid path."""
        weights, kernels = kernel_set.spatial_kernels()
        path = str(tmp_path / "legacy.npz")
        np.savez_compressed(
            path, weights=weights, kernels=kernels,
            pixel_nm=kernel_set.pixel_nm, defocus_nm=kernel_set.defocus_nm,
        )
        loaded = type(kernel_set).load(path)
        assert not loaded.is_native
        assert loaded.count == len(weights)
        mask = np.zeros((128, 128))
        mask[50:70, 50:70] = 1.0
        intensity = loaded.convolve_intensity(mask)
        assert intensity.shape == (128, 128)
        assert intensity.max() > 0

    def test_legacy_load_save_load_roundtrip_scipy(self, kernel_set, tmp_path):
        """Legacy spatial ``.npz`` sets survive a load -> save -> load
        round trip under the scipy backend: the arrays are preserved
        bit-for-bit and both generations simulate identically (and stay
        inside the golden tolerance of the numpy backend)."""
        weights, kernels = kernel_set.spatial_kernels()
        original = str(tmp_path / "legacy.npz")
        np.savez_compressed(
            original, weights=weights, kernels=kernels,
            pixel_nm=kernel_set.pixel_nm, defocus_nm=kernel_set.defocus_nm,
        )
        first = type(kernel_set).load(original, fft_backend="scipy")
        assert not first.is_native
        assert first.fft.name in ("scipy", "numpy")  # numpy if scipy absent

        resaved = str(tmp_path / "resaved.npz")
        first.save(resaved)
        second = type(kernel_set).load(resaved, fft_backend="scipy")
        assert not second.is_native
        assert np.array_equal(second.weights, first.weights)
        assert np.array_equal(second.kernels, first.kernels)
        assert second.pixel_nm == first.pixel_nm
        assert second.defocus_nm == first.defocus_nm

        mask = np.zeros((128, 128))
        mask[50:70, 50:70] = 1.0
        assert np.array_equal(
            second.convolve_intensity(mask), first.convolve_intensity(mask)
        )
        reference = type(kernel_set).load(
            original, fft_backend="numpy"
        ).convolve_intensity(mask)
        assert np.allclose(second.convolve_intensity(mask), reference, atol=1e-9)

    def test_cache_reuse(self):
        a = build_kernel_set(pixel_nm=8.0, period_nm=1024.0)
        b = build_kernel_set(pixel_nm=8.0, period_nm=1024.0)
        assert a is b
