"""Frequency-native engine tests: per-grid TCC lattices, band-limited
SOCS spectra, and the exactness acceptance of the unified subgrid engine
(max |dI| <= 1e-9 against the retained spatial reference path)."""

import numpy as np
import pytest

from repro.errors import LithoError
from repro.geometry import Grid, Polygon, Rect, rasterize
from repro.litho import (
    LithoConfig,
    LithographySimulator,
    build_kernel_set,
    build_tcc_grid,
    scipy_fft_available,
    socs_spectra,
)
from repro.litho.source import SourceSpec
from repro.litho.tcc import build_tcc, elliptic_lattice

MAX_ABS_ERROR = 1e-9


class TestGridLattice:
    def test_elliptic_lattice_isotropic_matches_disk(self):
        pts = elliptic_lattice(5, 5, 1.0, 1.0, 5.0)
        assert [0, 0] in pts.tolist()
        assert np.all(pts[:, 0] ** 2 + pts[:, 1] ** 2 <= 25)

    def test_elliptic_lattice_anisotropy(self):
        """Finer row spacing admits more row indices under the cutoff."""
        pts = elliptic_lattice(10, 10, 0.5, 1.0, 5.0)
        assert np.abs(pts[:, 0]).max() == 10
        assert np.abs(pts[:, 1]).max() == 5

    def test_grid_tcc_refines_square_build(self):
        """On a square grid, build_tcc_grid shares the square build's
        lattice spacing and covers at least its lattice (the grid build
        keeps the full physical pupil disk |f| <= cutoff, while the
        legacy square build rounds to an integer index radius)."""
        grid_tcc = build_tcc_grid(SourceSpec(), (128, 128), 8.0)
        square_tcc = build_tcc(SourceSpec(), period_nm=1024.0)
        assert grid_tcc.lattice_spacing == square_tcc.lattice_spacing
        grid_pts = {tuple(p) for p in grid_tcc.shift_indices}
        square_pts = {tuple(p) for p in square_tcc.shift_indices}
        assert square_pts <= grid_pts

    def test_non_square_grid_band(self):
        tcc = build_tcc_grid(SourceSpec(), (176, 144), 8.0)
        b0, b1 = tcc.band_radii
        # Finer row spacing (taller window) admits a wider row band.
        assert b0 > b1 >= 2
        with pytest.raises(LithoError, match="single spacing"):
            tcc.lattice_spacing

    def test_too_small_grid_rejected(self):
        with pytest.raises(LithoError, match="too coarse"):
            build_tcc_grid(SourceSpec(), (16, 16), 8.0)

    def test_socs_spectra_align_with_lattice(self):
        tcc = build_tcc_grid(SourceSpec(), (128, 128), 8.0)
        weights, coefficients = socs_spectra(tcc, max_kernels=4)
        assert coefficients.shape == (len(weights), len(tcc.shift_indices))
        assert np.all(weights >= 0)
        assert np.all(np.diff(weights) <= 1e-12)


@pytest.fixture(scope="module")
def simulator():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, max_kernels=8, fft_backend="numpy")
    )


def pattern_masks(grid, count=3):
    rng = np.random.default_rng(7)
    masks = []
    for _ in range(count):
        polys = []
        for _ in range(2):
            cx = float(rng.integers(420, int(grid.cols * grid.pixel_nm) - 420))
            cy = float(rng.integers(420, int(grid.rows * grid.pixel_nm) - 420))
            size = float(rng.integers(60, 130))
            polys.append(Polygon.from_rect(Rect.square(cx, cy, size)))
        masks.append(rasterize(polys, grid))
    return masks


class TestExactness:
    """Acceptance: the unified engine matches the retained spatial
    reference to <= 1e-9 max absolute intensity error."""

    @pytest.mark.parametrize(
        "grid",
        [
            Grid(0, 0, 8.0, 160, 160),
            Grid(0, 0, 8.0, 250, 250),
            Grid(0, 0, 8.0, 176, 144),
            Grid(0, 0, 4.0, 320, 320),
        ],
        ids=["square-160", "square-250", "non-square", "production-4nm"],
    )
    def test_band_engine_matches_reference(self, simulator, grid):
        masks = pattern_masks(grid)
        batched = simulator.simulate_batch(np.stack(masks), grid)
        for mask, result in zip(masks, batched):
            reference = simulator.simulate_mask(mask, grid)
            assert (
                np.abs(result.aerial - reference.aerial).max() < MAX_ABS_ERROR
            )
            assert (
                np.abs(result.aerial_defocus - reference.aerial_defocus).max()
                < MAX_ABS_ERROR
            )
            for corner in ("nominal", "inner", "outer"):
                assert np.array_equal(
                    result.printed[corner], reference.printed[corner]
                )

    @pytest.mark.skipif(
        not scipy_fft_available(), reason="scipy not installed"
    )
    def test_band_engine_matches_reference_scipy(self):
        sim = LithographySimulator(
            LithoConfig(pixel_nm=8.0, max_kernels=8, fft_backend="scipy",
                        fft_workers=2)
        )
        grid = Grid(0, 0, 8.0, 160, 160)
        masks = pattern_masks(grid)
        batched = sim.simulate_batch(np.stack(masks), grid)
        for mask, result in zip(masks, batched):
            reference = sim.simulate_mask(mask, grid)
            assert (
                np.abs(result.aerial - reference.aerial).max() < MAX_ABS_ERROR
            )

    def test_open_frame_images_to_unity(self, simulator):
        grid = Grid(0, 0, 8.0, 160, 160)
        result = simulator.simulate_batch(np.ones((1, 160, 160)), grid)[0]
        assert np.abs(result.aerial - 1.0).max() < 1e-12

    def test_per_grid_weights_are_normalized(self, simulator):
        for shape in ((160, 160), (176, 144)):
            band = simulator.kernel_set(0.0).band_spectra(shape)
            dc = band.sub_spectra[:, 0, 0] * (
                shape[0] * shape[1] / (band.subgrid[0] * band.subgrid[1])
            )
            assert np.sum(band.weights * np.abs(dc) ** 2) == pytest.approx(1.0)


class TestBandCaches:
    def test_band_spectra_cached_per_shape(self, simulator):
        kernel_set = simulator.kernel_set(0.0)
        a = kernel_set.band_spectra((160, 160))
        b = kernel_set.band_spectra((160, 160))
        assert a is b

    def test_band_cache_lru_eviction(self):
        kernel_set = build_kernel_set(
            pixel_nm=8.0, period_nm=1024.0, max_kernels=4,
            fft_backend="numpy",
        )
        kernel_set._band_cache.clear()
        capacity = kernel_set.fft_cache_capacity
        shapes = [(96 + 4 * i, 96 + 4 * i) for i in range(capacity + 2)]
        for shape in shapes:
            kernel_set.band_spectra(shape)
        assert len(kernel_set._band_cache) == capacity
        assert shapes[0] not in kernel_set._band_cache
        # Recomputation after eviction reproduces the spectra exactly.
        rebuilt = kernel_set.band_spectra(shapes[0])
        fresh = kernel_set._build_band_spectra(shapes[0])
        assert np.array_equal(rebuilt.sub_spectra, fresh.sub_spectra)
        assert np.array_equal(rebuilt.weights, fresh.weights)


class TestIltBandContract:
    def test_weights_and_spectra_share_shape_decomposition(self, simulator):
        """The pixel-ILT contract: weights_for and kernel_spectra come
        from the same per-grid band decomposition, and the reconstructed
        intensity matches the engine."""
        kernel_set = simulator.kernel_set(0.0)
        grid = Grid(0, 0, 8.0, 160, 160)
        mask = pattern_masks(grid, count=1)[0]
        weights = kernel_set.weights_for(mask.shape)
        mask_fft = kernel_set.fft.fft2(mask)
        fields = kernel_set.fields_from_mask_fft(mask_fft)
        assert len(weights) == len(fields)
        intensity = np.zeros(mask.shape)
        for w, ck in zip(weights, fields):
            intensity += w * (ck.real**2 + ck.imag**2)
        reference = kernel_set.convolve_intensity(mask)
        assert np.abs(intensity - reference).max() < 1e-12
