"""Tests for the deterministic fault-injection harness and the
at-least-once delivery semantics it exercises (repro/service/faults.py +
the retry/deadline/stall machinery of workqueue.py, sharding.py,
daemon.py).

The acceptance pins:

* A worker killed mid-clip is retried and the final suite is bit-for-bit
  identical to an uninterrupted run — in both dispatch modes.
* Retry exhaustion and missed deadlines are *typed* outcomes
  (``RetriesExhausted``, ``DeadlineExceeded``), distinguishable from
  engine failures.
* Every fault fires deterministically from a seeded :class:`FaultPlan` —
  no sleeps, no races, no luck.
"""

import os
import pickle

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceeded,
    FaultInjected,
    RetriesExhausted,
    ServiceError,
)
from repro.litho.simulator import LithoConfig
from repro.data.via_bench import generate_via_clip
from repro.service import (
    EngineSpec,
    FaultPlan,
    FaultRule,
    ShardedSuiteRunner,
    clear_fault_plan,
    install_fault_plan,
    maybe_fault,
)
from repro.service.faults import (
    FAULT_PLAN_ENV,
    _seeded_decision,
    corrupt_file,
)

OVERRIDES = {"max_updates": 3, "initial_bias_nm": 3.0}


def _litho_config(**extra):
    return LithoConfig(pixel_nm=8.0, period_nm=1024.0, max_kernels=4, **extra)


def _spec():
    return EngineSpec(
        engine="mbopc",
        litho=_litho_config(),
        overrides=tuple(sorted(OVERRIDES.items())),
    )


def _suite():
    return [
        generate_via_clip("fv1", n_vias=2, seed=41, clip_nm=1024),
        generate_via_clip("fv2", n_vias=2, seed=42, clip_nm=1024),
        generate_via_clip("fv3", n_vias=2, seed=43, clip_nm=1024),
    ]


def _runner(plan=None, **kwargs):
    """Runner with fast recovery knobs so fault tests stay quick."""
    kwargs.setdefault("grace_s", 0.3)
    kwargs.setdefault("retry_backoff_s", 0.05)
    return ShardedSuiteRunner(_spec(), 2, fault_plan=plan, **kwargs)


def assert_outcomes_identical(got, reference):
    assert [o.clip_name for o in got] == [o.clip_name for o in reference]
    for a, b in zip(got, reference):
        assert a.epe_total == b.epe_total
        assert a.pvband == b.pvband
        assert a.steps == b.steps
        assert a.early_exited == b.early_exited
        assert a.epe_search_nm == b.epe_search_nm
        assert np.array_equal(a.mask_image, b.mask_image)


@pytest.fixture(scope="module")
def reference_outcomes():
    """The pinned reference: an uninterrupted work-stealing sweep."""
    return _runner().run(_suite(), optimize_kwargs={})


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_fault_plan()


# -- FaultPlan / FaultRule units ----------------------------------------------

class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ServiceError, match="action"):
            FaultRule(point="p", action="explode")
        with pytest.raises(ServiceError, match="non-empty"):
            FaultRule(point="", action="crash")
        with pytest.raises(ServiceError, match="1-based"):
            FaultRule(point="p", action="crash", at=(0,))
        with pytest.raises(ServiceError, match="rate"):
            FaultRule(point="p", action="crash", rate=1.5)

    def test_hit_count_firing(self):
        plan = FaultPlan([FaultRule(point="p", action="corrupt", at=(2,))])
        assert plan.check("p", "x") is None
        assert plan.check("p", "x") is not None  # second hit
        assert plan.check("p", "x") is None
        assert plan.fired("p") == 1

    def test_fires_every_hit_without_at_or_rate(self):
        plan = FaultPlan([FaultRule(point="p", action="corrupt")])
        assert plan.check("p") is not None
        assert plan.check("p") is not None

    def test_match_filters_context(self):
        plan = FaultPlan(
            [FaultRule(point="p", action="corrupt", match="boom@0")]
        )
        assert plan.check("p", "other@0") is None
        assert plan.check("p", "boom@1") is None
        assert plan.check("p", "boom@0") is not None

    def test_sibling_counters_keep_advancing(self):
        plan = FaultPlan([
            FaultRule(point="p", action="corrupt", at=(1,)),
            FaultRule(point="p", action="corrupt", at=(2,)),
        ])
        first = plan.check("p")   # rule 0 fires; rule 1's counter advances
        second = plan.check("p")  # rule 1's second hit fires
        assert first is plan.rules[0]
        assert second is plan.rules[1]

    def test_seeded_rate_is_pure(self):
        a = _seeded_decision(7, "p", "ctx", 0.5)
        assert _seeded_decision(7, "p", "ctx", 0.5) == a
        decisions = {
            _seeded_decision(7, "p", f"c{i}", 0.5) for i in range(64)
        }
        assert decisions == {True, False}  # rate actually splits

    def test_rate_mode_through_plan(self):
        plan = FaultPlan(
            [FaultRule(point="p", action="corrupt", rate=1.0)], seed=3
        )
        assert plan.check("p", "anything") is not None
        zero = FaultPlan(
            [FaultRule(point="p", action="corrupt", rate=0.0)], seed=3
        )
        assert zero.check("p", "anything") is None

    def test_json_round_trip_and_env(self, monkeypatch):
        plan = FaultPlan([
            FaultRule(point="worker.optimize", action="crash",
                      match="x@0", at=(1, 3), exit_code=9),
        ], seed=11)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.rules == plan.rules
        assert restored.seed == plan.seed
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert FaultPlan.from_env().rules == plan.rules
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert FaultPlan.from_env() is None
        with pytest.raises(ServiceError, match="bad fault plan"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ServiceError, match="bad fault plan"):
            FaultPlan.from_json('"a string"')

    def test_json_accepts_bare_rule_list(self):
        """The hand-written `$REPRO_FAULT_PLAN` spelling: a plain list
        of rules, no {"seed": ..., "rules": ...} envelope."""
        plan = FaultPlan.from_json(
            '[{"point": "worker.optimize", "action": "crash",'
            ' "at": [1], "exit_code": 9}]'
        )
        assert plan.seed == 0
        assert len(plan.rules) == 1
        assert plan.rules[0].point == "worker.optimize"
        assert plan.rules[0].exit_code == 9

    def test_pickle_resets_counters(self):
        plan = FaultPlan([FaultRule(point="p", action="corrupt", at=(1,))])
        assert plan.check("p") is not None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.check("p") is not None  # counter started fresh
        assert plan.check("p") is None       # original kept its state

    def test_maybe_fault_raise_and_corrupt(self):
        install_fault_plan(FaultPlan([
            FaultRule(point="a", action="raise", at=(1,)),
            FaultRule(point="b", action="corrupt"),
        ]))
        try:
            with pytest.raises(FaultInjected, match="injected fault at a"):
                maybe_fault("a", "ctx")
            rule = maybe_fault("b")
            assert rule is not None and rule.action == "corrupt"
            assert maybe_fault("unwired") is None
        finally:
            clear_fault_plan()
        assert maybe_fault("b") is None  # cleared

    def test_corrupt_file_flips_one_byte(self, tmp_path):
        path = tmp_path / "victim.bin"
        payload = bytes(range(200))
        path.write_bytes(payload)
        corrupt_file(str(path))
        mutated = path.read_bytes()
        assert len(mutated) == len(payload)
        assert sum(a != b for a, b in zip(mutated, payload)) == 1


# -- retry / deadline / stall semantics (real engines, real workers) ----------

@pytest.mark.parametrize("dispatch", ["steal", "static"])
def test_crash_retry_is_bit_for_bit(dispatch, reference_outcomes):
    """A worker SIGKILLed mid-clip: the task is re-dispatched and the
    suite is bit-for-bit identical to the uninterrupted run."""
    plan = FaultPlan([
        FaultRule(point="worker.before_result", action="crash",
                  match="fv1@0"),
    ])
    runner = _runner(plan, dispatch=dispatch, retries=2)
    outcomes = runner.run(_suite(), optimize_kwargs={})
    assert_outcomes_identical(outcomes, reference_outcomes)
    stats = runner.last_pool_stats
    assert stats["tasks_retried"] == 1
    assert stats["workers_revived"] >= 1


def test_crash_after_result_does_not_recompute(reference_outcomes):
    """A worker that dies *after* its result hit the pipe: the payload
    drains during the grace window, the death is an idle death, and
    nothing is retried or double-delivered."""
    plan = FaultPlan([
        FaultRule(point="worker.after_result", action="crash",
                  match="fv1@0"),
    ])
    runner = _runner(plan, retries=2)
    outcomes = runner.run(_suite(), optimize_kwargs={})
    assert_outcomes_identical(outcomes, reference_outcomes)
    stats = runner.last_pool_stats
    # The payload was already delivered, so whether or not the death is
    # even noticed before the sweep finishes, nothing recomputes and
    # nothing double-reports.
    assert stats["tasks_retried"] == 0
    assert stats["duplicates_dropped"] == 0


def test_retries_exhausted_is_typed():
    """A clip that crashes its worker on every attempt fails with
    RetriesExhausted (a ServiceError subclass) naming clip and budget."""
    plan = FaultPlan([
        FaultRule(point="worker.before_result", action="crash",
                  match="fv1@", exit_code=41),
    ])
    runner = _runner(plan, retries=1)
    with pytest.raises(RetriesExhausted, match="'fv1'") as err:
        runner.run(_suite(), optimize_kwargs={})
    assert isinstance(err.value, ServiceError)
    assert "exit code 41" in str(err.value)
    assert "2 attempts" in str(err.value)


def test_deadline_exceeded_is_typed():
    """A hung worker holding a clip past its deadline fails the sweep
    with DeadlineExceeded, not a hang and not a generic error."""
    plan = FaultPlan([
        FaultRule(point="worker.optimize", action="stall",
                  match="fv1@", stall_s=30.0),
    ])
    runner = _runner(plan, retries=2, deadline_s=0.8)
    with pytest.raises(DeadlineExceeded, match="'fv1'"):
        runner.run(_suite(), optimize_kwargs={})
    # The deadline clock starts at dispatch, so clips queued behind the
    # stalled worker may blow the same budget — at least the stalled one
    # must be counted.
    assert runner.last_pool_stats["tasks_deadline_failed"] >= 1


def test_stall_detector_converts_hang_into_retry(reference_outcomes):
    """A stalled claim past ``stall_timeout_s`` gets its worker killed;
    the kill flows through the ordinary crash-retry path and the suite
    still finishes bit-for-bit."""
    plan = FaultPlan([
        FaultRule(point="worker.optimize", action="stall",
                  match="fv1@0", stall_s=30.0),
    ])
    runner = _runner(plan, retries=2, stall_timeout_s=0.4)
    outcomes = runner.run(_suite(), optimize_kwargs={})
    assert_outcomes_identical(outcomes, reference_outcomes)
    stats = runner.last_pool_stats
    assert stats["workers_stalled"] == 1
    assert stats["tasks_retried"] == 1


def test_torn_pipe_frame_fails_sweep():
    """A worker that writes a torn frame and dies corrupts the stream;
    that is not retriable — the sweep fails loudly."""
    plan = FaultPlan([
        FaultRule(point="pipe.frame", action="corrupt", match="fv1@0"),
    ])
    runner = _runner(plan, retries=2)
    with pytest.raises(ServiceError, match="corrupt"):
        runner.run(_suite(), optimize_kwargs={})


def test_verifier_flush_fault_fails_cleanly():
    """An injected failure inside the batched verification flush raises
    FaultInjected out of the scheduler (the daemon converts this to
    per-ticket failures; the sweep path aborts the run)."""
    from repro.litho.simulator import LithographySimulator
    from repro.service import ShapeBinScheduler

    simulator = LithographySimulator(_litho_config())
    scheduler = ShapeBinScheduler()
    clip = generate_via_clip("vf1", n_vias=2, seed=44, clip_nm=1024)
    grid = simulator.grid_for(clip)
    from repro.service import VerifyItem
    scheduler.add(VerifyItem(
        key=1, clip=clip, grid=grid,
        mask=np.zeros(grid.shape), epe_search_nm=40.0,
    ))
    install_fault_plan(FaultPlan([
        FaultRule(point="verifier.flush", action="raise"),
    ]))
    try:
        with pytest.raises(FaultInjected):
            scheduler.flush(simulator)
    finally:
        clear_fault_plan()


# -- pool-retirement edges ----------------------------------------------------

def test_revive_cap_exhaustion_mid_backlog():
    """Workers that keep dying exhaust the revive cap mid-backlog: the
    pool is retired with a clear error instead of reviving forever."""
    plan = FaultPlan([
        FaultRule(point="worker.before_result", action="crash"),
    ])
    runner = _runner(plan, retries=8, max_revives=1)
    with pytest.raises(ServiceError, match="lost its workers repeatedly"):
        runner.run(_suite(), optimize_kwargs={})


def test_worker_dying_during_engine_build_on_revival(reference_outcomes):
    """The revived worker crashes *during its engine build* (generation
    1); the pool revives again and the sweep still completes bit-for-bit
    — a build crash on revival is just another transient fault.  Static
    dispatch pins the retried clip to the dying slot, so the sweep
    genuinely depends on the second revival (under stealing the healthy
    sibling would take the clip before the slot matters)."""
    plan = FaultPlan([
        FaultRule(point="worker.before_result", action="crash",
                  match="fv1@0"),
        FaultRule(point="worker.build", action="crash", match="g1"),
    ])
    runner = _runner(plan, retries=2, dispatch="static")
    outcomes = runner.run(_suite(), optimize_kwargs={})
    assert_outcomes_identical(outcomes, reference_outcomes)
    assert runner.last_pool_stats["workers_revived"] >= 2


# -- full service path (OptResults, verification, typed errors) ---------------

def test_run_suite_sharded_retry_parity_with_verification():
    """End-to-end service path: crash-retry under streaming verification
    yields OptResults identical to an unfaulted sharded sweep."""
    from repro.service import MaskOptService

    suite = _suite()
    reference = MaskOptService(
        litho_config=_litho_config()
    ).run_suite_sharded(
        "mbopc", suite, workers=2, engine_overrides=OVERRIDES,
    )
    plan = FaultPlan([
        FaultRule(point="worker.before_result", action="crash",
                  match="fv2@0"),
    ])
    results = MaskOptService(
        litho_config=_litho_config()
    ).run_suite_sharded(
        "mbopc", suite, workers=2, engine_overrides=OVERRIDES,
        fault_plan=plan,
    )
    assert [r.clip_name for r in results] == [r.clip_name for r in reference]
    for got, ref in zip(results, reference):
        assert got.epe_nm == ref.epe_nm
        assert got.pvband_nm2 == ref.pvband_nm2
        assert got.steps == ref.steps
        assert got.verified_epe_nm == ref.verified_epe_nm
        assert got.outcome == "verified"


def test_daemon_crash_retry_resolves_request():
    """Daemon path: a request whose worker crashes mid-clip is retried
    to success; the stats record the retry, not a failure."""
    import asyncio

    from repro.service import MaskOptDaemon, OptRequest

    clip = generate_via_clip("fv1", n_vias=2, seed=41, clip_nm=1024)
    plan = FaultPlan([
        FaultRule(point="worker.before_result", action="crash",
                  match="fv1@0"),
    ])

    async def run(fault_plan):
        daemon = MaskOptDaemon(
            litho_config=_litho_config(), workers=2, grace_s=0.3,
            retries=2, fault_plan=fault_plan,
        )
        async with daemon:
            ticket = await daemon.submit(OptRequest(
                clip=clip, engine="mbopc", engine_overrides=OVERRIDES,
            ))
            result = await daemon.result(ticket)
            return result, daemon.stats()

    reference, _ = asyncio.run(run(None))
    result, stats = asyncio.run(run(plan))
    assert result.epe_nm == reference.epe_nm
    assert result.pvband_nm2 == reference.pvband_nm2
    assert result.verified_epe_nm == reference.verified_epe_nm
    assert stats["completed"] == 1
    assert stats["failed"] == 0
    assert stats["retried"] >= 1


# -- chaos matrix (CI sweeps $REPRO_CHAOS_SEED over several values) -----------

def test_chaos_seeded_faults_converge(reference_outcomes):
    """Seeded-rate chaos: the fault pattern is a pure function of the
    seed, so a passing seed can never flake.  Crashes are transient
    faults — with retry budget the suite must still converge to the
    bit-for-bit reference."""
    seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
    plan = FaultPlan([
        FaultRule(point="worker.before_result", action="crash", rate=0.3),
        FaultRule(point="worker.optimize", action="crash", rate=0.15),
    ], seed=seed)
    runner = _runner(plan, retries=6, max_revives=40)
    outcomes = runner.run(_suite(), optimize_kwargs={})
    assert_outcomes_identical(outcomes, reference_outcomes)
