"""Autograd tensor core: forward values, gradients, graph mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from nn_gradcheck import check_gradient
from repro.errors import NNError
from repro.nn import Tensor, no_grad


class TestForward:
    def test_add_mul(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert ((a + b) * 2).numpy().tolist() == [8.0, 12.0]

    def test_scalar_coercion(self):
        a = Tensor([1.0, 2.0])
        assert (a + 1).numpy().tolist() == [2.0, 3.0]
        assert (3 * a).numpy().tolist() == [3.0, 6.0]
        assert (1 - a).numpy().tolist() == [0.0, -1.0]
        assert (2 / a).numpy().tolist() == [2.0, 1.0]

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0], [1.0]])
        assert (a @ b).numpy().ravel().tolist() == [3.0, 7.0]

    def test_reductions(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10
        assert a.mean().item() == 2.5
        assert a.sum(axis=0).numpy().tolist() == [4.0, 6.0]
        assert a.mean(axis=1).numpy().tolist() == [1.5, 3.5]

    def test_reshape_transpose_getitem(self):
        a = Tensor(np.arange(6.0))
        b = a.reshape(2, 3)
        assert b.shape == (2, 3)
        assert b.T.shape == (3, 2)
        assert b[1].numpy().tolist() == [3.0, 4.0, 5.0]

    def test_exp_log_pow(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose(a.exp().numpy(), np.exp([1, 2]))
        assert np.allclose(a.log().numpy(), np.log([1, 2]))
        assert np.allclose(a.pow(3).numpy(), [1, 8])


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x + 3 * x).sum()  # dy/dx = 2x + 3 = 7
        y.backward()
        assert x.grad.tolist() == [7.0]

    def test_grad_accumulates_over_fanout(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x + x + x).sum()
        y.backward()
        assert x.grad.tolist() == [3.0]

    def test_broadcast_unbroadcast(self):
        x = Tensor(np.ones((3, 1)), requires_grad=True)
        y = Tensor(np.ones((1, 4)), requires_grad=True)
        (x * y).sum().backward()
        assert x.grad.shape == (3, 1)
        assert np.all(x.grad == 4)
        assert y.grad.shape == (1, 4)
        assert np.all(y.grad == 3)

    def test_scalar_only_backward(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(NNError):
            (x * 2).backward()

    def test_backward_requires_grad(self):
        x = Tensor(np.ones(3))
        with pytest.raises(NNError):
            x.sum().backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        assert not x.detach().requires_grad

    def test_second_backward_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        assert x.grad.tolist() == [4.0]
        x.zero_grad()
        assert x.grad is None

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[np.array([0, 0, 3])].sum().backward()
        assert x.grad.tolist() == [2.0, 0.0, 0.0, 1.0, 0.0]


class TestGradcheckPrimitives:
    rng = np.random.default_rng(7)

    def test_mul_div_chain(self):
        value = self.rng.uniform(0.5, 2.0, size=(3, 4))
        check_gradient(lambda t: ((t * t) / (t + 1.0)).sum(), value)

    def test_matmul(self):
        value = self.rng.normal(size=(3, 4))
        other = Tensor(self.rng.normal(size=(4, 2)))
        check_gradient(lambda t: (t @ other).sum(), value)

    def test_pow(self):
        value = self.rng.uniform(0.5, 1.5, size=(5,))
        check_gradient(lambda t: t.pow(3.0).sum(), value)

    def test_exp_log(self):
        value = self.rng.uniform(0.5, 1.5, size=(4, 3))
        check_gradient(lambda t: (t.exp() + t.log()).sum(), value)

    def test_mean_axis(self):
        value = self.rng.normal(size=(4, 5))
        check_gradient(lambda t: (t.mean(axis=1) ** 2.0).sum(), value)

    def test_transpose_reshape(self):
        value = self.rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.T.reshape(2, 6) ** 2.0).sum(), value)

    def test_getitem_slice(self):
        value = self.rng.normal(size=(6, 3))
        check_gradient(lambda t: (t[1:4] * 2.0).sum(), value)


@settings(max_examples=25, deadline=None)
@given(
    arr=arrays(
        np.float64,
        (2, 3),
        elements=st.floats(min_value=-3, max_value=3, allow_nan=False),
    )
)
def test_property_sum_grad_is_ones(arr):
    x = Tensor(arr, requires_grad=True)
    x.sum().backward()
    assert np.all(x.grad == 1.0)


@settings(max_examples=25, deadline=None)
@given(
    arr=arrays(
        np.float64,
        (4,),
        elements=st.floats(min_value=0.1, max_value=3, allow_nan=False),
    )
)
def test_property_product_rule(arr):
    x = Tensor(arr, requires_grad=True)
    (x * x).sum().backward()
    assert np.allclose(x.grad, 2 * arr)
