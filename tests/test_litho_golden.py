"""Golden-image regression suite for the lithography engine.

Committed ``.npz`` references (see ``tests/golden/generate.py``) pin the
aerial and printed images of two canonical benchmark clips.  Any litho
refactor — batching, caching, array-backend changes — that shifts an
intensity by more than 1e-9 fails here, and both the single-mask spatial
reference and the unified band-limited batched engine are held to the
same references, under the numpy backend and (where installed) the
threaded scipy and CPU/CUDA torch backends.
"""

import os

import numpy as np
import pytest

from repro.litho import scipy_fft_available, torch_available
from repro.litho.simulator import LithoConfig, LithographySimulator

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_CASES = ("via_v1", "metal_m1")
MAX_ABS_ERROR = 1e-9


@pytest.fixture(scope="module")
def simulator():
    # Must match tests/golden/generate.py: GOLDEN_CONFIG.
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, max_kernels=8, backend="numpy")
    )


@pytest.fixture(scope="module")
def scipy_simulator():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, max_kernels=8, backend="scipy",
                    fft_workers=2)
    )


@pytest.fixture(scope="module")
def torch_simulator():
    return LithographySimulator(
        LithoConfig(pixel_nm=8.0, max_kernels=8, backend="torch")
    )


def load_golden(case: str):
    path = os.path.join(GOLDEN_DIR, f"{case}.npz")
    assert os.path.exists(path), (
        f"missing golden file {path}; run "
        "`PYTHONPATH=src python tests/golden/generate.py`"
    )
    return np.load(path)


def grid_for(simulator, mask: np.ndarray):
    from repro.geometry.raster import Grid

    rows, cols = mask.shape
    return Grid(0.0, 0.0, simulator.config.pixel_nm, rows, cols)


def assert_aerials_match(result, data):
    assert np.abs(result.aerial - data["aerial"]).max() < MAX_ABS_ERROR
    assert (
        np.abs(result.aerial_defocus - data["aerial_defocus"]).max()
        < MAX_ABS_ERROR
    )


@pytest.mark.parametrize("case", GOLDEN_CASES)
class TestGoldenImages:
    def test_single_mask_path(self, simulator, case):
        data = load_golden(case)
        mask = data["mask"]
        result = simulator.simulate_mask(mask, grid_for(simulator, mask))
        assert_aerials_match(result, data)
        for corner in ("nominal", "inner", "outer"):
            assert np.array_equal(
                result.printed[corner], data[f"printed_{corner}"]
            )

    def test_batched_path(self, simulator, case):
        """The unified band engine answers to the same golden references."""
        data = load_golden(case)
        mask = data["mask"]
        result = simulator.simulate_batch(
            mask[None], grid_for(simulator, mask)
        )[0]
        assert_aerials_match(result, data)
        for corner in ("nominal", "inner", "outer"):
            assert np.array_equal(
                result.printed[corner], data[f"printed_{corner}"]
            )

    @pytest.mark.skipif(
        not scipy_fft_available(), reason="scipy not installed"
    )
    def test_scipy_backend_paths(self, scipy_simulator, case):
        """Both engines stay inside the golden tolerance under the
        threaded scipy backend (~1e-12 from numpy, not bit-for-bit —
        printed corners are checked against the same-backend reference
        rather than the numpy-thresholded goldens)."""
        data = load_golden(case)
        mask = data["mask"]
        grid = grid_for(scipy_simulator, mask)
        single = scipy_simulator.simulate_mask(mask, grid)
        batched = scipy_simulator.simulate_batch(mask[None], grid)[0]
        assert_aerials_match(single, data)
        assert_aerials_match(batched, data)
        for corner in ("nominal", "inner", "outer"):
            assert np.array_equal(
                single.printed[corner], batched.printed[corner]
            )

    @pytest.mark.skipif(
        not torch_available(), reason="torch not installed"
    )
    def test_torch_backend_paths(self, torch_simulator, case):
        """The torch device backend answers to the same golden
        references: the batched band engine runs device-side and stays
        inside the 1e-9 tolerance; the single-mask spatial reference is
        host-by-design and must match goldens identically."""
        data = load_golden(case)
        mask = data["mask"]
        grid = grid_for(torch_simulator, mask)
        single = torch_simulator.simulate_mask(mask, grid)
        batched = torch_simulator.simulate_batch(mask[None], grid)[0]
        assert isinstance(batched.aerial, np.ndarray)  # host boundary
        assert_aerials_match(single, data)
        assert_aerials_match(batched, data)
        for corner in ("nominal", "inner", "outer"):
            assert np.array_equal(
                single.printed[corner], batched.printed[corner]
            )

    def test_printed_images_nontrivial(self, simulator, case):
        """Guard against a silently-empty golden: every corner must print
        at least one pixel and stay binary."""
        data = load_golden(case)
        for corner in ("nominal", "inner", "outer"):
            printed = data[f"printed_{corner}"]
            assert printed.sum() > 0
            assert set(np.unique(printed)) <= {0, 1}
