"""Unit tests for the ``python -m repro`` command line (repro/__main__.py):
argument validation for the delivery knobs (``--retries``, ``--deadline``,
``--journal``), the atomic ``--json`` writer, and the ``resume``
subcommand's refusal paths."""

import argparse
import json
import os

import pytest

from repro.__main__ import (
    _nonneg_int,
    _positive_float,
    _write_json,
    build_parser,
    main,
)
from repro.service import OutcomeJournal


class TestArgTypes:
    def test_nonneg_int_accepts(self):
        assert _nonneg_int("0") == 0
        assert _nonneg_int("7") == 7

    @pytest.mark.parametrize("bad", ["-1", "2.5", "abc", ""])
    def test_nonneg_int_rejects(self, bad):
        with pytest.raises(argparse.ArgumentTypeError,
                           match="non-negative integer"):
            _nonneg_int(bad)

    def test_positive_float_accepts(self):
        assert _positive_float("0.5") == 0.5
        assert _positive_float("120") == 120.0

    @pytest.mark.parametrize("bad", ["0", "-3", "nan", "oops", ""])
    def test_positive_float_rejects(self, bad):
        # "nan" matters: `nan > 0` is False, so it must land in the
        # rejection branch rather than configuring a NaN deadline.
        with pytest.raises(argparse.ArgumentTypeError,
                           match="positive number"):
            _positive_float(bad)


class TestParser:
    def test_delivery_knobs_parse(self):
        args = build_parser().parse_args([
            "optimize", "--retries", "3", "--deadline", "1.5",
            "--journal", "run.journal",
        ])
        assert args.retries == 3
        assert args.deadline == 1.5
        assert args.journal == "run.journal"

    def test_delivery_knobs_default_to_service_policy(self):
        args = build_parser().parse_args(["optimize"])
        assert args.retries is None
        assert args.deadline is None
        assert args.journal is None

    @pytest.mark.parametrize("argv", [
        ["optimize", "--retries", "-1"],
        ["optimize", "--deadline", "0"],
        ["serve", "--retries", "nope"],
        ["serve", "--deadline", "-2.5"],
        ["resume", "--journal", "x", "--retries", "1.5"],
    ])
    def test_bad_delivery_values_exit_with_usage(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "expected a" in capsys.readouterr().err

    def test_resume_requires_journal(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["resume"])
        assert excinfo.value.code == 2
        assert "--journal" in capsys.readouterr().err


class TestWriteJson:
    def test_atomic_write_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        _write_json(str(path), {"b": 2, "a": [1, 2]})
        text = path.read_text()
        assert json.loads(text) == {"a": [1, 2], "b": 2}
        assert text.index('"a"') < text.index('"b"')  # sorted, diffable
        assert not [n for n in os.listdir(tmp_path)
                    if n.startswith(".tmp-json-")]

    def test_failed_write_leaves_no_debris(self, tmp_path):
        class Unprintable:
            def __str__(self):
                raise RuntimeError("boom")

        path = tmp_path / "out.json"
        _write_json(str(path), {"ok": 1})
        with pytest.raises(RuntimeError, match="boom"):
            _write_json(str(path), {"bad": Unprintable()})
        # The original file is intact and no temp file was left behind.
        assert json.loads(path.read_text()) == {"ok": 1}
        assert not [n for n in os.listdir(tmp_path)
                    if n.startswith(".tmp-json-")]


class TestResumeRefusals:
    def test_resume_refuses_foreign_fingerprint(self, tmp_path, capsys):
        """A journal written under a different engine identity must stop
        the CLI with a clean error, not merge wrong numbers."""
        path = str(tmp_path / "foreign.journal")
        with OutcomeJournal(path) as journal:
            journal.log_admit(0, "tiny0", "mbopc", "feedfacefeedface")
        code = main(["resume", "--journal", path])
        assert code == 2
        err = capsys.readouterr().err
        assert "refusing to merge" in err

    def test_resume_refuses_non_journal_file(self, tmp_path, capsys):
        path = tmp_path / "notajournal"
        path.write_bytes(b"plain text, no magic")
        code = main(["resume", "--journal", str(path)])
        assert code == 2
        assert "bad magic" in capsys.readouterr().err
