"""Tests for the OPC-inspired modulator (paper Fig. 4 properties)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.modulator import Modulator
from repro.errors import ConfigError


class TestProjection:
    def test_paper_function_values(self):
        mod = Modulator()  # f(x) = 0.02 x^4 + 1
        assert mod.projection(np.array([0.0]))[0] == 1.0
        assert mod.projection(np.array([2.0]))[0] == pytest.approx(1.32)
        assert mod.projection(np.array([-2.0]))[0] == pytest.approx(1.32)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Modulator(k=0)
        with pytest.raises(ConfigError):
            Modulator(n=3)  # must be even
        with pytest.raises(ConfigError):
            Modulator(b=-1)
        with pytest.raises(ConfigError):
            Modulator(epe_scale=0)
        with pytest.raises(ConfigError):
            Modulator(mode="bang")
        with pytest.raises(ConfigError):
            Modulator(sigma=0)
        with pytest.raises(ConfigError):
            Modulator(hold_bias=-0.5)
        with pytest.raises(ConfigError):
            Modulator(hold_width_nm=0)


class TestPolynomialPreferences:
    def test_positive_epe_prefers_inward(self):
        pref = Modulator().preference(8.0)
        assert pref.argmax() == 0  # m1 = -2 nm
        assert pref[0] > pref[1] > pref[2]

    def test_negative_epe_prefers_outward(self):
        pref = Modulator().preference(-8.0)
        assert pref.argmax() == 4  # m5 = +2 nm
        assert pref[4] > pref[3] > pref[2]

    def test_zero_epe_uniform(self):
        assert np.allclose(Modulator().preference(0.0), 0.2)

    def test_small_epe_not_significantly_biased(self):
        pref = Modulator().preference(1.0)
        assert pref.max() - pref.min() < 0.01

    def test_sign_symmetry(self):
        mod = Modulator()
        pos = mod.preference(5.0)
        neg = mod.preference(-5.0)
        assert np.allclose(pos, neg[::-1])

    def test_rows_normalized(self):
        prefs = Modulator().preference_batch(np.linspace(-20, 20, 41))
        assert np.allclose(prefs.sum(axis=1), 1.0)
        assert np.all(prefs >= 0)

    def test_epe_scale(self):
        unscaled = Modulator().preference(4.0)
        scaled = Modulator(epe_scale=0.5).preference(8.0)
        assert np.allclose(unscaled, scaled)

    def test_hold_bias_peaks_zero_move(self):
        mod = Modulator(hold_bias=1.0, hold_width_nm=1.0)
        pref = mod.preference(0.3)
        assert pref.argmax() == 2
        # Far from zero the bump has no effect.
        far = mod.preference(-9.0)
        assert far.argmax() == 4

    def test_gain_damps_preference(self):
        mod = Modulator()
        sharp = mod.preference_batch(np.array([6.0]), gain=1.0)[0]
        damped = mod.preference_batch(np.array([6.0]), gain=0.25)[0]
        assert sharp.max() > damped.max()


class TestMatchedPreferences:
    def test_peaks_at_error_cancelling_move(self):
        mod = Modulator(mode="matched", epe_scale=1.0)
        assert mod.preference(-2.0).argmax() == 4   # need +2
        assert mod.preference(-1.0).argmax() == 3   # need +1
        assert mod.preference(0.0).argmax() == 2    # hold
        assert mod.preference(1.0).argmax() == 1    # need -1
        assert mod.preference(2.0).argmax() == 0    # need -2

    def test_huge_epe_clips_to_extreme(self):
        mod = Modulator(mode="matched", epe_scale=1.0)
        assert mod.preference(-35.0).argmax() == 4
        assert mod.preference(35.0).argmax() == 0

    def test_meef_scaling(self):
        mod = Modulator(mode="matched", epe_scale=0.5)
        # 4 nm printed error at MEEF 2 -> 2 nm mask move.
        assert mod.preference(-4.0).argmax() == 4
        assert mod.preference(-2.0).argmax() == 3


class TestModulate:
    def test_eq6_product(self):
        mod = Modulator(mode="matched", epe_scale=1.0)
        uniform = np.full((1, 5), 0.2)
        mixed = mod.modulate(uniform, np.array([-2.0]))
        assert np.allclose(mixed, mod.preference_batch(np.array([-2.0])))

    def test_policy_can_tilt_flat_preference(self):
        mod = Modulator()  # polynomial, flat near zero
        peaked = np.array([[0.1, 0.1, 0.6, 0.1, 0.1]])
        mixed = mod.modulate(peaked, np.array([0.2]))
        assert mixed.argmax() == 2

    def test_degenerate_policy_falls_back_to_preference(self):
        mod = Modulator(mode="matched", epe_scale=1.0)
        zeros = np.zeros((1, 5))
        mixed = mod.modulate(zeros, np.array([-2.0]))
        assert mixed.argmax() == 4
        assert np.isclose(mixed.sum(), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            Modulator().modulate(np.zeros((2, 5)), np.zeros(3))

    def test_log_preference_finite(self):
        mod = Modulator()
        logp = mod.log_preference_batch(np.array([-60.0, 0.0, 60.0]))
        assert np.all(np.isfinite(logp))


@given(epe=st.floats(min_value=-40, max_value=40, allow_nan=False))
def test_property_rows_sum_to_one_both_modes(epe):
    for mode in ("polynomial", "matched"):
        pref = Modulator(mode=mode, hold_bias=0.5).preference(epe)
        assert pref.sum() == pytest.approx(1.0)
        assert np.all(pref >= 0)


@given(epe=st.floats(min_value=0.5, max_value=30, allow_nan=False))
def test_property_sign_antisymmetry(epe):
    mod = Modulator()
    assert np.allclose(mod.preference(epe), mod.preference(-epe)[::-1])


@given(
    epe=st.floats(min_value=3, max_value=30, allow_nan=False),
    smaller=st.floats(min_value=0.1, max_value=0.9),
)
def test_property_larger_epe_sharper_preference(epe, smaller):
    """Paper property: preferences grow more distinct as |EPE| increases."""
    mod = Modulator()
    sharp = mod.preference(epe).max()
    soft = mod.preference(epe * smaller).max()
    assert sharp >= soft - 1e-12
