"""Sparse contour-point EPE path: stencil planning, band-spectrum
gather, lazy printed images and the scipy ``next_fast_len`` delegation.

The contract under test, end to end: ``simulate_epe_batch`` +
``measure_epe_grouped_sparse`` must reproduce the dense
``simulate_batch`` + ``measure_epe_grouped`` verifier to <= 1e-9 nm per
measure point on a mixed via+metal suite, under both FFT backends — and
each layer of the sparse stack (pixel-set planning, bilinear profile
rebuild, crossing resolution) must match its dense counterpart
*bit-for-bit* given identical inputs, so the only divergence is the
litho engine's <= 1e-12 intensity round-off.
"""

import numpy as np
import pytest

from repro.data.stdcell import stdcell_metal_clip
from repro.data.via_bench import generate_via_clip
from repro.errors import LithoError, MetrologyError
from repro.geometry import Grid, Polygon, Rect, rasterize
from repro.geometry.raster import bilinear_sample_many, bilinear_sample_stack
from repro.geometry.segmentation import fragment_clip
from repro.litho import build_kernel_set
from repro.litho.fft import (
    _is_5_smooth,
    next_fast_len,
    scipy_fft_available,
    torch_available,
)
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.metrology.contour import (
    SparseAerial,
    _sample_coordinates,
    contour_offset_along_normal,
    contour_offsets_sparse,
    plan_contour_stencils,
)
from repro.metrology.epe import (
    measure_epe_grouped,
    measure_epe_grouped_sparse,
    measure_epe_sparse,
    measure_stencil_plan,
)

EPE_TOLERANCE_NM = 1e-9
INTENSITY_TOLERANCE = 1e-12

BACKENDS = (
    ["numpy"]
    + (["scipy"] if scipy_fft_available() else [])
    + (["torch"] if torch_available() else [])
)


@pytest.fixture(scope="module", params=BACKENDS)
def sim(request):
    """One simulator per array backend — the parity suite runs under
    every installed backend (numpy always; scipy and CPU/CUDA torch
    when importable)."""
    return LithographySimulator(LithoConfig(
        pixel_nm=8.0, period_nm=1024.0, max_kernels=4,
        backend=request.param,
        fft_workers=2 if request.param == "scipy" else 1,
    ))


@pytest.fixture(scope="module")
def mixed_suite():
    """Mixed via+metal suite spanning two raster grid shapes."""
    return [
        generate_via_clip("ev1", n_vias=2, seed=31, clip_nm=1280),
        generate_via_clip("ev2", n_vias=2, seed=32, clip_nm=1280),
        generate_via_clip("ev3", n_vias=2, seed=33, clip_nm=1024),
        stdcell_metal_clip("em1", 8, seed=5, clip_nm=1280),
    ]


def mask_stack(grid, count, seed=7):
    rng = np.random.default_rng(seed)
    masks = []
    for _ in range(count):
        cx = float(rng.integers(300, int(grid.cols * grid.pixel_nm) - 300))
        cy = float(rng.integers(300, int(grid.rows * grid.pixel_nm) - 300))
        size = float(rng.integers(60, 120))
        masks.append(
            rasterize([Polygon.from_rect(Rect.square(cx, cy, size))], grid)
        )
    return np.stack(masks)


def random_pixel_set(shape, count, seed=11):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, shape[0], size=count)
    cols = rng.integers(0, shape[1], size=count)
    return rows, cols


class TestNextFastLen:
    def test_is_smallest_5_smooth_bound(self):
        """Over 1..4096: the result is 5-smooth, >= n, and nothing
        5-smooth lies between — whether or not scipy (whose own notion
        of "fast" admits factors of 7 and 11) drives the search."""
        for n in range(1, 4097):
            m = next_fast_len(n)
            assert m >= n
            assert _is_5_smooth(m)
            assert not any(_is_5_smooth(k) for k in range(n, m))

    def test_fixed_points(self):
        # 5-smooth inputs are their own answer; 7-smooth ones are not.
        assert next_fast_len(120) == 120
        assert next_fast_len(49) == 50  # 49 = 7^2 is fast for scipy only
        assert next_fast_len(121) == 125  # 121 = 11^2 likewise

    def test_rejects_nonpositive(self):
        with pytest.raises(LithoError, match="positive"):
            next_fast_len(0)


GRID = Grid(0, 0, 8.0, 160, 160)


class TestSparseIntensity:
    def test_matches_dense_gather_on_compact_band(self, sim):
        kset = sim.kernel_set(0.0)
        masks = mask_stack(GRID, 3)
        spectra = kset.fft.fft2(masks, axes=(-2, -1))
        dense = kset.intensity_from_mask_ffts(spectra)
        rows, cols = random_pixel_set(GRID.shape, 200)
        sparse = kset.intensity_at_pixels(spectra, rows, cols)
        assert sparse.shape == (3, 200)
        assert np.abs(sparse - dense[:, rows, cols]).max() < INTENSITY_TOLERANCE

    def test_rfft_entry_matches_full_spectrum_entry(self, sim):
        kset = sim.kernel_set(0.0)
        masks = mask_stack(GRID, 2)
        rows, cols = random_pixel_set(GRID.shape, 150)
        via_fft = kset.intensity_at_pixels(
            kset.fft.fft2(masks, axes=(-2, -1)), rows, cols
        )
        via_rfft = kset.sparse_intensity_from_rfft(
            kset.fft.rfft2(masks, axes=(-2, -1)), GRID.shape, rows, cols
        )
        assert np.abs(via_rfft - via_fft).max() < INTENSITY_TOLERANCE

    def test_non_compact_fallback_is_exact(self):
        """When the pupil band spans the grid there is no sparse fast
        path; the fallback must be the dense engine plus a gather —
        bit-for-bit, not merely close."""
        kset = build_kernel_set(
            pixel_nm=40.0, period_nm=2048.0, max_kernels=4,
            fft_backend="numpy",
        )
        assert not kset.band_spectra((32, 32)).compact
        mask = np.zeros((32, 32))
        mask[10:20, 10:20] = 1.0
        spectra = kset.fft.fft2(mask[None], axes=(-2, -1))
        dense = kset.intensity_from_mask_ffts(spectra)
        rows, cols = random_pixel_set((32, 32), 40)
        sparse = kset.intensity_at_pixels(spectra, rows, cols)
        assert np.array_equal(sparse, dense[:, rows, cols])

    def test_out_of_range_pixels_rejected(self, sim):
        kset = sim.kernel_set(0.0)
        spectra = kset.fft.fft2(mask_stack(GRID, 1), axes=(-2, -1))
        with pytest.raises(LithoError, match="outside"):
            kset.intensity_at_pixels(
                spectra, np.array([0, GRID.rows]), np.array([0, 0])
            )
        with pytest.raises(LithoError, match="1-D"):
            kset.intensity_at_pixels(
                spectra, np.array([0, 1]), np.array([0])
            )

    def test_rfft_entry_rejects_full_width_spectra(self, sim):
        kset = sim.kernel_set(0.0)
        full = kset.fft.fft2(mask_stack(GRID, 1), axes=(-2, -1))
        with pytest.raises(LithoError, match="do not match grid"):
            kset.sparse_intensity_from_rfft(
                full, GRID.shape, np.array([0]), np.array([0])
            )

    def test_phase_matrix_is_cached_per_pixel_set(self, sim):
        from repro.litho.kernels import _PHASE_CACHE

        kset = sim.kernel_set(0.0)
        spectra = kset.fft.fft2(mask_stack(GRID, 1), axes=(-2, -1))
        rows, cols = random_pixel_set(GRID.shape, 64, seed=23)
        kset.intensity_at_pixels(spectra, rows, cols)
        size = len(_PHASE_CACHE)
        kset.intensity_at_pixels(spectra, rows, cols)
        assert len(_PHASE_CACHE) == size  # second call hit the cache


class TestStencilPlan:
    @staticmethod
    def _geometry(grid, n=9, seed=3):
        rng = np.random.default_rng(seed)
        span_x = grid.cols * grid.pixel_nm
        span_y = grid.rows * grid.pixel_nm
        points = np.stack([
            rng.uniform(0.15 * span_x, 0.85 * span_x, n),
            rng.uniform(0.15 * span_y, 0.85 * span_y, n),
        ], axis=1)
        angles = rng.uniform(0, 2 * np.pi, n)
        normals = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        return points, normals

    def test_profiles_bit_for_bit_vs_dense_sampler(self):
        grid = Grid(0, 0, 8.0, 64, 64)
        points, normals = self._geometry(grid)
        plan = plan_contour_stencils(grid, points, normals)
        image = np.random.default_rng(5).uniform(0, 1, grid.shape)
        values = image[plan.pixel_rows, plan.pixel_cols]
        xs, ys = _sample_coordinates(points, normals, plan.offsets)
        dense = bilinear_sample_many(image, grid, xs, ys).reshape(
            len(points), len(plan.offsets)
        )
        assert np.array_equal(plan.profiles(values), dense)

    def test_resolve_bit_for_bit_vs_dense_contour(self):
        grid = Grid(0, 0, 8.0, 64, 64)
        points, normals = self._geometry(grid, seed=13)
        plan = plan_contour_stencils(grid, points, normals)
        # A smooth bump so profiles actually cross a mid threshold.
        yy, xx = np.mgrid[0:64, 0:64]
        image = np.exp(-((xx - 32) ** 2 + (yy - 32) ** 2) / 300.0)
        values = image[plan.pixel_rows, plan.pixel_cols]
        dense = contour_offset_along_normal(
            image, grid, points, normals, threshold=0.4
        )
        assert np.array_equal(plan.resolve(values, 0.4), dense)

    def test_border_stencils_match_dense_samplers(self):
        """Out-of-raster search samples: every path must apply the one
        `_bilinear_weights` clamping rule.  Points sit on (and beyond)
        the raster border with outward normals, so most of each search
        window falls off the grid."""
        grid = Grid(0, 0, 8.0, 32, 32)
        span = 32 * 8.0
        points = np.array([
            [0.0, 100.0],          # on the left edge
            [span, 140.0],         # on the right edge
            [120.0, 0.0],          # on the bottom edge
            [-30.0, 50.0],         # fully outside the raster
            [span + 25.0, span],   # outside past the far corner
        ])
        normals = np.array([
            [-1.0, 0.0], [1.0, 0.0], [0.0, -1.0],
            [-0.7071, -0.7071], [0.7071, 0.7071],
        ])
        images = np.random.default_rng(17).uniform(0, 1, (3, 32, 32))
        plan = plan_contour_stencils(grid, points, normals)
        # Every clamped stencil index stays on the raster.
        assert plan.pixel_rows.min() >= 0 and plan.pixel_rows.max() < 32
        assert plan.pixel_cols.min() >= 0 and plan.pixel_cols.max() < 32
        xs, ys = _sample_coordinates(points, normals, plan.offsets)
        stacked = bilinear_sample_stack(images, grid, xs, ys)
        for image, stack_row in zip(images, stacked):
            many = bilinear_sample_many(image, grid, xs, ys)
            assert np.array_equal(stack_row, many)  # stack vs scalar path
            sparse = plan.profiles(image[plan.pixel_rows, plan.pixel_cols])
            assert np.array_equal(
                sparse, many.reshape(len(points), len(plan.offsets))
            )
            # And the resolved offsets agree bit-for-bit too.
            dense_offsets = contour_offset_along_normal(
                image, grid, points, normals, threshold=0.5
            )
            assert np.array_equal(
                plan.resolve(
                    image[plan.pixel_rows, plan.pixel_cols], 0.5
                ),
                dense_offsets,
            )

    def test_plan_cache_returns_same_object(self):
        grid = Grid(0, 0, 8.0, 48, 48)
        points, normals = self._geometry(grid, n=4, seed=29)
        first = plan_contour_stencils(grid, points, normals)
        second = plan_contour_stencils(grid, points.copy(), normals.copy())
        assert second is first
        widened = plan_contour_stencils(grid, points, normals, search_nm=60.0)
        assert widened is not first

    def test_mixed_search_windows_rejected(self):
        grid = Grid(0, 0, 8.0, 48, 48)
        points, normals = self._geometry(grid, n=4, seed=29)
        narrow = plan_contour_stencils(grid, points, normals, search_nm=20.0)
        wide = plan_contour_stencils(grid, points, normals, search_nm=40.0)
        aerials = [
            SparseAerial(plan=plan, values=np.zeros(plan.n_pixels))
            for plan in (narrow, wide)
        ]
        with pytest.raises(MetrologyError, match="search windows"):
            contour_offsets_sparse(aerials, 0.5)


class TestLazyPrinted:
    def test_matches_eager_thresholding_and_caches(self, sim):
        from repro.litho.resist import printed_image

        grid = Grid(0, 0, 8.0, 128, 128)
        result = sim.simulate_batch(mask_stack(grid, 1), grid)[0]
        printed = result.printed
        assert set(printed) == {"nominal", "inner", "outer"}
        assert len(printed) == 3
        nominal, inner, outer = sim.corners()
        expected = {
            "nominal": printed_image(
                result.aerial, sim.config.threshold, nominal.dose
            ),
            "inner": printed_image(
                result.aerial_defocus, sim.config.threshold, inner.dose
            ),
            "outer": printed_image(
                result.aerial_defocus, sim.config.threshold, outer.dose
            ),
        }
        for corner in printed:
            assert np.array_equal(printed[corner], expected[corner])
            assert printed[corner] is printed[corner]  # cached object

    def test_simulate_batch_result_printed_is_lazy(self, sim):
        from repro.litho.simulator import LazyPrinted

        grid = Grid(0, 0, 8.0, 128, 128)
        result = sim.simulate_batch(mask_stack(grid, 1), grid)[0]
        assert isinstance(result.printed, LazyPrinted)
        assert "materialized=[]" in repr(result.printed)
        result.printed["nominal"]
        assert "materialized=['nominal']" in repr(result.printed)


class TestEndToEndParity:
    def test_sparse_matches_dense_verifier_on_mixed_suite(
        self, sim, mixed_suite
    ):
        """The headline gate, under each FFT backend: sparse EPE within
        1e-9 nm of the dense pipeline on every measure point of a mixed
        via+metal suite."""
        threshold = sim.config.threshold
        for clip in mixed_suite:
            grid = sim.grid_for(clip)
            segments = fragment_clip(clip)
            mask = rasterize(clip.targets, grid)
            dense_litho = sim.simulate_batch(mask[None], grid)[0]
            (dense_report,) = measure_epe_grouped(
                dense_litho.aerial[None], [grid], [segments], threshold
            )
            plan = measure_stencil_plan(grid, segments)
            (sparse_aerial,) = sim.simulate_epe_batch(mask[None], grid, plan)
            sparse_report = measure_epe_sparse(sparse_aerial, threshold)
            assert sparse_report.count == dense_report.count > 0
            assert np.abs(
                sparse_report.values - dense_report.values
            ).max() < EPE_TOLERANCE_NM

    def test_grouped_sparse_matches_grouped_dense(self, sim, mixed_suite):
        """Batched shape-bin flush shape: same-raster clips with
        different geometry through one simulate_epe_batch call."""
        threshold = sim.config.threshold
        same_shape = [c for c in mixed_suite if c.name != "ev3"]
        grids = [sim.grid_for(clip) for clip in same_shape]
        segments = [fragment_clip(clip) for clip in same_shape]
        stack = np.stack([
            rasterize(clip.targets, grid)
            for clip, grid in zip(same_shape, grids)
        ])
        dense = sim.simulate_batch(stack, grids[0])
        dense_reports = measure_epe_grouped(
            np.stack([litho.aerial for litho in dense]),
            grids, segments, threshold,
        )
        plans = [
            measure_stencil_plan(grid, segs)
            for grid, segs in zip(grids, segments)
        ]
        sparse = sim.simulate_epe_batch(stack, grids[0], plans)
        sparse_reports = measure_epe_grouped_sparse(sparse, threshold)
        for got, ref in zip(sparse_reports, dense_reports):
            assert got.count == ref.count
            assert np.abs(got.values - ref.values).max() < EPE_TOLERANCE_NM

    def test_with_defocus_gathers_the_defocus_corner(self, sim, mixed_suite):
        clip = mixed_suite[0]
        grid = sim.grid_for(clip)
        mask = rasterize(clip.targets, grid)
        plan = measure_stencil_plan(grid, fragment_clip(clip))
        (aerial,) = sim.simulate_epe_batch(
            mask[None], grid, plan, with_defocus=True
        )
        dense = sim.simulate_batch(mask[None], grid)[0]
        px = (plan.pixel_rows, plan.pixel_cols)
        assert np.abs(
            aerial.values - dense.aerial[px]
        ).max() < INTENSITY_TOLERANCE
        assert np.abs(
            aerial.values_defocus - dense.aerial_defocus[px]
        ).max() < INTENSITY_TOLERANCE
        # Default sweep skips the defocus corner entirely.
        (nominal_only,) = sim.simulate_epe_batch(mask[None], grid, plan)
        assert nominal_only.values_defocus is None

    def test_shared_plan_broadcasts_across_the_batch(self, sim, mixed_suite):
        """Candidate screening shape: one plan, B mask variants."""
        clip = mixed_suite[0]
        grid = sim.grid_for(clip)
        base = rasterize(clip.targets, grid)
        stack = np.stack([base, np.clip(base * 0.8, 0, 1), base])
        plan = measure_stencil_plan(grid, fragment_clip(clip))
        shared = sim.simulate_epe_batch(stack, grid, plan)
        listed = sim.simulate_epe_batch(stack, grid, [plan] * 3)
        for a, b in zip(shared, listed):
            assert a.plan is b.plan is plan
            assert np.array_equal(a.values, b.values)
        # Identical masks in one batch get identical values.
        assert np.array_equal(shared[0].values, shared[2].values)

    def test_none_plans_yield_none_and_empty_reports(self, sim, mixed_suite):
        clip = mixed_suite[0]
        grid = sim.grid_for(clip)
        mask = rasterize(clip.targets, grid)
        results = sim.simulate_epe_batch(mask[None], grid, None)
        assert results == [None]
        (report,) = measure_epe_grouped_sparse(results, sim.config.threshold)
        assert report.count == 0 and report.total_abs == 0.0

    def test_plan_grid_shape_mismatch_rejected(self, sim, mixed_suite):
        big = sim.grid_for(mixed_suite[0])    # 160x160
        small = sim.grid_for(mixed_suite[2])  # 128x128
        plan = measure_stencil_plan(small, fragment_clip(mixed_suite[2]))
        mask = rasterize(mixed_suite[0].targets, big)
        with pytest.raises(LithoError, match="does not match"):
            sim.simulate_epe_batch(mask[None], big, plan)


class TestScoreMovesEpe:
    def test_matches_dense_score_moves(self, sim):
        from repro.geometry import Clip
        from repro.rl.env import OPCEnvironment

        clip = Clip(
            name="sparse-env",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        env = OPCEnvironment(clip, sim, initial_bias_nm=3.0)
        base = env.reset()
        candidates = env.uniform_move_candidates()
        dense = env.score_moves(base, candidates)
        reports = env.score_moves_epe(base, candidates)
        assert len(reports) == len(dense) == env.n_actions
        for report, (state, _) in zip(reports, dense):
            assert report.total_abs == pytest.approx(
                state.total_epe, abs=EPE_TOLERANCE_NM * max(1, report.count)
            )

    def test_rejects_malformed_candidates(self, sim):
        from repro.geometry import Clip
        from repro.rl.env import OPCEnvironment

        clip = Clip(
            name="sparse-env-bad",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        env = OPCEnvironment(clip, sim, initial_bias_nm=3.0)
        base = env.reset()
        with pytest.raises(Exception):
            env.score_moves_epe(base, np.zeros((0, env.n_segments)))
