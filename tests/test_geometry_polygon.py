"""Unit and property tests for repro.geometry.polygon."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.polygon import Edge, Polygon
from repro.geometry.rect import Rect


def square(size=10.0, x=0.0, y=0.0):
    return Polygon(((x, y), (x + size, y), (x + size, y + size), (x, y + size)))


def l_shape():
    """An L: 20 wide, 20 tall, with the top-right 10x10 quadrant removed."""
    return Polygon(((0, 0), (20, 0), (20, 10), (10, 10), (10, 20), (0, 20)))


class TestConstruction:
    def test_square_area_perimeter(self):
        p = square(10)
        assert p.area == 100
        assert p.perimeter == 40

    def test_l_shape_area(self):
        assert l_shape().area == 300

    def test_cw_input_normalized_to_ccw(self):
        cw = Polygon(((0, 0), (0, 10), (10, 10), (10, 0)))
        ccw = square(10)
        assert cw.area == ccw.area == 100
        # After normalization the shoelace area must be positive for both.
        assert cw.area > 0

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon(((0, 0), (1, 0), (1, 1)))

    def test_non_rectilinear_rejected(self):
        with pytest.raises(GeometryError):
            Polygon(((0, 0), (10, 5), (10, 10), (0, 10)))

    def test_zero_area_rejected(self):
        with pytest.raises(GeometryError):
            Polygon(((0, 0), (10, 0), (10, 0), (0, 0)))

    def test_redundant_collinear_vertices_dropped(self):
        p = Polygon(((0, 0), (5, 0), (10, 0), (10, 10), (0, 10)))
        assert len(p.vertices) == 4
        assert p.area == 100

    def test_duplicate_vertices_dropped(self):
        p = Polygon(((0, 0), (10, 0), (10, 0), (10, 10), (0, 10)))
        assert len(p.vertices) == 4

    def test_from_rect(self):
        p = Polygon.from_rect(Rect(1, 2, 5, 9))
        assert p.area == pytest.approx(4 * 7)
        assert p.bbox == Rect(1, 2, 5, 9)


class TestEdges:
    def test_square_edge_count_and_orientation(self):
        edges = list(square(10).edges())
        assert len(edges) == 4
        axes = [e.axis for e in edges]
        assert axes == ["h", "v", "h", "v"]

    def test_outward_normals_ccw_square(self):
        edges = list(square(10).edges())
        normals = [e.outward_normal for e in edges]
        # CCW from (0,0): bottom, right, top, left.
        assert normals == [(0, -1), (1, 0), (0, 1), (-1, 0)]

    def test_edge_midpoint_length(self):
        e = Edge((0, 0), (10, 0))
        assert e.midpoint == (5, 0)
        assert e.length == 10
        assert e.direction == (1, 0)

    def test_l_shape_normals_point_outward(self):
        poly = l_shape()
        for edge in poly.edges():
            mx, my = edge.midpoint
            nx, ny = edge.outward_normal
            # Nudge along the normal: outside must not contain the point.
            assert not poly.contains_point(mx + 0.5 * nx, my + 0.5 * ny)
            assert poly.contains_point(mx - 0.5 * nx, my - 0.5 * ny)


class TestContainment:
    def test_inside_outside(self):
        p = square(10)
        assert p.contains_point(5, 5)
        assert not p.contains_point(15, 5)
        assert not p.contains_point(5, -1)

    def test_boundary_counts_inside(self):
        p = square(10)
        assert p.contains_point(0, 5)
        assert p.contains_point(10, 5)
        assert p.contains_point(5, 0)
        assert p.contains_point(5, 10)

    def test_l_shape_notch_outside(self):
        p = l_shape()
        assert p.contains_point(5, 5)
        assert p.contains_point(15, 5)
        assert p.contains_point(5, 15)
        assert not p.contains_point(15, 15)  # removed quadrant


class TestSimplicity:
    def test_square_is_simple(self):
        assert square().is_simple()

    def test_l_shape_is_simple(self):
        assert l_shape().is_simple()


class TestEditing:
    def test_translated(self):
        p = square(10).translated(5, -3)
        assert p.bbox == Rect(5, -3, 15, 7)
        assert p.area == 100

    def test_scaled(self):
        p = square(10).scaled(2)
        assert p.area == 400

    def test_scaled_nonpositive_rejected(self):
        with pytest.raises(GeometryError):
            square().scaled(0)


sizes = st.integers(min_value=1, max_value=1000)
offsets = st.integers(min_value=-10000, max_value=10000)


@given(w=sizes, h=sizes, dx=offsets, dy=offsets)
def test_property_translation_invariants(w, h, dx, dy):
    p = Polygon.from_rect(Rect(0, 0, w, h))
    q = p.translated(dx, dy)
    assert q.area == pytest.approx(p.area)
    assert q.perimeter == pytest.approx(p.perimeter)


@given(w=sizes, h=sizes, notch_w=sizes, notch_h=sizes)
def test_property_notched_rect_area(w, h, notch_w, notch_h):
    """Cutting a notch out of a rect corner reduces area by the notch."""
    nw = min(notch_w, w - 1) if notch_w >= w else notch_w
    nh = min(notch_h, h - 1) if notch_h >= h else notch_h
    if nw <= 0 or nh <= 0 or nw >= w or nh >= h:
        return
    poly = Polygon(
        ((0, 0), (w, 0), (w, h - nh), (w - nw, h - nh), (w - nw, h), (0, h))
    )
    assert poly.area == pytest.approx(w * h - nw * nh)


@given(w=sizes, h=sizes)
def test_property_edge_walk_closes(w, h):
    p = Polygon.from_rect(Rect(0, 0, w, h))
    edges = list(p.edges())
    for e, f in zip(edges, edges[1:] + edges[:1]):
        assert e.b == f.a
