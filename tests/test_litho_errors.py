"""Error-path coverage for the lithography engine plus the bounded
kernel-FFT cache: every ``LithoError`` raise in ``kernels.py`` /
``simulator.py`` / ``spectral.py`` is exercised, and LRU eviction is
shown to keep results correct."""

import numpy as np
import pytest

from repro.errors import LithoError, RLError
from repro.geometry import Clip, Grid, Polygon, Rect
from repro.litho import (
    LithoConfig,
    LithographySimulator,
    OpticalKernelSet,
    SpectralConvolver,
)
from repro.litho.spectral import next_fast_len
from repro.rl.env import OPCEnvironment


def tiny_kernel_set(capacity: int = 6, cutoff: float | None = 0.0126):
    rng = np.random.default_rng(42)
    return OpticalKernelSet(
        weights=np.array([0.5, 0.3, 0.2]),
        kernels=rng.normal(size=(3, 5, 5)) + 1j * rng.normal(size=(3, 5, 5)),
        pixel_nm=8.0,
        defocus_nm=0.0,
        cutoff_per_nm=cutoff,
        fft_cache_capacity=capacity,
    )


class TestKernelSetErrors:
    def test_non_2d_mask(self):
        with pytest.raises(LithoError):
            tiny_kernel_set().convolve_intensity(np.ones((2, 16, 16)))

    def test_mask_smaller_than_ambit(self):
        with pytest.raises(LithoError):
            tiny_kernel_set().convolve_intensity(np.ones((3, 3)))

    def test_batch_rejects_2d(self):
        with pytest.raises(LithoError, match="3-D"):
            tiny_kernel_set().convolve_intensity_batch(np.ones((16, 16)))

    def test_batch_rejects_4d(self):
        with pytest.raises(LithoError, match="3-D"):
            tiny_kernel_set().convolve_intensity_batch(np.ones((2, 2, 16, 16)))

    def test_batch_rejects_empty(self):
        with pytest.raises(LithoError, match="empty"):
            tiny_kernel_set().convolve_intensity_batch(np.empty((0, 16, 16)))

    def test_batch_rejects_small_masks(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().convolve_intensity_batch(np.ones((2, 3, 3)))

    def test_spectra_helper_rejects_2d(self):
        with pytest.raises(LithoError, match="3-D"):
            tiny_kernel_set().intensity_from_mask_ffts(np.ones((16, 16), complex))

    def test_fields_helper_rejects_3d(self):
        with pytest.raises(LithoError, match="2-D"):
            tiny_kernel_set().fields_from_mask_fft(np.ones((2, 16, 16), complex))

    def test_kernel_spectra_rejects_small_grid(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().kernel_spectra((3, 3))

    def test_spectra_helper_rejects_small_grid(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().intensity_from_mask_ffts(
                np.ones((1, 3, 3), complex)
            )

    def test_fields_helper_rejects_small_grid(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().fields_from_mask_fft(np.ones((3, 3), complex))

    def test_bad_cache_capacity(self):
        with pytest.raises(LithoError, match="fft_cache_capacity"):
            tiny_kernel_set(capacity=0)

    def test_bad_kernel_shape(self):
        with pytest.raises(LithoError):
            OpticalKernelSet(
                weights=np.ones(2),
                kernels=np.ones((2, 5, 4), dtype=complex),
                pixel_nm=8.0,
                defocus_nm=0.0,
            )

    def test_weights_kernels_mismatch(self):
        with pytest.raises(LithoError):
            OpticalKernelSet(
                weights=np.ones(3),
                kernels=np.ones((2, 5, 5), dtype=complex),
                pixel_nm=8.0,
                defocus_nm=0.0,
            )


class TestFFTCacheLRU:
    def test_capacity_is_enforced(self):
        kernel_set = tiny_kernel_set(capacity=2)
        for n in (16, 20, 24, 28):
            kernel_set.convolve_intensity(np.ones((n, n)))
        assert len(kernel_set._fft_cache) == 2
        assert list(kernel_set._fft_cache) == [(24, 24), (28, 28)]

    def test_recently_used_shape_survives(self):
        kernel_set = tiny_kernel_set(capacity=2)
        kernel_set.convolve_intensity(np.ones((16, 16)))
        kernel_set.convolve_intensity(np.ones((20, 20)))
        kernel_set.convolve_intensity(np.ones((16, 16)))  # refresh (16, 16)
        kernel_set.convolve_intensity(np.ones((24, 24)))  # evicts (20, 20)
        assert list(kernel_set._fft_cache) == [(16, 16), (24, 24)]

    def test_eviction_keeps_results_correct(self):
        """Recomputing an evicted shape must reproduce the original
        intensities exactly."""
        kernel_set = tiny_kernel_set(capacity=1)
        rng = np.random.default_rng(3)
        mask_small = rng.random((16, 16))
        mask_large = rng.random((24, 24))
        first = kernel_set.convolve_intensity(mask_small)
        kernel_set.convolve_intensity(mask_large)  # evicts the (16, 16) FFTs
        assert (16, 16) not in kernel_set._fft_cache
        again = kernel_set.convolve_intensity(mask_small)
        assert np.array_equal(first, again)

    def test_batch_and_single_share_cache(self):
        kernel_set = tiny_kernel_set()
        kernel_set.convolve_intensity(np.ones((16, 16)))
        assert list(kernel_set._fft_cache) == [(16, 16)]
        kernel_set.convolve_intensity_batch(np.ones((4, 16, 16)))
        assert list(kernel_set._fft_cache) == [(16, 16)]  # no new entry


class TestSimulatorErrors:
    @pytest.fixture(scope="class")
    def sim(self):
        return LithographySimulator(
            LithoConfig(
                pixel_nm=8.0, period_nm=1024.0, ambit_nm=512.0, max_kernels=4
            )
        )

    def test_bad_mode(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="mode"):
            sim.simulate_batch(np.ones((1, 96, 96)), grid, mode="turbo")

    def test_empty_batch(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="empty"):
            sim.simulate_batch([], grid)

    def test_ragged_batch(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="share one shape"):
            sim.simulate_batch([np.ones((96, 96)), np.ones((80, 80))], grid)

    def test_grid_mismatch(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="grid"):
            sim.simulate_batch(np.ones((1, 80, 80)), grid)

    def test_mask_below_ambit(self, sim):
        grid = Grid(0, 0, 8.0, 16, 16)
        with pytest.raises(LithoError, match="ambit"):
            sim.simulate_batch(np.ones((1, 16, 16)), grid)


class TestSpectralErrors:
    def test_requires_cutoff(self):
        with pytest.raises(LithoError, match="cutoff"):
            SpectralConvolver(tiny_kernel_set(cutoff=None))

    def test_bad_band_scale(self):
        with pytest.raises(LithoError, match="band_scale"):
            SpectralConvolver(tiny_kernel_set(), band_scale=0.0)

    def test_spectra_helper_rejects_2d(self):
        convolver = SpectralConvolver(tiny_kernel_set())
        with pytest.raises(LithoError, match="3-D"):
            convolver.intensity_from_mask_ffts(np.ones((64, 64), complex))

    def test_bad_fft_length(self):
        with pytest.raises(LithoError):
            next_fast_len(0)


class TestEnvBatchErrors:
    @pytest.fixture(scope="class")
    def env(self):
        sim = LithographySimulator(
            LithoConfig(
                pixel_nm=8.0, period_nm=1024.0, ambit_nm=512.0, max_kernels=4
            )
        )
        clip = Clip(
            name="err-env",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        return OPCEnvironment(clip, sim)

    def test_empty_evaluate_batch(self, env):
        with pytest.raises(RLError, match="at least one"):
            env.evaluate_batch([])

    def test_score_moves_rejects_1d(self, env):
        state = env.reset()
        with pytest.raises(RLError, match="matrix"):
            env.score_moves(state, np.zeros(env.n_segments, dtype=int))

    def test_score_moves_rejects_wrong_width(self, env):
        state = env.reset()
        with pytest.raises(RLError, match="actions"):
            env.score_moves(state, np.zeros((2, env.n_segments + 1), dtype=int))

    def test_score_moves_rejects_out_of_range(self, env):
        state = env.reset()
        bad = np.full((1, env.n_segments), env.n_actions)
        with pytest.raises(RLError, match="indices"):
            env.score_moves(state, bad)
