"""Error-path coverage for the lithography engine plus the bounded
per-grid caches: every ``LithoError`` raise in ``kernels.py`` /
``simulator.py`` is exercised, LRU eviction is shown to keep results
correct, and the FFT-derived cache is shown to key on backend identity
(the cross-backend staleness regression)."""

import numpy as np
import pytest

from repro.errors import LithoError, RLError
from repro.geometry import Clip, Grid, Polygon, Rect
from repro.litho import (
    LithoConfig,
    LithographySimulator,
    OpticalKernelSet,
    scipy_fft_available,
)
from repro.litho.fft import next_fast_len
from repro.rl.env import OPCEnvironment


def tiny_kernel_set(capacity: int = 6, cutoff: float | None = 0.0126, **kw):
    """Legacy spatial-provenance set (explicit weights + kernels)."""
    rng = np.random.default_rng(42)
    kw.setdefault("fft_backend", "numpy")
    return OpticalKernelSet(
        weights=np.array([0.5, 0.3, 0.2]),
        kernels=rng.normal(size=(3, 5, 5)) + 1j * rng.normal(size=(3, 5, 5)),
        pixel_nm=8.0,
        defocus_nm=0.0,
        cutoff_per_nm=cutoff,
        fft_cache_capacity=capacity,
        **kw,
    )


def cache_key(kernel_set, shape):
    backend = kernel_set.fft
    return (shape, *backend.identity)


class TestKernelSetErrors:
    def test_non_2d_mask(self):
        with pytest.raises(LithoError):
            tiny_kernel_set().convolve_intensity(np.ones((2, 16, 16)))

    def test_mask_smaller_than_ambit(self):
        with pytest.raises(LithoError):
            tiny_kernel_set().convolve_intensity(np.ones((3, 3)))

    def test_batch_rejects_2d(self):
        with pytest.raises(LithoError, match="3-D"):
            tiny_kernel_set().convolve_intensity_batch(np.ones((16, 16)))

    def test_batch_rejects_4d(self):
        with pytest.raises(LithoError, match="3-D"):
            tiny_kernel_set().convolve_intensity_batch(np.ones((2, 2, 16, 16)))

    def test_batch_rejects_empty(self):
        with pytest.raises(LithoError, match="empty"):
            tiny_kernel_set().convolve_intensity_batch(np.empty((0, 16, 16)))

    def test_batch_rejects_small_masks(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().convolve_intensity_batch(np.ones((2, 3, 3)))

    def test_spectra_helper_rejects_2d(self):
        with pytest.raises(LithoError, match="3-D"):
            tiny_kernel_set().intensity_from_mask_ffts(np.ones((16, 16), complex))

    def test_fields_helper_rejects_3d(self):
        with pytest.raises(LithoError, match="2-D"):
            tiny_kernel_set().fields_from_mask_fft(np.ones((2, 16, 16), complex))

    def test_kernel_spectra_rejects_small_grid(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().kernel_spectra((3, 3))

    def test_spectra_helper_rejects_small_grid(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().intensity_from_mask_ffts(
                np.ones((1, 3, 3), complex)
            )

    def test_fields_helper_rejects_small_grid(self):
        with pytest.raises(LithoError, match="ambit"):
            tiny_kernel_set().fields_from_mask_fft(np.ones((3, 3), complex))

    def test_bad_cache_capacity(self):
        with pytest.raises(LithoError, match="fft_cache_capacity"):
            tiny_kernel_set(capacity=0)

    def test_bad_kernel_shape(self):
        with pytest.raises(LithoError):
            OpticalKernelSet(
                weights=np.ones(2),
                kernels=np.ones((2, 5, 4), dtype=complex),
                pixel_nm=8.0,
                defocus_nm=0.0,
            )

    def test_weights_kernels_mismatch(self):
        with pytest.raises(LithoError):
            OpticalKernelSet(
                weights=np.ones(3),
                kernels=np.ones((2, 5, 5), dtype=complex),
                pixel_nm=8.0,
                defocus_nm=0.0,
            )

    def test_needs_source_or_kernels(self):
        with pytest.raises(LithoError, match="source"):
            OpticalKernelSet(pixel_nm=8.0, defocus_nm=0.0)

    def test_native_set_has_no_spatial_ambit(self):
        from repro.litho import build_kernel_set

        native = build_kernel_set(pixel_nm=8.0, period_nm=1024.0, max_kernels=4)
        with pytest.raises(LithoError, match="ambit"):
            native.ambit_px
        with pytest.raises(LithoError, match="per-grid"):
            native.count

    def test_legacy_set_has_no_band_spectra(self):
        with pytest.raises(LithoError, match="band spectra"):
            tiny_kernel_set().band_spectra((64, 64))


class TestFFTCacheLRU:
    def test_capacity_is_enforced(self):
        kernel_set = tiny_kernel_set(capacity=2)
        for n in (16, 20, 24, 28):
            kernel_set.convolve_intensity(np.ones((n, n)))
        assert len(kernel_set._fft_cache) == 2
        assert list(kernel_set._fft_cache) == [
            cache_key(kernel_set, (24, 24)),
            cache_key(kernel_set, (28, 28)),
        ]

    def test_recently_used_shape_survives(self):
        kernel_set = tiny_kernel_set(capacity=2)
        kernel_set.convolve_intensity(np.ones((16, 16)))
        kernel_set.convolve_intensity(np.ones((20, 20)))
        kernel_set.convolve_intensity(np.ones((16, 16)))  # refresh (16, 16)
        kernel_set.convolve_intensity(np.ones((24, 24)))  # evicts (20, 20)
        assert list(kernel_set._fft_cache) == [
            cache_key(kernel_set, (16, 16)),
            cache_key(kernel_set, (24, 24)),
        ]

    def test_eviction_keeps_results_correct(self):
        """Recomputing an evicted shape must reproduce the original
        intensities exactly."""
        kernel_set = tiny_kernel_set(capacity=1)
        rng = np.random.default_rng(3)
        mask_small = rng.random((16, 16))
        mask_large = rng.random((24, 24))
        first = kernel_set.convolve_intensity(mask_small)
        kernel_set.convolve_intensity(mask_large)  # evicts the (16, 16) FFTs
        assert cache_key(kernel_set, (16, 16)) not in kernel_set._fft_cache
        again = kernel_set.convolve_intensity(mask_small)
        assert np.array_equal(first, again)

    def test_batch_and_single_share_cache(self):
        kernel_set = tiny_kernel_set()
        kernel_set.convolve_intensity(np.ones((16, 16)))
        assert list(kernel_set._fft_cache) == [cache_key(kernel_set, (16, 16))]
        kernel_set.convolve_intensity_batch(np.ones((4, 16, 16)))
        # no new entry
        assert list(kernel_set._fft_cache) == [cache_key(kernel_set, (16, 16))]


class TestFFTCacheBackendKey:
    """Regression: FFT-derived spectra are keyed by backend identity, so
    swapping the transform backend on a shared kernel set can never serve
    spectra computed by the previous backend."""

    def test_worker_identity_in_key(self):
        kernel_set = tiny_kernel_set(fft_backend="numpy", fft_workers=1)
        kernel_set.kernel_spectra((16, 16))
        kernel_set.fft_workers = 2
        kernel_set.kernel_spectra((16, 16))
        keys = list(kernel_set._fft_cache)
        assert ((16, 16), "numpy", 1, "cpu") in keys
        assert ((16, 16), "numpy", 2, "cpu") in keys

    @pytest.mark.skipif(
        not scipy_fft_available(), reason="scipy not installed"
    )
    def test_backend_swap_recomputes(self):
        kernel_set = tiny_kernel_set(fft_backend="numpy", fft_workers=1)
        numpy_stack = kernel_set.kernel_spectra((16, 16))
        kernel_set.fft_backend = "scipy"
        kernel_set.fft_workers = 2
        scipy_stack = kernel_set.kernel_spectra((16, 16))
        assert scipy_stack is not numpy_stack  # fresh computation
        assert np.allclose(scipy_stack, numpy_stack, atol=1e-9)
        # Both entries stay resident under their own keys.
        assert ((16, 16), "numpy", 1, "cpu") in kernel_set._fft_cache
        assert ((16, 16), "scipy", 2, "cpu") in kernel_set._fft_cache

    def test_native_band_spectra_are_backend_independent(self):
        from repro.litho import build_kernel_set

        native = build_kernel_set(
            pixel_nm=8.0, period_nm=1024.0, max_kernels=4, fft_backend="numpy"
        )
        stack = native.kernel_spectra((96, 96))
        # Scattered band coefficients involve no transform at all, so the
        # cache key carries the "band" provenance, not a backend.
        assert ((96, 96), "band") in native._fft_cache
        again = native.kernel_spectra((96, 96))
        assert again is stack


class TestSimulatorErrors:
    @pytest.fixture(scope="class")
    def sim(self):
        return LithographySimulator(
            LithoConfig(
                pixel_nm=8.0, period_nm=1024.0, ambit_nm=512.0, max_kernels=4
            )
        )

    def test_bad_mode(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="mode"):
            sim.simulate_batch(np.ones((1, 96, 96)), grid, mode="turbo")

    def test_deprecated_mode_warns(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        for mode in ("exact", "spectral"):
            with pytest.warns(DeprecationWarning, match="deprecated"):
                sim.simulate_batch(np.ones((1, 96, 96)), grid, mode=mode)

    def test_empty_batch(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="empty"):
            sim.simulate_batch([], grid)

    def test_ragged_batch(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="share one shape"):
            sim.simulate_batch([np.ones((96, 96)), np.ones((80, 80))], grid)

    def test_grid_mismatch(self, sim):
        grid = Grid(0, 0, 8.0, 96, 96)
        with pytest.raises(LithoError, match="grid"):
            sim.simulate_batch(np.ones((1, 80, 80)), grid)

    def test_window_too_small_for_band(self, sim):
        """A 128 nm window holds no usable pupil band: the frequency-
        native build must reject it with a clear message."""
        grid = Grid(0, 0, 8.0, 16, 16)
        with pytest.raises(LithoError, match="too coarse"):
            sim.simulate_batch(np.ones((1, 16, 16)), grid)

    def test_bad_fft_length(self):
        with pytest.raises(LithoError):
            next_fast_len(0)


class TestEnvBatchErrors:
    @pytest.fixture(scope="class")
    def env(self):
        sim = LithographySimulator(
            LithoConfig(
                pixel_nm=8.0, period_nm=1024.0, ambit_nm=512.0, max_kernels=4
            )
        )
        clip = Clip(
            name="err-env",
            bbox=Rect(0, 0, 1280, 1280),
            targets=(Polygon.from_rect(Rect.square(640, 640, 90)),),
            layer="via",
        )
        return OPCEnvironment(clip, sim)

    def test_empty_evaluate_batch(self, env):
        with pytest.raises(RLError, match="at least one"):
            env.evaluate_batch([])

    def test_empty_reset_population(self, env):
        with pytest.raises(RLError, match="at least one"):
            env.reset_population([])

    def test_deprecated_env_mode_warns(self, env):
        state = env.reset()
        with pytest.warns(DeprecationWarning, match="deprecated"):
            env.step_batch([state], np.zeros((1, env.n_segments), dtype=int),
                           mode="spectral")

    def test_score_moves_rejects_1d(self, env):
        state = env.reset()
        with pytest.raises(RLError, match="matrix"):
            env.score_moves(state, np.zeros(env.n_segments, dtype=int))

    def test_score_moves_rejects_wrong_width(self, env):
        state = env.reset()
        with pytest.raises(RLError, match="actions"):
            env.score_moves(state, np.zeros((2, env.n_segments + 1), dtype=int))

    def test_score_moves_rejects_out_of_range(self, env):
        state = env.reset()
        bad = np.full((1, env.n_segments), env.n_actions)
        with pytest.raises(RLError, match="indices"):
            env.score_moves(state, bad)
