"""Ablation bench: RNN visit-order strategies (snake / nearest / BFS).

The paper does not specify the order in which the RNN walks the segment
embeddings; DESIGN.md calls this out as an implementation choice.  This
bench measures both ordering cost and the spatial locality of each order
(mean hop distance between consecutive nodes — the quantity that
determines how useful the hidden state is to the next decision).
"""

import numpy as np
import pytest

from repro.data.via_bench import generate_via_clip
from repro.geometry import fragment_clip
from repro.graphs import build_segment_graph
from repro.graphs.ordering import ORDERINGS


@pytest.fixture(scope="module")
def graph():
    clip = generate_via_clip("order", n_vias=6, seed=17)
    return build_segment_graph(fragment_clip(clip))


def _mean_hop(graph, order):
    controls = np.asarray([s.control for s in graph.segments])
    hops = [
        float(np.hypot(*(controls[a] - controls[b])))
        for a, b in zip(order, order[1:])
    ]
    return float(np.mean(hops))


@pytest.mark.parametrize("name", sorted(ORDERINGS))
def test_ordering_cost_and_locality(graph, name, benchmark):
    order_fn = ORDERINGS[name]
    order = benchmark(order_fn, graph)
    assert sorted(order) == list(range(graph.n_nodes))
    hop = _mean_hop(graph, order)
    print(f"\n{name}: mean consecutive hop {hop:.0f} nm")
    # Any sane order keeps the mean hop far below the clip diagonal.
    assert hop < 2000


def test_nearest_neighbor_is_most_local(graph):
    hops = {
        name: _mean_hop(graph, fn(graph)) for name, fn in ORDERINGS.items()
    }
    print("\nmean hops:", {k: round(v) for k, v in hops.items()})
    assert hops["nearest"] == min(hops.values())
