"""Microbenchmark: batched lithography engine vs the per-mask loop.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_batch_litho.py          # full
    PYTHONPATH=src python benchmarks/bench_batch_litho.py --smoke  # CI

Three pipelines are timed on the same B=8 stack of masks and verified
against each other before any number is reported:

* ``sequential``      — B calls of ``simulate_mask`` (the reference);
* ``batch (exact)``   — one ``simulate_batch`` call, bit-for-bit equal to
  sequential.  Its FLOPs are identical, so on a single core its speedup
  is bounded by call-overhead amortization and the shared forward FFT
  (~1.1-1.4x); on multi-core BLAS/FFT builds the batched transforms
  parallelize and the gap widens.
* ``batch (spectral)``— one screening-mode ``simulate_batch`` call: the
  per-kernel inverse FFTs run on the pupil-band subgrid, which cuts the
  transform work by ~4x at production resolution.  This is the >= 3x
  headline path; its ~1e-3 intensity error is measured and printed.

The script exits non-zero if parity fails or the spectral speedup falls
below the 3x acceptance threshold.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.geometry.raster import Grid, rasterize
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.litho.simulator import LithoConfig, LithographySimulator

BATCH = 8
SPEEDUP_THRESHOLD = 3.0
SPECTRAL_TOLERANCE = 5e-3


def build_masks(grid: Grid, count: int) -> list[np.ndarray]:
    """`count` distinct multi-via masks spread over the window."""
    rng = np.random.default_rng(99)
    window = grid.rows * grid.pixel_nm
    masks = []
    for _ in range(count):
        polys = []
        for _ in range(3):
            cx = float(rng.integers(400, int(window) - 400))
            cy = float(rng.integers(400, int(window) - 400))
            size = float(rng.integers(60, 120))
            polys.append(Polygon.from_rect(Rect.square(cx, cy, size)))
        masks.append(rasterize(polys, grid))
    return masks


def best_of(fn, repeats: int) -> float:
    fn()  # warm caches (kernel FFTs, spectral plans)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(smoke: bool, min_speedup: float = SPEEDUP_THRESHOLD) -> int:
    if smoke:
        config = LithoConfig(pixel_nm=4.0, max_kernels=6)
        window_nm, repeats = 1024.0, 3
    else:
        config = LithoConfig(pixel_nm=4.0, max_kernels=8)
        window_nm, repeats = 1280.0, 5

    simulator = LithographySimulator(config)
    n = int(window_nm / config.pixel_nm)
    grid = Grid(0.0, 0.0, config.pixel_nm, n, n)
    masks = build_masks(grid, BATCH)
    stack = np.stack(masks)
    kernel_count = simulator.kernel_set(0.0).count
    plan = simulator.spectral_convolver(0.0).plan(grid.shape)

    print(f"bench_batch_litho: grid {n}x{n} @ {config.pixel_nm} nm, "
          f"K={kernel_count} kernels/corner, B={BATCH}, "
          f"spectral band {plan.band} on subgrid {plan.subgrid}")

    # -- correctness gates before any timing ------------------------------
    sequential = [simulator.simulate_mask(m, grid) for m in masks]
    exact = simulator.simulate_batch(stack, grid)
    for single, batched in zip(sequential, exact):
        if not (np.array_equal(single.aerial, batched.aerial)
                and np.array_equal(single.aerial_defocus,
                                   batched.aerial_defocus)):
            print("FAIL: exact batch is not bit-for-bit equal to sequential")
            return 1
    screened = simulator.simulate_batch(stack, grid, mode="spectral")
    spectral_error = max(
        np.abs(s.aerial - e.aerial).max() for s, e in zip(screened, sequential)
    )
    if spectral_error > SPECTRAL_TOLERANCE:
        print(f"FAIL: spectral error {spectral_error:.2e} > {SPECTRAL_TOLERANCE}")
        return 1

    # -- timing ------------------------------------------------------------
    t_seq = best_of(
        lambda: [simulator.simulate_mask(m, grid) for m in masks], repeats
    )
    t_exact = best_of(lambda: simulator.simulate_batch(stack, grid), repeats)
    t_spectral = best_of(
        lambda: simulator.simulate_batch(stack, grid, mode="spectral"), repeats
    )

    per_mask = t_seq / BATCH
    print(f"  sequential simulate_mask : {t_seq * 1e3:8.1f} ms "
          f"({per_mask * 1e3:.1f} ms/mask)  [baseline]")
    print(f"  simulate_batch (exact)   : {t_exact * 1e3:8.1f} ms "
          f"-> {t_seq / t_exact:4.2f}x  (bit-for-bit identical)")
    print(f"  simulate_batch (spectral): {t_spectral * 1e3:8.1f} ms "
          f"-> {t_seq / t_spectral:4.2f}x  "
          f"(max |dI| = {spectral_error:.1e}, screening only)")

    speedup = t_seq / t_spectral
    if speedup < min_speedup:
        print(f"FAIL: spectral batch speedup {speedup:.2f}x < "
              f"{min_speedup}x threshold")
        return 1
    print(f"PASS: batched engine reaches {speedup:.2f}x >= "
          f"{min_speedup}x over the per-mask loop at B={BATCH}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-grid CI mode (seconds, not minutes)")
    parser.add_argument("--min-speedup", type=float, default=SPEEDUP_THRESHOLD,
                        help="fail below this spectral speedup (use a looser "
                             "value on noisy shared CI runners)")
    args = parser.parse_args()
    return run(smoke=args.smoke, min_speedup=args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
