"""Microbenchmark: unified band-limited engine vs the per-mask reference.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_batch_litho.py          # full
    PYTHONPATH=src python benchmarks/bench_batch_litho.py --smoke  # CI

Two pipelines are timed on the same B=8 stack of masks and verified
against each other before any number is reported:

* ``sequential``   — B calls of ``simulate_mask`` (the retained spatial
  reference path: one full-grid inverse FFT per kernel);
* ``batch``        — one ``simulate_batch`` call: a single shared forward
  FFT feeds all three process corners, and the per-kernel inverse FFTs
  run on the compact pupil-band subgrid.  Since PR 3 the kernels are
  frequency-native (built on each grid's own frequency lattice, no
  spatial ambit crop), so this path is *exact* — it must match the
  reference to <= 1e-9 max absolute intensity and produce identical
  printed corners.  What used to be screening-only throughput is now
  the legal path for reported EPE/PV-band metrology.

The script exits non-zero if exactness fails, if per-mask results depend
on the batch size, or if the batched speedup falls below the acceptance
threshold.  A machine-readable record of every run (config, timings,
speedup, pass/fail) is written to ``BENCH_batch_litho.json`` (override
with ``--json``) so the perf trajectory is tracked across PRs instead of
living only in the gate's pass/fail output.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from bench_common import write_json

from repro.geometry.raster import Grid, rasterize
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.litho.simulator import LithoConfig, LithographySimulator

BATCH = 8
SPEEDUP_THRESHOLD = 3.0
EXACTNESS_TOLERANCE = 1e-9
DEFAULT_JSON_PATH = "BENCH_batch_litho.json"


def build_masks(grid: Grid, count: int) -> list[np.ndarray]:
    """`count` distinct multi-via masks spread over the window."""
    rng = np.random.default_rng(99)
    window = grid.rows * grid.pixel_nm
    masks = []
    for _ in range(count):
        polys = []
        for _ in range(3):
            cx = float(rng.integers(400, int(window) - 400))
            cy = float(rng.integers(400, int(window) - 400))
            size = float(rng.integers(60, 120))
            polys.append(Polygon.from_rect(Rect.square(cx, cy, size)))
        masks.append(rasterize(polys, grid))
    return masks


def best_of(fn, repeats: int) -> float:
    fn()  # warm caches (band spectra, kernel FFT stacks)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(
    smoke: bool,
    min_speedup: float = SPEEDUP_THRESHOLD,
    json_path: str = DEFAULT_JSON_PATH,
) -> int:
    if smoke:
        config = LithoConfig(pixel_nm=4.0, max_kernels=6)
        window_nm, repeats = 1024.0, 3
    else:
        config = LithoConfig(pixel_nm=4.0, max_kernels=8)
        window_nm, repeats = 1280.0, 5

    simulator = LithographySimulator(config)
    n = int(window_nm / config.pixel_nm)
    grid = Grid(0.0, 0.0, config.pixel_nm, n, n)
    masks = build_masks(grid, BATCH)
    stack = np.stack(masks)
    band = simulator.kernel_set(0.0).band_spectra(grid.shape)

    print(f"bench_batch_litho: grid {n}x{n} @ {config.pixel_nm} nm, "
          f"K={band.count} kernels/corner, B={BATCH}, "
          f"pupil band {band.band} on subgrid {band.subgrid} "
          f"(frequency-native, exact)")

    # -- correctness gates before any timing ------------------------------
    sequential = [simulator.simulate_mask(m, grid) for m in masks]
    batched = simulator.simulate_batch(stack, grid)
    exact_error = 0.0
    for single, result in zip(sequential, batched):
        exact_error = max(
            exact_error,
            np.abs(single.aerial - result.aerial).max(),
            np.abs(single.aerial_defocus - result.aerial_defocus).max(),
        )
        for corner in ("nominal", "inner", "outer"):
            if not np.array_equal(single.printed[corner],
                                  result.printed[corner]):
                print(f"FAIL: batched printed {corner} image diverges "
                      "from the reference path")
                return 1
    if exact_error > EXACTNESS_TOLERANCE:
        print(f"FAIL: batched engine error {exact_error:.2e} > "
              f"{EXACTNESS_TOLERANCE} vs the spatial reference")
        return 1
    alone = simulator.simulate_batch(stack[:1], grid)[0]
    if not np.array_equal(alone.aerial, batched[0].aerial):
        print("FAIL: per-mask results depend on the batch size")
        return 1

    # -- timing ------------------------------------------------------------
    t_seq = best_of(
        lambda: [simulator.simulate_mask(m, grid) for m in masks], repeats
    )
    t_batch = best_of(lambda: simulator.simulate_batch(stack, grid), repeats)

    per_mask = t_seq / BATCH
    print(f"  sequential simulate_mask : {t_seq * 1e3:8.1f} ms "
          f"({per_mask * 1e3:.1f} ms/mask)  [reference]")
    print(f"  simulate_batch (unified) : {t_batch * 1e3:8.1f} ms "
          f"-> {t_seq / t_batch:4.2f}x  "
          f"(max |dI| = {exact_error:.1e}, exact — legal for metrology)")

    speedup = t_seq / t_batch
    passed = speedup >= min_speedup
    write_json(json_path, {
        "bench": "batch_litho",
        "smoke": smoke,
        "grid": [n, n],
        "pixel_nm": config.pixel_nm,
        "kernels_per_corner": band.count,
        "pupil_band": list(band.band),
        "subgrid": list(band.subgrid),
        "batch": BATCH,
        "fft_backend": simulator.kernel_set(0.0).fft.name,
        "t_sequential_s": t_seq,
        "t_batch_s": t_batch,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "max_abs_intensity_error": exact_error,
        "exactness_tolerance": EXACTNESS_TOLERANCE,
        "passed": passed,
    })
    if not passed:
        print(f"FAIL: batched engine speedup {speedup:.2f}x < "
              f"{min_speedup}x threshold")
        return 1
    print(f"PASS: unified band engine reaches {speedup:.2f}x >= "
          f"{min_speedup}x over the per-mask reference at B={BATCH}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-grid CI mode (seconds, not minutes)")
    parser.add_argument("--min-speedup", type=float, default=SPEEDUP_THRESHOLD,
                        help="fail below this batched speedup (use a looser "
                             "value on noisy shared CI runners)")
    parser.add_argument("--json", default=DEFAULT_JSON_PATH, metavar="PATH",
                        help="machine-readable result file ('' disables; "
                             f"default {DEFAULT_JSON_PATH})")
    args = parser.parse_args()
    return run(smoke=args.smoke, min_speedup=args.min_speedup,
               json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
