"""Regenerates paper Table 2: metal-layer OPC comparison.

Prints the paper-format table and asserts the headline shape: RL-OPC
(independent per-segment decisions, no modulator) degrades badly on metal,
while CAMO stays competitive with the Calibre-like engine.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def table2_results(scale_name):
    text, results = experiments.table2(scale_name)
    print("\n" + text)
    return text, results


def test_table2_generation(table2_results, benchmark):
    _text, results = table2_results
    bundle = experiments.trained_metal_engines()
    clip = bundle["test_clips"][0]

    benchmark(lambda: bundle["camo"].optimize(clip))

    camo = results["CAMO"]
    rlopc = results["RL-OPC"]
    calibre = results["Calibre-like"]
    # Paper shape: RL-OPC diverges on metal (3.42x in the paper); CAMO is
    # within striking distance of the commercial-like engine.
    assert rlopc.epe_sum > camo.epe_sum
    assert camo.epe_sum < 2.0 * calibre.epe_sum


def test_table2_measure_point_counts(table2_results):
    """The suite reproduces Table 2's Point # column exactly."""
    from repro.data.metal_bench import METAL_TEST_POINTS, metal_test_suite
    from repro.geometry import fragment_clip

    bundle = experiments.trained_metal_engines()
    wanted = {
        clip.name: pts
        for clip, pts in zip(metal_test_suite(), METAL_TEST_POINTS)
    }
    for clip in bundle["test_clips"]:
        segments = fragment_clip(clip)
        points = sum(1 for s in segments if s.measure_point is not None)
        assert points == wanted[clip.name]
