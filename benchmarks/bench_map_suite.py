"""Benchmark gate: process-sharded suite execution vs the sequential sweep.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_map_suite.py          # full
    PYTHONPATH=src python benchmarks/bench_map_suite.py --smoke  # CI

Two sweeps of the same via suite through
:meth:`repro.service.MaskOptService.run_suite_sharded` (the engine room
of ``map_suite(workers=N)`` and ``python -m repro optimize --workers N``):

* ``sequential`` — ``workers=1``: the engine is built from the same
  picklable spec and sweeps the suite in-process, verification at the
  end;
* ``sharded``    — ``workers=N`` (default 4): N spawned worker processes
  split the clip list, share one *warm* on-disk kernel-spectra store (so
  no worker pays the TCC build), and stream outcomes back while the
  parent drains full verification bins concurrently;
* ``journaled``  — the sharded sweep again with ``journal=`` armed: every
  admission and verified result is CRC-framed and fsync'd to an
  append-only outcome journal, the durability layer behind
  ``python -m repro resume``.

Results are asserted bit-for-bit identical before any number is
reported — sharding reorders work, never numbers, and journaling
observes outcomes, never changes them.  The speedup gate (>= 1.8x by
default) and the journal-overhead gate (journaled sweep <= 5% slower
than plain sharded by default, ``--max-journal-overhead``) are enforced
only on hosts with >= 4 cores; on smaller hosts the run still checks
parity and records timings, because a 1-core container cannot
demonstrate process parallelism no matter how correct the sharding is.
A machine-readable record of every run is written to
``BENCH_map_suite.json`` (override with ``--json``).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from bench_common import write_json

from repro.data.via_bench import generate_via_clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service import MaskOptService

WORKERS = 4
SPEEDUP_THRESHOLD = 1.8
JOURNAL_OVERHEAD_THRESHOLD = 0.05
MIN_GATE_CORES = 4
DEFAULT_JSON_PATH = "BENCH_map_suite.json"

ENGINE = "mbopc"
# No early exit: every clip runs the full update budget, so the suite is
# homogeneous and the round-robin shards stay balanced.
ENGINE_OVERRIDES = {
    "max_updates": 6,
    "initial_bias_nm": 3.0,
    "early_exit_threshold": 0.0,
}


def build_suite(count: int) -> list:
    """``count`` distinct 2048 nm via clips (512x512 @ 4 nm)."""
    return [
        generate_via_clip(f"bench{i}", n_vias=5, seed=100 + i, clip_nm=2048.0)
        for i in range(count)
    ]


def assert_identical(sharded, sequential) -> None:
    for got, ref in zip(sharded, sequential):
        if (
            got.clip_name != ref.clip_name
            or got.epe_nm != ref.epe_nm
            or got.pvband_nm2 != ref.pvband_nm2
            or got.verified_epe_nm != ref.verified_epe_nm
            or got.steps != ref.steps
        ):
            raise AssertionError(
                f"sharded result diverges on {ref.clip_name}: "
                f"epe {got.epe_nm!r} vs {ref.epe_nm!r}, "
                f"verified {got.verified_epe_nm!r} vs {ref.verified_epe_nm!r}"
            )


def run(
    smoke: bool,
    workers: int = WORKERS,
    min_speedup: float = SPEEDUP_THRESHOLD,
    max_journal_overhead: float = JOURNAL_OVERHEAD_THRESHOLD,
    json_path: str = DEFAULT_JSON_PATH,
    store_dir: str | None = None,
) -> int:
    count = 12 if smoke else 24
    config = LithoConfig(pixel_nm=4.0, max_kernels=6)
    clips = build_suite(count)

    with tempfile.TemporaryDirectory(prefix="bench-spectra-") as tmp:
        root = store_dir or tmp
        config = LithoConfig(
            pixel_nm=config.pixel_nm, max_kernels=config.max_kernels,
            spectra_store=root,
        )

        # Warm the shared store (one optimize + verification persists the
        # band spectra for the suite's single grid shape at both focus
        # settings) so neither timed sweep pays the TCC build.
        warm = MaskOptService(litho_config=config)
        warm.run_suite_sharded(
            ENGINE, clips[:1], workers=1, engine_overrides=ENGINE_OVERRIDES,
        )
        store = warm.simulator.spectra_store()
        entries = store.entry_count() if store is not None else 0

        cores = os.cpu_count() or 1
        print(f"bench_map_suite: {count} via clips, 512x512 @ 4 nm, "
              f"engine={ENGINE}, workers={workers}, {cores} cores, "
              f"warm store ({entries} entries) at {root}")

        sequential_service = MaskOptService(litho_config=config)
        t0 = time.perf_counter()
        sequential = sequential_service.run_suite_sharded(
            ENGINE, clips, workers=1, engine_overrides=ENGINE_OVERRIDES,
        )
        t_seq = time.perf_counter() - t0

        sharded_service = MaskOptService(litho_config=config)
        t0 = time.perf_counter()
        sharded = sharded_service.run_suite_sharded(
            ENGINE, clips, workers=workers,
            engine_overrides=ENGINE_OVERRIDES,
        )
        t_shard = time.perf_counter() - t0

        journal_path = os.path.join(tmp, "bench.journal")
        journaled_service = MaskOptService(litho_config=config)
        t0 = time.perf_counter()
        journaled = journaled_service.run_suite_sharded(
            ENGINE, clips, workers=workers,
            engine_overrides=ENGINE_OVERRIDES, journal=journal_path,
        )
        t_journal = time.perf_counter() - t0

        # -- correctness before speed --------------------------------------
        assert_identical(sharded, sequential)
        assert_identical(journaled, sequential)
        if not all(r.outcome == "verified" for r in sharded):
            print("FAIL: sharded sweep left results unverified")
            return 1

        speedup = t_seq / t_shard
        overhead = t_journal / t_shard - 1.0
        gated = cores >= MIN_GATE_CORES and workers >= MIN_GATE_CORES
        speedup_ok = speedup >= min_speedup or not gated
        overhead_ok = overhead <= max_journal_overhead or not gated
        passed = speedup_ok and overhead_ok

        print(f"  sequential sweep (workers=1) : {t_seq:8.2f} s "
              f"({t_seq / count * 1e3:.0f} ms/clip)  [reference]")
        print(f"  sharded sweep  (workers={workers}) : {t_shard:8.2f} s "
              f"-> {speedup:4.2f}x  (bit-for-bit identical, "
              f"{sharded_service.scheduler.batch_calls} verify flushes)")
        print(f"  journaled sweep (workers={workers}): {t_journal:8.2f} s "
              f"-> {overhead * 100:+5.1f}% vs sharded  "
              f"({count} fsync'd results at {journal_path})")

        write_json(json_path, {
            "bench": "map_suite",
            "smoke": smoke,
            "clips": count,
            "grid": [512, 512],
            "engine": ENGINE,
            "engine_overrides": ENGINE_OVERRIDES,
            "workers": workers,
            "cpu_cores": cores,
            "spectra_store_entries": entries,
            "t_sequential_s": t_seq,
            "t_sharded_s": t_shard,
            "t_journaled_s": t_journal,
            "speedup": speedup,
            "min_speedup": min_speedup,
            "journal_overhead": overhead,
            "max_journal_overhead": max_journal_overhead,
            "gate_enforced": gated,
            "verify_flushes_sharded": sharded_service.scheduler.batch_calls,
            "passed": passed,
        })

        if not gated:
            print(f"PASS (gates not enforced: needs >= {MIN_GATE_CORES} cores "
                  f"and >= {MIN_GATE_CORES} workers; host has {cores} cores) "
                  f"— parity verified, speedup {speedup:.2f}x and journal "
                  f"overhead {overhead * 100:+.1f}% recorded")
            return 0
        if not speedup_ok:
            print(f"FAIL: sharded speedup {speedup:.2f}x < {min_speedup}x "
                  f"threshold at {workers} workers")
            return 1
        if not overhead_ok:
            print(f"FAIL: journal overhead {overhead * 100:+.1f}% > "
                  f"{max_journal_overhead * 100:.0f}% of the sharded sweep")
            return 1
        print(f"PASS: process sharding reaches {speedup:.2f}x >= "
              f"{min_speedup}x at {workers} workers with a warm store; "
              f"journal costs {overhead * 100:+.1f}% "
              f"(<= {max_journal_overhead * 100:.0f}%)")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller suite for CI (seconds, not minutes)")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help=f"shard width to benchmark (default {WORKERS})")
    parser.add_argument("--min-speedup", type=float,
                        default=SPEEDUP_THRESHOLD,
                        help="fail below this sharded speedup (enforced on "
                             f">= {MIN_GATE_CORES}-core hosts; use a looser "
                             "value on noisy shared CI runners)")
    parser.add_argument("--max-journal-overhead", type=float,
                        default=JOURNAL_OVERHEAD_THRESHOLD, metavar="FRAC",
                        help="fail when the journaled sharded sweep is more "
                             "than this fraction slower than the plain one "
                             f"(default {JOURNAL_OVERHEAD_THRESHOLD})")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="reuse a spectra store directory instead of a "
                             "throwaway tempdir")
    parser.add_argument("--json", default=DEFAULT_JSON_PATH, metavar="PATH",
                        help="machine-readable result file ('' disables; "
                             f"default {DEFAULT_JSON_PATH})")
    args = parser.parse_args()
    return run(smoke=args.smoke, workers=args.workers,
               min_speedup=args.min_speedup,
               max_journal_overhead=args.max_journal_overhead,
               json_path=args.json, store_dir=args.store)


if __name__ == "__main__":
    sys.exit(main())
