"""Benchmark gate: CFNO-lite surrogate screening vs exact screening.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_surrogate.py          # full
    PYTHONPATH=src python benchmarks/bench_surrogate.py --smoke  # CI

The workload is screening-shaped: the ``surrogate`` engine's per-step
candidate panel (B=8 move vectors — five uniform moves plus three
perturbation rows) scored three ways on a via clip the model never
trained on:

* ``exact dense``  — ``OPCEnvironment.score_moves``: every candidate
  pays a full ``step_batch`` (all-corner litho + metrology), the
  pre-screening cost of picking a move;
* ``exact sparse`` — ``score_moves_epe``: the band-spectrum contour
  gather (recorded for context, not gated);
* ``surrogate``    — ``SurrogateScreener.score_candidates``: rasterless
  slab-DFT features + CFNO-lite ``forward_fast`` + the shared sparse
  EPE lift, predicting the candidates' summed |EPE| for ranking only.

Two gates, both recorded in ``BENCH_surrogate.json``:

1. **Screening throughput** — surrogate screening must beat exact dense
   screening by ``--min-speedup`` (default 5x) at B=8.  Enforced on
   hosts with >= 4 cores, recorded elsewhere.
2. **Candidate-ranking fidelity** — over early-trajectory rounds on the
   held-out clip, the mean Spearman rank correlation between predicted
   and exact candidate totals must clear ``SPEARMAN_THRESHOLD``, and the
   predicted-best candidate must land in the exact top-2 in at least
   half the rounds.  Always enforced: a fast screener that ranks wrong
   would silently degrade the engine it serves.

The surrogate never reports metrology — the engine exact-evaluates the
winning candidate — so there is no parity gate here; the service's
1e-6 nm drift gate covers the reported numbers (see test_surrogate).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from bench_common import write_json

from repro.data.via_bench import generate_via_clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.rl.env import OPCEnvironment
from repro.surrogate import (
    SurrogateScreener,
    SurrogateTrainConfig,
    train_surrogate,
)

BATCH = 8
SPEEDUP_THRESHOLD = 5.0
SPEARMAN_THRESHOLD = 0.5
TOP_AGREE_FRACTION = 0.5
FIDELITY_ROUNDS = 6
MIN_GATE_CORES = 4
HOLDOUT_SEED = 77
DEFAULT_JSON_PATH = "BENCH_surrogate.json"


def best_of(fn, repeats: int) -> float:
    fn()  # warm caches (band spectra, DFT matrices, stencil plans)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    ranks_a = np.argsort(np.argsort(a))
    ranks_b = np.argsort(np.argsort(b))
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


def candidate_panel(
    env: OPCEnvironment, rng: np.random.Generator
) -> np.ndarray:
    """B=8 screening panel: 5 uniform moves + 3 random perturbation rows."""
    return np.vstack([
        env.uniform_move_candidates(),
        rng.integers(0, 5, size=(BATCH - 5, env.n_segments)),
    ])


def run(
    smoke: bool,
    min_speedup: float = SPEEDUP_THRESHOLD,
    json_path: str = DEFAULT_JSON_PATH,
) -> int:
    config = LithoConfig(pixel_nm=4.0, max_kernels=6)
    # Smoke keeps the full training recipe — the fidelity gate is
    # unconditional, and an undertrained screener ranks wrong — and
    # saves its time on the timing repeats instead (~15 s train).
    train_config = SurrogateTrainConfig()
    repeats = 3 if smoke else 5

    simulator = LithographySimulator(config)
    train_start = time.perf_counter()
    model, report = train_surrogate(simulator, train_config)
    train_time = time.perf_counter() - train_start

    # Held out: the fidelity/timing clip is not in the training corpus
    # (dataset clips are surr-d* seeds; this is an independent seed).
    clip = generate_via_clip(
        "bench-holdout", n_vias=2, seed=HOLDOUT_SEED, clip_nm=1024.0
    )
    env = OPCEnvironment(clip, simulator)
    screener = SurrogateScreener(model)
    cores = os.cpu_count() or 1
    rows, cols = env.grid.shape

    print(f"bench_surrogate: width={model.net.width} "
          f"({report.steps} steps, {report.samples} samples, "
          f"final loss {report.final_loss:.2e}, {train_time:.1f} s train), "
          f"holdout grid {rows}x{cols} @ {config.pixel_nm} nm, "
          f"B={BATCH} panel, {cores} cores")

    # -- ranking fidelity (gated unconditionally) ---------------------------
    state = env.reset()
    rng = np.random.default_rng(5)
    correlations: list[float] = []
    top_agree = 0
    for _ in range(FIDELITY_ROUNDS):
        panel = candidate_panel(env, rng)
        predicted = screener.score_candidates(env, state, panel)
        exact = np.array(
            [rep.total_abs for rep in env.score_moves_epe(state, panel)]
        )
        correlations.append(spearman(predicted, exact))
        best_predicted = int(np.argsort(predicted, kind="stable")[0])
        exact_top2 = set(np.argsort(exact, kind="stable")[:2].tolist())
        top_agree += int(best_predicted in exact_top2)
        # Advance along the exact-best trajectory: screening happens on
        # these early, far-from-converged states.
        state, _ = env.step(state, panel[int(np.argmin(exact))])

    spearman_mean = float(np.mean(correlations))
    top_needed = int(np.ceil(TOP_AGREE_FRACTION * FIDELITY_ROUNDS))
    fidelity_ok = (
        spearman_mean >= SPEARMAN_THRESHOLD and top_agree >= top_needed
    )
    print(f"  ranking fidelity over {FIDELITY_ROUNDS} rounds: "
          f"mean Spearman {spearman_mean:.3f} "
          f"(threshold {SPEARMAN_THRESHOLD}), predicted-best in exact "
          f"top-2 {top_agree}/{FIDELITY_ROUNDS} (need >= {top_needed})")

    # -- screening throughput ----------------------------------------------
    state = env.reset()
    panel = candidate_panel(env, np.random.default_rng(9))
    t_screen = best_of(
        lambda: screener.score_candidates(env, state, panel), repeats
    )
    t_dense = best_of(lambda: env.score_moves(state, panel), repeats)
    t_sparse = best_of(lambda: env.score_moves_epe(state, panel), repeats)
    speedup = t_dense / t_screen

    print(f"  exact dense screening (score_moves)     : "
          f"{t_dense * 1e3:8.1f} ms  [reference]")
    print(f"  exact sparse screening (score_moves_epe): "
          f"{t_sparse * 1e3:8.1f} ms -> {t_dense / t_sparse:4.2f}x")
    print(f"  surrogate screening (CFNO-lite)         : "
          f"{t_screen * 1e3:8.1f} ms -> {speedup:4.2f}x")

    gated = cores >= MIN_GATE_CORES
    speed_ok = speedup >= min_speedup or not gated
    passed = fidelity_ok and speed_ok
    write_json(json_path, {
        "bench": "surrogate",
        "smoke": smoke,
        "grid": [rows, cols],
        "pixel_nm": config.pixel_nm,
        "batch": BATCH,
        "width": model.net.width,
        "train_steps": report.steps,
        "train_samples": report.samples,
        "train_final_loss": report.final_loss,
        "train_time_s": train_time,
        "selftrain_rounds": report.selftrain_rounds,
        "fidelity_rounds": FIDELITY_ROUNDS,
        "spearman": correlations,
        "spearman_mean": spearman_mean,
        "spearman_threshold": SPEARMAN_THRESHOLD,
        "top1_in_top2": top_agree,
        "top_agree_needed": top_needed,
        "cores": cores,
        "t_surrogate_s": t_screen,
        "t_exact_dense_s": t_dense,
        "t_exact_sparse_s": t_sparse,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "fidelity_passed": fidelity_ok,
        "gate_enforced": gated,
        "passed": passed,
    })
    if not fidelity_ok:
        print(f"FAIL: ranking fidelity below the bound (mean Spearman "
              f"{spearman_mean:.3f} / top-2 agreement "
              f"{top_agree}/{FIDELITY_ROUNDS})")
        return 1
    if not gated:
        print(f"PASS (speedup gate not enforced: needs >= {MIN_GATE_CORES} "
              f"cores, host has {cores}) — fidelity verified, "
              f"{speedup:.2f}x recorded")
        return 0
    if not speed_ok:
        print(f"FAIL: surrogate screening speedup {speedup:.2f}x < "
              f"{min_speedup}x threshold")
        return 1
    print(f"PASS: surrogate screening reaches {speedup:.2f}x >= "
          f"{min_speedup}x over exact dense screening at B={BATCH} with "
          f"ranking fidelity intact")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fewer timing repeats for CI (training recipe "
                             "is unchanged — the fidelity gate needs it)")
    parser.add_argument("--min-speedup", type=float,
                        default=SPEEDUP_THRESHOLD,
                        help="fail below this screening speedup (enforced "
                             f"on >= {MIN_GATE_CORES}-core hosts; use a "
                             "looser value on noisy shared CI runners)")
    parser.add_argument("--json", default=DEFAULT_JSON_PATH, metavar="PATH",
                        help="machine-readable result file ('' disables; "
                             f"default {DEFAULT_JSON_PATH})")
    args = parser.parse_args()
    return run(smoke=args.smoke, min_speedup=args.min_speedup,
               json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
