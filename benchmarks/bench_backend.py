"""Microbenchmark: array/device backends on the sparse screening path.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_backend.py          # full
    PYTHONPATH=src python benchmarks/bench_backend.py --smoke  # CI

The workload is screening-shaped: a B=8 batch of realistic via clips
through the sparse contour-point EPE pipeline (half-width forward FFT,
pupil-band subgrid convolution, direct band-spectrum gather), the hot
loop of both the RL candidate screener and the surrogate verifier.  The
same workload runs once per available backend:

* ``numpy``  — single-threaded host reference (bit-for-bit with the
  committed goldens); always available, always the parity baseline.
* ``scipy``  — threaded host transforms (recorded when installed).
* ``torch``  — device execution (CPU always when torch is installed;
  CUDA when available).  Parity against numpy is gated unconditionally
  at <= 1e-9 nm per resolved EPE offset whenever torch is importable;
  the throughput gate requires torch CPU to be no slower than
  ``--max-slowdown`` x single-threaded numpy (device adapters that
  shuttle arrays across the boundary mid-pipeline fail this fast).

When torch is not installed the benchmark records that fact in
``BENCH_backend.json`` and exits 0 — absence of an optional dependency
is not a failure, silent degradation of a requested device backend is
(and ``resolve_backend("torch")`` raising covers that path).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from bench_common import write_json

from repro.backend import resolve_backend, scipy_fft_available, torch_available
from repro.data.via_bench import generate_via_clip
from repro.geometry.raster import rasterize
from repro.geometry.segmentation import fragment_clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.metrology.epe import measure_epe_grouped_sparse, measure_stencil_plan

BATCH = 8
PARITY_TOLERANCE_NM = 1e-9
#: torch CPU must hold at least 1/MAX_SLOWDOWN of single-thread numpy
#: throughput on the B=8 screening workload.
MAX_SLOWDOWN = 1.0
SEARCH_NM = 40.0
DEFAULT_JSON_PATH = "BENCH_backend.json"


def best_of(fn, repeats: int) -> float:
    fn()  # warm caches (band spectra, stencil plans, device copies)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def backend_configs() -> list[dict]:
    """One litho-config override set per backend worth measuring here."""
    entries = [{"label": "numpy", "backend": "numpy", "fft_workers": 1}]
    if scipy_fft_available() and (os.cpu_count() or 1) > 1:
        entries.append({"label": "scipy", "backend": "scipy",
                        "fft_workers": None})
    if torch_available():
        entries.append({"label": "torch-cpu", "backend": "torch",
                        "fft_workers": 1, "device": "cpu"})
        import torch

        if torch.cuda.is_available():
            entries.append({"label": "torch-cuda", "backend": "torch",
                            "fft_workers": 1, "device": "cuda"})
    return entries


def run(
    smoke: bool,
    max_slowdown: float = MAX_SLOWDOWN,
    json_path: str = DEFAULT_JSON_PATH,
) -> int:
    if smoke:
        base = dict(pixel_nm=4.0, max_kernels=6)
        clip_nm, repeats = 1024.0, 3
    else:
        base = dict(pixel_nm=4.0, max_kernels=8)
        clip_nm, repeats = 1280.0, 5

    clips = [
        generate_via_clip(f"bench-b{i}", n_vias=2 + (i % 2), seed=31 + i,
                          clip_nm=clip_nm)
        for i in range(BATCH)
    ]
    reference_sim = LithographySimulator(
        LithoConfig(backend="numpy", fft_workers=1, **base)
    )
    grids = [reference_sim.grid_for(clip) for clip in clips]
    segments = [fragment_clip(clip) for clip in clips]
    stack = np.stack([
        rasterize(clip.targets, grid) for clip, grid in zip(clips, grids)
    ])
    plans = [
        measure_stencil_plan(grid, segs, search_nm=SEARCH_NM)
        for grid, segs in zip(grids, segments)
    ]
    threshold = reference_sim.config.threshold
    band = reference_sim.kernel_set(0.0).band_spectra(grids[0].shape)
    cores = os.cpu_count() or 1
    rows, cols = grids[0].shape

    print(f"bench_backend: B={BATCH} via clips, grid {rows}x{cols} @ "
          f"{base['pixel_nm']} nm, K={band.count} kernels/corner, "
          f"{cores} cores, torch "
          f"{'available' if torch_available() else 'absent'}")

    def screening_run(simulator):
        sparse = simulator.simulate_epe_batch(stack, grids[0], plans)
        return measure_epe_grouped_sparse(sparse, threshold)

    reference_reports = screening_run(reference_sim)

    results = []
    failed = False
    for entry in backend_configs():
        overrides = {
            k: v for k, v in entry.items() if k not in ("label",)
        }
        simulator = (
            reference_sim if entry["label"] == "numpy"
            else LithographySimulator(LithoConfig(**base, **overrides))
        )
        resolved = resolve_backend(
            entry["backend"], entry.get("fft_workers"), entry.get("device")
        )
        # Parity gate before any timing, against the numpy reference.
        parity = 0.0
        for ref, got in zip(reference_reports, screening_run(simulator)):
            if ref.count != got.count:
                print(f"FAIL [{entry['label']}]: point count mismatch")
                return 1
            if ref.count:
                parity = max(
                    parity, float(np.abs(ref.values - got.values).max())
                )
        if parity > PARITY_TOLERANCE_NM:
            print(f"FAIL [{entry['label']}]: EPE parity {parity:.2e} nm > "
                  f"{PARITY_TOLERANCE_NM} nm vs numpy")
            failed = True
        elapsed = best_of(lambda: screening_run(simulator), repeats)
        results.append({
            "label": entry["label"],
            "backend": resolved.name,
            "workers": resolved.workers,
            "device": resolved.device,
            "t_screening_s": elapsed,
            "clips_per_s": BATCH / elapsed,
            "max_abs_epe_drift_nm": parity,
        })
        print(f"  {entry['label']:<11}: {elapsed * 1e3:8.1f} ms "
              f"({BATCH / elapsed:7.1f} clips/s, "
              f"max |dEPE| = {parity:.1e} nm)")

    t_numpy = results[0]["t_screening_s"]
    for record in results:
        record["speedup_vs_numpy"] = t_numpy / record["t_screening_s"]

    torch_cpu = next(
        (r for r in results if r["label"] == "torch-cpu"), None
    )
    gate_enforced = torch_cpu is not None
    if gate_enforced and not failed:
        slowdown = torch_cpu["t_screening_s"] / t_numpy
        if slowdown > max_slowdown:
            print(f"FAIL: torch-cpu is {slowdown:.2f}x slower than "
                  f"single-thread numpy (gate: <= {max_slowdown:.2f}x) — "
                  "device adapters are leaking host round-trips")
            failed = True

    write_json(json_path, {
        "bench": "backend",
        "smoke": smoke,
        "grid": [rows, cols],
        "pixel_nm": base["pixel_nm"],
        "kernels_per_corner": band.count,
        "batch": BATCH,
        "search_nm": SEARCH_NM,
        "cores": cores,
        "torch_available": torch_available(),
        "scipy_available": scipy_fft_available(),
        "parity_tolerance_nm": PARITY_TOLERANCE_NM,
        "max_slowdown_vs_numpy": max_slowdown,
        "gate_enforced": gate_enforced,
        "backends": results,
        "passed": not failed,
    })
    if failed:
        return 1
    if not gate_enforced:
        print("PASS (torch not installed: numpy"
              + ("/scipy" if len(results) > 1 else "")
              + " recorded, device gate not applicable)")
        return 0
    print(f"PASS: every installed backend holds <= {PARITY_TOLERANCE_NM} nm "
          f"EPE parity; torch-cpu at "
          f"{torch_cpu['speedup_vs_numpy']:.2f}x numpy throughput")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-grid CI mode (seconds, not minutes)")
    parser.add_argument("--max-slowdown", type=float, default=MAX_SLOWDOWN,
                        help="fail when torch-cpu exceeds this multiple of "
                             "the single-thread numpy time (use a looser "
                             "value on noisy shared CI runners)")
    parser.add_argument("--json", default=DEFAULT_JSON_PATH, metavar="PATH",
                        help="machine-readable result file ('' disables; "
                             f"default {DEFAULT_JSON_PATH})")
    args = parser.parse_args()
    return run(smoke=args.smoke, max_slowdown=args.max_slowdown,
               json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
