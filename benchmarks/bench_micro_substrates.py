"""Micro-benchmarks of the substrates: litho imaging, squish encoding,
policy forward/backward, segment EPE metrology.

These are the per-iteration costs that dominate every OPC engine's
runtime column in Tables 1 and 2.
"""

import numpy as np
import pytest

from repro.core.config import CamoConfig
from repro.core.policy import CamoPolicy
from repro.data.via_bench import generate_via_clip
from repro.geometry import MaskState, fragment_clip, rasterize
from repro.graphs import build_segment_graph, snake_order
from repro.litho import LithoConfig, LithographySimulator
from repro.metrology import segment_epe
from repro.nn.sage import mean_adjacency
from repro.rl.reinforce import select_log_probs
from repro.squish import NodeFeatureEncoder


@pytest.fixture(scope="module")
def setup():
    simulator = LithographySimulator(LithoConfig(pixel_nm=4.0, max_kernels=8))
    clip = generate_via_clip("micro", n_vias=4, seed=3)
    segments = fragment_clip(clip)
    state = MaskState.initial(clip, segments, bias_nm=3.0)
    grid = simulator.grid_for(clip)
    mask = rasterize(state.mask_polygons(), grid)
    simulator.aerial(mask)  # warm the kernel-FFT cache
    return simulator, clip, segments, state, grid, mask


def test_bench_aerial_image(setup, benchmark):
    simulator, _, _, _, _, mask = setup
    aerial = benchmark(simulator.aerial, mask)
    assert aerial.shape == mask.shape


def test_bench_full_corner_sweep(setup, benchmark):
    simulator, _, _, _, grid, mask = setup
    result = benchmark(simulator.simulate_mask, mask, grid)
    assert result.nominal.shape == mask.shape


def test_bench_rasterize(setup, benchmark):
    _, _, _, state, grid, _ = setup
    image = benchmark(rasterize, state.mask_polygons(), grid)
    assert image.sum() > 0


def test_bench_node_feature_encoding(setup, benchmark):
    _, _, _, state, _, _ = setup
    encoder = NodeFeatureEncoder(window_nm=500, out_size=32, channels=6)
    features = benchmark(encoder.encode_all, state)
    assert features.shape[0] == state.n_segments


def test_bench_segment_epe(setup, benchmark):
    simulator, _, segments, _, grid, mask = setup
    aerial = simulator.aerial(mask)
    values = benchmark(
        segment_epe, aerial, grid, segments, simulator.config.threshold
    )
    assert len(values) == len(segments)


def test_bench_policy_forward(setup, benchmark):
    _, _, segments, state, _, _ = setup
    config = CamoConfig(encode_size=32)
    policy = CamoPolicy(config)
    encoder = NodeFeatureEncoder(window_nm=500, out_size=32, channels=6)
    features = encoder.encode_all(state)
    graph = build_segment_graph(segments)
    adjacency = mean_adjacency(graph)
    order = snake_order(graph)
    logits = benchmark(policy, features, adjacency, order)
    assert logits.shape == (len(segments), 5)


def test_bench_policy_backward(setup, benchmark):
    _, _, segments, state, _, _ = setup
    config = CamoConfig(encode_size=32)
    policy = CamoPolicy(config)
    encoder = NodeFeatureEncoder(window_nm=500, out_size=32, channels=6)
    features = encoder.encode_all(state)
    graph = build_segment_graph(segments)
    adjacency = mean_adjacency(graph)
    order = snake_order(graph)
    actions = np.zeros(len(segments), dtype=int)

    def step():
        policy.zero_grad()
        log_prob = select_log_probs(policy(features, adjacency, order), actions)
        log_prob.backward()
        return log_prob

    result = benchmark(step)
    assert result.size == 1
