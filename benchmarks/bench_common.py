"""Shared helpers for the benchmark gate scripts."""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
"""Repository root: bare ``BENCH_<name>.json`` filenames are anchored
here so the records land in the tracked tree (the in-repo perf
trajectory) no matter which directory the gate is launched from.
Explicit paths (anything with a directory component) are honoured
as-is."""


def _resolve(path: str) -> Path:
    target = Path(path)
    if not target.is_absolute() and target.parent == Path("."):
        return REPO_ROOT / target
    return target


def write_json(path: str, record: dict) -> None:
    """Persist one machine-readable bench record (best-effort: a
    read-only workspace must not turn a passing gate into a failure)."""
    if not path:
        return
    target = _resolve(path)
    try:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {target}")
    except OSError as exc:  # pragma: no cover - environment-dependent
        print(f"warning: could not write {target}: {exc}")
