"""Shared helpers for the benchmark gate scripts."""

from __future__ import annotations

import json


def write_json(path: str, record: dict) -> None:
    """Persist one machine-readable bench record (best-effort: a
    read-only workspace must not turn a passing gate into a failure)."""
    if not path:
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")
    except OSError as exc:  # pragma: no cover - environment-dependent
        print(f"warning: could not write {path}: {exc}")
