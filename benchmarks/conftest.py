"""Benchmark configuration.

Benches default to the fast ``smoke`` scale so ``pytest benchmarks/
--benchmark-only`` completes in minutes; export ``REPRO_SCALE=repro`` (or
``paper``) to regenerate the tables at higher fidelity.  Trained engines
are cached inside :mod:`repro.eval.experiments`, so table and figure
benches share one training run per scale.
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale_name() -> str:
    return os.environ["REPRO_SCALE"]
