"""Ablation bench: the DESIGN.md design-choice grid.

Toggles the three CAMO ingredients — GNN feature fusion, RNN sequential
decision, modulator — and reports EPE after a fixed step budget on one
via clip.  The paper's Section 4.4 covers the modulator ablation
(Fig. 5); this bench extends it to the architecture flags.
"""

import dataclasses

import pytest

from repro.core.agent import CAMO
from repro.core.config import CamoConfig
from repro.data.via_bench import generate_via_clip
from repro.eval.experiments import build_simulator

VARIANTS = {
    "full": {},
    "no_modulator": {"use_modulator": False},
    "no_gnn": {"use_gnn": False},
    "no_rnn": {"use_rnn": False},
    "modulator_only": {"use_gnn": False, "use_rnn": False},
}


@pytest.fixture(scope="module")
def ablation_results(scale_name):
    simulator = build_simulator(scale_name)
    clip = generate_via_clip("ablate", n_vias=3, seed=99)
    results = {}
    for label, overrides in VARIANTS.items():
        config = CamoConfig.smoke(max_updates=6, policy_temperature=2.5, **overrides)
        config = dataclasses.replace(config, imitation_epochs=0, rl_epochs=0)
        agent = CAMO(config, simulator)
        outcome = agent.optimize(clip, early_exit=False)
        results[label] = outcome
    print("\nPolicy-ingredient ablation (untrained policies, 6 steps):")
    for label, outcome in results.items():
        print(f"  {label:15s} EPE {outcome.epe_total:7.1f}  (start "
              f"{outcome.epe_curve[0]:.1f})")
    return clip, results


def test_ablation_grid(ablation_results, benchmark):
    clip, results = ablation_results
    simulator = build_simulator()
    agent = CAMO(
        dataclasses.replace(CamoConfig.smoke(), imitation_epochs=0, rl_epochs=0),
        simulator,
    )
    benchmark(lambda: agent.optimize(clip, max_updates=2, early_exit=False))

    # With an untrained policy, the modulator is the load-bearing piece:
    # removing it must hurt; keeping only it must still make progress.
    assert results["full"].epe_total < results["no_modulator"].epe_total
    assert results["modulator_only"].epe_total < results["modulator_only"].epe_curve[0]
