"""Regenerates paper Figure 4: the modulator's projection behaviour.

Prints preference vectors across signed EPE and asserts the two
properties the paper postulates: sharp, sign-correct preferences for
large |EPE| and a near-uniform distribution for small |EPE|.
"""

import numpy as np

from repro.core.modulator import Modulator
from repro.eval.experiments import figure4


def test_figure4_generation(benchmark):
    text = benchmark(figure4)
    print("\n" + text)

    modulator = Modulator()  # paper polynomial f(x) = 0.02 x^4 + 1
    # Large positive EPE (overflow) -> inward (m1) dominates.
    assert modulator.preference(10.0).argmax() == 0
    # Large negative EPE (underflow) -> outward (m5) dominates.
    assert modulator.preference(-10.0).argmax() == 4
    # Small EPE -> not significantly biased.
    pref = modulator.preference(0.5)
    assert pref.max() - pref.min() < 0.01
    # Exactly zero -> uniform.
    assert np.allclose(modulator.preference(0.0), 0.2)


def test_figure4_batch_throughput(benchmark):
    modulator = Modulator(mode="matched", epe_scale=0.5)
    epe = np.linspace(-20, 20, 512)
    result = benchmark(modulator.preference_batch, epe)
    assert result.shape == (512, 5)
    assert np.allclose(result.sum(axis=1), 1.0)
