"""Regenerates paper Table 1: via-layer OPC comparison.

Prints the full paper-format table (EPE / PVB / RT per engine per design,
Sum and Ratio rows) and asserts the qualitative orderings the paper
reports: the one-shot DAMO-like engine is the fastest but least accurate,
and CAMO's summed EPE beats RL-OPC.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def table1_results(scale_name):
    text, results = experiments.table1(scale_name)
    print("\n" + text)
    return text, results


def test_table1_generation(table1_results, benchmark):
    """Benchmark CAMO inference over the via test suite (training cached)."""
    _text, results = table1_results
    bundle = experiments.trained_via_engines()
    clip = bundle["test_clips"][0]

    benchmark(lambda: bundle["camo"].optimize(clip))

    camo = results["CAMO"]
    damo = results["DAMO-like"]
    rlopc = results["RL-OPC"]
    # Paper-shape assertions (Table 1): DAMO fastest / worst EPE; CAMO
    # better than the no-modulator, no-correlation RL baseline.
    assert damo.runtime_sum < camo.runtime_sum
    assert damo.epe_sum > camo.epe_sum
    assert camo.epe_sum <= rlopc.epe_sum


def test_table1_all_clips_converge(table1_results):
    """Every engine must improve on the initial mask for every clip."""
    _text, results = table1_results
    bundle = experiments.trained_via_engines()
    for row in results["CAMO"].rows:
        clip = next(c for c in bundle["test_clips"] if c.name == row.clip_name)
        # 4 measure points per via, initial |EPE| >= ~10 nm per point.
        initial_bound = 4 * clip.target_count * 10
        assert row.epe_nm < initial_bound
