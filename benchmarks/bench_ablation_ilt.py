"""Extension bench: edge-based OPC vs pixel-based ILT.

The paper's related work contrasts segment-movement OPC with inverse
lithography (refs [5, 6, 13]).  This bench runs our MOSAIC-style pixel
ILT next to the Calibre-like edge-based engine on one via clip and
reports the trade-off: ILT explores a far larger mask space (free-form
pixels) at a much higher runtime.
"""

import pytest

from repro.baselines.ilt import ILTConfig, PixelILT
from repro.baselines.mbopc import MBOPC, MBOPCConfig
from repro.data.via_bench import generate_via_clip
from repro.eval.experiments import build_simulator


@pytest.fixture(scope="module")
def engines(scale_name):
    simulator = build_simulator(scale_name)
    iterations = 8 if scale_name == "smoke" else 25
    ilt = PixelILT(ILTConfig(iterations=iterations), simulator)
    mbopc = MBOPC(MBOPCConfig(initial_bias_nm=3.0), simulator)
    clip = generate_via_clip("ilt", n_vias=2, seed=11)
    return simulator, ilt, mbopc, clip


def test_ilt_vs_edge_based(engines, benchmark):
    _, ilt, mbopc, clip = engines
    ilt_result = benchmark(ilt.optimize, clip)
    edge_result = mbopc.optimize(clip)
    print(
        f"\nILT: EPE {ilt_result.epe_total:.1f} nm, RT {ilt_result.runtime_s:.2f} s"
        f" | edge-based: EPE {edge_result.epe_total:.1f} nm, "
        f"RT {edge_result.runtime_s:.2f} s"
    )
    # ILT's soft-error objective must decrease over iterations.
    curve = ilt_result.epe_curve
    assert curve[-1] < curve[0]
    # Its free-form mask must actually print the vias.
    assert ilt_result.mask_image.sum() > 0
