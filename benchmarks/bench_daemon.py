"""Benchmark gate: work-stealing dispatch vs static round-robin.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_daemon.py          # full
    PYTHONPATH=src python benchmarks/bench_daemon.py --smoke  # CI

Two sweeps of the same **deliberately skewed** suite through
:class:`repro.service.MaskOptDaemon` (the always-on serving front door
behind ``python -m repro serve``):

* ``static`` — PR 5's round-robin deal: request ``i`` is pinned to
  worker ``i % N`` at submit time.  The suite alternates expensive and
  cheap clips, so with 2 workers one worker owns *every* expensive clip
  and the other idles — the pathological case static placement cannot
  avoid;
* ``steal``  — the daemon's default: all workers pull from one shared
  task queue, so the idle worker steals the expensive tail
  automatically.

Results are asserted bit-for-bit identical across the two dispatch
modes before any number is reported — dispatch moves work between
workers, never numbers (each ``optimize(clip)`` is deterministic from
the spec, and verification measurements are batch-composition
independent).  The gate (work-stealing at least at parity with static,
i.e. speedup >= 1.0x) is enforced only on hosts with >= 4 cores; on
smaller hosts the run still checks parity and records timings, because
a 1-core container timeslices both modes identically no matter how
skewed the suite is.  A machine-readable record of every run is written
to ``BENCH_daemon.json`` (override with ``--json``).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile
import time

from bench_common import write_json

from repro.data.via_bench import generate_via_clip
from repro.litho.simulator import LithoConfig
from repro.service import MaskOptDaemon, MaskOptService, OptRequest

WORKERS = 2
SPEEDUP_THRESHOLD = 1.0
MIN_GATE_CORES = 4
DEFAULT_JSON_PATH = "BENCH_daemon.json"

ENGINE = "mbopc"
ENGINE_OVERRIDES = {"initial_bias_nm": 3.0, "early_exit_threshold": 0.0}
# The skew: alternating clips run 8 updates vs 1, so a round-robin deal
# with 2 workers lands every expensive clip on the same worker.
EXPENSIVE_KWARGS = {"max_updates": 8}
CHEAP_KWARGS = {"max_updates": 1}


def build_suite(count: int) -> list:
    """``count`` distinct 1024 nm via clips (all one grid shape, so the
    only heterogeneity is the per-request update budget)."""
    return [
        generate_via_clip(f"bench{i}", n_vias=2, seed=300 + i,
                          clip_nm=1024.0)
        for i in range(count)
    ]


def kwargs_for(index: int) -> dict:
    return dict(EXPENSIVE_KWARGS if index % 2 == 0 else CHEAP_KWARGS)


async def sweep(dispatch: str, clips, config, workers: int) -> list:
    """One timed pass: submit the whole suite, await every result."""
    daemon = MaskOptDaemon(
        litho_config=config, workers=workers, dispatch=dispatch,
        max_pending=len(clips) + 1,
    )
    async with daemon:
        tickets = [
            await daemon.submit(OptRequest(
                clip=clip, engine=ENGINE,
                engine_overrides=ENGINE_OVERRIDES,
                optimize_kwargs=kwargs_for(i),
            ))
            for i, clip in enumerate(clips)
        ]
        return [await daemon.result(ticket) for ticket in tickets]


def assert_identical(steal, static) -> None:
    for got, ref in zip(steal, static):
        if (
            got.clip_name != ref.clip_name
            or got.epe_nm != ref.epe_nm
            or got.pvband_nm2 != ref.pvband_nm2
            or got.verified_epe_nm != ref.verified_epe_nm
            or got.steps != ref.steps
        ):
            raise AssertionError(
                f"dispatch modes diverge on {ref.clip_name}: "
                f"epe {got.epe_nm!r} vs {ref.epe_nm!r}, "
                f"verified {got.verified_epe_nm!r} vs {ref.verified_epe_nm!r}"
            )


def run(
    smoke: bool,
    workers: int = WORKERS,
    min_speedup: float = SPEEDUP_THRESHOLD,
    json_path: str = DEFAULT_JSON_PATH,
    store_dir: str | None = None,
) -> int:
    count = 8 if smoke else 16
    clips = build_suite(count)

    with tempfile.TemporaryDirectory(prefix="bench-spectra-") as tmp:
        root = store_dir or tmp
        config = LithoConfig(pixel_nm=8.0, max_kernels=6,
                             spectra_store=root)

        # Warm the shared store so no daemon worker pays the TCC build
        # inside a timed sweep.
        warm = MaskOptService(litho_config=config)
        warm.run_suite_sharded(
            ENGINE, clips[:1], workers=1,
            engine_overrides=ENGINE_OVERRIDES,
        )
        store = warm.simulator.spectra_store()
        entries = store.entry_count() if store is not None else 0

        cores = os.cpu_count() or 1
        print(f"bench_daemon: {count} via clips (alternating "
              f"{EXPENSIVE_KWARGS['max_updates']}-update / "
              f"{CHEAP_KWARGS['max_updates']}-update skew), "
              f"engine={ENGINE}, workers={workers}, {cores} cores, "
              f"warm store ({entries} entries) at {root}")

        t0 = time.perf_counter()
        static = asyncio.run(sweep("static", clips, config, workers))
        t_static = time.perf_counter() - t0

        t0 = time.perf_counter()
        steal = asyncio.run(sweep("steal", clips, config, workers))
        t_steal = time.perf_counter() - t0

        # -- correctness before speed --------------------------------------
        assert_identical(steal, static)
        if not all(r.outcome == "verified" for r in steal):
            print("FAIL: daemon sweep left results unverified")
            return 1

        speedup = t_static / t_steal
        gated = cores >= MIN_GATE_CORES and workers >= 2
        passed = speedup >= min_speedup or not gated

        print(f"  static round-robin (workers={workers}) : "
              f"{t_static:8.2f} s  [baseline]")
        print(f"  work-stealing      (workers={workers}) : "
              f"{t_steal:8.2f} s -> {speedup:4.2f}x  "
              f"(bit-for-bit identical)")

        write_json(json_path, {
            "bench": "daemon",
            "smoke": smoke,
            "clips": count,
            "engine": ENGINE,
            "engine_overrides": ENGINE_OVERRIDES,
            "expensive_kwargs": EXPENSIVE_KWARGS,
            "cheap_kwargs": CHEAP_KWARGS,
            "workers": workers,
            "cpu_cores": cores,
            "spectra_store_entries": entries,
            "t_static_s": t_static,
            "t_steal_s": t_steal,
            "speedup": speedup,
            "min_speedup": min_speedup,
            "gate_enforced": gated,
            "passed": passed,
        })

        if not gated:
            print(f"PASS (gate not enforced: needs >= {MIN_GATE_CORES} "
                  f"cores and >= 2 workers; host has {cores} cores) — "
                  f"parity verified, speedup {speedup:.2f}x recorded")
            return 0
        if not passed:
            print(f"FAIL: work-stealing speedup {speedup:.2f}x < "
                  f"{min_speedup}x vs static round-robin on a skewed "
                  f"suite at {workers} workers")
            return 1
        print(f"PASS: work-stealing reaches {speedup:.2f}x >= "
              f"{min_speedup}x vs static round-robin on a skewed suite")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller suite for CI (seconds, not minutes)")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help=f"daemon pool width (default {WORKERS})")
    parser.add_argument("--min-speedup", type=float,
                        default=SPEEDUP_THRESHOLD,
                        help="fail below this steal-vs-static speedup "
                             f"(enforced on >= {MIN_GATE_CORES}-core "
                             "hosts)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="reuse a spectra store directory instead of "
                             "a throwaway tempdir")
    parser.add_argument("--json", default=DEFAULT_JSON_PATH, metavar="PATH",
                        help="machine-readable result file ('' disables; "
                             f"default {DEFAULT_JSON_PATH})")
    args = parser.parse_args()
    return run(smoke=args.smoke, workers=args.workers,
               min_speedup=args.min_speedup, json_path=args.json,
               store_dir=args.store)


if __name__ == "__main__":
    sys.exit(main())
