"""Regenerates paper Figure 6: target / mask / contour / PV band panels.

Writes the four PGM panels for case M10 and sanity-checks their content
relationships (the mask deviates from the target; the printed contour
overlaps the target; the PV band is a thin annulus around the contour).
"""

import numpy as np
import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig6_panels(scale_name, tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("fig6")
    panels = experiments.figure6(scale_name, out_dir=str(out_dir))
    produced = sorted(p.name for p in out_dir.iterdir())
    print("\nFigure 6 panels:", produced)
    return panels


def test_figure6_generation(fig6_panels, benchmark):
    def render():
        from repro.eval.experiments import figure6_ascii

        return figure6_ascii(fig6_panels, width=32)

    art = benchmark(render)
    assert "target" in art

    target = fig6_panels["target"]
    mask = fig6_panels["mask"]
    printed = fig6_panels["printed"]
    pvband = fig6_panels["pvband"]
    assert target.sum() > 0
    assert not np.allclose(target, mask)  # OPC moved the mask
    overlap = float(((target > 0.5) & (printed > 0.5)).sum())
    assert overlap > 0.5 * float((target > 0.5).sum())
    assert 0 < pvband.sum() < printed.size * 0.5
