"""Microbenchmark: sparse contour-point EPE vs the dense verify pipeline.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_epe_sparse.py          # full
    PYTHONPATH=src python benchmarks/bench_epe_sparse.py --smoke  # CI

The workload is verification-shaped: one shape bin of B=8 realistic via
clips (distinct geometry, shared raster shape — exactly what
``ShapeBinScheduler`` flushes), measured at each clip's official
``fragment_clip`` measure points.  Two pipelines produce the same EPE
reports:

* ``dense``  — one ``simulate_batch`` (full-grid intensity at all three
  process corners, the pre-sparse verifier) + ``measure_epe_grouped``;
* ``sparse`` — ``measure_stencil_plan`` per clip + one
  ``simulate_epe_batch`` (half-width forward FFT, pupil-band subgrid
  convolution, direct band-spectrum gather at the ~hundreds of pixels
  the bilinear stencils touch) + ``measure_epe_grouped_sparse``.

Parity is gated unconditionally: every resolved per-point EPE offset
must agree to <= 1e-9 nm (far inside the service's 1e-6 nm drift gate).
The speedup gate (>= 3x by default) is enforced on hosts with >= 4
cores — the GEMM-shaped gather is where multi-core BLAS pays off — and
recorded (but not enforced) on smaller hosts.  A machine-readable
record of every run goes to ``BENCH_epe_sparse.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from bench_common import write_json

from repro.data.via_bench import generate_via_clip
from repro.geometry.raster import rasterize
from repro.geometry.segmentation import fragment_clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.metrology.epe import (
    measure_epe_grouped,
    measure_epe_grouped_sparse,
    measure_stencil_plan,
)

BATCH = 8
SPEEDUP_THRESHOLD = 3.0
PARITY_TOLERANCE_NM = 1e-9
MIN_GATE_CORES = 4
SEARCH_NM = 40.0
DEFAULT_JSON_PATH = "BENCH_epe_sparse.json"


def best_of(fn, repeats: int) -> float:
    fn()  # warm caches (band spectra, stencil plans, phase matrices)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(
    smoke: bool,
    min_speedup: float = SPEEDUP_THRESHOLD,
    json_path: str = DEFAULT_JSON_PATH,
) -> int:
    if smoke:
        config = LithoConfig(pixel_nm=4.0, max_kernels=6)
        clip_nm, repeats = 1024.0, 3
    else:
        config = LithoConfig(pixel_nm=4.0, max_kernels=8)
        clip_nm, repeats = 1280.0, 5

    simulator = LithographySimulator(config)
    threshold = config.threshold
    clips = [
        generate_via_clip(f"bench-v{i}", n_vias=2 + (i % 2), seed=31 + i,
                          clip_nm=clip_nm)
        for i in range(BATCH)
    ]
    grids = [simulator.grid_for(clip) for clip in clips]
    segments = [fragment_clip(clip) for clip in clips]
    stack = np.stack([
        rasterize(clip.targets, grid) for clip, grid in zip(clips, grids)
    ])
    plans = [
        measure_stencil_plan(grid, segs, search_nm=SEARCH_NM)
        for grid, segs in zip(grids, segments)
    ]
    band = simulator.kernel_set(0.0).band_spectra(grids[0].shape)
    n_points = sum(plan.n_points for plan in plans if plan is not None)
    n_pixels = sum(plan.n_pixels for plan in plans if plan is not None)
    cores = os.cpu_count() or 1
    rows, cols = grids[0].shape

    print(f"bench_epe_sparse: B={BATCH} via clips, grid {rows}x{cols} @ "
          f"{config.pixel_nm} nm, K={band.count} kernels/corner, "
          f"{n_points} measure points -> {n_pixels} stencil pixels "
          f"({n_pixels / (BATCH * rows * cols):.2%} of the bin), "
          f"{cores} cores")

    # -- parity gate before any timing -------------------------------------
    def run_dense():
        results = simulator.simulate_batch(stack, grids[0])
        return measure_epe_grouped(
            np.stack([litho.aerial for litho in results]),
            grids, segments, threshold, search_nm=SEARCH_NM,
        )

    def run_sparse():
        sparse = simulator.simulate_epe_batch(stack, grids[0], plans)
        return measure_epe_grouped_sparse(sparse, threshold)

    dense_reports = run_dense()
    sparse_reports = run_sparse()
    parity = 0.0
    for dense, sparse in zip(dense_reports, sparse_reports):
        if dense.count != sparse.count:
            print("FAIL: sparse path measured a different point count")
            return 1
        if dense.count:
            parity = max(
                parity, float(np.abs(dense.values - sparse.values).max())
            )
    if parity > PARITY_TOLERANCE_NM:
        print(f"FAIL: sparse-vs-dense EPE parity {parity:.2e} nm > "
              f"{PARITY_TOLERANCE_NM} nm")
        return 1

    # -- timing ------------------------------------------------------------
    t_dense = best_of(run_dense, repeats)
    t_sparse = best_of(run_sparse, repeats)
    speedup = t_dense / t_sparse

    print(f"  dense verify (simulate_batch + grouped EPE) : "
          f"{t_dense * 1e3:8.1f} ms  [reference]")
    print(f"  sparse verify (band-spectrum gather)        : "
          f"{t_sparse * 1e3:8.1f} ms -> {speedup:4.2f}x  "
          f"(max |dEPE| = {parity:.1e} nm)")

    gated = cores >= MIN_GATE_CORES
    passed = speedup >= min_speedup or not gated
    write_json(json_path, {
        "bench": "epe_sparse",
        "smoke": smoke,
        "grid": [rows, cols],
        "pixel_nm": config.pixel_nm,
        "kernels_per_corner": band.count,
        "pupil_band": list(band.band),
        "subgrid": list(band.subgrid),
        "batch": BATCH,
        "measure_points": n_points,
        "stencil_pixels": n_pixels,
        "search_nm": SEARCH_NM,
        "fft_backend": simulator.kernel_set(0.0).fft.name,
        "cores": cores,
        "t_dense_s": t_dense,
        "t_sparse_s": t_sparse,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "max_abs_epe_drift_nm": parity,
        "parity_tolerance_nm": PARITY_TOLERANCE_NM,
        "gate_enforced": gated,
        "passed": passed,
    })
    if not gated:
        print(f"PASS (speedup gate not enforced: needs >= {MIN_GATE_CORES} "
              f"cores, host has {cores}) — parity verified, "
              f"{speedup:.2f}x recorded")
        return 0
    if not passed:
        print(f"FAIL: sparse EPE speedup {speedup:.2f}x < {min_speedup}x "
              f"threshold")
        return 1
    print(f"PASS: sparse contour-point EPE reaches {speedup:.2f}x >= "
          f"{min_speedup}x over the dense verify pipeline at B={BATCH}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-grid CI mode (seconds, not minutes)")
    parser.add_argument("--min-speedup", type=float,
                        default=SPEEDUP_THRESHOLD,
                        help="fail below this sparse speedup (enforced on "
                             f">= {MIN_GATE_CORES}-core hosts; use a looser "
                             "value on noisy shared CI runners)")
    parser.add_argument("--json", default=DEFAULT_JSON_PATH, metavar="PATH",
                        help="machine-readable result file ('' disables; "
                             f"default {DEFAULT_JSON_PATH})")
    args = parser.parse_args()
    return run(smoke=args.smoke, min_speedup=args.min_speedup,
               json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
