"""Regenerates paper Figure 5: EPE trajectories with/without the modulator.

Asserts the paper's observation: with the modulator the trajectory
descends and converges; without it the (budget-constrained) policy alone
makes far less progress.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig5_curves(scale_name):
    steps = 6 if scale_name == "smoke" else 15
    text, curves = experiments.figure5(scale_name, steps=steps)
    print("\n" + text)
    return curves


def test_figure5_generation(fig5_curves, benchmark):
    bundle = experiments.trained_metal_engines()
    from repro.data.metal_bench import metal_test_suite

    m2 = next(c for c in metal_test_suite() if c.name == "M2")
    benchmark(lambda: bundle["camo"].optimize(m2, max_updates=3, early_exit=False))

    for case in ("M2", "M4"):
        with_mod = fig5_curves[f"{case} w. modulator"]
        without_mod = fig5_curves[f"{case} w.o. modulator"]
        # Modulated runs make large net progress from the initial mask...
        assert with_mod[-1] < 0.6 * with_mod[0]
        # ...and end at least as well as the unmodulated ones.
        assert with_mod[-1] <= without_mod[-1] * 1.05
