"""Microbenchmark: population-batched phase-2 training vs the sequential loop.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_train_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke  # CI

Two workloads are timed, each self-checked before any number is printed:

* **Phase-2 RL training** on a production-resolution via clip (4 nm
  pixel — the scale the population refactor targets; coarse test grids
  make the *policy* the bottleneck and hide the litho batching):

  - ``sequential``  — ``rl_population=1``, today's default loop: one
    trajectory at a time, one litho call and one policy-gradient step
    per trajectory step;
  - ``population``  — P=8 lockstep trajectories: one batched policy
    forward, one batched litho + metrology call, one shared-scanline-
    union feature encode, and one accumulated gradient step per step.
    This is the >= 2x acceptance path.

  Gate re-baseline (PR 3): the former >= 2x gate compared *screening-
  mode* population litho against exact sequential litho.  The
  frequency-native refactor made the band engine exact and gave the
  sequential baseline the same speed (its absolute steps/s roughly
  tripled — that win is gated by ``bench_batch_litho.py``'s >= 3x),
  so the remaining population-vs-sequential margin is honest batching
  amortization: the batched policy forward, vectorized metrology, the
  shared-scanline-union feature encode and per-step Python overhead.
  That measures ~1.2x on one core (the policy and litho FLOPs scale
  with P) and widens with cores under ``fft_backend="scipy"``, where
  the batched transforms split across the batch axis.  The gate is a
  regression guard on that margin, not the old accuracy-trade ratio.

* **Metrology**: the vectorized ``contour_offset_along_normal`` vs the
  retained scalar-loop reference on the same random aerials, after a
  bit-for-bit parity check.  Both share the (already vectorized)
  bilinear sampling stage, which bounds the end-to-end ratio; the gate
  is a regression guard on the crossing-resolution win, not the >= 2x
  acceptance gate (that one is the training comparison above).

Correctness gates: batched environment transitions must equal sequential
ones bit-for-bit, lockstep teacher rollouts must equal per-offset
sequential collection bit-for-bit, and identically-seeded sequential
(``rl_population=1``) training runs must reproduce identical histories —
the invariants that let the population knob ship default-off without
perturbing existing results.

The script exits non-zero if any parity gate fails or a speedup falls
below its threshold.  A machine-readable record of every run is written
to ``BENCH_train_throughput.json`` (override with ``--json``) so the
perf trajectory is tracked across PRs instead of living only in the
gate's pass/fail output.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from bench_common import write_json

from repro.core.agent import CAMO
from repro.core.config import CamoConfig
from repro.data.via_bench import generate_via_clip
from repro.geometry.raster import Grid
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.metrology.contour import (
    contour_offset_along_normal,
    contour_offset_reference,
)
from repro.rl.imitation import (
    collect_teacher_actions,
    collect_teacher_actions_population,
)

POPULATION = 8
SPEEDUP_THRESHOLD = 1.1
SMOKE_SPEEDUP_THRESHOLD = 1.1  # shared-runner wall clocks are noisy
METROLOGY_THRESHOLD = 1.3
DEFAULT_JSON_PATH = "BENCH_train_throughput.json"


def _smooth_aerial(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    aerial = rng.random((n, n))
    for _ in range(3):
        aerial = (
            aerial
            + np.roll(aerial, 1, 0) + np.roll(aerial, -1, 0)
            + np.roll(aerial, 1, 1) + np.roll(aerial, -1, 1)
        ) / 5.0
    return aerial


def check_environment_parity(agent: CAMO, clip) -> bool:
    """Batched transitions and lockstep rollouts vs their sequential twins."""
    ctx = agent.context(clip)
    env = ctx.env
    start = env.reset()
    rng = np.random.default_rng(5)
    actions = rng.integers(0, env.n_actions, size=(3, env.n_segments))
    batched = env.step_batch([start] * 3, actions)
    for row, (state, reward) in zip(actions, batched):
        ref_state, ref_reward = env.step(start, row)
        if reward != ref_reward or not np.array_equal(
            state.seg_epe, ref_state.seg_epe
        ):
            print("FAIL: step_batch is not bit-for-bit equal to step")
            return False
    starts = [env.reset(bias_nm=b) for b in (0.0, 3.0)]
    lockstep = collect_teacher_actions_population(
        env, steps=2, initial_states=starts
    )
    for start_state, trajectory in zip(starts, lockstep):
        reference = collect_teacher_actions(env, steps=2, initial_state=start_state)
        for (s_a, a_a, r_a), (s_b, a_b, r_b) in zip(trajectory, reference):
            if r_a != r_b or not np.array_equal(a_a, a_b) or not np.array_equal(
                s_a.seg_epe, s_b.seg_epe
            ):
                print("FAIL: lockstep teacher rollout diverged from sequential")
                return False
    return True


def check_population_encoding_parity(agent: CAMO, clip) -> bool:
    """Shared-union population features vs per-window encoding at P=1."""
    ctx = agent.context(clip)
    state = ctx.env.reset()
    single = agent.encoder.encode_all(state.mask)
    population = agent.encoder.encode_all_population([state.mask])
    if not np.array_equal(population[0], single):
        print("FAIL: population feature encoding diverged from per-window")
        return False
    return True


def check_sequential_reproducibility(
    config: CamoConfig, simulator: LithographySimulator, clip
) -> bool:
    """Two identically-seeded rl_population=1 runs must match bit-for-bit."""
    histories = []
    for _ in range(2):
        agent = CAMO(config, simulator)
        history: dict[str, list[float]] = {"imitation_logp": [], "rl_reward": []}
        agent._train_rl([clip], history, verbose=False)
        histories.append(history["rl_reward"])
    if histories[0] != histories[1]:
        print("FAIL: seeded sequential training is not reproducible")
        return False
    return True


def time_training(
    config: CamoConfig, simulator: LithographySimulator, clip, repeats: int
) -> float:
    """Best-of trajectory-steps/sec for one training configuration."""
    agent = CAMO(config, simulator)
    history: dict[str, list[float]] = {"imitation_logp": [], "rl_reward": []}
    agent._train_rl([clip], history, verbose=False)  # warm band-spectra caches
    steps = config.rl_epochs * config.max_updates * config.rl_population
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        agent._train_rl([clip], history, verbose=False)
        best = max(best, steps / (time.perf_counter() - start))
    return best


def run_metrology_bench(
    repeats: int, min_speedup: float
) -> tuple[bool, str, dict]:
    grid = Grid(0.0, 0.0, 2.0, 192, 192)
    aerial = _smooth_aerial(17, 192)
    rng = np.random.default_rng(23)
    n_points = 512
    points = rng.uniform(40.0, 344.0, size=(n_points, 2))
    angles = rng.uniform(0.0, 2.0 * np.pi, n_points)
    normals = np.stack([np.cos(angles), np.sin(angles)], axis=1)

    # Threshold above the aerial mean: a realistic mix of quick crossings,
    # long walks and clamped (unprinted) profiles.
    threshold = 0.7
    vectorized = contour_offset_along_normal(
        aerial, grid, points, normals, threshold
    )
    reference = contour_offset_reference(aerial, grid, points, normals, threshold)
    if not np.array_equal(vectorized, reference):
        return (
            False,
            "FAIL: vectorized contour diverges from scalar reference",
            {},
        )

    def best_of(fn):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    t_vec = best_of(
        lambda: contour_offset_along_normal(aerial, grid, points, normals, threshold)
    )
    t_ref = best_of(
        lambda: contour_offset_reference(aerial, grid, points, normals, threshold)
    )
    speedup = t_ref / t_vec
    record = {
        "n_points": n_points,
        "t_reference_s": t_ref,
        "t_vectorized_s": t_vec,
        "speedup": speedup,
        "min_speedup": min_speedup,
    }
    line = (
        f"  metrology ({n_points} pts)  : loop {t_ref * 1e3:6.1f} ms  "
        f"vectorized {t_vec * 1e3:6.1f} ms -> {speedup:4.1f}x  (bit-for-bit)"
    )
    if speedup < min_speedup:
        return False, line + f"\nFAIL: metrology speedup < {min_speedup}x", record
    return True, line, record


def run(
    smoke: bool, min_speedup: float, json_path: str = DEFAULT_JSON_PATH
) -> int:
    if smoke:
        litho = LithoConfig(pixel_nm=4.0, max_kernels=6)
        clip_nm, n_vias, updates, repeats = 1024.0, 2, 4, 2
    else:
        litho = LithoConfig(pixel_nm=4.0, max_kernels=8)
        clip_nm, n_vias, updates, repeats = 1280.0, 3, 6, 3

    simulator = LithographySimulator(litho)
    clip = generate_via_clip(
        "train-bench", n_vias=n_vias, seed=11, clip_nm=clip_nm
    )
    knobs = dict(
        early_exit_threshold=0.0,  # fixed step count for stable timing
        rl_epochs=1,
        max_updates=updates,
        imitation_epochs=0,
    )
    seq_cfg = CamoConfig.smoke(**knobs)
    pop_cfg = CamoConfig.smoke(rl_population=POPULATION, **knobs)

    grid = simulator.grid_for(clip)
    band = simulator.kernel_set(0.0).band_spectra(grid.shape)
    print(
        f"bench_train_throughput: grid {grid.rows}x{grid.cols} @ "
        f"{litho.pixel_nm} nm, K={band.count} kernels/corner "
        f"(band {band.band} on subgrid {band.subgrid}), P={POPULATION}, "
        f"{updates} updates/trajectory, "
        f"fft backend {simulator.kernel_set(0.0).fft.name}"
    )

    # -- correctness gates before any timing ------------------------------
    parity_agent = CAMO(seq_cfg, simulator)
    if not check_environment_parity(parity_agent, clip):
        return 1
    if not check_population_encoding_parity(parity_agent, clip):
        return 1
    if not check_sequential_reproducibility(seq_cfg, simulator, clip):
        return 1

    ok, metrology_line, metrology_record = run_metrology_bench(
        repeats=max(repeats, 3), min_speedup=METROLOGY_THRESHOLD
    )
    print(metrology_line)
    if not ok:
        return 1

    # -- phase-2 training throughput ---------------------------------------
    seq = time_training(seq_cfg, simulator, clip, repeats)
    print(f"  sequential (P=1)         : {seq:7.2f} traj-steps/s  [baseline]")
    pop = time_training(pop_cfg, simulator, clip, repeats)
    speedup = pop / seq
    print(
        f"  population (P={POPULATION})        : {pop:7.2f} traj-steps/s "
        f"-> {speedup:4.2f}x  (exact litho, batched encode)"
    )
    passed = speedup >= min_speedup
    write_json(json_path, {
        "bench": "train_throughput",
        "smoke": smoke,
        "grid": [grid.rows, grid.cols],
        "pixel_nm": litho.pixel_nm,
        "kernels_per_corner": band.count,
        "population": POPULATION,
        "updates_per_trajectory": updates,
        "fft_backend": simulator.kernel_set(0.0).fft.name,
        "sequential_traj_steps_per_s": seq,
        "population_traj_steps_per_s": pop,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "metrology": metrology_record,
        "passed": passed,
    })
    if not passed:
        print(
            f"FAIL: population training speedup {speedup:.2f}x < "
            f"{min_speedup}x threshold at P={POPULATION}"
        )
        return 1
    print(
        f"PASS: population-batched phase-2 training reaches {speedup:.2f}x >= "
        f"{min_speedup}x over the sequential loop at P={POPULATION}"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small-clip CI mode (seconds, not minutes)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail below this population speedup (default: "
                             f"{SPEEDUP_THRESHOLD} full, "
                             f"{SMOKE_SPEEDUP_THRESHOLD} smoke — small-grid "
                             "wall clocks are noisy)")
    parser.add_argument("--json", default=DEFAULT_JSON_PATH, metavar="PATH",
                        help="machine-readable result file ('' disables; "
                             f"default {DEFAULT_JSON_PATH})")
    args = parser.parse_args()
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = SMOKE_SPEEDUP_THRESHOLD if args.smoke else SPEEDUP_THRESHOLD
    return run(smoke=args.smoke, min_speedup=min_speedup, json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
