"""Sub-pixel printed-contour location along measurement normals.

The printed contour is the level set ``aerial == threshold``.  For each
measure point we sample the aerial intensity along the outward normal and
locate the threshold crossing that bounds the printed region containing
(or nearest to) the target edge, with linear interpolation between samples
for sub-nanometre resolution.

Two resolution engines share the crossing semantics:

* :func:`_resolve_profiles` — the production path: all ``(..., n_offsets)``
  intensity profiles are resolved at once with numpy mask/argmax logic.
  It accepts any leading shape, so one call serves a single aerial's
  ``(n,)`` points or a ``(B, n)`` batch of aerials.
* :func:`contour_offset_reference` — the retained scalar reference: one
  Python-loop :func:`_locate_crossing` per point.  It is kept (and
  tested bit-for-bit against the vectorized path) as the executable
  specification of the crossing rule.

Sparse evaluation: a :class:`ContourStencilPlan` enumerates, once per
(clip geometry, search window), the unique grid pixels every bilinear
stencil of every search sample touches — typically a few hundred of the
grid's ~10^5 pixels.  The lithography engine evaluates intensity at just
that pixel set (:meth:`repro.litho.kernels.OpticalKernelSet.
intensity_at_pixels`), and :meth:`ContourStencilPlan.profiles` rebuilds
the search profiles with *exactly* the arithmetic of
:func:`~repro.geometry.raster.bilinear_sample_many` — given identical
pixel values the profiles are bit-for-bit identical, so the whole sparse
path differs from the dense one only by the engine's <= 1e-12 intensity
round-off.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import MetrologyError
from repro.geometry.raster import (
    Grid,
    _bilinear_weights,
    bilinear_sample_many,
    bilinear_sample_stack,
)


def _validate_inputs(
    points: np.ndarray, normals: np.ndarray, search_nm: float, step_nm: float
) -> tuple[np.ndarray, np.ndarray]:
    points = np.asarray(points, dtype=np.float64)
    normals = np.asarray(normals, dtype=np.float64)
    if points.shape != normals.shape or points.ndim != 2 or points.shape[1] != 2:
        raise MetrologyError(
            f"points {points.shape} and normals {normals.shape} must both be (n, 2)"
        )
    if search_nm <= 0 or step_nm <= 0:
        raise MetrologyError("search_nm and step_nm must be positive")
    return points, normals


def _sample_coordinates(
    points: np.ndarray, normals: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flattened ``(n * n_offsets,)`` sample coordinates along each normal."""
    xs = (points[:, 0:1] + offsets[None, :] * normals[:, 0:1]).ravel()
    ys = (points[:, 1:2] + offsets[None, :] * normals[:, 1:2]).ravel()
    return xs, ys


def contour_offset_along_normal(
    aerial: np.ndarray,
    grid: Grid,
    points: np.ndarray,
    normals: np.ndarray,
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> np.ndarray:
    """Signed contour offsets for a batch of measure points.

    Args:
        aerial: Aerial-intensity image on ``grid``.
        points: ``(n, 2)`` measure-point coordinates (on target edges).
        normals: ``(n, 2)`` unit outward normals.
        threshold: Resist threshold.
        search_nm: Half-width of the search window along the normal.
        step_nm: Sampling pitch before interpolation.

    Returns:
        ``(n,)`` signed offsets (nm): positive = contour outside the target
        edge, negative = inside.  Clamped to ``+/- search_nm`` when the
        contour is not found within the window (e.g. unprinted feature).
    """
    points, normals = _validate_inputs(points, normals, search_nm, step_nm)
    offsets = np.arange(-search_nm, search_nm + step_nm / 2, step_nm)
    xs, ys = _sample_coordinates(points, normals, offsets)
    samples = bilinear_sample_many(aerial, grid, xs, ys).reshape(
        len(points), len(offsets)
    )
    return _resolve_profiles(samples, offsets, len(offsets) // 2, threshold, search_nm)


def contour_offset_along_normal_batch(
    aerials: np.ndarray,
    grid: Grid,
    points: np.ndarray,
    normals: np.ndarray,
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> np.ndarray:
    """Contour offsets of the *same* measure points on a stack of aerials.

    One gather plus one vectorized crossing resolution covers all ``(B,
    n)`` profiles; the result is bit-for-bit equal to mapping
    :func:`contour_offset_along_normal` over the stack.

    Args:
        aerials: ``(B, H, W)`` aerial-intensity stack on ``grid``.

    Returns:
        ``(B, n)`` signed offsets (nm), row ``b`` for ``aerials[b]``.
    """
    stack = np.asarray(aerials, dtype=np.float64)
    if stack.ndim != 3:
        raise MetrologyError(
            f"aerial stack must be 3-D (B, H, W), got shape {stack.shape}"
        )
    points, normals = _validate_inputs(points, normals, search_nm, step_nm)
    offsets = np.arange(-search_nm, search_nm + step_nm / 2, step_nm)
    xs, ys = _sample_coordinates(points, normals, offsets)
    samples = bilinear_sample_stack(stack, grid, xs, ys).reshape(
        len(stack), len(points), len(offsets)
    )
    return _resolve_profiles(samples, offsets, len(offsets) // 2, threshold, search_nm)


def contour_offsets_grouped(
    aerials: np.ndarray,
    grids: list[Grid],
    points_list: list[np.ndarray],
    normals_list: list[np.ndarray],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> list[np.ndarray]:
    """Contour offsets for *heterogeneous* aerial/point groups.

    Unlike :func:`contour_offset_along_normal_batch`, every aerial may
    carry its own grid and measure points (the suite verifier's case:
    same-shape clips with different geometry).  Profiles are sampled per
    aerial but resolved in one vectorized pass; each returned array is
    bit-for-bit equal to calling :func:`contour_offset_along_normal` on
    that aerial alone.
    """
    if not (len(aerials) == len(grids) == len(points_list) == len(normals_list)):
        raise MetrologyError(
            "aerials, grids, points and normals lists must have equal length"
        )
    if search_nm <= 0 or step_nm <= 0:
        raise MetrologyError("search_nm and step_nm must be positive")
    offsets = np.arange(-search_nm, search_nm + step_nm / 2, step_nm)
    profiles: list[np.ndarray] = []
    counts: list[int] = []
    for aerial, grid, points, normals in zip(
        aerials, grids, points_list, normals_list
    ):
        points, normals = _validate_inputs(points, normals, search_nm, step_nm)
        counts.append(len(points))
        if not len(points):
            continue
        xs, ys = _sample_coordinates(points, normals, offsets)
        profiles.append(
            bilinear_sample_many(aerial, grid, xs, ys).reshape(
                len(points), len(offsets)
            )
        )
    if profiles:
        resolved = _resolve_profiles(
            np.concatenate(profiles), offsets, len(offsets) // 2,
            threshold, search_nm,
        )
    else:
        resolved = np.zeros(0, dtype=np.float64)
    out: list[np.ndarray] = []
    start = 0
    for count in counts:
        out.append(resolved[start : start + count])
        start += count
    return out


@dataclass(frozen=True)
class ContourStencilPlan:
    """Precomputed sparse-sampling plan for one (geometry, window) pair.

    Attributes:
        grid: Raster grid the pixel indices address.
        points / normals: The ``(n, 2)`` measure points and outward
            normals the plan was built for.
        search_nm / step_nm: Search window parameters; ``offsets`` is the
            resulting ``(n_offsets,)`` sample offsets along each normal.
        pixel_rows / pixel_cols: ``(S,)`` unique grid pixels touched by
            any bilinear stencil of any search sample (the set a sparse
            intensity engine must evaluate).
        gather00..gather11 / frac_r / frac_c: Per-sample stencil corners
            as indices *into the pixel set* plus the fractional blend
            weights, mirroring :func:`~repro.geometry.raster.
            _bilinear_weights` exactly (including its border clamping).
    """

    grid: Grid
    points: np.ndarray
    normals: np.ndarray
    search_nm: float
    step_nm: float
    offsets: np.ndarray
    pixel_rows: np.ndarray
    pixel_cols: np.ndarray
    gather00: np.ndarray
    gather01: np.ndarray
    gather10: np.ndarray
    gather11: np.ndarray
    frac_r: np.ndarray
    frac_c: np.ndarray

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_pixels(self) -> int:
        return len(self.pixel_rows)

    def profiles(self, values: np.ndarray) -> np.ndarray:
        """Search profiles from intensities at the plan's pixel set.

        ``values`` is ``(..., S)`` — intensity at ``(pixel_rows[s],
        pixel_cols[s])`` for any leading batch shape.  Returns ``(...,
        n, n_offsets)`` profiles, bit-for-bit equal to
        :func:`~repro.geometry.raster.bilinear_sample_many` on a dense
        image holding the same pixel values (the blend arithmetic is
        identical, operation for operation).

        Metrology always resolves host-side: device arrays (torch
        tensors from a device array backend) are converted to host
        numpy here, at the boundary, before any blend arithmetic.
        """
        if hasattr(values, "detach"):  # torch.Tensor (maybe CUDA) -> host
            values = values.detach().cpu().numpy()
        values = np.asarray(values, dtype=np.float64)
        if values.shape[-1] != self.n_pixels:
            raise MetrologyError(
                f"expected {self.n_pixels} pixel values, got shape "
                f"{values.shape}"
            )
        frac_r, frac_c = self.frac_r, self.frac_c
        top = (
            values[..., self.gather00] * (1 - frac_c)
            + values[..., self.gather01] * frac_c
        )
        bottom = (
            values[..., self.gather10] * (1 - frac_c)
            + values[..., self.gather11] * frac_c
        )
        samples = top * (1 - frac_r) + bottom * frac_r
        return samples.reshape(
            *values.shape[:-1], self.n_points, len(self.offsets)
        )

    def resolve(self, values: np.ndarray, threshold: float) -> np.ndarray:
        """Signed contour offsets from sparse intensities (``(..., n)``).

        The crossing rule is the shared :func:`_resolve_profiles`, so
        given bit-identical profiles the result is bit-identical to the
        dense :func:`contour_offset_along_normal`.
        """
        return _resolve_profiles(
            self.profiles(values), self.offsets, len(self.offsets) // 2,
            threshold, self.search_nm,
        )


@dataclass(frozen=True)
class SparseAerial:
    """Aerial intensity evaluated only at a stencil plan's pixel set.

    ``values`` is the nominal-corner intensity, ``(S,)`` (or a leading
    batch shape); ``values_defocus`` optionally carries the defocus
    corner for process-window sweeps.  Produced by
    :meth:`repro.litho.simulator.LithographySimulator.simulate_epe_batch`
    and consumed by :func:`contour_offsets_sparse` /
    :func:`repro.metrology.epe.measure_epe_sparse`.
    """

    plan: ContourStencilPlan
    values: np.ndarray
    values_defocus: np.ndarray | None = None


# Stencil plans are pure geometry — gather indices and bilinear blend
# weights derived from (grid, points, normals, window) alone, with no
# FFT or array-backend input — so the cache is deliberately *not* keyed
# on ArrayBackend identity: one plan serves every backend, and sparse
# values from any backend resolve through it host-side.
_PLAN_CACHE: "OrderedDict[tuple, ContourStencilPlan]" = OrderedDict()
_PLAN_CACHE_CAPACITY = 128
_PLAN_LOCK = threading.Lock()


def plan_contour_stencils(
    grid: Grid,
    points: np.ndarray,
    normals: np.ndarray,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> ContourStencilPlan:
    """Build (and cache) the sparse sampling plan for one geometry.

    Plans are cached per ``(grid, points, normals, search window)`` —
    clip geometry is immutable, so repeated verification of the same
    clip (the service's steady state) reuses one plan, and with it the
    litho engine's cached phase matrix for the pixel set.
    """
    points, normals = _validate_inputs(points, normals, search_nm, step_nm)
    key = (
        grid,
        points.tobytes(),
        normals.tobytes(),
        float(search_nm),
        float(step_nm),
    )
    with _PLAN_LOCK:
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            _PLAN_CACHE.move_to_end(key)
            return cached
    offsets = np.arange(-search_nm, search_nm + step_nm / 2, step_nm)
    xs, ys = _sample_coordinates(points, normals, offsets)
    # The exact corner/weight arithmetic of the dense samplers — reusing
    # _bilinear_weights keeps the out-of-raster clamping semantics
    # identical by construction.
    r0, c0, r1, c1, frac_r, frac_c = _bilinear_weights(grid, xs, ys)
    linear = np.concatenate([
        r0 * grid.cols + c0,
        r0 * grid.cols + c1,
        r1 * grid.cols + c0,
        r1 * grid.cols + c1,
    ])
    unique, inverse = np.unique(linear, return_inverse=True)
    n_samples = len(xs)
    plan = ContourStencilPlan(
        grid=grid,
        points=points,
        normals=normals,
        search_nm=float(search_nm),
        step_nm=float(step_nm),
        offsets=offsets,
        pixel_rows=unique // grid.cols,
        pixel_cols=unique % grid.cols,
        gather00=inverse[:n_samples],
        gather01=inverse[n_samples : 2 * n_samples],
        gather10=inverse[2 * n_samples : 3 * n_samples],
        gather11=inverse[3 * n_samples :],
        frac_r=frac_r,
        frac_c=frac_c,
    )
    with _PLAN_LOCK:
        _PLAN_CACHE[key] = plan
        while len(_PLAN_CACHE) > _PLAN_CACHE_CAPACITY:
            _PLAN_CACHE.popitem(last=False)
    return plan


def contour_offsets_sparse(
    aerials: "list[SparseAerial]", threshold: float
) -> list[np.ndarray]:
    """Resolve contour offsets for a group of sparse aerials at once.

    The sparse counterpart of :func:`contour_offsets_grouped`: profiles
    from every aerial concatenate into one vectorized
    :func:`_resolve_profiles` pass.  All plans must share one search
    window (the grouped verifier bins by it).
    """
    if not aerials:
        return []
    windows = {
        (aerial.plan.search_nm, aerial.plan.step_nm) for aerial in aerials
    }
    if len(windows) > 1:
        raise MetrologyError(
            f"sparse aerials mix search windows {sorted(windows)}; "
            "resolve them in separate calls"
        )
    reference = aerials[0].plan
    profiles: list[np.ndarray] = []
    counts: list[int] = []
    for aerial in aerials:
        counts.append(aerial.plan.n_points)
        if aerial.plan.n_points:
            profiles.append(aerial.plan.profiles(aerial.values))
    if profiles:
        resolved = _resolve_profiles(
            np.concatenate(profiles), reference.offsets,
            len(reference.offsets) // 2, threshold, reference.search_nm,
        )
    else:
        resolved = np.zeros(0, dtype=np.float64)
    out: list[np.ndarray] = []
    start = 0
    for count in counts:
        out.append(resolved[start : start + count])
        start += count
    return out


def contour_offset_reference(
    aerial: np.ndarray,
    grid: Grid,
    points: np.ndarray,
    normals: np.ndarray,
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> np.ndarray:
    """Scalar-loop reference implementation (executable specification).

    Same contract as :func:`contour_offset_along_normal`; resolves every
    profile with the per-point :func:`_locate_crossing` walk.  Kept for
    parity testing and as the baseline of the metrology throughput
    benchmark — production callers use the vectorized path.
    """
    points, normals = _validate_inputs(points, normals, search_nm, step_nm)
    offsets = np.arange(-search_nm, search_nm + step_nm / 2, step_nm)
    xs, ys = _sample_coordinates(points, normals, offsets)
    samples = bilinear_sample_many(aerial, grid, xs, ys).reshape(
        len(points), len(offsets)
    )
    centre = len(offsets) // 2
    result = np.empty(len(points), dtype=np.float64)
    for i in range(len(points)):
        result[i] = _locate_crossing(
            samples[i], offsets, centre, threshold, search_nm
        )
    return result


def _resolve_profiles(
    samples: np.ndarray,
    offsets: np.ndarray,
    centre: int,
    threshold: float,
    search_nm: float,
) -> np.ndarray:
    """Vectorized crossing resolution for ``(..., n_offsets)`` profiles.

    Implements exactly the :func:`_locate_crossing` rule: printed at the
    target edge -> first outward fall below the threshold; unprinted ->
    first inward rise above it; no crossing -> clamp to ``+/-search_nm``.
    Every elementwise operation mirrors the scalar reference, so results
    are bit-for-bit identical to it.
    """
    printed = samples[..., centre] >= threshold
    # cross[..., k] marks a printed->unprinted transition between sample
    # k and k+1 — the one array both walk directions search.
    cross = (samples[..., :-1] >= threshold) & (samples[..., 1:] < threshold)

    outward = cross[..., centre:]
    if outward.shape[-1]:
        has_out = outward.any(axis=-1)
        k_out = centre + outward.argmax(axis=-1)
    else:
        has_out = np.zeros(printed.shape, dtype=bool)
        k_out = np.zeros(printed.shape, dtype=np.int64)

    inward = cross[..., :centre]
    if inward.shape[-1]:
        has_in = inward.any(axis=-1)
        # Scanning j = centre..1 downward means the *last* marked
        # transition below the centre wins.
        k_in = centre - 1 - inward[..., ::-1].argmax(axis=-1)
    else:
        has_in = np.zeros(printed.shape, dtype=bool)
        k_in = np.zeros(printed.shape, dtype=np.int64)

    found = np.where(printed, has_out, has_in)
    k = np.where(printed, k_out, k_in)
    k = np.clip(k, 0, len(offsets) - 2)  # safe gather where not found

    v_in = np.take_along_axis(samples, k[..., None], axis=-1)[..., 0]
    v_out = np.take_along_axis(samples, k[..., None] + 1, axis=-1)[..., 0]
    x_in = offsets[k]
    x_out = offsets[k + 1]
    span = v_in - v_out
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = (v_in - threshold) / span
        interpolated = np.where(
            span > 0, x_in + frac * (x_out - x_in), (x_in + x_out) / 2
        )
    clamp = np.where(printed, search_nm, -search_nm)
    return np.where(found, interpolated, clamp)


def _locate_crossing(
    profile: np.ndarray,
    offsets: np.ndarray,
    centre: int,
    threshold: float,
    search_nm: float,
) -> float:
    """Find the signed contour offset on one intensity profile.

    If the target-edge sample is printed (>= threshold) the feature reaches
    the target here, so walk outward to where intensity drops below the
    threshold (overflow, positive EPE).  Otherwise walk inward to where it
    rises above (underflow, negative EPE).
    """
    printed_at_edge = profile[centre] >= threshold
    if printed_at_edge:
        for j in range(centre, len(profile) - 1):
            if profile[j] >= threshold > profile[j + 1]:
                return _interpolate(offsets[j], offsets[j + 1],
                                    profile[j], profile[j + 1], threshold)
        return search_nm
    for j in range(centre, 0, -1):
        if profile[j] < threshold <= profile[j - 1]:
            return _interpolate(offsets[j - 1], offsets[j],
                                profile[j - 1], profile[j], threshold)
    return -search_nm


def _interpolate(
    x_hi_side_in: float, x_lo_side_out: float, v_in: float, v_out: float,
    threshold: float,
) -> float:
    """Linear interpolation of the threshold crossing between two samples."""
    span = v_in - v_out
    if span <= 0:
        return (x_hi_side_in + x_lo_side_out) / 2
    frac = (v_in - threshold) / span
    return x_hi_side_in + frac * (x_lo_side_out - x_hi_side_in)
