"""Sub-pixel printed-contour location along measurement normals.

The printed contour is the level set ``aerial == threshold``.  For each
measure point we sample the aerial intensity along the outward normal and
locate the threshold crossing that bounds the printed region containing
(or nearest to) the target edge, with linear interpolation between samples
for sub-nanometre resolution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetrologyError
from repro.geometry.raster import Grid, bilinear_sample_many


def contour_offset_along_normal(
    aerial: np.ndarray,
    grid: Grid,
    points: np.ndarray,
    normals: np.ndarray,
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> np.ndarray:
    """Signed contour offsets for a batch of measure points.

    Args:
        aerial: Aerial-intensity image on ``grid``.
        points: ``(n, 2)`` measure-point coordinates (on target edges).
        normals: ``(n, 2)`` unit outward normals.
        threshold: Resist threshold.
        search_nm: Half-width of the search window along the normal.
        step_nm: Sampling pitch before interpolation.

    Returns:
        ``(n,)`` signed offsets (nm): positive = contour outside the target
        edge, negative = inside.  Clamped to ``+/- search_nm`` when the
        contour is not found within the window (e.g. unprinted feature).
    """
    points = np.asarray(points, dtype=np.float64)
    normals = np.asarray(normals, dtype=np.float64)
    if points.shape != normals.shape or points.ndim != 2 or points.shape[1] != 2:
        raise MetrologyError(
            f"points {points.shape} and normals {normals.shape} must both be (n, 2)"
        )
    if search_nm <= 0 or step_nm <= 0:
        raise MetrologyError("search_nm and step_nm must be positive")

    offsets = np.arange(-search_nm, search_nm + step_nm / 2, step_nm)
    n_points = len(points)
    n_offsets = len(offsets)
    xs = (points[:, 0:1] + offsets[None, :] * normals[:, 0:1]).ravel()
    ys = (points[:, 1:2] + offsets[None, :] * normals[:, 1:2]).ravel()
    samples = bilinear_sample_many(aerial, grid, xs, ys).reshape(n_points, n_offsets)

    centre = n_offsets // 2  # index of offset 0 (the target edge)
    result = np.empty(n_points, dtype=np.float64)
    for i in range(n_points):
        result[i] = _locate_crossing(
            samples[i], offsets, centre, threshold, search_nm
        )
    return result


def _locate_crossing(
    profile: np.ndarray,
    offsets: np.ndarray,
    centre: int,
    threshold: float,
    search_nm: float,
) -> float:
    """Find the signed contour offset on one intensity profile.

    If the target-edge sample is printed (>= threshold) the feature reaches
    the target here, so walk outward to where intensity drops below the
    threshold (overflow, positive EPE).  Otherwise walk inward to where it
    rises above (underflow, negative EPE).
    """
    printed_at_edge = profile[centre] >= threshold
    if printed_at_edge:
        for j in range(centre, len(profile) - 1):
            if profile[j] >= threshold > profile[j + 1]:
                return _interpolate(offsets[j], offsets[j + 1],
                                    profile[j], profile[j + 1], threshold)
        return search_nm
    for j in range(centre, 0, -1):
        if profile[j] < threshold <= profile[j - 1]:
            return _interpolate(offsets[j - 1], offsets[j],
                                profile[j - 1], profile[j], threshold)
    return -search_nm


def _interpolate(
    x_hi_side_in: float, x_lo_side_out: float, v_in: float, v_out: float,
    threshold: float,
) -> float:
    """Linear interpolation of the threshold crossing between two samples."""
    span = v_in - v_out
    if span <= 0:
        return (x_hi_side_in + x_lo_side_out) / 2
    frac = (v_in - threshold) / span
    return x_hi_side_in + frac * (x_lo_side_out - x_hi_side_in)
