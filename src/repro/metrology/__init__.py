"""EPE and PV-band metrology.

Sign convention (used consistently across the project, matching the
modulator discussion in the paper): **positive EPE means the printed
contour lies outside the target edge** (intensity overflow — the segment
should move inward), negative EPE means the contour is inside (lack of
intensity — move outward).

Every measurement has a batched companion (``*_batch`` for ``(B, H, W)``
stacks sharing one clip, :func:`measure_epe_grouped` for heterogeneous
groups) that resolves all profiles in one vectorized pass and is
bit-for-bit equal to mapping the scalar entry point over the stack, so
one batched lithography call can be followed by one batched metrology
call.
"""

from repro.metrology.contour import (
    contour_offset_along_normal,
    contour_offset_along_normal_batch,
    contour_offset_reference,
    contour_offsets_grouped,
)
from repro.metrology.epe import (
    EPEReport,
    measure_epe,
    measure_epe_batch,
    measure_epe_grouped,
    segment_epe,
    segment_epe_batch,
)
from repro.metrology.pvband import pvband_area, pvband_area_batch, pvband_image

__all__ = [
    "contour_offset_along_normal",
    "contour_offset_along_normal_batch",
    "contour_offset_reference",
    "contour_offsets_grouped",
    "EPEReport",
    "measure_epe",
    "measure_epe_batch",
    "measure_epe_grouped",
    "segment_epe",
    "segment_epe_batch",
    "pvband_area",
    "pvband_area_batch",
    "pvband_image",
]
