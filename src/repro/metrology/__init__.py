"""EPE and PV-band metrology.

Sign convention (used consistently across the project, matching the
modulator discussion in the paper): **positive EPE means the printed
contour lies outside the target edge** (intensity overflow — the segment
should move inward), negative EPE means the contour is inside (lack of
intensity — move outward).
"""

from repro.metrology.contour import contour_offset_along_normal
from repro.metrology.epe import (
    EPEReport,
    measure_epe,
    segment_epe,
)
from repro.metrology.pvband import pvband_area, pvband_image

__all__ = [
    "contour_offset_along_normal",
    "EPEReport",
    "measure_epe",
    "segment_epe",
    "pvband_area",
    "pvband_image",
]
