"""Process-variation band measurement.

The PV band is the layout area swept between the innermost and outermost
printed contours across the process window — the standard robustness
metric the paper reports in nm^2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetrologyError


def pvband_image(inner: np.ndarray, outer: np.ndarray) -> np.ndarray:
    """Binary image of the PV band: printed in some corner but not all."""
    inner_arr = np.asarray(inner, dtype=bool)
    outer_arr = np.asarray(outer, dtype=bool)
    if inner_arr.shape != outer_arr.shape:
        raise MetrologyError(
            f"corner image shapes differ: {inner_arr.shape} vs {outer_arr.shape}"
        )
    return (inner_arr ^ outer_arr).astype(np.uint8)


def pvband_area(inner: np.ndarray, outer: np.ndarray, pixel_nm: float) -> float:
    """PV-band area in nm^2."""
    if pixel_nm <= 0:
        raise MetrologyError(f"pixel_nm must be positive, got {pixel_nm}")
    return float(pvband_image(inner, outer).sum()) * pixel_nm * pixel_nm
