"""Process-variation band measurement.

The PV band is the layout area swept between the innermost and outermost
printed contours across the process window — the standard robustness
metric the paper reports in nm^2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetrologyError


def pvband_image(inner: np.ndarray, outer: np.ndarray) -> np.ndarray:
    """Binary image of the PV band: printed in some corner but not all."""
    inner_arr = np.asarray(inner, dtype=bool)
    outer_arr = np.asarray(outer, dtype=bool)
    if inner_arr.shape != outer_arr.shape:
        raise MetrologyError(
            f"corner image shapes differ: {inner_arr.shape} vs {outer_arr.shape}"
        )
    return (inner_arr ^ outer_arr).astype(np.uint8)


def pvband_area(inner: np.ndarray, outer: np.ndarray, pixel_nm: float) -> float:
    """PV-band area in nm^2."""
    if pixel_nm <= 0:
        raise MetrologyError(f"pixel_nm must be positive, got {pixel_nm}")
    return float(pvband_image(inner, outer).sum()) * pixel_nm * pixel_nm


def pvband_area_batch(
    inner: np.ndarray, outer: np.ndarray, pixel_nm: float
) -> np.ndarray:
    """PV-band areas (nm^2) of ``(B, H, W)`` corner-image stacks.

    Bit-for-bit equal to mapping :func:`pvband_area` over the stacks.
    """
    if pixel_nm <= 0:
        raise MetrologyError(f"pixel_nm must be positive, got {pixel_nm}")
    inner_arr = np.asarray(inner, dtype=bool)
    outer_arr = np.asarray(outer, dtype=bool)
    if inner_arr.ndim != 3 or inner_arr.shape != outer_arr.shape:
        raise MetrologyError(
            f"corner stacks must be matching (B, H, W) arrays, got "
            f"{inner_arr.shape} vs {outer_arr.shape}"
        )
    counts = (inner_arr ^ outer_arr).sum(axis=(1, 2)).astype(np.float64)
    return counts * pixel_nm * pixel_nm
