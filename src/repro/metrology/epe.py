"""Edge placement error measurement.

Two granularities are used by the OPC engines:

* :func:`measure_epe` — EPE at the official measure points only; this is
  what the paper's tables report (summed absolute EPE per clip).
* :func:`segment_epe` — signed EPE at *every* segment control point; this
  drives the CAMO modulator and the per-segment corrections of the
  model-based baseline, including unmeasured line-end segments.

EPE is always resolved host-side in float64: whichever array backend
produced the aerial intensity (numpy, scipy-threaded, or a torch device
backend), sparse pixel values cross to host numpy at the
:class:`~repro.metrology.contour.ContourStencilPlan` boundary, so the
reported numbers are backend-independent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.raster import Grid
from repro.geometry.segmentation import Segment
from repro.metrology.contour import (
    ContourStencilPlan,
    SparseAerial,
    contour_offset_along_normal,
    contour_offset_along_normal_batch,
    contour_offsets_grouped,
    contour_offsets_sparse,
    plan_contour_stencils,
)


@dataclass(frozen=True)
class EPEReport:
    """EPE measurements at the official measure points of a clip."""

    values: np.ndarray
    """Signed EPE (nm) per measure point; positive = contour outside."""

    @property
    def total_abs(self) -> float:
        """Summed absolute EPE — the per-clip number the paper tabulates."""
        return float(np.abs(self.values).sum())

    @property
    def mean_abs(self) -> float:
        return float(np.abs(self.values).mean()) if len(self.values) else 0.0

    @property
    def max_abs(self) -> float:
        return float(np.abs(self.values).max()) if len(self.values) else 0.0

    @property
    def count(self) -> int:
        return len(self.values)

    def violations(self, limit_nm: float = 5.0) -> int:
        """Number of measure points whose |EPE| is at or above ``limit_nm``
        (ICCAD-13 style violation counting)."""
        return int((np.abs(self.values) >= limit_nm).sum())


def _measured_points(
    segments: list[Segment],
) -> tuple[np.ndarray, np.ndarray]:
    """``(n, 2)`` measure points and normals of the measured segments.

    The one extraction rule shared by every measure-point entry point,
    so the scalar/batched/grouped paths can never filter differently.
    """
    measured = [s for s in segments if s.measure_point is not None]
    points = np.asarray(
        [s.measure_point for s in measured], dtype=np.float64
    ).reshape(len(measured), 2)
    normals = np.asarray(
        [s.normal for s in measured], dtype=np.float64
    ).reshape(len(measured), 2)
    return points, normals


def measure_epe(
    aerial: np.ndarray,
    grid: Grid,
    segments: list[Segment],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> EPEReport:
    """EPE at every segment that owns a measure point."""
    points, normals = _measured_points(segments)
    if not len(points):
        return EPEReport(values=np.zeros(0))
    values = contour_offset_along_normal(
        aerial, grid, points, normals, threshold, search_nm, step_nm
    )
    return EPEReport(values=values)


def measure_epe_batch(
    aerials: np.ndarray,
    grid: Grid,
    segments: list[Segment],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> list[EPEReport]:
    """Measure-point EPE of ``(B, H, W)`` aerials sharing one clip.

    The batched companion of :func:`measure_epe`: all ``B * n`` contour
    profiles resolve in one vectorized pass, bit-for-bit equal to mapping
    :func:`measure_epe` over the stack.  This is what
    ``OPCEnvironment.evaluate_batch`` pairs with one batched litho call.
    """
    points, normals = _measured_points(segments)
    if not len(points):
        return [EPEReport(values=np.zeros(0)) for _ in range(len(aerials))]
    values = contour_offset_along_normal_batch(
        aerials, grid, points, normals, threshold, search_nm, step_nm
    )
    return [EPEReport(values=row) for row in values]


def segment_epe(
    aerial: np.ndarray,
    grid: Grid,
    segments: list[Segment],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> np.ndarray:
    """Signed EPE at every segment's control point (modulator input).

    Measured against the *target* control point, so it reflects how far the
    printed contour is from where the design wants the edge — independent
    of the segment's current mask offset.
    """
    if not segments:
        return np.zeros(0)
    points = np.asarray([s.control for s in segments], dtype=np.float64)
    normals = np.asarray([s.normal for s in segments], dtype=np.float64)
    return contour_offset_along_normal(
        aerial, grid, points, normals, threshold, search_nm, step_nm
    )


def segment_epe_batch(
    aerials: np.ndarray,
    grid: Grid,
    segments: list[Segment],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> np.ndarray:
    """Control-point EPE of ``(B, H, W)`` aerials sharing one clip.

    Returns ``(B, n_segments)`` signed offsets, bit-for-bit equal to
    mapping :func:`segment_epe` over the stack.
    """
    if not segments:
        return np.zeros((len(aerials), 0))
    points = np.asarray([s.control for s in segments], dtype=np.float64)
    normals = np.asarray([s.normal for s in segments], dtype=np.float64)
    return contour_offset_along_normal_batch(
        aerials, grid, points, normals, threshold, search_nm, step_nm
    )


def measure_stencil_plan(
    grid: Grid,
    segments: list[Segment],
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> ContourStencilPlan | None:
    """Sparse sampling plan for a clip's official measure points.

    Applies the same :func:`_measured_points` extraction rule as every
    dense entry point, so the sparse path can never measure a different
    point set.  Returns ``None`` when no segment owns a measure point
    (nothing to evaluate sparsely).
    """
    points, normals = _measured_points(segments)
    if not len(points):
        return None
    return plan_contour_stencils(grid, points, normals, search_nm, step_nm)


def measure_epe_sparse(aerial: SparseAerial, threshold: float) -> EPEReport:
    """Measure-point EPE from a sparsely evaluated aerial.

    The sparse counterpart of :func:`measure_epe`: ``aerial.values``
    holds the nominal-corner intensity at the plan's pixel set (from
    :meth:`repro.litho.simulator.LithographySimulator.
    simulate_epe_batch`); profiles and the crossing rule are shared with
    the dense path, so the resolved offsets agree with it to the litho
    engine's <= 1e-12 intensity round-off (<= 1e-9 nm).
    """
    return EPEReport(
        values=aerial.plan.resolve(aerial.values, threshold)
    )


def measure_epe_grouped_sparse(
    aerials: "list[SparseAerial | None]", threshold: float
) -> list[EPEReport]:
    """Grouped sparse EPE: one vectorized crossing pass for many clips.

    The sparse counterpart of :func:`measure_epe_grouped` (the shape-
    binned verifier's entry point).  ``None`` entries — clips without
    measure points — come back as empty reports, mirroring the dense
    path's behaviour for empty point sets.
    """
    populated = [aerial for aerial in aerials if aerial is not None]
    resolved = iter(contour_offsets_sparse(populated, threshold))
    return [
        EPEReport(values=np.zeros(0)) if aerial is None
        else EPEReport(values=next(resolved))
        for aerial in aerials
    ]


def measure_epe_grouped(
    aerials: np.ndarray,
    grids: list[Grid],
    segments_list: list[list[Segment]],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> list[EPEReport]:
    """Measure-point EPE for heterogeneous (aerial, grid, segments) items.

    The suite verifier's entry point: clips grouped by grid *shape* still
    differ in geometry, so each item carries its own grid and segments.
    All profiles resolve in one vectorized pass
    (:func:`~repro.metrology.contour.contour_offsets_grouped`).
    """
    extracted = [_measured_points(segments) for segments in segments_list]
    points_list = [points for points, _ in extracted]
    normals_list = [normals for _, normals in extracted]
    values = contour_offsets_grouped(
        aerials, grids, points_list, normals_list, threshold, search_nm, step_nm
    )
    return [EPEReport(values=row) for row in values]
