"""Edge placement error measurement.

Two granularities are used by the OPC engines:

* :func:`measure_epe` — EPE at the official measure points only; this is
  what the paper's tables report (summed absolute EPE per clip).
* :func:`segment_epe` — signed EPE at *every* segment control point; this
  drives the CAMO modulator and the per-segment corrections of the
  model-based baseline, including unmeasured line-end segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.raster import Grid
from repro.geometry.segmentation import Segment
from repro.metrology.contour import contour_offset_along_normal


@dataclass(frozen=True)
class EPEReport:
    """EPE measurements at the official measure points of a clip."""

    values: np.ndarray
    """Signed EPE (nm) per measure point; positive = contour outside."""

    @property
    def total_abs(self) -> float:
        """Summed absolute EPE — the per-clip number the paper tabulates."""
        return float(np.abs(self.values).sum())

    @property
    def mean_abs(self) -> float:
        return float(np.abs(self.values).mean()) if len(self.values) else 0.0

    @property
    def max_abs(self) -> float:
        return float(np.abs(self.values).max()) if len(self.values) else 0.0

    @property
    def count(self) -> int:
        return len(self.values)

    def violations(self, limit_nm: float = 5.0) -> int:
        """Number of measure points whose |EPE| is at or above ``limit_nm``
        (ICCAD-13 style violation counting)."""
        return int((np.abs(self.values) >= limit_nm).sum())


def measure_epe(
    aerial: np.ndarray,
    grid: Grid,
    segments: list[Segment],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> EPEReport:
    """EPE at every segment that owns a measure point."""
    measured = [s for s in segments if s.measure_point is not None]
    if not measured:
        return EPEReport(values=np.zeros(0))
    points = np.asarray([s.measure_point for s in measured], dtype=np.float64)
    normals = np.asarray([s.normal for s in measured], dtype=np.float64)
    values = contour_offset_along_normal(
        aerial, grid, points, normals, threshold, search_nm, step_nm
    )
    return EPEReport(values=values)


def segment_epe(
    aerial: np.ndarray,
    grid: Grid,
    segments: list[Segment],
    threshold: float,
    search_nm: float = 40.0,
    step_nm: float = 1.0,
) -> np.ndarray:
    """Signed EPE at every segment's control point (modulator input).

    Measured against the *target* control point, so it reflects how far the
    printed contour is from where the design wants the edge — independent
    of the segment's current mask offset.
    """
    if not segments:
        return np.zeros(0)
    points = np.asarray([s.control for s in segments], dtype=np.float64)
    normals = np.asarray([s.normal for s in segments], dtype=np.float64)
    return contour_offset_along_normal(
        aerial, grid, points, normals, threshold, search_nm, step_nm
    )
