"""Reinforcement-learning substrate for OPC.

The environment wraps a clip + lithography simulator as a Markov decision
process over batches of segment movements (paper Section 3.1); REINFORCE
implements the policy-gradient update of Eq. 7; the imitation module
provides the paper's phase-1 "mimic another OPC engine" training.
"""

from repro.rl.env import EnvState, OPCEnvironment
from repro.rl.reward import compute_reward
from repro.rl.trajectory import Trajectory, TrajectoryStep, discounted_returns
from repro.rl.reinforce import (
    policy_gradient_step,
    population_gradient_step,
    select_log_probs,
    select_log_probs_population,
)
from repro.rl.imitation import (
    collect_teacher_actions,
    collect_teacher_actions_population,
    greedy_teacher_actions,
)

__all__ = [
    "EnvState",
    "OPCEnvironment",
    "compute_reward",
    "Trajectory",
    "TrajectoryStep",
    "discounted_returns",
    "policy_gradient_step",
    "population_gradient_step",
    "select_log_probs",
    "select_log_probs_population",
    "collect_teacher_actions",
    "collect_teacher_actions_population",
    "greedy_teacher_actions",
]
