"""Reward formulation (paper Eq. 3).

``r_t = (|EPE_t| - |EPE_{t+1}|) / (|EPE_t| + eps)
      + beta * (PVB_t - PVB_{t+1}) / PVB_t``

where ``|EPE_t|`` is the summed absolute EPE over the whole layout and
``PVB_t`` the PV-band area before the action.  Positive reward means the
action improved mask quality and/or robustness.
"""

from __future__ import annotations

from repro.constants import REWARD_BETA, REWARD_EPSILON
from repro.errors import RLError


def compute_reward(
    epe_before: float,
    epe_after: float,
    pvb_before: float,
    pvb_after: float,
    epsilon: float = REWARD_EPSILON,
    beta: float = REWARD_BETA,
) -> float:
    """Eq. 3.  A zero ``PVB_t`` (nothing printed yet) drops the PVB term."""
    if epsilon <= 0:
        raise RLError(f"epsilon must be positive, got {epsilon}")
    if min(epe_before, epe_after, pvb_before, pvb_after) < 0:
        raise RLError("EPE/PVB magnitudes must be non-negative")
    epe_term = (epe_before - epe_after) / (epe_before + epsilon)
    pvb_term = beta * (pvb_before - pvb_after) / pvb_before if pvb_before > 0 else 0.0
    return epe_term + pvb_term
