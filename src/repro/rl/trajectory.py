"""Trajectory bookkeeping and discounted returns (paper Eq. 1-2)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DISCOUNT_GAMMA
from repro.errors import RLError


@dataclass(frozen=True)
class TrajectoryStep:
    """One transition: the chosen action indices, the obtained reward and
    the layout EPE after the step (for Fig. 5-style curves)."""

    actions: np.ndarray
    reward: float
    epe_after: float
    pvband_after: float


@dataclass
class Trajectory:
    """An episode ``s0 -a0-> (s1, r1) -a1-> ...`` (Eq. 1)."""

    epe_initial: float
    steps: list[TrajectoryStep] = field(default_factory=list)

    def append(self, step: TrajectoryStep) -> None:
        self.steps.append(step)

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def total_reward(self) -> float:
        return sum(s.reward for s in self.steps)

    @property
    def epe_curve(self) -> list[float]:
        """EPE-vs-step series starting at the initial mask (Fig. 5)."""
        return [self.epe_initial, *(s.epe_after for s in self.steps)]

    def returns(self, gamma: float = DISCOUNT_GAMMA) -> np.ndarray:
        """Discounted return-to-go for each step (Eq. 2)."""
        return discounted_returns([s.reward for s in self.steps], gamma)


def discounted_returns(rewards: list[float], gamma: float = DISCOUNT_GAMMA) -> np.ndarray:
    """``G_t = sum_k gamma^k r_{t+k}`` computed backwards in O(n)."""
    if not 0 <= gamma <= 1:
        raise RLError(f"gamma must be in [0, 1], got {gamma}")
    out = np.zeros(len(rewards), dtype=np.float64)
    running = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        running = rewards[t] + gamma * running
        out[t] = running
    return out
