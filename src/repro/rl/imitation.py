"""Phase-1 training support: mimic another OPC engine (paper Section 3.3).

The teacher is any function mapping an environment state to action indices
(in practice the model-based engine standing in for Calibre).  We roll the
teacher forward for a limited number of steps and record the visited
states' actions; phase-1 training replays these actions through the policy
with the same Eq. 7 update, using the environment reward actually obtained
by the teacher's move.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.constants import MOVE_SET_NM
from repro.errors import RLError
from repro.rl.env import EnvState, OPCEnvironment

TeacherPolicy = Callable[[EnvState], np.ndarray]


def quantize_to_move_set(moves_nm: np.ndarray) -> np.ndarray:
    """Map nm movements to the nearest index of ``MOVE_SET_NM``.

    Shared by the imitation teacher and the model-based baseline so their
    decision rules quantize identically (first match wins on ties, as
    ``argmin`` guarantees).
    """
    move_set = np.asarray(MOVE_SET_NM, dtype=np.float64)
    moves = np.asarray(moves_nm, dtype=np.float64)
    return np.abs(moves[:, None] - move_set[None, :]).argmin(axis=1)


def greedy_teacher_actions(
    state: EnvState, gain: float = 0.5, deadband_nm: float = 1.2
) -> np.ndarray:
    """EPE-proportional feedback correction, quantized to the move set.

    This is the per-iteration behaviour of conventional model-based OPC:
    move each segment against its EPE, at most 2 nm per step.  Positive
    EPE (contour outside the target) pulls the segment inward.  Segments
    whose |EPE| is inside the deadband hold still — without it the high
    mask-error-enhancement factor of small patterns turns the quantized
    +/-1 nm moves into a limit cycle around the optimum.
    """
    if gain <= 0:
        raise RLError(f"gain must be positive, got {gain}")
    moves = np.clip(np.round(-gain * state.seg_epe), MOVE_SET_NM[0], MOVE_SET_NM[-1])
    moves[np.abs(state.seg_epe) < deadband_nm] = 0.0
    return quantize_to_move_set(moves)


def collect_teacher_actions(
    env: OPCEnvironment,
    steps: int,
    teacher: TeacherPolicy = greedy_teacher_actions,
    initial_state: EnvState | None = None,
) -> list[tuple[EnvState, np.ndarray, float]]:
    """Roll the teacher for ``steps`` mask updates.

    Returns ``(state, actions, reward)`` triples — everything phase-1
    imitation needs to replay the trajectory through a policy network.
    ``initial_state`` lets callers start from a perturbed mask so the
    collected states cover both under- and over-sized masks.
    """
    if steps < 1:
        raise RLError(f"need at least one step, got {steps}")
    samples: list[tuple[EnvState, np.ndarray, float]] = []
    state = env.reset() if initial_state is None else initial_state
    for _ in range(steps):
        actions = np.asarray(teacher(state))
        next_state, reward = env.step(state, actions)
        samples.append((state, actions, reward))
        state = next_state
    return samples


def collect_teacher_actions_population(
    env: OPCEnvironment,
    steps: int,
    teacher: TeacherPolicy = greedy_teacher_actions,
    initial_states: list[EnvState] | None = None,
) -> list[list[tuple[EnvState, np.ndarray, float]]]:
    """Roll P teacher trajectories in lockstep.

    Each step evaluates the whole population through one batched litho +
    metrology call (:meth:`~repro.rl.env.OPCEnvironment.step_batch`), so
    collecting the imitation corpus costs ``steps`` batched evaluations
    instead of ``P * steps`` sequential ones.  Trajectory ``p`` of the
    result is bit-for-bit identical to
    :func:`collect_teacher_actions(env, steps, teacher, initial_states[p])
    <collect_teacher_actions>` because the batched transition itself is
    bit-for-bit equal to :meth:`~repro.rl.env.OPCEnvironment.step`.
    """
    if steps < 1:
        raise RLError(f"need at least one step, got {steps}")
    states = [env.reset()] if initial_states is None else list(initial_states)
    if not states:
        raise RLError("need at least one initial state")
    samples: list[list[tuple[EnvState, np.ndarray, float]]] = [
        [] for _ in states
    ]
    for _ in range(steps):
        actions = np.stack([np.asarray(teacher(state)) for state in states])
        stepped = env.step_batch(states, actions)
        for p, (next_state, reward) in enumerate(stepped):
            samples[p].append((states[p], actions[p], reward))
        states = [next_state for next_state, _ in stepped]
    return samples
