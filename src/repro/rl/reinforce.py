"""Policy-gradient update (paper Eq. 7, Williams' REINFORCE).

``theta <- theta + alpha * r(s_t, a_t) * grad log pi(a_t | s_t)``

The policy emits one 5-way distribution per segment; the joint
log-probability of a batched action is the sum of per-segment log-probs.
Note (paper Section 3.3): the gradient always uses the *unmodulated*
policy output — the modulator only shapes which action gets sampled.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RLError
from repro.nn.functional import log_softmax
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor


def select_log_probs(logits: Tensor, actions: np.ndarray) -> Tensor:
    """Joint log-probability of the chosen per-segment actions.

    Args:
        logits: ``(n_segments, n_actions)`` unmodulated policy outputs.
        actions: ``(n_segments,)`` chosen action indices.

    Returns:
        Scalar tensor ``sum_i log pi(a_i | s)``.
    """
    actions = np.asarray(actions)
    if logits.ndim != 2 or actions.shape != (logits.shape[0],):
        raise RLError(
            f"logits {logits.shape} incompatible with actions {actions.shape}"
        )
    logp = log_softmax(logits, axis=-1)
    return logp[np.arange(len(actions)), actions].sum()


def select_log_probs_population(logits: Tensor, actions: np.ndarray) -> Tensor:
    """Per-trajectory joint log-probabilities for a population.

    Args:
        logits: ``(P, n_segments, n_actions)`` unmodulated policy outputs
            (one row per population member, e.g. from
            ``CamoPolicy.forward_population``).
        actions: ``(P, n_segments)`` chosen action indices.

    Returns:
        ``(P,)`` tensor; entry ``p`` equals what :func:`select_log_probs`
        returns for ``(logits[p], actions[p])``.
    """
    actions = np.asarray(actions)
    if logits.ndim != 3 or actions.shape != logits.shape[:2]:
        raise RLError(
            f"logits {logits.shape} incompatible with actions {actions.shape}"
        )
    logp = log_softmax(logits, axis=-1)
    population, n = actions.shape
    picked = logp[
        np.arange(population)[:, None], np.arange(n)[None, :], actions
    ]
    return picked.sum(axis=1)


def policy_gradient_step(
    optimizer: Optimizer,
    log_prob: Tensor,
    reward: float,
    max_grad_norm: float = 10.0,
) -> float:
    """One Eq. 7 ascent step; returns the pre-clip gradient norm."""
    optimizer.zero_grad()
    loss = log_prob * (-float(reward))  # ascend reward = descend -r*logp
    loss.backward()
    norm = optimizer.clip_grad_norm(max_grad_norm)
    optimizer.step()
    return norm


def population_gradient_step(
    optimizer: Optimizer,
    log_probs: Tensor,
    advantages: np.ndarray,
    max_grad_norm: float = 10.0,
) -> float:
    """One *accumulated* Eq. 7 step over a population of trajectories.

    Ascends the advantage-weighted mean ``(1/P) sum_p A_p log pi(a_p)``:
    one backward pass and one optimizer update replace P sequential
    steps.  The mean (not sum) keeps the step magnitude comparable across
    population sizes, so the learning rate need not be retuned with P.
    Returns the pre-clip gradient norm.
    """
    advantages = np.asarray(advantages, dtype=np.float64)
    if log_probs.ndim != 1 or advantages.shape != log_probs.shape:
        raise RLError(
            f"log_probs {log_probs.shape} incompatible with advantages "
            f"{advantages.shape}"
        )
    optimizer.zero_grad()
    loss = (log_probs * Tensor(-advantages / len(advantages))).sum()
    loss.backward()
    norm = optimizer.clip_grad_norm(max_grad_norm)
    optimizer.step()
    return norm
