"""The OPC Markov decision process.

State: the up-to-date mask plus the target patterns (paper Section 3.1),
materialized as a :class:`~repro.geometry.mask_edit.MaskState` together
with its lithography evaluation.  An action moves every segment by one of
{-2, -1, 0, +1, +2} nm; the environment re-simulates and returns the Eq. 3
reward.

Candidate-action batching: :meth:`OPCEnvironment.score_moves` evaluates a
whole matrix of candidate action vectors — e.g. the five uniform segment
moves from :meth:`OPCEnvironment.uniform_move_candidates` — through one
batched lithography call (:meth:`LithographySimulator.simulate_batch`)
instead of one simulator invocation per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constants import (
    MAX_SEGMENT_OFFSET_NM,
    MOVE_SET_NM,
    REWARD_BETA,
    REWARD_EPSILON,
)
from repro.errors import RLError
from repro.geometry.layout import Clip
from repro.geometry.mask_edit import MaskState
from repro.geometry.raster import Grid, rasterize
from repro.geometry.segmentation import Segment, fragment_clip
from repro.litho.simulator import (
    LithographySimulator,
    LithoResult,
    warn_deprecated_mode,
)
from repro.metrology.epe import (
    EPEReport,
    measure_epe,
    measure_epe_batch,
    measure_epe_grouped_sparse,
    measure_stencil_plan,
    segment_epe,
    segment_epe_batch,
)
from repro.metrology.pvband import pvband_area, pvband_area_batch
from repro.rl.reward import compute_reward


@dataclass(frozen=True)
class EnvState:
    """One evaluated point of the OPC trajectory."""

    mask: MaskState
    litho: LithoResult
    epe: EPEReport
    seg_epe: np.ndarray
    pvband: float

    @property
    def total_epe(self) -> float:
        return self.epe.total_abs

    @property
    def mean_epe(self) -> float:
        return self.epe.mean_abs


class OPCEnvironment:
    """MDP over batched segment movements for one clip."""

    def __init__(
        self,
        clip: Clip,
        simulator: LithographySimulator,
        initial_bias_nm: float = 0.0,
        max_offset_nm: int = MAX_SEGMENT_OFFSET_NM,
        epe_search_nm: float = 40.0,
        reward_epsilon: float = REWARD_EPSILON,
        reward_beta: float = REWARD_BETA,
    ) -> None:
        self.clip = clip
        self.simulator = simulator
        self.initial_bias_nm = initial_bias_nm
        self.max_offset_nm = max_offset_nm
        self.epe_search_nm = epe_search_nm
        self.reward_epsilon = reward_epsilon
        self.reward_beta = reward_beta
        self.segments: list[Segment] = fragment_clip(clip)
        self.grid: Grid = simulator.grid_for(clip)
        self._epe_plan_built = False
        self._epe_plan = None

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_actions(self) -> int:
        return len(MOVE_SET_NM)

    # -- state construction -----------------------------------------------------
    def _metrology(self, mask: MaskState, litho: LithoResult) -> EnvState:
        """EPE / PV-band measurement shared by all evaluation paths."""
        threshold = self.simulator.config.threshold
        epe = measure_epe(
            litho.aerial, self.grid, self.segments, threshold,
            search_nm=self.epe_search_nm,
        )
        seg = segment_epe(
            litho.aerial, self.grid, self.segments, threshold,
            search_nm=self.epe_search_nm,
        )
        pvb = pvband_area(litho.inner, litho.outer, self.grid.pixel_nm)
        return EnvState(mask=mask, litho=litho, epe=epe, seg_epe=seg, pvband=pvb)

    def _metrology_batch(
        self, masks: Sequence[MaskState], lithos: list[LithoResult]
    ) -> list[EnvState]:
        """Batched metrology: one vectorized EPE/PV-band pass for all B
        lithography results, bit-for-bit equal to mapping
        :meth:`_metrology` over them."""
        threshold = self.simulator.config.threshold
        aerials = np.stack([litho.aerial for litho in lithos])
        reports = measure_epe_batch(
            aerials, self.grid, self.segments, threshold,
            search_nm=self.epe_search_nm,
        )
        segs = segment_epe_batch(
            aerials, self.grid, self.segments, threshold,
            search_nm=self.epe_search_nm,
        )
        pvbs = pvband_area_batch(
            np.stack([litho.inner for litho in lithos]),
            np.stack([litho.outer for litho in lithos]),
            self.grid.pixel_nm,
        )
        return [
            EnvState(mask=mask, litho=litho, epe=epe, seg_epe=seg, pvband=float(pvb))
            for mask, litho, epe, seg, pvb in zip(
                masks, lithos, reports, segs, pvbs
            )
        ]

    def evaluate(self, mask: MaskState) -> EnvState:
        """Run lithography + metrology for a mask state."""
        return self._metrology(mask, self.simulator.simulate_state(mask, self.grid))

    def evaluate_batch(
        self, masks: Sequence[MaskState], mode: str | None = None
    ) -> list[EnvState]:
        """Evaluate several mask states: one batched litho call followed
        by one batched metrology call.

        Results are bit-for-bit identical to mapping :meth:`evaluate`
        over ``masks``.  ``mode`` is deprecated and ignored (the unified
        engine is always exact); the shim warns here and is never
        forwarded into the simulator.
        """
        warn_deprecated_mode(mode)
        if not masks:
            raise RLError("evaluate_batch needs at least one mask state")
        images = np.stack(
            [rasterize(mask.mask_polygons(), self.grid) for mask in masks]
        )
        results = self.simulator.simulate_batch(images, self.grid)
        return self._metrology_batch(masks, results)

    def _initial_mask(self, bias_nm: float | None = None) -> MaskState:
        return MaskState.initial(
            self.clip,
            self.segments,
            bias_nm=self.initial_bias_nm if bias_nm is None else bias_nm,
            max_offset=self.max_offset_nm,
        )

    def reset(self, bias_nm: float | None = None) -> EnvState:
        """Initial state; ``bias_nm`` overrides the configured initial bias
        (used to diversify imitation-phase starting points)."""
        return self.evaluate(self._initial_mask(bias_nm))

    def reset_population(self, bias_nms: Sequence[float]) -> list[EnvState]:
        """Evaluated initial states for P per-trajectory start biases.

        All P starting masks go through one batched litho + metrology
        call; entry ``p`` is bit-for-bit identical to
        ``reset(bias_nm=bias_nms[p])``.  Used to diversify population
        training starts (deterministic bias jitter)."""
        if not len(bias_nms):
            raise RLError("reset_population needs at least one bias")
        return self.evaluate_batch(
            [self._initial_mask(bias) for bias in bias_nms]
        )

    # -- transitions ------------------------------------------------------------
    def _validate_actions(self, actions: np.ndarray) -> np.ndarray:
        if actions.shape[-1] != self.n_segments:
            raise RLError(
                f"expected {self.n_segments} actions, got shape {actions.shape}"
            )
        if actions.min() < 0 or actions.max() >= self.n_actions:
            raise RLError("action indices must be in [0, 5)")
        return actions

    def _reward(self, state: EnvState, next_state: EnvState) -> float:
        return compute_reward(
            epe_before=state.total_epe,
            epe_after=next_state.total_epe,
            pvb_before=state.pvband,
            pvb_after=next_state.pvband,
            epsilon=self.reward_epsilon,
            beta=self.reward_beta,
        )

    def step(
        self, state: EnvState, action_indices: np.ndarray
    ) -> tuple[EnvState, float]:
        """Apply one movement index (0..4) per segment; return next state
        and the Eq. 3 reward."""
        actions = np.asarray(action_indices)
        if actions.ndim != 1:
            raise RLError(
                f"expected {self.n_segments} actions, got shape {actions.shape}"
            )
        self._validate_actions(actions)
        deltas = np.asarray(MOVE_SET_NM, dtype=np.float64)[actions]
        next_state = self.evaluate(state.mask.moved(deltas))
        return next_state, self._reward(state, next_state)

    def step_batch(
        self,
        states: Sequence[EnvState],
        action_indices: np.ndarray,
        mode: str | None = None,
    ) -> list[tuple[EnvState, float]]:
        """Advance P states by one action vector each, in lockstep.

        ``action_indices`` is ``(P, n_segments)``; row ``p`` is applied to
        ``states[p]``.  One batched litho call plus one batched metrology
        call cover the whole population, and every ``(next_state,
        reward)`` pair is bit-for-bit identical to :meth:`step` on that
        state alone.  This is the transition primitive of
        population-based training and lockstep teacher rollouts.
        ``mode`` is deprecated and ignored (warn-only shim).
        """
        warn_deprecated_mode(mode)
        actions = np.asarray(action_indices)
        if actions.ndim != 2 or actions.shape[0] != len(states) or not len(states):
            raise RLError(
                f"expected ({len(states)}, {self.n_segments}) actions, "
                f"got shape {actions.shape}"
            )
        self._validate_actions(actions)
        move_set = np.asarray(MOVE_SET_NM, dtype=np.float64)
        masks = [
            state.mask.moved(move_set[row]) for state, row in zip(states, actions)
        ]
        next_states = self.evaluate_batch(masks)
        return [
            (nxt, self._reward(state, nxt))
            for state, nxt in zip(states, next_states)
        ]

    # -- batched candidate scoring ----------------------------------------------
    def uniform_move_candidates(self) -> np.ndarray:
        """``(n_actions, n_segments)`` matrix: candidate a moves *every*
        segment by ``MOVE_SET_NM[a]``."""
        return np.repeat(
            np.arange(self.n_actions)[:, None], self.n_segments, axis=1
        )

    def score_moves(
        self,
        state: EnvState,
        candidate_actions: np.ndarray,
        mode: str | None = None,
        *,
        screener=None,
        screen_keep: int = 1,
    ) -> list[tuple[EnvState, float] | None]:
        """Evaluate A candidate action vectors in one batched litho call.

        ``candidate_actions`` is ``(A, n_segments)`` movement indices;
        returns one ``(next_state, reward)`` pair per candidate, each
        bit-for-bit identical to what :meth:`step` would have produced
        for that candidate.  ``mode`` is deprecated and ignored
        (warn-only shim).

        ``screener`` opts into learned-surrogate pre-screening: an object
        with ``score_candidates(env, state, candidates) -> (A,) totals``
        (lower is better, e.g. :class:`~repro.surrogate.engine.
        SurrogateScreener`) ranks the candidates cheaply, and only the
        best ``screen_keep`` survivors get the exact batched evaluation.
        The returned list still has one slot per candidate, with ``None``
        at screened-out indices — every non-``None`` entry comes from the
        exact engine, so reported metrology never depends on surrogate
        numbers (the screening-vs-reporting discipline).
        """
        warn_deprecated_mode(mode)
        candidates = self._validate_candidates(candidate_actions)
        if screener is None:
            return self.step_batch([state] * len(candidates), candidates)
        keep = int(screen_keep)
        if keep < 1:
            raise RLError(f"screen_keep must be >= 1, got {screen_keep}")
        keep = min(keep, len(candidates))
        totals = np.asarray(
            screener.score_candidates(self, state, candidates), dtype=np.float64
        )
        if totals.shape != (len(candidates),):
            raise RLError(
                f"screener returned {totals.shape} scores for "
                f"{len(candidates)} candidates"
            )
        survivors = np.argsort(totals, kind="stable")[:keep]
        scored = self.step_batch(
            [state] * len(survivors), candidates[survivors]
        )
        results: list[tuple[EnvState, float] | None] = [None] * len(candidates)
        for index, pair in zip(survivors, scored):
            results[int(index)] = pair
        return results

    def _validate_candidates(self, candidate_actions: np.ndarray) -> np.ndarray:
        candidates = np.asarray(candidate_actions)
        if candidates.ndim != 2 or candidates.shape[0] == 0:
            raise RLError(
                "candidate actions must be a non-empty (A, n_segments) "
                f"matrix, got shape {candidates.shape}"
            )
        self._validate_actions(candidates)
        return candidates

    def measure_plan(self):
        """The clip's cached measure-point stencil plan (``None`` when no
        segment owns a measure point)."""
        if not self._epe_plan_built:
            self._epe_plan = measure_stencil_plan(
                self.grid, self.segments, search_nm=self.epe_search_nm
            )
            self._epe_plan_built = True
        return self._epe_plan

    def score_moves_epe(
        self, state: EnvState, candidate_actions: np.ndarray
    ) -> list[EPEReport]:
        """EPE-only screening of A candidate action vectors.

        The cheap sibling of :meth:`score_moves` for callers that rank
        candidates purely by measure-point EPE: lithography runs the
        sparse band-spectrum gather at the clip's measure-point stencils
        only (:meth:`~repro.litho.simulator.LithographySimulator.
        simulate_epe_batch`) — no printed images, no PV band, no
        full-grid intensity.  Returns one :class:`~repro.metrology.epe.
        EPEReport` per candidate, agreeing with the corresponding
        ``score_moves`` report to <= 1e-9 nm per measure point.  Use it
        to cut a wide candidate set down before paying for full
        :meth:`score_moves` evaluation of the survivors.

        The whole batch rides the simulator's array backend: under
        ``LithoConfig(backend="torch")`` the rfft/gather/GEMM pipeline
        runs on the configured device and only sparse per-point values
        return to host for EPE resolution.
        """
        candidates = self._validate_candidates(candidate_actions)
        move_set = np.asarray(MOVE_SET_NM, dtype=np.float64)
        images = np.stack([
            rasterize(state.mask.moved(move_set[row]).mask_polygons(), self.grid)
            for row in candidates
        ])
        plan = self.measure_plan()
        sparse = self.simulator.simulate_epe_batch(images, self.grid, plan)
        return measure_epe_grouped_sparse(
            sparse, self.simulator.config.threshold
        )
