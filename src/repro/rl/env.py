"""The OPC Markov decision process.

State: the up-to-date mask plus the target patterns (paper Section 3.1),
materialized as a :class:`~repro.geometry.mask_edit.MaskState` together
with its lithography evaluation.  An action moves every segment by one of
{-2, -1, 0, +1, +2} nm; the environment re-simulates and returns the Eq. 3
reward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    MAX_SEGMENT_OFFSET_NM,
    MOVE_SET_NM,
    REWARD_BETA,
    REWARD_EPSILON,
)
from repro.errors import RLError
from repro.geometry.layout import Clip
from repro.geometry.mask_edit import MaskState
from repro.geometry.raster import Grid
from repro.geometry.segmentation import Segment, fragment_clip
from repro.litho.simulator import LithographySimulator, LithoResult
from repro.metrology.epe import EPEReport, measure_epe, segment_epe
from repro.metrology.pvband import pvband_area
from repro.rl.reward import compute_reward


@dataclass(frozen=True)
class EnvState:
    """One evaluated point of the OPC trajectory."""

    mask: MaskState
    litho: LithoResult
    epe: EPEReport
    seg_epe: np.ndarray
    pvband: float

    @property
    def total_epe(self) -> float:
        return self.epe.total_abs

    @property
    def mean_epe(self) -> float:
        return self.epe.mean_abs


class OPCEnvironment:
    """MDP over batched segment movements for one clip."""

    def __init__(
        self,
        clip: Clip,
        simulator: LithographySimulator,
        initial_bias_nm: float = 0.0,
        max_offset_nm: int = MAX_SEGMENT_OFFSET_NM,
        epe_search_nm: float = 40.0,
        reward_epsilon: float = REWARD_EPSILON,
        reward_beta: float = REWARD_BETA,
    ) -> None:
        self.clip = clip
        self.simulator = simulator
        self.initial_bias_nm = initial_bias_nm
        self.max_offset_nm = max_offset_nm
        self.epe_search_nm = epe_search_nm
        self.reward_epsilon = reward_epsilon
        self.reward_beta = reward_beta
        self.segments: list[Segment] = fragment_clip(clip)
        self.grid: Grid = simulator.grid_for(clip)

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_actions(self) -> int:
        return len(MOVE_SET_NM)

    # -- state construction -----------------------------------------------------
    def evaluate(self, mask: MaskState) -> EnvState:
        """Run lithography + metrology for a mask state."""
        litho = self.simulator.simulate_state(mask, self.grid)
        threshold = self.simulator.config.threshold
        epe = measure_epe(
            litho.aerial, self.grid, self.segments, threshold,
            search_nm=self.epe_search_nm,
        )
        seg = segment_epe(
            litho.aerial, self.grid, self.segments, threshold,
            search_nm=self.epe_search_nm,
        )
        pvb = pvband_area(litho.inner, litho.outer, self.grid.pixel_nm)
        return EnvState(mask=mask, litho=litho, epe=epe, seg_epe=seg, pvband=pvb)

    def reset(self, bias_nm: float | None = None) -> EnvState:
        """Initial state; ``bias_nm`` overrides the configured initial bias
        (used to diversify imitation-phase starting points)."""
        mask = MaskState.initial(
            self.clip,
            self.segments,
            bias_nm=self.initial_bias_nm if bias_nm is None else bias_nm,
            max_offset=self.max_offset_nm,
        )
        return self.evaluate(mask)

    # -- transitions ------------------------------------------------------------
    def step(
        self, state: EnvState, action_indices: np.ndarray
    ) -> tuple[EnvState, float]:
        """Apply one movement index (0..4) per segment; return next state
        and the Eq. 3 reward."""
        actions = np.asarray(action_indices)
        if actions.shape != (self.n_segments,):
            raise RLError(
                f"expected {self.n_segments} actions, got shape {actions.shape}"
            )
        if actions.min() < 0 or actions.max() >= self.n_actions:
            raise RLError("action indices must be in [0, 5)")
        deltas = np.asarray(MOVE_SET_NM, dtype=np.float64)[actions]
        next_state = self.evaluate(state.mask.moved(deltas))
        reward = compute_reward(
            epe_before=state.total_epe,
            epe_after=next_state.total_epe,
            pvb_before=state.pvband,
            pvb_after=next_state.pvband,
            epsilon=self.reward_epsilon,
            beta=self.reward_beta,
        )
        return next_state, reward
