"""Result records for the comparison tables."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EngineRow:
    """One engine's result on one clip (a cell triple of Tables 1/2)."""

    clip_name: str
    epe_nm: float
    pvband_nm2: float
    runtime_s: float
    steps: int = 0
    early_exited: bool = False


@dataclass
class SuiteResult:
    """One engine's results over a whole benchmark suite."""

    engine: str
    rows: list[EngineRow] = field(default_factory=list)

    def add(self, row: EngineRow) -> None:
        self.rows.append(row)

    @property
    def epe_sum(self) -> float:
        return sum(r.epe_nm for r in self.rows)

    @property
    def pvband_sum(self) -> float:
        return sum(r.pvband_nm2 for r in self.rows)

    @property
    def runtime_sum(self) -> float:
        return sum(r.runtime_s for r in self.rows)

    def row_for(self, clip_name: str) -> EngineRow:
        for row in self.rows:
            if row.clip_name == clip_name:
                return row
        raise KeyError(clip_name)
