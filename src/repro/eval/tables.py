"""Paper-format comparison tables.

Reproduces the layout of Tables 1 and 2: one row per design with an
(EPE, PVB, RT) triple per engine, a Sum row, and a Ratio row normalized to
the last engine ("Ours").
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.eval.metrics import SuiteResult


def format_comparison_table(
    results: list[SuiteResult],
    design_counts: dict[str, int] | None = None,
    count_header: str = "Via #",
    title: str = "",
) -> str:
    """Render engine results side by side, paper style.

    Args:
        results: One :class:`SuiteResult` per engine; the *last* one is the
            ratio reference ("Ours").
        design_counts: Optional per-design count column (via or point #).
        count_header: Header for that column.
        title: Optional caption line.
    """
    if not results:
        raise ReproError("no results to tabulate")
    clip_names = [row.clip_name for row in results[0].rows]
    for result in results[1:]:
        if [r.clip_name for r in result.rows] != clip_names:
            raise ReproError("engines evaluated different clip sets")

    headers = ["Design"]
    if design_counts is not None:
        headers.append(count_header)
    for result in results:
        headers.extend([f"{result.engine}.EPE", f"{result.engine}.PVB", f"{result.engine}.RT"])

    lines: list[str] = []
    if title:
        lines.append(title)
    body: list[list[str]] = []
    for name in clip_names:
        row: list[str] = [name]
        if design_counts is not None:
            row.append(str(design_counts.get(name, "")))
        for result in results:
            cell = result.row_for(name)
            row.extend(
                [f"{cell.epe_nm:.0f}", f"{cell.pvband_nm2:.0f}", f"{cell.runtime_s:.2f}"]
            )
        body.append(row)

    sum_row: list[str] = ["Sum"]
    if design_counts is not None:
        sum_row.append(str(sum(design_counts.get(n, 0) for n in clip_names)))
    for result in results:
        sum_row.extend(
            [
                f"{result.epe_sum:.0f}",
                f"{result.pvband_sum:.0f}",
                f"{result.runtime_sum:.2f}",
            ]
        )
    body.append(sum_row)

    reference = results[-1]
    ratio_row: list[str] = ["Ratio"]
    if design_counts is not None:
        ratio_row.append("")
    for result in results:
        ratio_row.extend(
            [
                _ratio(result.epe_sum, reference.epe_sum),
                _ratio(result.pvband_sum, reference.pvband_sum),
                _ratio(result.runtime_sum, reference.runtime_sum),
            ]
        )
    body.append(ratio_row)

    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _ratio(value: float, reference: float) -> str:
    if reference == 0:
        return "n/a"
    return f"{value / reference:.2f}"
