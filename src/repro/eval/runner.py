"""Run an OPC engine over a benchmark suite, collecting table rows.

With a ``verify_simulator`` the runner additionally re-simulates every
engine's final mask through the batched lithography engine
(:meth:`~repro.litho.simulator.LithographySimulator.simulate_batch`,
grouped by grid shape so a whole suite becomes a handful of batched
calls) and checks that the re-measured EPE matches what the engine
reported.  Because batched results are bit-for-bit independent of the
batch size, the engines' own per-iteration sweeps and this grouped
re-simulation agree exactly, so any divergence means an engine
mis-reported its own result — a cheap end-to-end invariant over the
whole stack.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import MetrologyError
from repro.eval.metrics import EngineRow, SuiteResult
from repro.geometry.layout import Clip
from repro.geometry.raster import Grid, rasterize
from repro.geometry.segmentation import fragment_clip
from repro.litho.simulator import LithographySimulator
from repro.metrology.epe import measure_epe_grouped

_VERIFY_TOLERANCE_NM = 1e-6


class OPCEngine(Protocol):
    """Anything with an ``optimize(clip) -> result`` method where the result
    exposes ``epe_total``, ``pvband``, ``runtime_s``, ``steps`` and
    ``early_exited`` (CAMO, MBOPC, RLOPC, DamoLikeOPC, PixelILT)."""

    def optimize(self, clip: Clip, **kwargs): ...


def final_mask_image(outcome, grid: Grid) -> np.ndarray | None:
    """Rasterized final mask of an optimization outcome, if recoverable.

    Edge-based engines carry a ``final_state`` (a mask state rebuilt into
    polygons); pixel engines carry a ``mask_image`` directly.
    """
    state = getattr(outcome, "final_state", None)
    if state is not None:
        return rasterize(state.mask.mask_polygons(), grid)
    image = getattr(outcome, "mask_image", None)
    if image is not None:
        return np.asarray(image, dtype=np.float64)
    return None


def batch_verify_epe(
    simulator: LithographySimulator,
    clips: list[Clip],
    outcomes: list,
    epe_search_nm: float = 40.0,
) -> dict[str, float]:
    """Re-measure every outcome's EPE through the batched engines.

    Clips are grouped by grid shape so each group is one
    ``simulate_batch`` call followed by one batched metrology call
    (:func:`~repro.metrology.epe.measure_epe_grouped` — the clips share a
    shape but not geometry, so each carries its own grid and measure
    points).  Returns ``{clip_name: epe_nm}`` for every outcome whose
    final mask could be recovered.
    """
    groups: dict[tuple[int, int], list[tuple[Clip, np.ndarray]]] = {}
    for clip, outcome in zip(clips, outcomes):
        grid = simulator.grid_for(clip)
        image = final_mask_image(outcome, grid)
        if image is None:
            continue
        groups.setdefault(grid.shape, []).append((clip, image))

    measured: dict[str, float] = {}
    threshold = simulator.config.threshold
    for members in groups.values():
        grids = [simulator.grid_for(clip) for clip, _ in members]
        stack = np.stack([image for _, image in members])
        results = simulator.simulate_batch(stack, grids[0])
        reports = measure_epe_grouped(
            np.stack([litho.aerial for litho in results]),
            grids,
            [fragment_clip(clip) for clip, _ in members],
            threshold,
            search_nm=epe_search_nm,
        )
        for (clip, _), report in zip(members, reports):
            measured[clip.name] = report.total_abs
    return measured


def run_engine_on_suite(
    engine: OPCEngine,
    clips: list[Clip],
    engine_name: str,
    verify_simulator: LithographySimulator | None = None,
    **optimize_kwargs,
) -> SuiteResult:
    """Optimize every clip and collect (EPE, PVB, RT) rows.

    ``verify_simulator`` enables the batched re-simulation cross-check
    described in the module docstring.
    """
    result = SuiteResult(engine=engine_name)
    outcomes = []
    for clip in clips:
        outcome = engine.optimize(clip, **optimize_kwargs)
        if verify_simulator is not None:
            outcomes.append(outcome)
        result.add(
            EngineRow(
                clip_name=clip.name,
                epe_nm=outcome.epe_total,
                pvband_nm2=outcome.pvband,
                runtime_s=outcome.runtime_s,
                steps=outcome.steps,
                early_exited=outcome.early_exited,
            )
        )
    if verify_simulator is not None:
        # Re-measure with the engine's own contour-search range (engines
        # without the knob use the shared 40 nm default), otherwise a
        # correctly-reporting engine would be flagged as drifting.
        search_nm = float(
            getattr(getattr(engine, "config", None), "epe_search_nm", 40.0)
        )
        measured = batch_verify_epe(
            verify_simulator, clips, outcomes, epe_search_nm=search_nm
        )
        for row in result.rows:
            if row.clip_name not in measured:
                continue
            drift = abs(measured[row.clip_name] - row.epe_nm)
            if drift > _VERIFY_TOLERANCE_NM:
                raise MetrologyError(
                    f"{engine_name} reported EPE {row.epe_nm:.6f} nm on "
                    f"{row.clip_name} but batched re-simulation measured "
                    f"{measured[row.clip_name]:.6f} nm (drift {drift:.2e})"
                )
    return result
