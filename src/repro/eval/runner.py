"""Run an OPC engine over a benchmark suite, collecting table rows."""

from __future__ import annotations

from typing import Protocol

from repro.eval.metrics import EngineRow, SuiteResult
from repro.geometry.layout import Clip


class OPCEngine(Protocol):
    """Anything with an ``optimize(clip) -> result`` method where the result
    exposes ``epe_total``, ``pvband``, ``runtime_s``, ``steps`` and
    ``early_exited`` (CAMO, MBOPC, RLOPC, DamoLikeOPC, PixelILT)."""

    def optimize(self, clip: Clip, **kwargs): ...


def run_engine_on_suite(
    engine: OPCEngine,
    clips: list[Clip],
    engine_name: str,
    **optimize_kwargs,
) -> SuiteResult:
    """Optimize every clip and collect (EPE, PVB, RT) rows."""
    result = SuiteResult(engine=engine_name)
    for clip in clips:
        outcome = engine.optimize(clip, **optimize_kwargs)
        result.add(
            EngineRow(
                clip_name=clip.name,
                epe_nm=outcome.epe_total,
                pvband_nm2=outcome.pvband,
                runtime_s=outcome.runtime_s,
                steps=outcome.steps,
                early_exited=outcome.early_exited,
            )
        )
    return result
