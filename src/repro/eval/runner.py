"""Run an OPC engine over a benchmark suite, collecting table rows.

Since the service redesign this module is a thin adapter over
:class:`repro.service.MaskOptService`: ``run_engine_on_suite`` submits
one :class:`~repro.service.api.OptRequest` per clip and drains them with
``run_all``, so the suite sweep and its verification ride the same
blessed path as the CLI and the examples.

With a ``verify_simulator`` the service additionally re-simulates every
engine's final mask through the batched lithography engine
(:meth:`~repro.litho.simulator.LithographySimulator.simulate_batch`,
grouped by grid shape so a whole suite becomes a handful of batched
calls) and checks that the re-measured EPE matches what the engine
reported.  Because batched results are bit-for-bit independent of the
batch size, the engines' own per-iteration sweeps and this grouped
re-simulation agree exactly, so any divergence means an engine
mis-reported its own result — a cheap end-to-end invariant over the
whole stack.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.eval.metrics import SuiteResult
from repro.geometry.layout import Clip
from repro.litho.simulator import LithographySimulator
from repro.service.scheduler import (
    ShapeBinScheduler,
    VerifyItem,
    final_mask_image,
)

__all__ = [
    "OPCEngine",
    "final_mask_image",
    "batch_verify_epe",
    "run_engine_on_suite",
]


class OPCEngine(Protocol):
    """Anything with an ``optimize(clip) -> result`` method where the result
    exposes ``epe_total``, ``pvband``, ``runtime_s``, ``steps`` and
    ``early_exited`` (CAMO, MBOPC, RLOPC, DamoLikeOPC, PixelILT)."""

    def optimize(self, clip: Clip, **kwargs): ...


def batch_verify_epe(
    simulator: LithographySimulator,
    clips: list[Clip],
    outcomes: list,
    epe_search_nm: float = 40.0,
) -> dict[str, float]:
    """Re-measure every outcome's EPE through the batched engines.

    Clips are grouped by grid shape so each group is one
    ``simulate_batch`` call followed by one batched metrology call
    (:func:`~repro.metrology.epe.measure_epe_grouped` — the clips share a
    shape but not geometry, so each carries its own grid and measure
    points).  Returns ``{clip_name: epe_nm}`` for every outcome whose
    final mask could be recovered.
    """
    scheduler = ShapeBinScheduler()
    for clip, outcome in zip(clips, outcomes):
        grid = simulator.grid_for(clip)
        image = final_mask_image(outcome, grid)
        if image is None:
            continue
        scheduler.add(VerifyItem(
            key=clip.name, clip=clip, grid=grid, mask=np.asarray(image),
            epe_search_nm=epe_search_nm,
        ))
    return scheduler.flush(simulator)


def run_engine_on_suite(
    engine: OPCEngine,
    clips: list[Clip],
    engine_name: str,
    verify_simulator: LithographySimulator | None = None,
    workers: int = 1,
    engine_overrides: dict | None = None,
    **optimize_kwargs,
) -> SuiteResult:
    """Optimize every clip and collect (EPE, PVB, RT) rows.

    ``verify_simulator`` enables the batched re-simulation cross-check
    described in the module docstring.  The sweep routes through
    :class:`~repro.service.MaskOptService` — numbers are bit-for-bit
    identical to calling ``engine.optimize`` per clip directly.

    ``workers > 1`` process-shards the sweep
    (:meth:`~repro.service.MaskOptService.run_suite_sharded`): ``engine``
    must then be a registry name or picklable factory (rebuilt with
    ``engine_overrides`` in each worker), not an instance, and a
    ``verify_simulator`` is required so the shard spec carries a
    concrete litho config.  Sharded rows are bit-for-bit identical to
    the sequential sweep.
    """
    from repro.errors import ServiceError
    from repro.service import MaskOptService, OptRequest

    if workers > 1:
        if verify_simulator is None:
            raise ServiceError(
                "workers>1 needs a verify_simulator: shard workers "
                "rebuild their engines from its LithoConfig"
            )
        service = MaskOptService(simulator=verify_simulator)
        result = SuiteResult(engine=engine_name)
        for opt_result in service.run_suite_sharded(
            engine, clips, workers=workers,
            engine_overrides=engine_overrides, verify=True,
            **optimize_kwargs,
        ):
            result.add(opt_result.to_row())
        return result

    if engine_overrides:
        raise ServiceError(
            "engine_overrides only apply to the sharded path (workers>1); "
            "configure the engine instance directly instead"
        )
    service = MaskOptService(
        simulator=verify_simulator
        if verify_simulator is not None
        else getattr(engine, "simulator", None),
    )
    verify = verify_simulator is not None
    for clip in clips:
        service.submit(OptRequest(
            clip=clip,
            engine=engine,
            optimize_kwargs=dict(optimize_kwargs),
            verify=verify,
        ))
    result = SuiteResult(engine=engine_name)
    for opt_result in service.run_all(verify=verify):
        result.add(opt_result.to_row())
    return result
