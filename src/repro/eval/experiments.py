"""Drivers that regenerate the paper's tables and figures.

Every artefact of the evaluation section has one entry point here:

* :func:`table1` — via-layer comparison (DAMO-like, Calibre-like MB-OPC,
  RL-OPC, CAMO) on V1..V13;
* :func:`table2` — metal-layer comparison (Calibre-like, RL-OPC, CAMO) on
  M1..M10;
* :func:`figure4` — modulator preference vectors vs EPE (paper projection
  function f(x) = 0.02 x^4 + 1);
* :func:`figure5` — EPE-vs-step trajectories on M2/M4 with and without the
  modulator;
* :func:`figure6` — target / mask / printed contour / PV-band panels for
  case M10.

``scale`` selects the effort profile: ``"smoke"`` (seconds, CI),
``"repro"`` (the default used by the benches — minutes, reproduces the
trends), ``"paper"`` (full settings — CPU-hours).  Trained engines are
cached per (scale, layer) within the process so the figure drivers reuse
the table drivers' training work.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

import numpy as np

from repro.baselines.damo import DamoConfig, DamoLikeOPC
from repro.baselines.mbopc import MBOPC, MBOPCConfig
from repro.baselines.rlopc import RLOPC, RLOPCConfig
from repro.constants import VIA_INITIAL_BIAS_NM
from repro.core.agent import CAMO
from repro.core.config import CamoConfig
from repro.core.modulator import Modulator
from repro.data.metal_bench import METAL_TEST_POINTS, metal_test_suite, metal_train_suite
from repro.data.via_bench import VIA_TEST_COUNTS, via_test_suite, via_train_suite
from repro.errors import ConfigError
from repro.eval.tables import format_comparison_table
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service import MaskOptService
from repro.viz.ascii_art import ascii_image
from repro.viz.pgm import save_pgm


@dataclass(frozen=True)
class Scale:
    """Effort profile for the experiment drivers."""

    name: str
    n_train_clips: int
    n_test_clips: int  # 0 = all
    imitation_epochs_via: int
    imitation_epochs_metal: int
    rl_epochs: int
    rlopc_imitation_epochs: int
    damo_epochs: int
    encode_size_via: int
    encode_size_metal: int
    embed_dim_metal: int
    max_kernels: int


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        n_train_clips=2,
        n_test_clips=2,
        imitation_epochs_via=2,
        imitation_epochs_metal=1,
        rl_epochs=0,
        rlopc_imitation_epochs=1,
        damo_epochs=5,
        encode_size_via=16,
        encode_size_metal=16,
        embed_dim_metal=64,
        max_kernels=6,
    ),
    "repro": Scale(
        name="repro",
        n_train_clips=0,
        n_test_clips=0,
        imitation_epochs_via=18,
        imitation_epochs_metal=6,
        rl_epochs=2,
        rlopc_imitation_epochs=8,
        damo_epochs=60,
        encode_size_via=32,
        encode_size_metal=24,
        embed_dim_metal=128,
        max_kernels=8,
    ),
    "paper": Scale(
        name="paper",
        n_train_clips=0,
        n_test_clips=0,
        imitation_epochs_via=500,
        imitation_epochs_metal=500,
        rl_epochs=50,
        rlopc_imitation_epochs=500,
        damo_epochs=500,
        encode_size_via=128,
        encode_size_metal=64,
        embed_dim_metal=256,
        max_kernels=12,
    ),
}

_ENGINE_CACHE: dict[tuple[str, str], dict] = {}


def get_scale(scale: str | Scale | None = None) -> Scale:
    """Resolve a scale by name, object, or the REPRO_SCALE env variable."""
    if isinstance(scale, Scale):
        return scale
    name = scale or os.environ.get("REPRO_SCALE", "repro")
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None


def build_simulator(scale: str | Scale | None = None) -> LithographySimulator:
    resolved = get_scale(scale)
    return LithographySimulator(
        LithoConfig(pixel_nm=4.0, max_kernels=resolved.max_kernels)
    )


def _subset(clips: list, limit: int) -> list:
    return clips if limit == 0 else clips[:limit]


# --------------------------------------------------------------------------
# Engine construction + training (cached per scale and layer)
# --------------------------------------------------------------------------

def trained_via_engines(scale: str | Scale | None = None) -> dict:
    """Simulator, suites and the four trained/configured via engines."""
    resolved = get_scale(scale)
    key = (resolved.name, "via")
    if key in _ENGINE_CACHE:
        return _ENGINE_CACHE[key]

    simulator = build_simulator(resolved)
    train_clips = _subset(via_train_suite(), resolved.n_train_clips)
    test_clips = _subset(via_test_suite(), resolved.n_test_clips)

    camo_cfg = CamoConfig(
        encode_size=resolved.encode_size_via,
        imitation_epochs=resolved.imitation_epochs_via,
        rl_epochs=resolved.rl_epochs,
        policy_temperature=2.5,
        initial_bias_nm=VIA_INITIAL_BIAS_NM,
    )
    camo = CAMO(camo_cfg, simulator)
    camo.train(train_clips)

    rlopc_cfg = RLOPCConfig(
        encode_size=resolved.encode_size_via,
        imitation_epochs=resolved.rlopc_imitation_epochs,
        rl_epochs=max(resolved.rl_epochs, 1) if resolved.rl_epochs else 0,
        initial_bias_nm=VIA_INITIAL_BIAS_NM,
    )
    rlopc = RLOPC(rlopc_cfg, simulator)
    rlopc.train(train_clips)

    damo_cfg = DamoConfig(
        encode_size=resolved.encode_size_via,
        epochs=resolved.damo_epochs,
        initial_bias_nm=VIA_INITIAL_BIAS_NM,
    )
    damo = DamoLikeOPC(damo_cfg, simulator)
    damo.train(train_clips)

    mbopc = MBOPC(
        MBOPCConfig(initial_bias_nm=VIA_INITIAL_BIAS_NM), simulator
    )

    bundle = {
        "simulator": simulator,
        "train_clips": train_clips,
        "test_clips": test_clips,
        "camo": camo,
        "rlopc": rlopc,
        "damo": damo,
        "mbopc": mbopc,
    }
    _ENGINE_CACHE[key] = bundle
    return bundle


def trained_metal_engines(scale: str | Scale | None = None) -> dict:
    """Simulator, suites and the trained/configured metal engines."""
    resolved = get_scale(scale)
    key = (resolved.name, "metal")
    if key in _ENGINE_CACHE:
        return _ENGINE_CACHE[key]

    simulator = build_simulator(resolved)
    train_clips = _subset(metal_train_suite(), resolved.n_train_clips)
    test_clips = _subset(metal_test_suite(), resolved.n_test_clips)

    camo_cfg = CamoConfig.repro_metal(
        encode_size=resolved.encode_size_metal,
        embed_dim=resolved.embed_dim_metal,
        imitation_epochs=resolved.imitation_epochs_metal,
        rl_epochs=resolved.rl_epochs,
        policy_temperature=2.5,
    )
    camo = CAMO(camo_cfg, simulator)
    camo.train(train_clips)

    rlopc_cfg = RLOPCConfig.metal(
        encode_size=resolved.encode_size_metal,
        imitation_epochs=resolved.rlopc_imitation_epochs,
        rl_epochs=max(resolved.rl_epochs, 1) if resolved.rl_epochs else 0,
    )
    rlopc = RLOPC(rlopc_cfg, simulator)
    rlopc.train(train_clips)

    mbopc = MBOPC(
        MBOPCConfig(
            max_updates=15,
            early_exit_threshold=1.0,
            early_exit_mode="per_point",
        ),
        simulator,
    )

    bundle = {
        "simulator": simulator,
        "train_clips": train_clips,
        "test_clips": test_clips,
        "camo": camo,
        "rlopc": rlopc,
        "mbopc": mbopc,
    }
    _ENGINE_CACHE[key] = bundle
    return bundle


# --------------------------------------------------------------------------
# Table 1 / Table 2
# --------------------------------------------------------------------------

def table1(scale: str | Scale | None = None) -> tuple[str, dict]:
    """Via-layer comparison (paper Table 1)."""
    bundle = trained_via_engines(scale)
    test_clips = bundle["test_clips"]
    # One service call sweeps all four engines (thread-pooled on
    # multi-core hosts) and funnels every reported EPE through one
    # cross-engine shape-binned re-simulation pass (service docs).
    service = MaskOptService(simulator=bundle["simulator"])
    suites = service.map_suite(
        {
            "DAMO-like": bundle["damo"],
            "Calibre-like": bundle["mbopc"],
            "RL-OPC": bundle["rlopc"],
            "CAMO": bundle["camo"],
        },
        test_clips,
    )
    results = list(suites.values())
    counts = {
        clip.name: count for clip, count in zip(test_clips, VIA_TEST_COUNTS)
    }
    text = format_comparison_table(
        results,
        design_counts=counts,
        count_header="Via #",
        title="Table 1: via-layer OPC comparison (EPE nm / PVB nm^2 / RT s)",
    )
    return text, {r.engine: r for r in results}


def table2(scale: str | Scale | None = None) -> tuple[str, dict]:
    """Metal-layer comparison (paper Table 2)."""
    bundle = trained_metal_engines(scale)
    test_clips = bundle["test_clips"]
    service = MaskOptService(simulator=bundle["simulator"])
    suites = service.map_suite(
        {
            "Calibre-like": bundle["mbopc"],
            "RL-OPC": bundle["rlopc"],
            "CAMO": bundle["camo"],
        },
        test_clips,
    )
    results = list(suites.values())
    counts = {
        clip.name: points
        for clip, points in zip(metal_test_suite(), METAL_TEST_POINTS)
        if any(clip.name == c.name for c in test_clips)
    }
    text = format_comparison_table(
        results,
        design_counts=counts,
        count_header="Point #",
        title="Table 2: metal-layer OPC comparison (EPE nm / PVB nm^2 / RT s)",
    )
    return text, {r.engine: r for r in results}


# --------------------------------------------------------------------------
# Figures
# --------------------------------------------------------------------------

def figure4(epe_values: tuple[float, ...] = (-10, -6, -3, -1, 0, 1, 3, 6, 10)) -> str:
    """Modulator preference vectors (paper Fig. 4, f(x) = 0.02 x^4 + 1)."""
    modulator = Modulator()  # paper polynomial mode, unscaled
    lines = [
        "Figure 4: modulated movement preferences p_hat per signed EPE",
        "EPE(nm)   m1(-2)  m2(-1)  m3(0)   m4(+1)  m5(+2)",
    ]
    for epe in epe_values:
        pref = modulator.preference(float(epe))
        cells = "  ".join(f"{p:.4f}" for p in pref)
        lines.append(f"{epe:+6.1f}   {cells}")
    return "\n".join(lines)


def figure5(
    scale: str | Scale | None = None,
    cases: tuple[str, ...] = ("M2", "M4"),
    steps: int = 15,
) -> tuple[str, dict[str, list[float]]]:
    """EPE trajectories with / without the modulator (paper Fig. 5)."""
    bundle = trained_metal_engines(scale)
    camo: CAMO = bundle["camo"]
    by_name = {clip.name: clip for clip in metal_test_suite()}
    curves: dict[str, list[float]] = {}
    original = camo.config
    try:
        for case in cases:
            clip = by_name[case]
            camo.config = dataclasses.replace(original, use_modulator=True)
            with_mod = camo.optimize(clip, max_updates=steps, early_exit=False)
            camo.config = dataclasses.replace(original, use_modulator=False)
            without_mod = camo.optimize(clip, max_updates=steps, early_exit=False)
            curves[f"{case} w. modulator"] = with_mod.epe_curve
            curves[f"{case} w.o. modulator"] = without_mod.epe_curve
    finally:
        camo.config = original
    lines = ["Figure 5: EPE (nm) vs optimization step"]
    for label, curve in curves.items():
        series = " ".join(f"{v:.0f}" for v in curve)
        lines.append(f"{label:22s}: {series}")
    return "\n".join(lines), curves


def figure6(
    scale: str | Scale | None = None,
    case: str = "M10",
    out_dir: str | None = None,
) -> dict[str, np.ndarray]:
    """Target / mask / printed contour / PV band panels (paper Fig. 6)."""
    from repro.geometry.raster import rasterize
    from repro.metrology.pvband import pvband_image

    bundle = trained_metal_engines(scale)
    camo: CAMO = bundle["camo"]
    by_name = {clip.name: clip for clip in metal_test_suite()}
    clip = by_name[case]
    outcome = camo.optimize(clip)
    state = outcome.final_state
    grid = camo.context(clip).env.grid

    panels = {
        "target": rasterize(clip.targets, grid),
        "mask": rasterize(state.mask.mask_polygons(), grid),
        "printed": state.litho.nominal.astype(np.float64),
        "pvband": pvband_image(state.litho.inner, state.litho.outer).astype(
            np.float64
        ),
    }
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        for label, image in panels.items():
            save_pgm(image, os.path.join(out_dir, f"fig6_{case}_{label}.pgm"))
    return panels


def figure6_ascii(panels: dict[str, np.ndarray], width: int = 48) -> str:
    blocks = []
    for label, image in panels.items():
        blocks.append(f"--- {label} ---")
        blocks.append(ascii_image(image, width=width))
    return "\n".join(blocks)
