"""One-call quickstart used by ``repro.quick_opc()``."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.mbopc import MBOPC, MBOPCConfig
from repro.constants import VIA_INITIAL_BIAS_NM
from repro.core.agent import CAMO, OptimizeResult
from repro.core.config import CamoConfig
from repro.data.via_bench import generate_via_clip
from repro.litho.simulator import LithoConfig, LithographySimulator


@dataclass
class QuickResult:
    """CAMO vs the model-based baseline on one tiny generated clip."""

    camo: OptimizeResult
    baseline: OptimizeResult

    def summary(self) -> str:
        lines = [
            "quick_opc: 2-via clip, CAMO (untrained policy, modulator-driven)",
            f"  initial EPE : {self.camo.epe_curve[0]:.1f} nm",
            f"  CAMO        : EPE {self.camo.epe_total:.1f} nm in "
            f"{self.camo.steps} steps ({self.camo.runtime_s:.2f} s)",
            f"  MB-OPC      : EPE {self.baseline.epe_total:.1f} nm in "
            f"{self.baseline.steps} steps ({self.baseline.runtime_s:.2f} s)",
        ]
        return "\n".join(lines)


def quick_opc() -> QuickResult:
    """Optimize one small via clip with CAMO and the MB-OPC baseline."""
    simulator = LithographySimulator(LithoConfig(pixel_nm=4.0, max_kernels=6))
    clip = generate_via_clip("quickstart", n_vias=2, seed=7)
    camo = CAMO(
        CamoConfig(encode_size=16, imitation_epochs=0, rl_epochs=0,
                   policy_temperature=1e6),
        simulator,
    )
    baseline = MBOPC(MBOPCConfig(initial_bias_nm=VIA_INITIAL_BIAS_NM), simulator)
    return QuickResult(camo=camo.optimize(clip), baseline=baseline.optimize(clip))
