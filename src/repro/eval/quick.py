"""One-call quickstart used by ``repro.quick_opc()``.

Routes through :class:`repro.service.MaskOptService` — the same front
door as the CLI — so even the 30-second demo exercises the blessed path:
engines built from the registry, both final masks re-verified through
one shape-binned batched litho call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import VIA_INITIAL_BIAS_NM
from repro.core.agent import OptimizeResult
from repro.data.via_bench import generate_via_clip
from repro.litho.simulator import LithoConfig


@dataclass
class QuickResult:
    """CAMO vs the model-based baseline on one tiny generated clip."""

    camo: OptimizeResult
    baseline: OptimizeResult

    def summary(self) -> str:
        lines = [
            "quick_opc: 2-via clip, CAMO (untrained policy, modulator-driven)",
            f"  initial EPE : {self.camo.epe_curve[0]:.1f} nm",
            f"  CAMO        : EPE {self.camo.epe_total:.1f} nm in "
            f"{self.camo.steps} steps ({self.camo.runtime_s:.2f} s)",
            f"  MB-OPC      : EPE {self.baseline.epe_total:.1f} nm in "
            f"{self.baseline.steps} steps ({self.baseline.runtime_s:.2f} s)",
        ]
        return "\n".join(lines)


def quick_opc() -> QuickResult:
    """Optimize one small via clip with CAMO and the MB-OPC baseline."""
    from repro.service import MaskOptService, OptRequest

    service = MaskOptService(
        litho_config=LithoConfig(pixel_nm=4.0, max_kernels=6)
    )
    clip = generate_via_clip("quickstart", n_vias=2, seed=7)
    camo_ticket = service.submit(OptRequest(
        clip=clip,
        engine="camo",
        engine_overrides=dict(
            encode_size=16, imitation_epochs=0, rl_epochs=0,
            policy_temperature=1e6,
        ),
    ))
    baseline_ticket = service.submit(OptRequest(
        clip=clip,
        engine="mbopc",
        engine_overrides=dict(initial_bias_nm=VIA_INITIAL_BIAS_NM),
    ))
    results = {r.request_id: r for r in service.run_all()}
    return QuickResult(
        camo=results[camo_ticket].raw_outcome,
        baseline=results[baseline_ticket].raw_outcome,
    )
