"""Experiment harness: metrics, paper-format tables, and the drivers that
regenerate every table and figure of the paper's evaluation section."""

from repro.eval.metrics import EngineRow, SuiteResult
from repro.eval.tables import format_comparison_table
from repro.eval.runner import run_engine_on_suite
from repro.eval import experiments

__all__ = [
    "EngineRow",
    "SuiteResult",
    "format_comparison_table",
    "run_engine_on_suite",
    "experiments",
]
