"""Illumination source models for Hopkins imaging.

A source is described in normalized pupil coordinates: a point at radial
coordinate ``sigma`` emits a plane wave whose spatial frequency magnitude is
``sigma * NA / wavelength``.  We support the two classical shapes used for
contact/via and metal layers: circular (conventional) and annular.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    ANNULAR_SIGMA_IN,
    ANNULAR_SIGMA_OUT,
    PARTIAL_COHERENCE_SIGMA,
)
from repro.errors import LithoError


@dataclass(frozen=True)
class SourceSpec:
    """Parametric illumination source.

    Attributes:
        shape: ``"circular"`` or ``"annular"``.
        sigma: Partial-coherence radius for circular sources.
        sigma_in, sigma_out: Annulus bounds for annular sources.
    """

    shape: str = "circular"
    sigma: float = PARTIAL_COHERENCE_SIGMA
    sigma_in: float = ANNULAR_SIGMA_IN
    sigma_out: float = ANNULAR_SIGMA_OUT

    def __post_init__(self) -> None:
        if self.shape not in ("circular", "annular"):
            raise LithoError(f"unknown source shape: {self.shape!r}")
        if self.shape == "circular" and not 0 < self.sigma < 1:
            raise LithoError(f"circular sigma must be in (0, 1), got {self.sigma}")
        if self.shape == "annular":
            if not 0 <= self.sigma_in < self.sigma_out < 1:
                raise LithoError(
                    f"annular bounds must satisfy 0 <= in < out < 1, got "
                    f"({self.sigma_in}, {self.sigma_out})"
                )

    @property
    def outer_sigma(self) -> float:
        """Largest radial extent of the source (sets TCC support)."""
        return self.sigma if self.shape == "circular" else self.sigma_out


def source_weights(
    spec: SourceSpec, freqs: np.ndarray, cutoff: float
) -> np.ndarray:
    """Intensity weight of each candidate source point.

    Args:
        spec: Source description.
        freqs: ``(n, 2)`` array of spatial-frequency samples (cycles/nm).
        cutoff: Pupil cutoff frequency ``NA / wavelength`` used to convert
            the source's normalized sigma coordinates to frequencies.

    Returns:
        ``(n,)`` float array of non-negative weights; zero outside the
        source shape.  Weights are *not* normalized here — the TCC builder
        normalizes by the total source energy.
    """
    radius = np.hypot(freqs[:, 0], freqs[:, 1]) / cutoff
    if spec.shape == "circular":
        weights = (radius <= spec.sigma).astype(np.float64)
    else:
        weights = ((radius > spec.sigma_in) & (radius <= spec.sigma_out)).astype(
            np.float64
        )
    if not weights.any():
        raise LithoError(
            "source discretization produced no active points; "
            "frequency lattice too coarse for this source"
        )
    return weights
