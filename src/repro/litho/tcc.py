"""Transmission cross coefficient (TCC) construction and SOCS decomposition.

Hopkins partially-coherent imaging writes the aerial image as

    I(x) = sum_{f1, f2} TCC(f1, f2) M(f1) conj(M(f2)) exp(i 2 pi (f1 - f2) x)

with ``TCC(f1, f2) = integral J(f) P(f + f1) conj(P(f + f2)) df`` over the
source.  Diagonalizing the (Hermitian, PSD) TCC gives the sum-of-coherent-
systems form ``I(x) = sum_k w_k |(h_k * m)(x)|^2`` — the optical kernels
every fast OPC simulator uses.

Two lattice conventions are supported:

* :func:`build_tcc` — a square lattice of spacing ``1 / period_nm``,
  used for the canonical spatial kernels kept for persistence and
  visualization (:func:`socs_kernels`).
* :func:`build_tcc_grid` — the *frequency-native* path: the lattice is
  exactly the DFT frequency grid of one simulation raster (per-axis
  spacing ``1 / (n_pixels * pixel_nm)``, anisotropic for non-square
  grids).  Eigenvectors of this TCC are SOCS kernel spectra defined
  directly on that raster's pupil-band frequency subgrid — no spatial
  sampling, no ambit crop, hence exactly band-limited on the grid they
  will convolve (:class:`repro.litho.kernels.GridBandSpectra`).

Either way the TCC is a Gram matrix ``A^H A`` with
``A[s, a] = sqrt(J_s) * P(f_s + f_a)``, which keeps it exactly PSD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NUMERICAL_APERTURE, WAVELENGTH_NM
from repro.errors import LithoError
from repro.litho.pupil import pupil_function
from repro.litho.source import SourceSpec, source_weights


@dataclass(frozen=True)
class TCCResult:
    """Discretized TCC plus the lattice metadata needed to invert it.

    Attributes:
        matrix: ``(n, n)`` Hermitian TCC over pupil-shift samples.
        shift_indices: ``(n, 2)`` integer lattice coordinates of each sample.
        lattice_spacing_rc: Per-axis frequency-lattice pitch (cycles/nm),
            ``(row, col)``; equal for square lattices.
    """

    matrix: np.ndarray
    shift_indices: np.ndarray
    lattice_spacing_rc: tuple[float, float]

    @property
    def lattice_spacing(self) -> float:
        """Isotropic lattice pitch; only valid for square lattices."""
        row, col = self.lattice_spacing_rc
        if row != col:
            raise LithoError(
                "anisotropic TCC lattice has no single spacing; "
                "use lattice_spacing_rc"
            )
        return row

    @property
    def band_radii(self) -> tuple[int, int]:
        """Largest absolute lattice index per axis (kernel band support)."""
        return (
            int(np.abs(self.shift_indices[:, 0]).max()),
            int(np.abs(self.shift_indices[:, 1]).max()),
        )


def frequency_lattice(radius_units: int) -> np.ndarray:
    """Integer lattice points within ``radius_units`` of the origin."""
    coords = np.arange(-radius_units, radius_units + 1)
    ii, jj = np.meshgrid(coords, coords, indexing="ij")
    pts = np.stack([ii.ravel(), jj.ravel()], axis=1)
    keep = pts[:, 0] ** 2 + pts[:, 1] ** 2 <= radius_units * radius_units
    return pts[keep]


def elliptic_lattice(
    max_row: int, max_col: int, spacing_row: float, spacing_col: float,
    cutoff: float,
) -> np.ndarray:
    """Integer lattice points whose physical frequency is within ``cutoff``.

    Generalizes :func:`frequency_lattice` to anisotropic spacings: the
    disk ``|f| <= cutoff`` becomes an ellipse in index space.
    """
    ii, jj = np.meshgrid(
        np.arange(-max_row, max_row + 1),
        np.arange(-max_col, max_col + 1),
        indexing="ij",
    )
    pts = np.stack([ii.ravel(), jj.ravel()], axis=1)
    f_sq = (pts[:, 0] * spacing_row) ** 2 + (pts[:, 1] * spacing_col) ** 2
    return pts[f_sq <= cutoff * cutoff]


def _assemble_tcc(
    source: SourceSpec,
    shift_indices: np.ndarray,
    spacing_rc: tuple[float, float],
    defocus_nm: float,
    wavelength_nm: float,
    numerical_aperture: float,
) -> TCCResult:
    """Gram-matrix TCC over the given pupil-shift lattice.

    The source is discretized on the same lattice spacing (quadrature of
    the Hopkins source integral; refining it further moves intensities by
    under ~3e-3, well inside the model error of the physics class).
    """
    df_r, df_c = spacing_rc
    cutoff = numerical_aperture / wavelength_nm
    shifts = shift_indices * np.array([df_r, df_c])

    source_max_r = int(np.ceil(source.outer_sigma * cutoff / df_r))
    source_max_c = int(np.ceil(source.outer_sigma * cutoff / df_c))
    ii, jj = np.meshgrid(
        np.arange(-source_max_r, source_max_r + 1),
        np.arange(-source_max_c, source_max_c + 1),
        indexing="ij",
    )
    source_freqs = np.stack([ii.ravel() * df_r, jj.ravel() * df_c], axis=1)
    weights = source_weights(source, source_freqs, cutoff)
    active = weights > 0
    source_freqs = source_freqs[active]
    weights = weights[active]

    # A[s, a] = sqrt(J_s) * P(f_s + f_a); TCC = A^H A / sum(J).
    sample_freqs = source_freqs[:, None, :] + shifts[None, :, :]
    flat = sample_freqs.reshape(-1, 2)
    pupil = pupil_function(
        flat,
        defocus_nm=defocus_nm,
        wavelength_nm=wavelength_nm,
        numerical_aperture=numerical_aperture,
    ).reshape(len(source_freqs), len(shifts))
    amplitude = np.sqrt(weights)[:, None] * pupil
    tcc = amplitude.conj().T @ amplitude / weights.sum()
    return TCCResult(
        matrix=tcc, shift_indices=shift_indices, lattice_spacing_rc=(df_r, df_c)
    )


def build_tcc(
    source: SourceSpec,
    period_nm: float,
    defocus_nm: float = 0.0,
    wavelength_nm: float = WAVELENGTH_NM,
    numerical_aperture: float = NUMERICAL_APERTURE,
) -> TCCResult:
    """Build the TCC on a square lattice with spacing ``1 / period_nm``.

    ``period_nm`` is the spatial period of the resulting kernels; it should
    comfortably exceed the optical ambit (defaults elsewhere use ~2 um).
    """
    if period_nm <= 0:
        raise LithoError(f"period must be positive, got {period_nm}")
    df = 1.0 / period_nm
    cutoff = numerical_aperture / wavelength_nm

    pupil_radius_units = int(np.floor(cutoff / df))
    if pupil_radius_units < 2:
        raise LithoError(
            f"frequency lattice too coarse: pupil radius is only "
            f"{pupil_radius_units} samples (period {period_nm} nm)"
        )
    shift_indices = frequency_lattice(pupil_radius_units)
    return _assemble_tcc(
        source, shift_indices, (df, df), defocus_nm,
        wavelength_nm, numerical_aperture,
    )


def build_tcc_grid(
    source: SourceSpec,
    shape: tuple[int, int],
    pixel_nm: float,
    defocus_nm: float = 0.0,
    wavelength_nm: float = WAVELENGTH_NM,
    numerical_aperture: float = NUMERICAL_APERTURE,
) -> TCCResult:
    """Build the TCC directly on one raster's DFT frequency lattice.

    The lattice spacing is ``1 / (rows * pixel_nm)`` per row and
    ``1 / (cols * pixel_nm)`` per column, so the resulting eigenvectors
    are kernel spectra sampled *exactly* at the grid's FFT bins: circular
    convolution with them on that grid is the exact Hopkins image of the
    ``shape``-periodic mask, with no spatial crop anywhere.
    """
    rows, cols = int(shape[0]), int(shape[1])
    if rows < 2 or cols < 2 or pixel_nm <= 0:
        raise LithoError(
            f"bad raster for TCC lattice: shape {shape}, pixel {pixel_nm} nm"
        )
    df_r = 1.0 / (rows * pixel_nm)
    df_c = 1.0 / (cols * pixel_nm)
    cutoff = numerical_aperture / wavelength_nm

    # The pupil band must fit under the grid Nyquist on both axes.
    max_r = min(int(np.floor(cutoff / df_r)), (rows - 1) // 2)
    max_c = min(int(np.floor(cutoff / df_c)), (cols - 1) // 2)
    if min(max_r, max_c) < 2:
        raise LithoError(
            f"frequency lattice too coarse for grid {rows}x{cols} at "
            f"{pixel_nm} nm: pupil band is only ({max_r}, {max_c}) samples "
            f"— enlarge the simulation window"
        )
    shift_indices = elliptic_lattice(max_r, max_c, df_r, df_c, cutoff)
    return _assemble_tcc(
        source, shift_indices, (df_r, df_c), defocus_nm,
        wavelength_nm, numerical_aperture,
    )


def socs_spectra(
    tcc: TCCResult,
    max_kernels: int = 12,
    energy_fraction: float = 0.995,
) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecompose a TCC into SOCS kernel *spectra*.

    Returns:
        ``(weights, coefficients)``: weights ``(K,)`` (eigenvalues,
        descending) and complex coefficients ``(K, n)`` aligned with
        ``tcc.shift_indices`` — kernel ``k``'s spectrum is
        ``coefficients[k, a]`` at lattice point ``shift_indices[a]`` and
        exactly zero elsewhere.
    """
    if not 0 < energy_fraction <= 1:
        raise LithoError(f"energy_fraction must be in (0, 1], got {energy_fraction}")
    eigvals, eigvecs = np.linalg.eigh(tcc.matrix)
    order = np.argsort(eigvals)[::-1]
    eigvals = np.maximum(eigvals[order], 0.0)
    eigvecs = eigvecs[:, order]

    total = eigvals.sum()
    if total <= 0:
        raise LithoError("TCC has no positive eigenvalues")
    cumulative = np.cumsum(eigvals) / total
    count = int(np.searchsorted(cumulative, energy_fraction) + 1)
    count = min(count, max_kernels, len(eigvals))
    return eigvals[:count], np.ascontiguousarray(eigvecs[:, :count].T)


def socs_kernels(
    tcc: TCCResult,
    pixel_nm: float,
    max_kernels: int = 12,
    energy_fraction: float = 0.995,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize SOCS kernels spatially (persistence / visualization).

    Args:
        tcc: Output of :func:`build_tcc` (square lattice).
        pixel_nm: Raster pitch to sample the kernels at.
        max_kernels: Hard cap on the number of kernels kept.
        energy_fraction: Keep the smallest kernel count whose eigenvalue
            mass reaches this fraction of the total.

    Returns:
        ``(weights, kernels)``: weights ``(K,)`` (eigenvalues, descending)
        and complex spatial kernels ``(K, N, N)`` sampled at ``pixel_nm``
        with the kernel centre at the array centre.  ``N`` is the lattice
        period divided by the pixel size.
    """
    weights, coefficients = socs_spectra(
        tcc, max_kernels=max_kernels, energy_fraction=energy_fraction
    )
    period_nm = 1.0 / tcc.lattice_spacing
    n_pixels = int(round(period_nm / pixel_nm))
    if n_pixels < 8:
        raise LithoError(
            f"kernel raster too small ({n_pixels} px); "
            f"decrease pixel size or increase period"
        )

    count = len(weights)
    kernels = np.empty((count, n_pixels, n_pixels), dtype=np.complex128)
    rows = tcc.shift_indices[:, 0] % n_pixels
    cols = tcc.shift_indices[:, 1] % n_pixels
    for k in range(count):
        spectrum = np.zeros((n_pixels, n_pixels), dtype=np.complex128)
        spectrum[rows, cols] = coefficients[k]
        spatial = np.fft.ifft2(spectrum) * (n_pixels * n_pixels)
        kernels[k] = np.fft.fftshift(spatial)
    return weights, kernels
