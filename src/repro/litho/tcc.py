"""Transmission cross coefficient (TCC) construction and SOCS decomposition.

Hopkins partially-coherent imaging writes the aerial image as

    I(x) = sum_{f1, f2} TCC(f1, f2) M(f1) conj(M(f2)) exp(i 2 pi (f1 - f2) x)

with ``TCC(f1, f2) = integral J(f) P(f + f1) conj(P(f + f2)) df`` over the
source.  Diagonalizing the (Hermitian, PSD) TCC gives the sum-of-coherent-
systems form ``I(x) = sum_k w_k |(h_k * m)(x)|^2`` — the optical kernels
every fast OPC simulator uses.

We discretize both source and pupil shifts on a frequency lattice of
spacing ``1 / period_nm`` and build the TCC as a Gram matrix ``A^H A`` with
``A[s, a] = sqrt(J_s) * P(f_s + f_a)``, which keeps it exactly PSD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NUMERICAL_APERTURE, WAVELENGTH_NM
from repro.errors import LithoError
from repro.litho.pupil import pupil_function
from repro.litho.source import SourceSpec, source_weights


@dataclass(frozen=True)
class TCCResult:
    """Discretized TCC plus the lattice metadata needed to invert it.

    Attributes:
        matrix: ``(n, n)`` Hermitian TCC over pupil-shift samples.
        shift_indices: ``(n, 2)`` integer lattice coordinates of each sample.
        lattice_spacing: Frequency-lattice pitch (cycles/nm).
    """

    matrix: np.ndarray
    shift_indices: np.ndarray
    lattice_spacing: float


def frequency_lattice(radius_units: int) -> np.ndarray:
    """Integer lattice points within ``radius_units`` of the origin."""
    coords = np.arange(-radius_units, radius_units + 1)
    ii, jj = np.meshgrid(coords, coords, indexing="ij")
    pts = np.stack([ii.ravel(), jj.ravel()], axis=1)
    keep = pts[:, 0] ** 2 + pts[:, 1] ** 2 <= radius_units * radius_units
    return pts[keep]


def build_tcc(
    source: SourceSpec,
    period_nm: float,
    defocus_nm: float = 0.0,
    wavelength_nm: float = WAVELENGTH_NM,
    numerical_aperture: float = NUMERICAL_APERTURE,
) -> TCCResult:
    """Build the TCC on a lattice with spacing ``1 / period_nm``.

    ``period_nm`` is the spatial period of the resulting kernels; it should
    comfortably exceed the optical ambit (defaults elsewhere use ~2 um).
    """
    if period_nm <= 0:
        raise LithoError(f"period must be positive, got {period_nm}")
    df = 1.0 / period_nm
    cutoff = numerical_aperture / wavelength_nm

    pupil_radius_units = int(np.floor(cutoff / df))
    if pupil_radius_units < 2:
        raise LithoError(
            f"frequency lattice too coarse: pupil radius is only "
            f"{pupil_radius_units} samples (period {period_nm} nm)"
        )
    shift_indices = frequency_lattice(pupil_radius_units)
    shifts = shift_indices * df

    source_radius_units = int(np.ceil(source.outer_sigma * cutoff / df))
    source_indices = frequency_lattice(source_radius_units)
    source_freqs = source_indices * df
    weights = source_weights(source, source_freqs, cutoff)
    active = weights > 0
    source_freqs = source_freqs[active]
    weights = weights[active]

    # A[s, a] = sqrt(J_s) * P(f_s + f_a); TCC = A^H A / sum(J).
    sample_freqs = source_freqs[:, None, :] + shifts[None, :, :]
    flat = sample_freqs.reshape(-1, 2)
    pupil = pupil_function(
        flat,
        defocus_nm=defocus_nm,
        wavelength_nm=wavelength_nm,
        numerical_aperture=numerical_aperture,
    ).reshape(len(source_freqs), len(shifts))
    amplitude = np.sqrt(weights)[:, None] * pupil
    tcc = amplitude.conj().T @ amplitude / weights.sum()
    return TCCResult(matrix=tcc, shift_indices=shift_indices, lattice_spacing=df)


def socs_kernels(
    tcc: TCCResult,
    pixel_nm: float,
    max_kernels: int = 12,
    energy_fraction: float = 0.995,
) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecompose a TCC into spatial SOCS kernels.

    Args:
        tcc: Output of :func:`build_tcc`.
        pixel_nm: Raster pitch of the target mask grids.
        max_kernels: Hard cap on the number of kernels kept.
        energy_fraction: Keep the smallest kernel count whose eigenvalue
            mass reaches this fraction of the total.

    Returns:
        ``(weights, kernels)``: weights ``(K,)`` (eigenvalues, descending)
        and complex spatial kernels ``(K, N, N)`` sampled at ``pixel_nm``
        with the kernel centre at the array centre.  ``N`` is the lattice
        period divided by the pixel size.
    """
    if not 0 < energy_fraction <= 1:
        raise LithoError(f"energy_fraction must be in (0, 1], got {energy_fraction}")
    eigvals, eigvecs = np.linalg.eigh(tcc.matrix)
    order = np.argsort(eigvals)[::-1]
    eigvals = np.maximum(eigvals[order], 0.0)
    eigvecs = eigvecs[:, order]

    total = eigvals.sum()
    if total <= 0:
        raise LithoError("TCC has no positive eigenvalues")
    cumulative = np.cumsum(eigvals) / total
    count = int(np.searchsorted(cumulative, energy_fraction) + 1)
    count = min(count, max_kernels, len(eigvals))

    period_nm = 1.0 / tcc.lattice_spacing
    n_pixels = int(round(period_nm / pixel_nm))
    if n_pixels < 8:
        raise LithoError(
            f"kernel raster too small ({n_pixels} px); "
            f"decrease pixel size or increase period"
        )

    kernels = np.empty((count, n_pixels, n_pixels), dtype=np.complex128)
    for k in range(count):
        spectrum = np.zeros((n_pixels, n_pixels), dtype=np.complex128)
        rows = tcc.shift_indices[:, 0] % n_pixels
        cols = tcc.shift_indices[:, 1] % n_pixels
        spectrum[rows, cols] = eigvecs[:, k]
        spatial = np.fft.ifft2(spectrum) * (n_pixels * n_pixels)
        kernels[k] = np.fft.fftshift(spatial)
    return eigvals[:count], kernels
