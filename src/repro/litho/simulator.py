"""Lithography simulator facade.

:class:`LithographySimulator` is what the OPC engines talk to: it turns a
mask (polygons or a :class:`~repro.geometry.mask_edit.MaskState`) into
aerial and printed images at every process corner, reusing optical kernels
and cached per-grid band spectra across the thousands of evaluations an
OPC run makes.

Architecture — one exact engine
-------------------------------

Kernels are *frequency-native*: for every grid shape the TCC is built
directly on that grid's DFT frequency lattice and eigendecomposed into
SOCS spectra that are exactly zero outside the pupil band (no spatial
ambit crop anywhere — see :mod:`repro.litho.kernels`).  That makes the
compact pupil-band subgrid engine exact, so there is a single simulation
engine with two entry points:

* :meth:`LithographySimulator.simulate_mask` — the single-mask *spatial
  reference path*: one full-grid inverse FFT per kernel.  Slow, simple,
  and the numerical reference everything else is tested against (golden
  images in ``tests/golden/``, exactness tests in
  ``tests/test_litho_band.py``).

* :meth:`LithographySimulator.simulate_batch` — the production engine.
  It stacks B same-shape masks into a ``(B, H, W)`` array, computes a
  single vectorized forward FFT, *shares those mask spectra across the
  focus and defocus kernel sets* (all three process corners come from
  one forward transform), and runs the per-kernel inverse FFTs on the
  compact pupil-band subgrid with one exact zero-padded FFT resample of
  the intensity per corner.  Results match :meth:`simulate_mask` to FFT
  round-off (far below the 1e-9 golden tolerance) and are bit-for-bit
  independent of the batch size, at what used to be screening speed —
  formerly-"spectral" throughput is now legal for reported EPE/PV-band
  metrology.  ``benchmarks/bench_batch_litho.py`` gates >= 3x over the
  per-mask reference loop at B=8.

The old ``mode="spectral"`` screening split is retired: ``mode=`` is
accepted as a deprecated no-op (every call is exact now) and warns;
unknown modes still raise.

Array/device backend
--------------------

Every array operation and transform runs through the pluggable array
backend of :mod:`repro.backend`, selected by ``LithoConfig.backend``:
``"numpy"`` (single-threaded, the backend the committed goldens were
generated with), ``"scipy"`` (threaded via ``workers=``, ~1e-12 from
numpy — inside the 1e-9 golden tolerance but not bit-for-bit),
``"torch"`` (device execution of the band engine on ``device``; CPU
parity ~1e-12, never chosen implicitly), or ``"auto"`` (scipy with
threads on multi-core hosts when scipy is importable, numpy otherwise —
never a device backend).  Batch-vs-single-mask parity within the
batched engine is bit-for-bit under any one backend because every path
shares it, and all FFT-derived caches are keyed by backend identity and
device.

Under a device backend, :meth:`LithographySimulator.simulate_batch` and
:meth:`~LithographySimulator.simulate_epe_batch` accept host arrays *or*
device tensors and run the forward transform, band convolution and
sparse gathers on the device; the returned aerials / sparse values are
always host numpy — downstream metrology and resist thresholding are
host-side by contract, so conversion happens exactly once, at this
boundary.  The old ``fft_backend=`` spelling is accepted as a
deprecated alias of ``backend=`` and warns.

Batched metrology contract
--------------------------

Downstream measurement mirrors the litho batching: one
``simulate_batch`` call is followed by one batched metrology call.
:func:`repro.metrology.epe.measure_epe_batch` /
:func:`~repro.metrology.epe.segment_epe_batch` resolve every ``(B,
n_points)`` contour profile in a single vectorized pass and are
bit-for-bit equal to mapping :func:`~repro.metrology.epe.measure_epe` /
:func:`~repro.metrology.epe.segment_epe` over the batch;
:func:`~repro.metrology.pvband.pvband_area_batch` does the same for PV
bands.  ``OPCEnvironment.evaluate_batch`` / ``step_batch``, population
RL training, and the suite verifier (:mod:`repro.eval.runner`) all
follow this two-call pattern.
"""

from __future__ import annotations

import threading
import warnings
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.constants import (
    DEFOCUS_NM,
    DOSE_VARIATION,
    PIXEL_NM,
    RESIST_THRESHOLD,
)
from repro.errors import LithoError
from repro.geometry.layout import Clip
from repro.geometry.mask_edit import MaskState
from repro.geometry.polygon import Polygon
from repro.geometry.raster import Grid, rasterize
from repro.backend import resolve_backend
from repro.litho.kernels import OpticalKernelSet, build_kernel_set
from repro.litho.process import ProcessCorner, standard_corners
from repro.litho.resist import printed_image
from repro.litho.source import SourceSpec


def warn_deprecated_mode(mode: str | None) -> None:
    """Thin shim for retired ``mode=`` arguments: warn, never change math."""
    if mode is None:
        return
    if mode not in ("exact", "spectral"):
        raise LithoError(
            f"unknown simulation mode {mode!r}; the unified engine accepts "
            "only the deprecated values 'exact' and 'spectral'"
        )
    warnings.warn(
        "simulation mode= is deprecated and ignored: the unified "
        "band-limited engine is always exact",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class LithoConfig:
    """Simulator settings (paper-scale defaults, all overridable)."""

    pixel_nm: float = PIXEL_NM
    threshold: float = RESIST_THRESHOLD
    defocus_nm: float = DEFOCUS_NM
    dose_variation: float = DOSE_VARIATION
    source: SourceSpec = SourceSpec()
    period_nm: float = 2048.0
    """Square-lattice period of the canonical spatial kernel
    materialization (persistence / visualization).  Simulation lattices
    are per-grid and do not use it."""
    ambit_nm: float = 512.0
    """Deprecated and ignored: kernels are no longer spatially cropped.
    Retained so existing configs keep constructing."""
    max_kernels: int = 12
    energy_fraction: float = 0.995
    backend: str = "auto"
    """Array/transform backend for every array op in the simulate path:
    ``"numpy"``, ``"scipy"`` (threaded transforms), ``"torch"`` (device
    execution) or ``"auto"`` (host-only; see :mod:`repro.backend`)."""
    device: str | None = None
    """Torch device (``"cpu"``, ``"cuda"``, ``"cuda:N"``); ``None``
    picks CUDA when available.  Host backends ignore it (must be
    ``None``/``"cpu"``)."""
    fft_backend: str | None = None
    """Deprecated alias of ``backend=`` (the knob predates the array-API
    refactor).  Passing it warns and, when ``backend`` is left at its
    default, routes the value into ``backend``."""
    fft_workers: int | None = None
    """Thread count for the scipy backend; ``None`` uses every core."""
    spectra_store: str | None = None
    """Directory of the disk-persistent kernel-spectra store
    (:mod:`repro.litho.store`); ``None`` disables persistence.  A warm
    store removes the per-shape TCC build from fresh processes without
    changing any simulated value (stored spectra are bit-for-bit equal
    to an in-process build)."""

    def __post_init__(self) -> None:
        if self.pixel_nm <= 0:
            raise LithoError("pixel_nm must be positive")
        if self.period_nm <= 0:
            raise LithoError("period_nm must be positive")
        if self.fft_backend is not None:
            warnings.warn(
                "LithoConfig(fft_backend=) is deprecated; use backend= "
                "(same host spellings, plus 'torch')",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.backend == "auto":
                # The frozen dataclass is mutated only here, inside
                # construction, before any reader can observe it.
                object.__setattr__(self, "backend", self.fft_backend)
        resolve_backend(self.backend, self.fft_workers, self.device)


class LazyPrinted(Mapping):
    """Per-corner printed images, thresholded on first access.

    ``simulate_batch`` used to materialize three full-grid thresholded
    images per mask eagerly; most callers (EPE metrology, the verify
    scheduler) only ever read ``aerial``.  This mapping defers each
    corner's :func:`~repro.litho.resist.printed_image` until it is
    actually indexed, then caches it — a corner read twice returns the
    same array object, and every value is bit-for-bit identical to the
    eager construction (same function, same inputs, just later).
    """

    __slots__ = ("_sources", "_threshold", "_cache")

    def __init__(
        self,
        aerial: np.ndarray,
        aerial_defocus: np.ndarray,
        threshold: float,
        corners: "tuple[ProcessCorner, ProcessCorner, ProcessCorner]",
    ) -> None:
        nominal, inner, outer = corners
        self._sources = {
            "nominal": (aerial, nominal.dose),
            "inner": (aerial_defocus, inner.dose),
            "outer": (aerial_defocus, outer.dose),
        }
        self._threshold = threshold
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, corner: str) -> np.ndarray:
        cached = self._cache.get(corner)
        if cached is None:
            aerial, dose = self._sources[corner]
            cached = printed_image(aerial, self._threshold, dose)
            self._cache[corner] = cached
        return cached

    def __iter__(self):
        return iter(self._sources)

    def __len__(self) -> int:
        return len(self._sources)

    def __repr__(self) -> str:
        return (
            f"LazyPrinted(corners={list(self._sources)}, "
            f"materialized={sorted(self._cache)})"
        )


@dataclass
class LithoResult:
    """One full simulation: aerial image plus printed images per corner.

    ``printed`` maps corner name to the thresholded image; on the
    batched path it is a :class:`LazyPrinted` that computes each corner
    on first access (identical values, deferred cost), while the
    single-mask reference path keeps an eager dict.
    """

    grid: Grid
    aerial: np.ndarray
    aerial_defocus: np.ndarray
    printed: Mapping[str, np.ndarray]

    @property
    def nominal(self) -> np.ndarray:
        return self.printed["nominal"]

    @property
    def inner(self) -> np.ndarray:
        return self.printed["inner"]

    @property
    def outer(self) -> np.ndarray:
        return self.printed["outer"]


@dataclass
class LithographySimulator:
    """Reusable Hopkins/SOCS simulator for one optical configuration."""

    config: LithoConfig = field(default_factory=LithoConfig)
    _kernel_sets: dict[float, OpticalKernelSet] = field(
        default_factory=dict, repr=False
    )
    _spectra_store: object | None = field(default=None, repr=False)
    _init_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def spectra_store(self):
        """The configured kernel-spectra store (one per simulator), or
        ``None`` when persistence is disabled."""
        with self._init_lock:
            if self._spectra_store is None and self.config.spectra_store:
                from repro.litho.store import open_store

                self._spectra_store = open_store(self.config.spectra_store)
            return self._spectra_store

    def kernel_set(self, defocus_nm: float = 0.0) -> OpticalKernelSet:
        """Kernels for one focus condition (built once, then cached).

        Lazy init is locked: the service's thread-pooled ``map_suite``
        drives one shared simulator from several threads, and a
        concurrent first call must not build (and then discard) the set
        twice."""
        if defocus_nm in self._kernel_sets:
            return self._kernel_sets[defocus_nm]
        cfg = self.config
        store = self.spectra_store()
        with self._init_lock:
            if defocus_nm not in self._kernel_sets:
                self._kernel_sets[defocus_nm] = build_kernel_set(
                    pixel_nm=cfg.pixel_nm,
                    defocus_nm=defocus_nm,
                    source=cfg.source,
                    period_nm=cfg.period_nm,
                    max_kernels=cfg.max_kernels,
                    energy_fraction=cfg.energy_fraction,
                    fft_backend=cfg.backend,
                    fft_workers=cfg.fft_workers,
                    device=cfg.device,
                    spectra_store=store,
                )
            return self._kernel_sets[defocus_nm]

    def corners(self) -> tuple[ProcessCorner, ProcessCorner, ProcessCorner]:
        return standard_corners(self.config.defocus_nm, self.config.dose_variation)

    # -- grid / raster helpers ----------------------------------------------
    def grid_for(self, clip: Clip) -> Grid:
        return Grid.for_window(clip.bbox, self.config.pixel_nm)

    def rasterize_mask(
        self, polygons: Iterable[Polygon], grid: Grid
    ) -> np.ndarray:
        return rasterize(polygons, grid)

    # -- simulation -----------------------------------------------------------
    def aerial(self, mask: np.ndarray, defocus_nm: float = 0.0) -> np.ndarray:
        """Aerial intensity of a rasterized mask at one focus setting
        (spatial reference path)."""
        return self.kernel_set(defocus_nm).convolve_intensity(mask)

    def simulate_mask(self, mask: np.ndarray, grid: Grid) -> LithoResult:
        """Full corner sweep for a rasterized mask (reference path)."""
        nominal, inner, outer = self.corners()
        aerial_focus = self.aerial(mask, defocus_nm=nominal.defocus_nm)
        aerial_defocus = self.aerial(mask, defocus_nm=inner.defocus_nm)
        printed = {
            "nominal": printed_image(
                aerial_focus, self.config.threshold, nominal.dose
            ),
            "inner": printed_image(aerial_defocus, self.config.threshold, inner.dose),
            "outer": printed_image(aerial_defocus, self.config.threshold, outer.dose),
        }
        return LithoResult(
            grid=grid,
            aerial=aerial_focus,
            aerial_defocus=aerial_defocus,
            printed=printed,
        )

    def simulate_batch(
        self,
        masks: Sequence[np.ndarray] | np.ndarray,
        grid: Grid,
        mode: str | None = None,
    ) -> list[LithoResult]:
        """Full corner sweep for a stack of same-shape rasterized masks.

        ``masks`` is a ``(B, H, W)`` array or a sequence of B ``(H, W)``
        masks on ``grid``.  One shared forward FFT feeds both the focus
        and defocus kernel sets, so all three process corners come from a
        single batched transform pipeline running the exact pupil-band
        subgrid engine.  Results match :meth:`simulate_mask` to FFT
        round-off and are bit-for-bit independent of the batch size.

        ``mode`` is deprecated and ignored (the engine is always exact);
        passing ``"exact"`` or ``"spectral"`` warns, anything else raises.

        Under a device backend ``masks`` may already be a device tensor
        (``(B, H, W)``); host input is moved to the device once, and the
        returned aerials are host numpy either way.
        """
        warn_deprecated_mode(mode)
        if hasattr(masks, "ndim"):
            stack = masks
        else:
            items = list(masks)
            if not items:
                raise LithoError("mask batch is empty")
            try:
                stack = np.stack(items)
            except ValueError as exc:
                raise LithoError(
                    f"masks in a batch must share one shape: {exc}"
                ) from None
        nominal, inner, outer = self.corners()
        focus_set = self.kernel_set(nominal.defocus_nm)
        defocus_set = self.kernel_set(inner.defocus_nm)
        stack = focus_set.validate_mask_batch(stack)
        if stack.shape[1:] != grid.shape:
            raise LithoError(
                f"mask batch shape {stack.shape[1:]} does not match grid "
                f"{grid.shape}"
            )
        mask_ffts = focus_set.fft.fft2(stack, axes=(-2, -1))
        aerial_focus = focus_set.intensity_from_mask_ffts(mask_ffts)
        aerial_defocus = defocus_set.intensity_from_mask_ffts(mask_ffts)
        threshold = self.config.threshold
        corners = (nominal, inner, outer)
        results = []
        for focus_b, defocus_b in zip(aerial_focus, aerial_defocus):
            results.append(
                LithoResult(
                    grid=grid,
                    aerial=focus_b,
                    aerial_defocus=defocus_b,
                    printed=LazyPrinted(focus_b, defocus_b, threshold, corners),
                )
            )
        return results

    def simulate_epe_batch(
        self,
        masks: Sequence[np.ndarray] | np.ndarray,
        grid: Grid,
        plans,
        with_defocus: bool = False,
    ) -> list:
        """Sparse corner sweep: intensity only where EPE metrology looks.

        The EPE-only companion of :meth:`simulate_batch` for
        verification and screening: ``plans`` is one
        :class:`~repro.metrology.contour.ContourStencilPlan` shared by
        every mask (candidate screening) or a per-mask sequence
        (shape-binned verification, where same-shape clips differ in
        geometry; ``None`` entries mean "no measure points").  Returns
        one :class:`~repro.metrology.contour.SparseAerial` per mask
        (``None`` where the plan was), holding the nominal-corner
        intensity at the plan's pixel set — and the defocus corner too
        when ``with_defocus`` is set (EPE itself is measured at the
        nominal corner only, so the default skips that work).

        Neither ``printed_image`` nor any full-grid inverse FFT is
        constructed: the stack is forward-transformed once with the
        half-width real-input FFT, both kernel sets gather their pupil
        bands from it by Hermitian symmetry, and each plan's pixel set
        is evaluated by the direct band-spectrum gather
        (:meth:`~repro.litho.kernels.OpticalKernelSet.
        sparse_intensity_from_rfft`).  Values agree with gathering the
        dense :meth:`simulate_batch` aerials at the same pixels to
        <= 1e-12 absolute intensity — resolved EPE offsets agree to
        <= 1e-9 nm.  Grids whose pupil band is not compact (or legacy
        spatial kernel sets) fall back to the dense engine plus a
        gather, which is exact.

        Like :meth:`simulate_batch`, ``masks`` may be a device tensor
        under a device backend; the sparse values in each returned
        :class:`~repro.metrology.contour.SparseAerial` are host numpy.
        """
        if hasattr(masks, "ndim"):
            stack = masks
        else:
            items = list(masks)
            if not items:
                raise LithoError("mask batch is empty")
            try:
                stack = np.stack(items)
            except ValueError as exc:
                raise LithoError(
                    f"masks in a batch must share one shape: {exc}"
                ) from None
        nominal, inner, _ = self.corners()
        focus_set = self.kernel_set(nominal.defocus_nm)
        stack = focus_set.validate_mask_batch(stack)
        if stack.shape[1:] != grid.shape:
            raise LithoError(
                f"mask batch shape {stack.shape[1:]} does not match grid "
                f"{grid.shape}"
            )
        batch = stack.shape[0]
        if plans is None or not isinstance(plans, (list, tuple)):
            plan_list = [plans] * batch
        else:
            plan_list = list(plans)
            if len(plan_list) != batch:
                raise LithoError(
                    f"got {len(plan_list)} stencil plans for {batch} masks"
                )
        for plan in plan_list:
            if plan is not None and plan.grid.shape != grid.shape:
                raise LithoError(
                    f"stencil plan grid {plan.grid.shape} does not match "
                    f"the mask grid {grid.shape}"
                )
        results: list = [None] * batch
        groups: dict[int, tuple] = {}
        for index, plan in enumerate(plan_list):
            if plan is None or not plan.n_points:
                continue
            groups.setdefault(id(plan), (plan, []))[1].append(index)
        if not groups:
            return results

        shape = grid.shape
        defocus_set = self.kernel_set(inner.defocus_nm) if with_defocus else None
        kernel_sets = [focus_set] + ([defocus_set] if with_defocus else [])
        compact = all(
            kset.is_native and kset.band_spectra(shape).compact
            for kset in kernel_sets
        )
        if compact:
            spectra = focus_set.fft.rfft2(stack, axes=(-2, -1))

            def evaluate(kset, indices, plan):
                return kset.sparse_intensity_from_rfft(
                    spectra[indices], shape, plan.pixel_rows, plan.pixel_cols
                )
        else:
            spectra = focus_set.fft.fft2(stack, axes=(-2, -1))

            def evaluate(kset, indices, plan):
                return kset.intensity_at_pixels(
                    spectra[indices], plan.pixel_rows, plan.pixel_cols
                )

        from repro.metrology.contour import SparseAerial

        for plan, indices in groups.values():
            # Device spectra need device-resident batch indices.
            index_array = focus_set.fft.index(np.asarray(indices))
            values = evaluate(focus_set, index_array, plan)
            values_defocus = (
                evaluate(defocus_set, index_array, plan)
                if with_defocus else None
            )
            for row, index in enumerate(indices):
                results[index] = SparseAerial(
                    plan=plan,
                    values=values[row],
                    values_defocus=(
                        values_defocus[row] if with_defocus else None
                    ),
                )
        return results

    def simulate_polygons(
        self, polygons: Iterable[Polygon], grid: Grid
    ) -> LithoResult:
        """Rasterize + simulate through the batched engine (B = 1).

        Matches :meth:`simulate_mask` to FFT round-off while all three
        corners share one forward FFT on the compact band subgrid — this
        is the per-iteration corner sweep used by every OPC engine via
        :meth:`simulate_state`.
        """
        mask = self.rasterize_mask(polygons, grid)
        return self.simulate_batch(mask[None], grid)[0]

    def simulate_state(self, state: MaskState, grid: Grid | None = None) -> LithoResult:
        """Simulate the current mask of an OPC state."""
        if grid is None:
            grid = self.grid_for(state.clip)
        return self.simulate_polygons(state.mask_polygons(), grid)
