"""Lithography simulator facade.

:class:`LithographySimulator` is what the OPC engines talk to: it turns a
mask (polygons or a :class:`~repro.geometry.mask_edit.MaskState`) into
aerial and printed images at every process corner, reusing optical kernels
and kernel FFTs across the thousands of evaluations an OPC run makes.

Architecture — single-mask vs batched engine
--------------------------------------------

Two simulation entry points cover every workload:

* :meth:`LithographySimulator.simulate_mask` — the single-mask reference
  path.  One mask in, one :class:`LithoResult` out; each aerial image is
  computed independently.  Use it for one-off simulations, debugging and
  as the numerical reference that everything else is tested against.

* :meth:`LithographySimulator.simulate_batch` — the batched engine.  It
  stacks B same-shape masks into a ``(B, H, W)`` array, computes a single
  vectorized forward FFT, *shares those mask spectra across the focus and
  defocus kernel sets* (all three process corners come from one forward
  transform), and runs batched inverse FFTs per kernel.  Results are
  bit-for-bit identical to B calls of :meth:`simulate_mask` — the
  transforms are the same algorithm applied slice-wise and the per-kernel
  accumulation order is preserved — so callers switch freely on batch
  size alone.  Prefer it whenever several masks are in flight at once:
  RL candidate-action scoring (:meth:`repro.rl.env.OPCEnvironment.score_moves`),
  suite-level verification sweeps (:func:`repro.eval.runner.run_engine_on_suite`),
  and per-iteration corner sweeps inside the baselines.

``simulate_batch(mode="spectral")`` swaps in the band-limited screening
engine (:mod:`repro.litho.spectral`): ~3-6x faster, ~1e-3 max intensity
error, intended for ranking candidate masks — never for reported
metrology.  Kernel FFTs live in a bounded per-shape LRU on each
:class:`~repro.litho.kernels.OpticalKernelSet`, shared by both paths and
by every batch shape on the same grid.

FFT backend
-----------

Every forward/inverse transform (both engines, both modes) runs through
the pluggable backend of :mod:`repro.litho.fft`, selected by
``LithoConfig.fft_backend``: ``"numpy"`` (single-threaded, the backend
the committed goldens were generated with), ``"scipy"`` (threaded via
``workers=``, ~1e-12 from numpy — inside the 1e-9 golden tolerance but
not bit-for-bit), or ``"auto"`` (scipy with threads on multi-core hosts
when scipy is importable, numpy otherwise).  Batch-vs-single parity is
bit-for-bit under any one backend because both paths share it.

Batched metrology contract
--------------------------

Downstream measurement mirrors the litho batching: one
``simulate_batch`` call is followed by one batched metrology call.
:func:`repro.metrology.epe.measure_epe_batch` /
:func:`~repro.metrology.epe.segment_epe_batch` resolve every ``(B,
n_points)`` contour profile in a single vectorized pass and are
bit-for-bit equal to mapping :func:`~repro.metrology.epe.measure_epe` /
:func:`~repro.metrology.epe.segment_epe` over the batch;
:func:`~repro.metrology.pvband.pvband_area_batch` does the same for PV
bands.  ``OPCEnvironment.evaluate_batch`` / ``step_batch``, population
RL training, and the suite verifier (:mod:`repro.eval.runner`) all
follow this two-call pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.constants import (
    DEFOCUS_NM,
    DOSE_VARIATION,
    PIXEL_NM,
    RESIST_THRESHOLD,
)
from repro.errors import LithoError
from repro.geometry.layout import Clip
from repro.geometry.mask_edit import MaskState
from repro.geometry.polygon import Polygon
from repro.geometry.raster import Grid, rasterize
from repro.litho.fft import resolve_fft_backend
from repro.litho.kernels import OpticalKernelSet, build_kernel_set
from repro.litho.process import ProcessCorner, standard_corners
from repro.litho.resist import printed_image
from repro.litho.source import SourceSpec
from repro.litho.spectral import SpectralConvolver


@dataclass(frozen=True)
class LithoConfig:
    """Simulator settings (paper-scale defaults, all overridable)."""

    pixel_nm: float = PIXEL_NM
    threshold: float = RESIST_THRESHOLD
    defocus_nm: float = DEFOCUS_NM
    dose_variation: float = DOSE_VARIATION
    source: SourceSpec = SourceSpec()
    period_nm: float = 2048.0
    ambit_nm: float = 512.0
    max_kernels: int = 12
    energy_fraction: float = 0.995
    fft_backend: str = "auto"
    """Transform library for every FFT in the simulate path: ``"numpy"``,
    ``"scipy"`` (threaded) or ``"auto"`` (see :mod:`repro.litho.fft`)."""
    fft_workers: int | None = None
    """Thread count for the scipy backend; ``None`` uses every core."""

    def __post_init__(self) -> None:
        if self.pixel_nm <= 0:
            raise LithoError("pixel_nm must be positive")
        if self.ambit_nm > self.period_nm:
            raise LithoError("kernel ambit cannot exceed the lattice period")
        resolve_fft_backend(self.fft_backend, self.fft_workers)


@dataclass
class LithoResult:
    """One full simulation: aerial image plus printed images per corner."""

    grid: Grid
    aerial: np.ndarray
    aerial_defocus: np.ndarray
    printed: dict[str, np.ndarray]

    @property
    def nominal(self) -> np.ndarray:
        return self.printed["nominal"]

    @property
    def inner(self) -> np.ndarray:
        return self.printed["inner"]

    @property
    def outer(self) -> np.ndarray:
        return self.printed["outer"]


@dataclass
class LithographySimulator:
    """Reusable Hopkins/SOCS simulator for one optical configuration."""

    config: LithoConfig = field(default_factory=LithoConfig)
    _kernel_sets: dict[float, OpticalKernelSet] = field(
        default_factory=dict, repr=False
    )
    _spectral: dict[float, SpectralConvolver] = field(
        default_factory=dict, repr=False
    )

    def kernel_set(self, defocus_nm: float = 0.0) -> OpticalKernelSet:
        """Kernels for one focus condition (built once, then cached)."""
        if defocus_nm not in self._kernel_sets:
            cfg = self.config
            self._kernel_sets[defocus_nm] = build_kernel_set(
                pixel_nm=cfg.pixel_nm,
                defocus_nm=defocus_nm,
                source=cfg.source,
                period_nm=cfg.period_nm,
                ambit_nm=cfg.ambit_nm,
                max_kernels=cfg.max_kernels,
                energy_fraction=cfg.energy_fraction,
                fft_backend=cfg.fft_backend,
                fft_workers=cfg.fft_workers,
            )
        return self._kernel_sets[defocus_nm]

    def spectral_convolver(self, defocus_nm: float = 0.0) -> SpectralConvolver:
        """Band-limited screening engine for one focus condition (cached)."""
        if defocus_nm not in self._spectral:
            self._spectral[defocus_nm] = SpectralConvolver(
                self.kernel_set(defocus_nm)
            )
        return self._spectral[defocus_nm]

    def corners(self) -> tuple[ProcessCorner, ProcessCorner, ProcessCorner]:
        return standard_corners(self.config.defocus_nm, self.config.dose_variation)

    # -- grid / raster helpers ----------------------------------------------
    def grid_for(self, clip: Clip) -> Grid:
        return Grid.for_window(clip.bbox, self.config.pixel_nm)

    def rasterize_mask(
        self, polygons: Iterable[Polygon], grid: Grid
    ) -> np.ndarray:
        return rasterize(polygons, grid)

    # -- simulation -----------------------------------------------------------
    def aerial(self, mask: np.ndarray, defocus_nm: float = 0.0) -> np.ndarray:
        """Aerial intensity of a rasterized mask at one focus setting."""
        return self.kernel_set(defocus_nm).convolve_intensity(mask)

    def simulate_mask(self, mask: np.ndarray, grid: Grid) -> LithoResult:
        """Full corner sweep for a rasterized mask."""
        nominal, inner, outer = self.corners()
        aerial_focus = self.aerial(mask, defocus_nm=nominal.defocus_nm)
        aerial_defocus = self.aerial(mask, defocus_nm=inner.defocus_nm)
        printed = {
            "nominal": printed_image(
                aerial_focus, self.config.threshold, nominal.dose
            ),
            "inner": printed_image(aerial_defocus, self.config.threshold, inner.dose),
            "outer": printed_image(aerial_defocus, self.config.threshold, outer.dose),
        }
        return LithoResult(
            grid=grid,
            aerial=aerial_focus,
            aerial_defocus=aerial_defocus,
            printed=printed,
        )

    def simulate_batch(
        self,
        masks: Sequence[np.ndarray] | np.ndarray,
        grid: Grid,
        mode: str = "exact",
    ) -> list[LithoResult]:
        """Full corner sweep for a stack of same-shape rasterized masks.

        ``masks`` is a ``(B, H, W)`` array or a sequence of B ``(H, W)``
        masks on ``grid``.  One shared forward FFT feeds both the focus
        and defocus kernel sets, so all three process corners come from a
        single batched transform pipeline.  With ``mode="exact"`` (the
        default) the returned results are bit-for-bit identical to B
        calls of :meth:`simulate_mask`; ``mode="spectral"`` swaps in the
        band-limited screening engine (~1e-3 intensity error, several
        times faster — for candidate ranking only).
        """
        if mode not in ("exact", "spectral"):
            raise LithoError(
                f"unknown simulation mode {mode!r}; choose 'exact' or 'spectral'"
            )
        if isinstance(masks, np.ndarray):
            stack = masks
        else:
            items = list(masks)
            if not items:
                raise LithoError("mask batch is empty")
            try:
                stack = np.stack(items)
            except ValueError as exc:
                raise LithoError(
                    f"masks in a batch must share one shape: {exc}"
                ) from None
        nominal, inner, outer = self.corners()
        focus_set = self.kernel_set(nominal.defocus_nm)
        defocus_set = self.kernel_set(inner.defocus_nm)
        stack = focus_set.validate_mask_batch(stack)
        if stack.shape[1:] != grid.shape:
            raise LithoError(
                f"mask batch shape {stack.shape[1:]} does not match grid "
                f"{grid.shape}"
            )
        mask_ffts = focus_set.fft.fft2(stack, axes=(-2, -1))
        if mode == "spectral":
            aerial_focus = self.spectral_convolver(
                nominal.defocus_nm
            ).intensity_from_mask_ffts(mask_ffts)
            aerial_defocus = self.spectral_convolver(
                inner.defocus_nm
            ).intensity_from_mask_ffts(mask_ffts)
        else:
            aerial_focus = focus_set.intensity_from_mask_ffts(mask_ffts)
            aerial_defocus = defocus_set.intensity_from_mask_ffts(mask_ffts)
        threshold = self.config.threshold
        results = []
        for focus_b, defocus_b in zip(aerial_focus, aerial_defocus):
            results.append(
                LithoResult(
                    grid=grid,
                    aerial=focus_b,
                    aerial_defocus=defocus_b,
                    printed={
                        "nominal": printed_image(focus_b, threshold, nominal.dose),
                        "inner": printed_image(defocus_b, threshold, inner.dose),
                        "outer": printed_image(defocus_b, threshold, outer.dose),
                    },
                )
            )
        return results

    def simulate_polygons(
        self, polygons: Iterable[Polygon], grid: Grid
    ) -> LithoResult:
        """Rasterize + simulate through the batched engine (B = 1).

        Same results as :meth:`simulate_mask` bit-for-bit, but all three
        corners share one forward FFT — this is the per-iteration corner
        sweep used by every OPC engine via :meth:`simulate_state`.
        """
        mask = self.rasterize_mask(polygons, grid)
        return self.simulate_batch(mask[None], grid)[0]

    def simulate_state(self, state: MaskState, grid: Grid | None = None) -> LithoResult:
        """Simulate the current mask of an OPC state."""
        if grid is None:
            grid = self.grid_for(state.clip)
        return self.simulate_polygons(state.mask_polygons(), grid)
