"""Lithography simulator facade.

:class:`LithographySimulator` is what the OPC engines talk to: it turns a
mask (polygons or a :class:`~repro.geometry.mask_edit.MaskState`) into
aerial and printed images at every process corner, reusing optical kernels
and kernel FFTs across the thousands of evaluations an OPC run makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.constants import (
    DEFOCUS_NM,
    DOSE_VARIATION,
    PIXEL_NM,
    RESIST_THRESHOLD,
)
from repro.errors import LithoError
from repro.geometry.layout import Clip
from repro.geometry.mask_edit import MaskState
from repro.geometry.polygon import Polygon
from repro.geometry.raster import Grid, rasterize
from repro.litho.kernels import OpticalKernelSet, build_kernel_set
from repro.litho.process import ProcessCorner, standard_corners
from repro.litho.resist import printed_image
from repro.litho.source import SourceSpec


@dataclass(frozen=True)
class LithoConfig:
    """Simulator settings (paper-scale defaults, all overridable)."""

    pixel_nm: float = PIXEL_NM
    threshold: float = RESIST_THRESHOLD
    defocus_nm: float = DEFOCUS_NM
    dose_variation: float = DOSE_VARIATION
    source: SourceSpec = SourceSpec()
    period_nm: float = 2048.0
    ambit_nm: float = 512.0
    max_kernels: int = 12
    energy_fraction: float = 0.995

    def __post_init__(self) -> None:
        if self.pixel_nm <= 0:
            raise LithoError("pixel_nm must be positive")
        if self.ambit_nm > self.period_nm:
            raise LithoError("kernel ambit cannot exceed the lattice period")


@dataclass
class LithoResult:
    """One full simulation: aerial image plus printed images per corner."""

    grid: Grid
    aerial: np.ndarray
    aerial_defocus: np.ndarray
    printed: dict[str, np.ndarray]

    @property
    def nominal(self) -> np.ndarray:
        return self.printed["nominal"]

    @property
    def inner(self) -> np.ndarray:
        return self.printed["inner"]

    @property
    def outer(self) -> np.ndarray:
        return self.printed["outer"]


@dataclass
class LithographySimulator:
    """Reusable Hopkins/SOCS simulator for one optical configuration."""

    config: LithoConfig = field(default_factory=LithoConfig)
    _kernel_sets: dict[float, OpticalKernelSet] = field(
        default_factory=dict, repr=False
    )

    def kernel_set(self, defocus_nm: float = 0.0) -> OpticalKernelSet:
        """Kernels for one focus condition (built once, then cached)."""
        if defocus_nm not in self._kernel_sets:
            cfg = self.config
            self._kernel_sets[defocus_nm] = build_kernel_set(
                pixel_nm=cfg.pixel_nm,
                defocus_nm=defocus_nm,
                source=cfg.source,
                period_nm=cfg.period_nm,
                ambit_nm=cfg.ambit_nm,
                max_kernels=cfg.max_kernels,
                energy_fraction=cfg.energy_fraction,
            )
        return self._kernel_sets[defocus_nm]

    def corners(self) -> tuple[ProcessCorner, ProcessCorner, ProcessCorner]:
        return standard_corners(self.config.defocus_nm, self.config.dose_variation)

    # -- grid / raster helpers ----------------------------------------------
    def grid_for(self, clip: Clip) -> Grid:
        return Grid.for_window(clip.bbox, self.config.pixel_nm)

    def rasterize_mask(
        self, polygons: Iterable[Polygon], grid: Grid
    ) -> np.ndarray:
        return rasterize(polygons, grid)

    # -- simulation -----------------------------------------------------------
    def aerial(self, mask: np.ndarray, defocus_nm: float = 0.0) -> np.ndarray:
        """Aerial intensity of a rasterized mask at one focus setting."""
        return self.kernel_set(defocus_nm).convolve_intensity(mask)

    def simulate_mask(self, mask: np.ndarray, grid: Grid) -> LithoResult:
        """Full corner sweep for a rasterized mask."""
        nominal, inner, outer = self.corners()
        aerial_focus = self.aerial(mask, defocus_nm=nominal.defocus_nm)
        aerial_defocus = self.aerial(mask, defocus_nm=inner.defocus_nm)
        printed = {
            "nominal": printed_image(
                aerial_focus, self.config.threshold, nominal.dose
            ),
            "inner": printed_image(aerial_defocus, self.config.threshold, inner.dose),
            "outer": printed_image(aerial_defocus, self.config.threshold, outer.dose),
        }
        return LithoResult(
            grid=grid,
            aerial=aerial_focus,
            aerial_defocus=aerial_defocus,
            printed=printed,
        )

    def simulate_polygons(
        self, polygons: Iterable[Polygon], grid: Grid
    ) -> LithoResult:
        return self.simulate_mask(self.rasterize_mask(polygons, grid), grid)

    def simulate_state(self, state: MaskState, grid: Grid | None = None) -> LithoResult:
        """Simulate the current mask of an OPC state."""
        if grid is None:
            grid = self.grid_for(state.clip)
        return self.simulate_polygons(state.mask_polygons(), grid)
