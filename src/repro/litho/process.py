"""Process-variation corners.

The PV band is measured between the extreme printed contours across the
process window.  Following the ICCAD-13 convention used by the OPC
literature, the outermost contour comes from the defocused, over-dosed
corner and the innermost from the defocused, under-dosed corner; EPE is
always measured at the nominal corner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import DEFOCUS_NM, DOSE_VARIATION
from repro.errors import LithoError


@dataclass(frozen=True)
class ProcessCorner:
    """One (defocus, dose) process condition."""

    name: str
    defocus_nm: float
    dose: float

    def __post_init__(self) -> None:
        if self.dose <= 0:
            raise LithoError(f"corner {self.name!r}: dose must be positive")


def nominal_corner() -> ProcessCorner:
    return ProcessCorner(name="nominal", defocus_nm=0.0, dose=1.0)


def standard_corners(
    defocus_nm: float = DEFOCUS_NM, dose_variation: float = DOSE_VARIATION
) -> tuple[ProcessCorner, ProcessCorner, ProcessCorner]:
    """(nominal, inner, outer) corners of the process window."""
    if not 0 < dose_variation < 1:
        raise LithoError(f"dose variation must be in (0, 1), got {dose_variation}")
    return (
        nominal_corner(),
        ProcessCorner(name="inner", defocus_nm=defocus_nm, dose=1.0 - dose_variation),
        ProcessCorner(name="outer", defocus_nm=defocus_nm, dose=1.0 + dose_variation),
    )
