"""Optical kernel sets: cropped SOCS kernels ready for fast FFT imaging.

A :class:`OpticalKernelSet` owns the spatial kernels for one process
condition (focus setting), normalized so that an open-frame (all-clear)
mask images to intensity exactly 1.0.  Kernel FFTs are cached per mask
shape (bounded LRU, shared by the single-mask and batched paths) so
repeated simulations during OPC iterations cost one mask FFT plus one
inverse FFT per kernel.

Two convolution entry points are exposed:

* :meth:`OpticalKernelSet.convolve_intensity` — the single-mask reference
  path, unchanged semantics;
* :meth:`OpticalKernelSet.convolve_intensity_batch` — ``(B, H, W)`` mask
  stacks through one vectorized ``np.fft.fft2``/``ifft2`` per kernel.
  The per-kernel accumulation order matches the reference path exactly,
  so batched results are bit-for-bit identical to per-mask results.

Lower-level spectrum helpers (:meth:`~OpticalKernelSet.kernel_spectra`,
:meth:`~OpticalKernelSet.fields_from_mask_fft`,
:meth:`~OpticalKernelSet.intensity_from_mask_ffts`) let callers that
already hold mask spectra — the simulator's shared-forward corner sweep,
the pixel-ILT gradient loop — reuse the cached kernel FFTs without
recomputing forward transforms.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.constants import NUMERICAL_APERTURE, WAVELENGTH_NM
from repro.errors import LithoError
from repro.litho.fft import FFTBackend, resolve_fft_backend
from repro.litho.source import SourceSpec
from repro.litho.tcc import build_tcc, socs_kernels


@dataclass
class OpticalKernelSet:
    """SOCS kernels for one focus condition.

    Attributes:
        weights: ``(K,)`` kernel weights (TCC eigenvalues, rescaled).
        kernels: ``(K, c, c)`` complex spatial kernels, centre at ``c // 2``.
        pixel_nm: Raster pitch the kernels are sampled at.
        defocus_nm: Focus condition these kernels represent.
        cutoff_per_nm: Coherent spatial-frequency cutoff of the imaging
            system, ``(1 + sigma_out) * NA / lambda`` in cycles/nm, or
            ``None`` for kernel sets loaded from legacy files.  Consumed
            by the band-limited screening engine
            (:mod:`repro.litho.spectral`).
        fft_cache_capacity: Maximum number of distinct grid shapes whose
            kernel FFTs are kept resident (least-recently-used eviction).
        fft_backend: Transform library (see :mod:`repro.litho.fft`);
            ``"auto"`` picks threaded scipy on multi-core hosts and numpy
            otherwise.  Both convolution paths share the one backend, so
            batch-vs-single parity is bit-for-bit whichever is chosen.
        fft_workers: Thread count for the scipy backend (``None`` = all
            cores).
    """

    weights: np.ndarray
    kernels: np.ndarray
    pixel_nm: float
    defocus_nm: float
    cutoff_per_nm: float | None = None
    fft_cache_capacity: int = 6
    fft_backend: str = "auto"
    fft_workers: int | None = None
    _fft_cache: "OrderedDict[tuple[int, int], np.ndarray]" = field(
        default_factory=OrderedDict, repr=False
    )

    def __post_init__(self) -> None:
        if self.kernels.ndim != 3 or self.kernels.shape[1] != self.kernels.shape[2]:
            raise LithoError(f"bad kernel array shape {self.kernels.shape}")
        if len(self.weights) != len(self.kernels):
            raise LithoError("weights / kernels length mismatch")
        if self.fft_cache_capacity < 1:
            raise LithoError(
                f"fft_cache_capacity must be >= 1, got {self.fft_cache_capacity}"
            )
        # Resolve eagerly so a bad backend name fails at construction.
        resolve_fft_backend(self.fft_backend, self.fft_workers)

    @property
    def fft(self) -> FFTBackend:
        """The resolved transform backend shared by every entry point."""
        return resolve_fft_backend(self.fft_backend, self.fft_workers)

    @property
    def count(self) -> int:
        return len(self.weights)

    @property
    def ambit_px(self) -> int:
        return self.kernels.shape[1]

    def convolve_intensity(self, mask: np.ndarray) -> np.ndarray:
        """Aerial intensity ``sum_k w_k |h_k * mask|^2`` (circular conv).

        ``mask`` is a 2-D real array (binary masks or graytone); it must be
        at least as large as the kernel ambit in both dimensions.
        """
        if mask.ndim != 2:
            raise LithoError(f"mask must be 2-D, got shape {mask.shape}")
        if min(mask.shape) < self.ambit_px:
            raise LithoError(
                f"mask {mask.shape} smaller than kernel ambit {self.ambit_px}"
            )
        kernel_ffts = self._kernel_ffts(mask.shape)
        fft = self.fft
        mask_fft = fft.fft2(mask.astype(np.float64), axes=(-2, -1))
        intensity = np.zeros(mask.shape, dtype=np.float64)
        for weight, kernel_fft in zip(self.weights, kernel_ffts):
            field_k = fft.ifft2(mask_fft * kernel_fft, axes=(-2, -1))
            intensity += weight * (field_k.real**2 + field_k.imag**2)
        return intensity

    def validate_mask_batch(self, masks: np.ndarray) -> np.ndarray:
        """Check and coerce a ``(B, H, W)`` stack of rasterized masks."""
        stack = np.asarray(masks)
        if stack.ndim != 3:
            raise LithoError(
                f"mask batch must be 3-D (B, H, W), got shape {stack.shape}"
            )
        if stack.shape[0] == 0:
            raise LithoError("mask batch is empty")
        if min(stack.shape[1:]) < self.ambit_px:
            raise LithoError(
                f"batch masks {stack.shape[1:]} smaller than kernel ambit "
                f"{self.ambit_px}"
            )
        return stack.astype(np.float64, copy=False)

    def convolve_intensity_batch(self, masks: np.ndarray) -> np.ndarray:
        """Aerial intensities of a ``(B, H, W)`` mask stack in one sweep.

        One vectorized forward FFT over the batch axis plus one batched
        inverse FFT per kernel; bit-for-bit identical to calling
        :meth:`convolve_intensity` on each mask (same transform algorithm
        and the same per-kernel accumulation order).
        """
        stack = self.validate_mask_batch(masks)
        mask_ffts = self.fft.fft2(stack, axes=(-2, -1))
        return self.intensity_from_mask_ffts(mask_ffts)

    def intensity_from_mask_ffts(self, mask_ffts: np.ndarray) -> np.ndarray:
        """Intensities from precomputed ``(B, H, W)`` mask spectra.

        Lets callers share one forward FFT across several kernel sets
        (the simulator's focus + defocus corner sweep): ``fft2`` of the
        same mask is deterministic, so sharing it preserves bit-for-bit
        equality with the single-mask path.
        """
        if mask_ffts.ndim != 3:
            raise LithoError(
                f"mask spectra must be 3-D (B, H, W), got shape {mask_ffts.shape}"
            )
        kernel_ffts = self.kernel_spectra(mask_ffts.shape[-2:])
        fft = self.fft
        intensity = np.zeros(mask_ffts.shape, dtype=np.float64)
        if fft.name == "scipy" and fft.workers > 1 and mask_ffts.shape[0] > 1:
            # Threaded backend: one (B, H, W) inverse transform per kernel
            # lets the workers split the batch axis.
            for weight, kernel_fft in zip(self.weights, kernel_ffts):
                field_k = fft.ifft2(mask_ffts * kernel_fft, axes=(-2, -1))
                term = field_k.real**2
                term += field_k.imag**2
                term *= weight
                intensity += term
            return intensity
        # Per-mask inner loop: 2-D transforms on contiguous slices are
        # faster than one (B, H, W) batched transform on a single core
        # (smaller working set) and bit-for-bit identical to it.
        for mask_fft, out in zip(mask_ffts, intensity):
            for weight, kernel_fft in zip(self.weights, kernel_ffts):
                field_k = fft.ifft2(mask_fft * kernel_fft, axes=(-2, -1))
                term = field_k.real**2
                term += field_k.imag**2
                term *= weight
                out += term
        return intensity

    def fields_from_mask_fft(self, mask_fft: np.ndarray) -> np.ndarray:
        """Per-kernel coherent fields ``(K, H, W)`` for one mask spectrum.

        Used by gradient-based optimizers (pixel ILT) that need the
        fields themselves, not just the summed intensity.
        """
        if mask_fft.ndim != 2:
            raise LithoError(
                f"mask spectrum must be 2-D, got shape {mask_fft.shape}"
            )
        kernel_ffts = self.kernel_spectra(mask_fft.shape)
        return self.fft.ifft2(mask_fft[None] * kernel_ffts, axes=(-2, -1))

    def kernel_spectra(self, shape: tuple[int, int]) -> np.ndarray:
        """Cached ``(K, H, W)`` kernel FFTs for a grid shape (read-only)."""
        if len(shape) != 2 or min(shape) < self.ambit_px:
            raise LithoError(
                f"grid {shape} cannot hold kernels with ambit {self.ambit_px}"
            )
        return self._kernel_ffts((int(shape[0]), int(shape[1])))

    def _kernel_ffts(self, shape: tuple[int, int]) -> np.ndarray:
        cached = self._fft_cache.get(shape)
        if cached is not None:
            self._fft_cache.move_to_end(shape)
            return cached
        c = self.ambit_px
        half = c // 2
        stack = np.empty((self.count, *shape), dtype=np.complex128)
        for k in range(self.count):
            padded = np.zeros(shape, dtype=np.complex128)
            padded[:c, :c] = self.kernels[k]
            # Centre the kernel on pixel (0, 0) for circular convolution.
            padded = np.roll(padded, (-half, -half), axis=(0, 1))
            stack[k] = self.fft.fft2(padded, axes=(-2, -1))
        self._fft_cache[shape] = stack
        while len(self._fft_cache) > self.fft_cache_capacity:
            self._fft_cache.popitem(last=False)
        return stack

    # -- persistence --------------------------------------------------------
    def save(self, path: str) -> None:
        extras = {}
        if self.cutoff_per_nm is not None:
            extras["cutoff_per_nm"] = self.cutoff_per_nm
        np.savez_compressed(
            path,
            weights=self.weights,
            kernels=self.kernels,
            pixel_nm=self.pixel_nm,
            defocus_nm=self.defocus_nm,
            **extras,
        )

    @classmethod
    def load(cls, path: str) -> "OpticalKernelSet":
        data = np.load(path)
        cutoff = (
            float(data["cutoff_per_nm"]) if "cutoff_per_nm" in data else None
        )
        return cls(
            weights=data["weights"],
            kernels=data["kernels"],
            pixel_nm=float(data["pixel_nm"]),
            defocus_nm=float(data["defocus_nm"]),
            cutoff_per_nm=cutoff,
        )


@lru_cache(maxsize=8)
def build_kernel_set(
    pixel_nm: float = 4.0,
    defocus_nm: float = 0.0,
    source: SourceSpec = SourceSpec(),
    period_nm: float = 2048.0,
    ambit_nm: float = 512.0,
    max_kernels: int = 12,
    energy_fraction: float = 0.995,
    wavelength_nm: float = WAVELENGTH_NM,
    numerical_aperture: float = NUMERICAL_APERTURE,
    fft_backend: str = "auto",
    fft_workers: int | None = None,
) -> OpticalKernelSet:
    """Build (and cache) an :class:`OpticalKernelSet` for one focus setting.

    The TCC is computed on a lattice with period ``period_nm``, kernels are
    cropped to ``ambit_nm`` (they decay over a few hundred nm), and the set
    is rescaled so an open-frame mask images to intensity exactly 1.
    """
    tcc = build_tcc(
        source,
        period_nm=period_nm,
        defocus_nm=defocus_nm,
        wavelength_nm=wavelength_nm,
        numerical_aperture=numerical_aperture,
    )
    weights, full_kernels = socs_kernels(
        tcc, pixel_nm, max_kernels=max_kernels, energy_fraction=energy_fraction
    )

    n = full_kernels.shape[1]
    crop = int(round(ambit_nm / pixel_nm)) | 1  # odd size keeps a centre pixel
    crop = min(crop, n)
    lo = (n - crop) // 2
    kernels = full_kernels[:, lo : lo + crop, lo : lo + crop].copy()

    sums = kernels.sum(axis=(1, 2))
    open_frame = float(np.sum(weights * np.abs(sums) ** 2))
    if open_frame <= 0:
        raise LithoError("kernel set images an open frame to zero intensity")
    weights = weights / open_frame

    return OpticalKernelSet(
        weights=weights,
        kernels=kernels,
        pixel_nm=pixel_nm,
        defocus_nm=defocus_nm,
        cutoff_per_nm=(1.0 + source.sigma_out) * numerical_aperture
        / wavelength_nm,
        fft_backend=fft_backend,
        fft_workers=fft_workers,
    )
