"""Optical kernel sets: cropped SOCS kernels ready for fast FFT imaging.

A :class:`OpticalKernelSet` owns the spatial kernels for one process
condition (focus setting), normalized so that an open-frame (all-clear)
mask images to intensity exactly 1.0.  Kernel FFTs are cached per mask
shape so repeated simulations during OPC iterations cost one mask FFT plus
one inverse FFT per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.constants import NUMERICAL_APERTURE, WAVELENGTH_NM
from repro.errors import LithoError
from repro.litho.source import SourceSpec
from repro.litho.tcc import build_tcc, socs_kernels


@dataclass
class OpticalKernelSet:
    """SOCS kernels for one focus condition.

    Attributes:
        weights: ``(K,)`` kernel weights (TCC eigenvalues, rescaled).
        kernels: ``(K, c, c)`` complex spatial kernels, centre at ``c // 2``.
        pixel_nm: Raster pitch the kernels are sampled at.
        defocus_nm: Focus condition these kernels represent.
    """

    weights: np.ndarray
    kernels: np.ndarray
    pixel_nm: float
    defocus_nm: float
    _fft_cache: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.kernels.ndim != 3 or self.kernels.shape[1] != self.kernels.shape[2]:
            raise LithoError(f"bad kernel array shape {self.kernels.shape}")
        if len(self.weights) != len(self.kernels):
            raise LithoError("weights / kernels length mismatch")

    @property
    def count(self) -> int:
        return len(self.weights)

    @property
    def ambit_px(self) -> int:
        return self.kernels.shape[1]

    def convolve_intensity(self, mask: np.ndarray) -> np.ndarray:
        """Aerial intensity ``sum_k w_k |h_k * mask|^2`` (circular conv).

        ``mask`` is a 2-D real array (binary masks or graytone); it must be
        at least as large as the kernel ambit in both dimensions.
        """
        if mask.ndim != 2:
            raise LithoError(f"mask must be 2-D, got shape {mask.shape}")
        if min(mask.shape) < self.ambit_px:
            raise LithoError(
                f"mask {mask.shape} smaller than kernel ambit {self.ambit_px}"
            )
        kernel_ffts = self._kernel_ffts(mask.shape)
        mask_fft = np.fft.fft2(mask.astype(np.float64))
        intensity = np.zeros(mask.shape, dtype=np.float64)
        for weight, kernel_fft in zip(self.weights, kernel_ffts):
            field_k = np.fft.ifft2(mask_fft * kernel_fft)
            intensity += weight * (field_k.real**2 + field_k.imag**2)
        return intensity

    def _kernel_ffts(self, shape: tuple[int, int]) -> np.ndarray:
        cached = self._fft_cache.get(shape)
        if cached is None:
            c = self.ambit_px
            half = c // 2
            stack = np.empty((self.count, *shape), dtype=np.complex128)
            for k in range(self.count):
                padded = np.zeros(shape, dtype=np.complex128)
                padded[:c, :c] = self.kernels[k]
                # Centre the kernel on pixel (0, 0) for circular convolution.
                padded = np.roll(padded, (-half, -half), axis=(0, 1))
                stack[k] = np.fft.fft2(padded)
            self._fft_cache[shape] = stack
            cached = stack
        return cached

    # -- persistence --------------------------------------------------------
    def save(self, path: str) -> None:
        np.savez_compressed(
            path,
            weights=self.weights,
            kernels=self.kernels,
            pixel_nm=self.pixel_nm,
            defocus_nm=self.defocus_nm,
        )

    @classmethod
    def load(cls, path: str) -> "OpticalKernelSet":
        data = np.load(path)
        return cls(
            weights=data["weights"],
            kernels=data["kernels"],
            pixel_nm=float(data["pixel_nm"]),
            defocus_nm=float(data["defocus_nm"]),
        )


@lru_cache(maxsize=8)
def build_kernel_set(
    pixel_nm: float = 4.0,
    defocus_nm: float = 0.0,
    source: SourceSpec = SourceSpec(),
    period_nm: float = 2048.0,
    ambit_nm: float = 512.0,
    max_kernels: int = 12,
    energy_fraction: float = 0.995,
    wavelength_nm: float = WAVELENGTH_NM,
    numerical_aperture: float = NUMERICAL_APERTURE,
) -> OpticalKernelSet:
    """Build (and cache) an :class:`OpticalKernelSet` for one focus setting.

    The TCC is computed on a lattice with period ``period_nm``, kernels are
    cropped to ``ambit_nm`` (they decay over a few hundred nm), and the set
    is rescaled so an open-frame mask images to intensity exactly 1.
    """
    tcc = build_tcc(
        source,
        period_nm=period_nm,
        defocus_nm=defocus_nm,
        wavelength_nm=wavelength_nm,
        numerical_aperture=numerical_aperture,
    )
    weights, full_kernels = socs_kernels(
        tcc, pixel_nm, max_kernels=max_kernels, energy_fraction=energy_fraction
    )

    n = full_kernels.shape[1]
    crop = int(round(ambit_nm / pixel_nm)) | 1  # odd size keeps a centre pixel
    crop = min(crop, n)
    lo = (n - crop) // 2
    kernels = full_kernels[:, lo : lo + crop, lo : lo + crop].copy()

    sums = kernels.sum(axis=(1, 2))
    open_frame = float(np.sum(weights * np.abs(sums) ** 2))
    if open_frame <= 0:
        raise LithoError("kernel set images an open frame to zero intensity")
    weights = weights / open_frame

    return OpticalKernelSet(
        weights=weights,
        kernels=kernels,
        pixel_nm=pixel_nm,
        defocus_nm=defocus_nm,
    )
