"""Optical kernel sets: frequency-native, band-limited SOCS spectra.

A :class:`OpticalKernelSet` owns the optics of one process condition
(focus setting).  Its primary representation is *per-grid band spectra*
(:class:`GridBandSpectra`): for every raster shape it simulates on, the
TCC is built directly on that grid's DFT frequency lattice
(:func:`repro.litho.tcc.build_tcc_grid`) and eigendecomposed into SOCS
kernel spectra that are exactly zero outside the pupil band.  Because no
spatial crop ever happens, the compact pupil-band subgrid engine is
*exact* — the former screening-vs-reference accuracy split is gone.

Convolution entry points:

* :meth:`OpticalKernelSet.convolve_intensity` — the single-mask spatial
  reference path: full-grid per-kernel inverse FFTs over the scattered
  band spectra.  Everything else is tested against it.
* :meth:`OpticalKernelSet.convolve_intensity_batch` /
  :meth:`~OpticalKernelSet.intensity_from_mask_ffts` — the unified
  engine for ``(B, H, W)`` stacks: gather the pupil-band mask
  coefficients, run the per-kernel inverse FFTs on an alias-free
  ``m x m`` subgrid (``m >= 4b + 1`` so the *squared* field, band radius
  ``2b``, folds nowhere), and resample the intensity to the full grid
  with one zero-padded FFT interpolation.  Exact to FFT round-off
  (<= 1e-9 absolute intensity) against the reference path, at what used
  to be screening speed; it falls back to the full-grid loop when the
  band covers the grid.

Lower-level helpers (:meth:`~OpticalKernelSet.kernel_spectra`,
:meth:`~OpticalKernelSet.weights_for`,
:meth:`~OpticalKernelSet.fields_from_mask_fft`) expose the cached
full-grid transfer functions to callers that hold mask spectra already —
the simulator's shared-forward corner sweep and the pixel-ILT gradient
loop.

Spatial kernels still exist, but only as a *derived* artifact: the
canonical square-lattice materialization (:meth:`spatial_kernels`) feeds
persistence and visualization, and kernel sets loaded from legacy
``.npz`` files (spatial arrays only) keep simulating through the
full-grid path with their padded-kernel FFTs cached per
``(shape, fft backend)`` — the backend is part of the cache key so one
set shared across configs can never serve spectra computed by another
backend's transform.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.constants import NUMERICAL_APERTURE, WAVELENGTH_NM
from repro.errors import LithoError
from repro.backend import ArrayBackend, next_fast_len, resolve_backend
from repro.litho.source import SourceSpec
from repro.litho.tcc import build_tcc, build_tcc_grid, socs_kernels, socs_spectra


def _band_indices(n: int, radius: int) -> np.ndarray:
    """Indices of the centred frequency band of ``radius`` on an n-grid."""
    return np.r_[0 : radius + 1, n - radius : n]


_HOST_BACKEND_ARGS = ("numpy", 1)
"""``resolve_backend`` arguments of the single-threaded host backend the
module-level helpers default to when no backend is passed — numerically
identical to the pre-array-API behavior (bare ``np.*`` calls)."""


def _host_backend() -> ArrayBackend:
    return resolve_backend(*_HOST_BACKEND_ARGS)


_PHASE_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_PHASE_CACHE_CAPACITY = 32
_PHASE_LOCK = threading.Lock()
"""Module-level LRU of sparse-gather phase matrices.  Keyed by (grid
shape, band radii, pixel set, backend array identity), so every kernel
set sharing one optics geometry — the simulator's focus and defocus sets
in particular — reuses one matrix, and a device backend can never be
served a host-resident matrix (or vice versa); guarded because the
daemon's verifier thread races ``score_moves_epe`` callers."""


def _sparse_phase_matrix(
    shape: tuple[int, int],
    band: GridBandSpectra,
    rows: np.ndarray,
    cols: np.ndarray,
    backend: ArrayBackend,
):
    """Real-stacked inverse-DFT phase matrix for a fixed pixel set.

    Evaluating the zero-padded inverse FFT of ``_band_intensity`` at S
    chosen pixels is the direct DFT ``I[s] = Re(sum_f spec[f] *
    exp(2j pi (k_r r_s / H + k_c c_s / W))) * upscale / (H W)`` over the
    F = (4b0+1)(4b1+1) intensity-band frequencies.  The matrix is built
    separably (row phases x column phases) and returned *real-stacked* as
    ``(2F, S)`` — ``[[Re P], [-Im P]]`` — so the per-batch evaluation is
    one real GEMM of the ``[Re spec, Im spec]`` stack against it (half
    the FLOPs of the complex product, result already real).

    The matrix itself is built host-side in float64 on every backend
    (identical bits everywhere); what the cache stores is the
    backend-native copy — the host array itself for numpy/scipy, a
    device tensor for torch — keyed by the backend's array identity.
    """
    key = (
        shape,
        band.band,
        rows.tobytes(),
        cols.tobytes(),
        backend.array_identity,
    )
    with _PHASE_LOCK:
        cached = _PHASE_CACHE.get(key)
        if cached is not None:
            _PHASE_CACHE.move_to_end(key)
            return cached
    height, width = shape
    m0, m1 = band.subgrid
    k_rows = band.up_rows_dst.astype(np.float64)
    k_cols = band.up_cols_dst.astype(np.float64)
    phase_r = np.exp((2j * np.pi / height) * np.outer(k_rows, rows))
    phase_c = np.exp((2j * np.pi / width) * np.outer(k_cols, cols))
    # upscale / (H W) == 1 / (m0 m1): the resample gain times the
    # inverse-transform normalization.
    matrix = (phase_r[:, None, :] * phase_c[None, :, :]).reshape(
        len(k_rows) * len(k_cols), len(rows)
    ) / (m0 * m1)
    stacked = backend.to_device(
        np.concatenate([matrix.real, -matrix.imag], axis=0)
    )
    with _PHASE_LOCK:
        _PHASE_CACHE[key] = stacked
        while len(_PHASE_CACHE) > _PHASE_CACHE_CAPACITY:
            _PHASE_CACHE.popitem(last=False)
    return stacked


def _validate_pixel_set(
    shape: tuple[int, int], rows, cols
) -> tuple[np.ndarray, np.ndarray]:
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    cols = np.ascontiguousarray(cols, dtype=np.int64)
    if rows.ndim != 1 or rows.shape != cols.shape:
        raise LithoError(
            f"pixel rows {rows.shape} and cols {cols.shape} must be "
            "matching 1-D index arrays"
        )
    if len(rows) and (
        rows.min() < 0 or rows.max() >= shape[0]
        or cols.min() < 0 or cols.max() >= shape[1]
    ):
        raise LithoError(f"pixel indices fall outside the {shape} grid")
    return rows, cols


@dataclass(frozen=True)
class GridBandSpectra:
    """Band-limited SOCS spectra bound to one grid shape (source of truth).

    Attributes:
        shape: Full grid shape ``(H, W)`` the spectra convolve on.
        weights: ``(K,)`` kernel weights, rescaled so an open-frame mask
            images to intensity exactly 1.0 on this grid.
        band: Per-axis frequency index radii ``(b0, b1)`` of the pupil
            band; every kernel spectrum is exactly zero outside it.
        subgrid: Alias-free intensity subgrid ``(m0, m1)``
            (5-smooth, ``m >= 4b + 1``); equals ``shape`` when the band
            covers the grid.
        compact: Whether the subgrid is strictly smaller than the grid
            (i.e. the band engine actually saves work).
        sub_spectra: ``(K, m0, m1)`` kernel spectra scattered onto the
            subgrid, prescaled by ``(m0 * m1) / (H * W)`` so a subgrid
            inverse FFT of ``gathered_mask_fft * sub_spectra[k]`` yields
            the coherent field samples directly.
    """

    shape: tuple[int, int]
    weights: np.ndarray
    band: tuple[int, int]
    subgrid: tuple[int, int]
    compact: bool
    sub_spectra: np.ndarray
    rows_src: np.ndarray
    cols_src: np.ndarray
    rows_dst: np.ndarray
    cols_dst: np.ndarray
    up_rows_src: np.ndarray
    up_cols_src: np.ndarray
    up_rows_dst: np.ndarray
    up_cols_dst: np.ndarray

    @property
    def count(self) -> int:
        return len(self.weights)


def gather_band_rfft(
    mask_rffts,
    band: GridBandSpectra,
    backend: ArrayBackend | None = None,
):
    """Pupil-band gather from half-width ``rfft2`` spectra onto the subgrid.

    A real mask's spectrum is Hermitian, ``F[r, c] = conj(F[(-r) % H,
    (-c) % W])``, so the negative-column half of the pupil band is
    recovered from the stored positive columns with flipped rows.  Values
    match the full-spectrum gather to FFT round-off (the rfft sums in a
    different order — not bit-for-bit).  Public module-level entry point:
    the surrogate's feature pipeline shares it with the sparse EPE path.
    Runs on whatever arrays ``backend`` holds — spectra on a device stay
    on that device (default: host numpy, unchanged behavior).
    """
    backend = backend or _host_backend()
    idx = backend.index
    rows, _ = band.shape
    b1 = band.band[1]
    m0, m1 = band.subgrid
    rows_src = band.rows_src
    gathered = backend.empty(
        (mask_rffts.shape[0], len(rows_src), len(band.cols_src)),
        backend.complex128,
    )
    gathered[..., : b1 + 1] = mask_rffts[
        :, idx(rows_src[:, None]), idx(np.arange(b1 + 1)[None, :])
    ]
    flipped = (rows - rows_src) % rows
    gathered[..., b1 + 1 :] = mask_rffts[
        :, idx(flipped[:, None]), idx(np.arange(b1, 0, -1)[None, :])
    ].conj()
    sub = backend.zeros(
        (mask_rffts.shape[0], m0, m1), backend.complex128
    )
    sub[:, idx(band.rows_dst[:, None]), idx(band.cols_dst[None, :])] = gathered
    return sub


def band_limited_mask_subgrid(
    mask_rffts: np.ndarray, band: GridBandSpectra, fft
) -> np.ndarray:
    """Band-limited mask raster resampled onto the intensity subgrid.

    ``(B, H, W//2+1)`` rfft spectra map to real ``(B, m0, m1)`` rasters on
    the same physical 0..1 transmission scale as the full-grid mask: the
    subgrid inverse FFT carries a ``1/(m0 m1)`` normalization where the
    band coefficients came from an ``(H, W)`` forward transform, so the
    resample gain is ``(m0 m1)/(H W)``.  This is the surrogate model's
    input feature — everything the projection optics can see of the mask,
    at the cheapest alias-free resolution.
    """
    rows, cols = band.shape
    m0, m1 = band.subgrid
    sub = gather_band_rfft(mask_rffts, band, fft)
    return fft.to_host(
        fft.ifft2(sub, axes=(-2, -1)).real * ((m0 * m1) / (rows * cols))
    )


_BAND_DFT_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_BAND_DFT_CACHE_CAPACITY = 16
_BAND_DFT_LOCK = threading.Lock()
"""LRU of the separable direct-DFT matrices used by
:func:`band_limited_mask_subgrid_direct`; keyed per (grid shape, band,
backend array identity) — matrices are built host-side and cached as
backend-native copies, like the sparse phase matrices."""


def _band_dft_matrices(
    shape: tuple[int, int], band: GridBandSpectra, backend: ArrayBackend
) -> tuple:
    key = (shape, band.band, backend.array_identity)
    with _BAND_DFT_LOCK:
        cached = _BAND_DFT_CACHE.get(key)
        if cached is not None:
            _BAND_DFT_CACHE.move_to_end(key)
            return cached
    height, width = shape
    b0, b1 = band.band
    k_rows = _band_indices(height, b0).astype(np.float64)
    k_cols = _band_indices(width, b1).astype(np.float64)
    left = np.exp(
        (-2j * np.pi / height) * np.outer(k_rows, np.arange(height))
    )
    right = np.exp(
        (-2j * np.pi / width) * np.outer(np.arange(width), k_cols)
    )
    # Stack real/imag parts so the hot path runs real GEMMs only — a
    # complex @ real matmul would promote the whole mask stack to
    # complex128 first, which costs more than the arithmetic.
    right_ri = np.ascontiguousarray(
        np.concatenate([right.real, right.imag], axis=1)
    )
    pair = (backend.to_device(left), backend.to_device(right_ri))
    with _BAND_DFT_LOCK:
        _BAND_DFT_CACHE[key] = pair
        while len(_BAND_DFT_CACHE) > _BAND_DFT_CACHE_CAPACITY:
            _BAND_DFT_CACHE.popitem(last=False)
    return pair


def band_limited_mask_subgrid_direct(
    masks, band: GridBandSpectra, backend: ArrayBackend | None = None
):
    """:func:`band_limited_mask_subgrid` without the full-grid transform.

    The pupil band holds only ``(2 b0 + 1) x (2 b1 + 1)`` coefficients, so
    for screening-sized batches two small GEMMs against cached separable
    DFT matrices beat a ``(B, H, W)`` forward FFT that computes ``H W``
    coefficients and discards almost all of them.  Values agree with the
    FFT route to float round-off (same linear map, different summation
    order); the fast path of the surrogate screener.  Under a device
    backend the two GEMMs (and the result) live on the device.
    """
    backend = backend or _host_backend()
    masks = backend.asarray_f64(masks)
    left, right_ri = _band_dft_matrices(band.shape, band, backend)
    half = right_ri.shape[1] // 2
    mixed = masks @ right_ri
    col_re, col_im = mixed[..., :half], mixed[..., half:]
    coeffs = (left.real @ col_re - left.imag @ col_im) + 1j * (
        left.real @ col_im + left.imag @ col_re
    )
    return band_coeffs_to_subgrid(coeffs, band, backend)


def band_coeffs_to_subgrid(
    coeffs, band: GridBandSpectra, backend: ArrayBackend | None = None
):
    """Real-space subgrid signal of ``(B, 2 b0 + 1, b1 + 1)`` band coefficients.

    ``coeffs`` are full-grid DFT coefficients at the band frequencies (row
    order ``_band_indices``); the subgrid scatter plus a small inverse FFT
    reproduce :func:`band_limited_mask_subgrid`'s output scale.  Host
    backends keep the historical ``np.fft`` inverse transform (the
    subgrid is ~30x30 — threading never pays here, and the numpy route
    stays bit-for-bit with the seed history); the torch backend runs the
    inverse transform on its device and returns a device array.
    """
    backend = backend or _host_backend()
    m0, m1 = band.subgrid
    rows, cols = band.shape
    sub = backend.zeros((coeffs.shape[0], m0, m1), backend.complex128)
    idx = backend.index
    sub[:, idx(band.rows_dst[:, None]), idx(band.cols_dst[None, :])] = coeffs
    if backend.is_numpy:
        return np.fft.ifft2(sub, axes=(-2, -1)).real * (
            (m0 * m1) / (rows * cols)
        )
    return backend.ifft2(sub, axes=(-2, -1)).real * ((m0 * m1) / (rows * cols))


def band_values_at_pixels(
    intensity_sub,
    band: GridBandSpectra,
    rows: np.ndarray,
    cols: np.ndarray,
    fft: ArrayBackend,
) -> np.ndarray:
    """Full-grid pixel values of a band-limited subgrid intensity.

    ``(B, m0, m1)`` subgrid intensities (exact or surrogate-predicted)
    evaluate at S full-grid pixels via one forward FFT and one real GEMM
    against the cached phase matrix — the same direct DFT gather the
    sparse EPE path uses, factored out so surrogate predictions can ride
    the identical resample map as exact metrology.  ``intensity_sub``
    may be host or device resident; the FFT and GEMM run wherever the
    backend's arrays live, and the resolved ``(B, S)`` values always
    come back host-side (the metrology boundary).
    """
    idx = fft.index
    spectrum = fft.fft2(intensity_sub, axes=(-2, -1))
    spec_band = spectrum[
        :, idx(band.up_rows_src[:, None]), idx(band.up_cols_src[None, :])
    ].reshape(intensity_sub.shape[0], -1)
    stacked = fft.concat([spec_band.real, spec_band.imag], axis=1)
    return fft.to_host(
        stacked @ _sparse_phase_matrix(band.shape, band, rows, cols, fft)
    )


@dataclass
class OpticalKernelSet:
    """SOCS kernels for one focus condition.

    Two provenances share this class:

    * **Frequency-native** (``source`` given, the builder default): band
      spectra are constructed lazily per grid shape and are the source of
      truth; ``weights`` / ``kernels`` stay ``None`` and spatial kernels
      exist only through :meth:`spatial_kernels` (persistence /
      visualization).
    * **Legacy spatial** (``weights`` + ``kernels`` arrays given, e.g.
      loaded from an old ``.npz``): simulation runs through the full-grid
      path with padded-kernel FFTs; there is no band engine because a
      cropped kernel is not band-limited.

    Attributes:
        pixel_nm: Raster pitch the kernels are sampled at.
        defocus_nm: Focus condition this set represents.
        weights / kernels: Legacy spatial arrays (``None`` when native).
        source: Illumination source (native sets).
        wavelength_nm / numerical_aperture: Optics of the native build.
        max_kernels / energy_fraction: SOCS truncation knobs.
        period_nm: Square-lattice period of the canonical spatial
            materialization (persistence/visualization only — simulation
            lattices are per-grid).
        cutoff_per_nm: Coherent pupil cutoff ``NA / lambda`` in
            cycles/nm (informational; ``None`` for legacy files that
            never recorded it).
        fft_cache_capacity: Max distinct grid shapes kept resident in
            each bounded LRU (band spectra, full-grid transfer stacks).
        fft_backend / fft_workers / device: Array/transform backend
            selection (see :mod:`repro.backend`) — ``fft_backend``
            accepts every :data:`~repro.backend.BACKEND_NAMES` spelling
            including ``"torch"``, and ``device`` picks the torch device
            (``None`` = CUDA when available).  All entry points share
            the one resolved :class:`~repro.backend.ArrayBackend`;
            cached FFT-derived artifacts are keyed by backend identity
            (+ device), so swapping the backend can never serve stale or
            wrong-device spectra.  Device execution lives on the compact
            band path (batched subgrid convolution, sparse gathers); the
            dense full-grid fallback, the single-mask reference path and
            legacy spatial sets always run host-side.
        spectra_store: Optional disk-persistent store
            (:class:`repro.litho.store.KernelSpectraStore`) consulted on
            band-spectra misses before building, and written after every
            build — a warm store turns the ~20-50 ms per-shape TCC warmup
            into one ``.npz`` read on fresh processes.  The build is
            FFT-free, so stored entries are backend-independent and
            bit-for-bit equal to an in-process build.
    """

    pixel_nm: float
    defocus_nm: float
    weights: np.ndarray | None = None
    kernels: np.ndarray | None = None
    source: SourceSpec | None = None
    wavelength_nm: float = WAVELENGTH_NM
    numerical_aperture: float = NUMERICAL_APERTURE
    max_kernels: int = 12
    energy_fraction: float = 0.995
    period_nm: float = 2048.0
    cutoff_per_nm: float | None = None
    fft_cache_capacity: int = 6
    fft_backend: str = "auto"
    fft_workers: int | None = None
    device: str | None = None
    spectra_store: object | None = None
    _band_cache: "OrderedDict[tuple[int, int], GridBandSpectra]" = field(
        default_factory=OrderedDict, repr=False
    )
    _fft_cache: "OrderedDict[tuple, np.ndarray]" = field(
        default_factory=OrderedDict, repr=False
    )
    _canonical: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False
    )
    _fingerprint: str | None = field(default=None, repr=False)
    _cache_lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False
    )
    """Guards the two LRU caches: the service's thread-pooled
    ``map_suite`` drives one shared kernel set from several threads, and
    an unguarded ``move_to_end`` can race another thread's eviction."""

    def __post_init__(self) -> None:
        if self.kernels is not None:
            if (
                self.kernels.ndim != 3
                or self.kernels.shape[1] != self.kernels.shape[2]
            ):
                raise LithoError(f"bad kernel array shape {self.kernels.shape}")
            if self.weights is None or len(self.weights) != len(self.kernels):
                raise LithoError("weights / kernels length mismatch")
        elif self.source is None:
            raise LithoError(
                "kernel set needs either a source spec (frequency-native) "
                "or explicit spatial weights + kernels (legacy)"
            )
        if self.fft_cache_capacity < 1:
            raise LithoError(
                f"fft_cache_capacity must be >= 1, got {self.fft_cache_capacity}"
            )
        # Resolve eagerly so a bad backend name fails at construction.
        resolve_backend(self.fft_backend, self.fft_workers, self.device)

    # -- provenance / backend ------------------------------------------------
    @property
    def is_native(self) -> bool:
        """True for frequency-native sets (band spectra available)."""
        return self.source is not None and self.kernels is None

    @property
    def fft(self) -> ArrayBackend:
        """The resolved array backend shared by every entry point.

        Kept under its historical name — it began as an FFT-only
        backend — but it now carries the full array namespace, device
        policy and dtype policy (:class:`repro.backend.ArrayBackend`).
        """
        return resolve_backend(self.fft_backend, self.fft_workers, self.device)

    def _host_fft(self) -> ArrayBackend:
        """The host-side backend for paths that are host-only by design
        (single-mask reference, dense fallback, legacy spatial sets,
        ILT field gradients).  Numpy/scipy backends pass through; a
        device backend degrades to single-threaded numpy."""
        fft = self.fft
        return fft if fft.is_numpy else resolve_backend("numpy", 1)

    @property
    def count(self) -> int:
        """Kernel count of a legacy spatial set (per-grid for native)."""
        if self.is_native:
            raise LithoError(
                "frequency-native kernel sets have per-grid kernel counts; "
                "use band_spectra(shape).count"
            )
        return len(self.weights)

    @property
    def ambit_px(self) -> int:
        """Spatial kernel extent of a legacy set (native sets have none)."""
        if self.is_native:
            raise LithoError(
                "frequency-native kernel sets are not spatially cropped "
                "and have no ambit"
            )
        return self.kernels.shape[1]

    # -- per-grid band spectra (the source of truth) -------------------------
    def band_spectra(self, shape: tuple[int, int]) -> GridBandSpectra:
        """Band-limited SOCS spectra for one grid shape (built once, LRU)."""
        if not self.is_native:
            raise LithoError(
                "legacy spatial kernel sets carry no band spectra; "
                "rebuild with build_kernel_set for the frequency-native path"
            )
        key = (int(shape[0]), int(shape[1]))
        with self._cache_lock:
            cached = self._band_cache.get(key)
            if cached is not None:
                self._band_cache.move_to_end(key)
                return cached
            built = None
            store = self.spectra_store
            if store is not None:
                built = store.load(self._optics_fingerprint(), key)
            if built is None:
                built = self._build_band_spectra(key)
                if store is not None:
                    try:
                        store.save(self._optics_fingerprint(), built)
                    except OSError as exc:
                        # Persistence is a cache, not a dependency: an
                        # unwritable store directory must never fail a
                        # simulation whose spectra were just built.
                        warnings.warn(
                            f"kernel-spectra store write failed "
                            f"({store.root}): {exc}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
            self._band_cache[key] = built
            while len(self._band_cache) > self.fft_cache_capacity:
                self._band_cache.popitem(last=False)
            return built

    def _optics_fingerprint(self) -> str:
        """Cached store key covering every input of the spectra build."""
        if self._fingerprint is None:
            from repro.litho.store import optics_fingerprint

            self._fingerprint = optics_fingerprint(self)
        return self._fingerprint

    def _build_band_spectra(self, shape: tuple[int, int]) -> GridBandSpectra:
        rows, cols = shape
        tcc = build_tcc_grid(
            self.source,
            shape,
            self.pixel_nm,
            defocus_nm=self.defocus_nm,
            wavelength_nm=self.wavelength_nm,
            numerical_aperture=self.numerical_aperture,
        )
        weights, coefficients = socs_spectra(
            tcc, max_kernels=self.max_kernels,
            energy_fraction=self.energy_fraction,
        )
        # Open-frame normalization: a clear mask has spectrum H*W at DC
        # only, so its intensity is sum_k w_k |coeff_k(0, 0)|^2.
        origin = np.nonzero(
            (tcc.shift_indices[:, 0] == 0) & (tcc.shift_indices[:, 1] == 0)
        )[0][0]
        open_frame = float(
            np.sum(weights * np.abs(coefficients[:, origin]) ** 2)
        )
        if open_frame <= 0:
            raise LithoError("kernel set images an open frame to zero intensity")
        weights = weights / open_frame

        b0, b1 = tcc.band_radii
        m0 = next_fast_len(4 * b0 + 1)
        m1 = next_fast_len(4 * b1 + 1)
        compact = m0 < rows and m1 < cols
        if not compact:
            m0, m1 = rows, cols
        scale = (m0 * m1) / (rows * cols)
        sub_spectra = np.zeros(
            (len(weights), m0, m1), dtype=np.complex128
        )
        sub_rows = tcc.shift_indices[:, 0] % m0
        sub_cols = tcc.shift_indices[:, 1] % m1
        sub_spectra[:, sub_rows, sub_cols] = coefficients * scale
        return GridBandSpectra(
            shape=shape,
            weights=weights,
            band=(b0, b1),
            subgrid=(m0, m1),
            compact=compact,
            sub_spectra=sub_spectra,
            rows_src=_band_indices(rows, b0),
            cols_src=_band_indices(cols, b1),
            rows_dst=_band_indices(m0, b0),
            cols_dst=_band_indices(m1, b1),
            up_rows_src=_band_indices(m0, 2 * b0),
            up_cols_src=_band_indices(m1, 2 * b1),
            up_rows_dst=_band_indices(rows, 2 * b0),
            up_cols_dst=_band_indices(cols, 2 * b1),
        )

    def weights_for(self, shape: tuple[int, int]) -> np.ndarray:
        """Kernel weights matching :meth:`kernel_spectra` for one shape."""
        if self.is_native:
            return self.band_spectra((int(shape[0]), int(shape[1]))).weights
        return self.weights

    # -- full-grid transfer functions ---------------------------------------
    def kernel_spectra(self, shape: tuple[int, int]) -> np.ndarray:
        """Cached ``(K, H, W)`` full-grid kernel spectra (read-only).

        Native sets scatter the band coefficients (exactly zero outside
        the pupil band, backend-independent); legacy sets FFT their
        zero-padded spatial kernels (cached per transform backend).
        """
        key = (int(shape[0]), int(shape[1]))
        self._validate_grid(key)
        if self.is_native:
            cache_key = (key, "band")
        else:
            # Legacy spatial sets transform host-side (see _host_fft);
            # the full resolved identity keys the cache so one set
            # shared across configs can never serve spectra computed by
            # another backend's transform.
            cache_key = (key, *self._host_fft().identity)
        with self._cache_lock:
            return self._kernel_spectra_locked(key, cache_key)

    def _kernel_spectra_locked(
        self, key: tuple[int, int], cache_key: tuple
    ) -> np.ndarray:
        cached = self._fft_cache.get(cache_key)
        if cached is not None:
            self._fft_cache.move_to_end(cache_key)
            return cached
        if self.is_native:
            band = self.band_spectra(key)
            m0, m1 = band.subgrid
            scale = (key[0] * key[1]) / (m0 * m1)
            stack = np.zeros((band.count, *key), dtype=np.complex128)
            stack[
                :, band.rows_src[:, None], band.cols_src[None, :]
            ] = band.sub_spectra[
                :, band.rows_dst[:, None], band.cols_dst[None, :]
            ] * scale
        else:
            c = self.ambit_px
            half = c // 2
            stack = np.empty((self.count, *key), dtype=np.complex128)
            for k in range(self.count):
                padded = np.zeros(key, dtype=np.complex128)
                padded[:c, :c] = self.kernels[k]
                # Centre the kernel on pixel (0, 0) for circular convolution.
                padded = np.roll(padded, (-half, -half), axis=(0, 1))
                stack[k] = self._host_fft().fft2(padded, axes=(-2, -1))
        self._fft_cache[cache_key] = stack
        while len(self._fft_cache) > self.fft_cache_capacity:
            self._fft_cache.popitem(last=False)
        return stack

    # -- validation ----------------------------------------------------------
    def _validate_grid(self, shape: tuple[int, int]) -> None:
        if len(shape) != 2:
            raise LithoError(f"grid shape must be 2-D, got {shape}")
        if self.is_native:
            # Raises "frequency lattice too coarse" for unusably small grids.
            self.band_spectra(shape)
        elif min(shape) < self.ambit_px:
            raise LithoError(
                f"grid {shape} cannot hold kernels with ambit {self.ambit_px}"
            )

    def validate_mask_batch(self, masks):
        """Check and coerce a ``(B, H, W)`` stack of rasterized masks.

        Returns the stack as the backend's native float64 array: a host
        numpy array under numpy/scipy (no-copy for float64 input, bit
        for bit as before), a device tensor under torch — host masks are
        moved to the device here, device masks stay put.
        """
        backend = self.fft
        stack = backend.asarray_f64(masks)
        if stack.ndim != 3:
            raise LithoError(
                f"mask batch must be 3-D (B, H, W), got shape "
                f"{tuple(stack.shape)}"
            )
        if stack.shape[0] == 0:
            raise LithoError("mask batch is empty")
        if not self.is_native and min(stack.shape[1:]) < self.ambit_px:
            raise LithoError(
                f"batch masks {tuple(stack.shape[1:])} smaller than kernel "
                f"ambit {self.ambit_px}"
            )
        self._validate_grid(tuple(stack.shape[1:]))
        return stack

    # -- convolution ---------------------------------------------------------
    def convolve_intensity(self, mask: np.ndarray) -> np.ndarray:
        """Aerial intensity ``sum_k w_k |h_k * mask|^2`` (circular conv).

        This is the retained *spatial reference path*: one full-grid
        inverse FFT per kernel over the scattered spectra.  ``mask`` is a
        2-D real array (binary or graytone).  Always runs host-side —
        it is the numerical reference the device paths are tested
        against, so it must not depend on the device library.
        """
        mask = self.fft.to_host(mask)
        if mask.ndim != 2:
            raise LithoError(f"mask must be 2-D, got shape {mask.shape}")
        self._validate_grid(mask.shape)
        kernel_ffts = self.kernel_spectra(mask.shape)
        weights = self.weights_for(mask.shape)
        fft = self._host_fft()
        mask_fft = fft.fft2(mask.astype(np.float64), axes=(-2, -1))
        intensity = np.zeros(mask.shape, dtype=np.float64)
        for weight, kernel_fft in zip(weights, kernel_ffts):
            field_k = fft.ifft2(mask_fft * kernel_fft, axes=(-2, -1))
            intensity += weight * (field_k.real**2 + field_k.imag**2)
        return intensity

    def convolve_intensity_batch(self, masks: np.ndarray) -> np.ndarray:
        """Aerial intensities of a ``(B, H, W)`` mask stack (unified engine).

        One vectorized forward FFT over the batch axis feeds the
        band-limited subgrid engine (exact: the spectra carry no energy
        outside the gathered band).  Per-mask results are bit-for-bit
        independent of the batch size.
        """
        stack = self.validate_mask_batch(masks)
        mask_ffts = self.fft.fft2(stack, axes=(-2, -1))
        return self.intensity_from_mask_ffts(mask_ffts)

    def intensity_from_mask_ffts(self, mask_ffts: np.ndarray) -> np.ndarray:
        """Intensities from precomputed ``(B, H, W)`` mask spectra.

        Lets callers share one forward FFT across several kernel sets
        (the simulator's focus + defocus corner sweep).  Runs the compact
        pupil-band subgrid engine whenever it saves work; otherwise the
        full-grid per-kernel loop (always for legacy spatial sets — a
        cropped kernel is not band-limited, so only the full-grid path is
        exact for them).
        """
        if mask_ffts.ndim != 3:
            raise LithoError(
                f"mask spectra must be 3-D (B, H, W), got shape {mask_ffts.shape}"
            )
        shape = tuple(mask_ffts.shape[-2:])
        self._validate_grid(shape)
        if self.is_native:
            band = self.band_spectra(shape)
            if band.compact:
                return self._band_intensity(mask_ffts, band)
        return self._full_grid_intensity(mask_ffts, shape)

    def _gather_band(
        self, mask_ffts, band: GridBandSpectra
    ):
        """Pupil-band mask coefficients scattered onto the subgrid."""
        backend = self.fft
        idx = backend.index
        m0, m1 = band.subgrid
        sub = backend.zeros(
            (mask_ffts.shape[0], m0, m1), backend.complex128
        )
        sub[:, idx(band.rows_dst[:, None]), idx(band.cols_dst[None, :])] = (
            mask_ffts[:, idx(band.rows_src[:, None]), idx(band.cols_src[None, :])]
        )
        return sub

    def _device_band_arrays(self, band: GridBandSpectra):
        """``(weights, sub_spectra)`` resident where the backend computes.

        Host backends return the band's own arrays (no copy); the torch
        backend lazily materializes device copies, cached in the
        bounded ``_fft_cache`` under the backend's array identity so a
        backend/device swap can never serve wrong-residency spectra.
        This is what "GridBandSpectra held device-side" means: the
        frozen dataclass stays host-canonical (it is what the spectra
        store persists), and the per-device views hang off the kernel
        set that owns them.
        """
        backend = self.fft
        if backend.is_numpy:
            return band.weights, band.sub_spectra
        cache_key = (band.shape, "device-spectra", backend.array_identity)
        with self._cache_lock:
            cached = self._fft_cache.get(cache_key)
            if cached is not None:
                self._fft_cache.move_to_end(cache_key)
                return cached
        pair = (
            backend.to_device(band.weights),
            backend.to_device(band.sub_spectra),
        )
        with self._cache_lock:
            self._fft_cache[cache_key] = pair
            while len(self._fft_cache) > self.fft_cache_capacity:
                self._fft_cache.popitem(last=False)
        return pair

    def _gather_band_rfft(
        self, mask_rffts, band: GridBandSpectra
    ):
        """Band gather from a half-width ``rfft2`` spectrum.

        A real mask's spectrum is Hermitian, ``F[r, c] = conj(F[(-r) % H,
        (-c) % W])``, so the negative-column half of the pupil band is
        recovered from the stored positive columns with flipped rows.
        Values match :meth:`_gather_band` on the full spectrum to FFT
        round-off (the rfft sums in a different order — not bit-for-bit).
        Delegates to the module-level :func:`gather_band_rfft`.
        """
        return gather_band_rfft(mask_rffts, band, self.fft)

    def _subgrid_intensity(
        self, sub, band: GridBandSpectra
    ):
        """Per-kernel subgrid convolution summed into one intensity.

        Runs wherever ``sub`` lives: host numpy under numpy/scipy,
        on-device under torch (with device-resident kernel spectra from
        :meth:`_device_band_arrays`).
        """
        fft = self.fft
        weights, sub_spectra = self._device_band_arrays(band)
        intensity = fft.zeros(sub.shape, fft.float64)
        for weight, kernel_sub in zip(weights, sub_spectra):
            field_k = fft.ifft2(sub * kernel_sub, axes=(-2, -1))
            intensity += weight * (field_k.real**2 + field_k.imag**2)
        return intensity

    def _band_intensity(
        self, mask_ffts, band: GridBandSpectra
    ) -> np.ndarray:
        """Exact subgrid engine: gather band, convolve, resample intensity.

        The gather, per-kernel convolution and zero-padded resample all
        run backend-native; the dense full-grid aerial is the
        host/device boundary, so the returned array is always host
        numpy.
        """
        rows, cols = band.shape
        m0, m1 = band.subgrid
        batch = mask_ffts.shape[0]
        fft = self.fft
        idx = fft.index
        sub = self._gather_band(mask_ffts, band)
        intensity = self._subgrid_intensity(sub, band)
        # Exact zero-padded FFT resampling of the (band-limited) intensity.
        spectrum = fft.fft2(intensity, axes=(-2, -1))
        upscale = (rows * cols) / (m0 * m1)
        full = fft.zeros((batch, rows, cols), fft.complex128)
        full[:, idx(band.up_rows_dst[:, None]), idx(band.up_cols_dst[None, :])] = (
            spectrum[:, idx(band.up_rows_src[:, None]), idx(band.up_cols_src[None, :])]
            * upscale
        )
        return fft.to_host(fft.ifft2(full, axes=(-2, -1)).real)

    def _sparse_band_values(
        self,
        sub: np.ndarray,
        band: GridBandSpectra,
        rows: np.ndarray,
        cols: np.ndarray,
    ) -> np.ndarray:
        """Intensity at a pixel set from subgrid-scattered mask bands.

        The subgrid convolution runs exactly as in :meth:`_band_intensity`;
        the full-grid inverse FFT of the intensity is replaced by a direct
        DFT gather — one real GEMM of the ``(B, 2F)`` intensity-band
        spectra against the cached ``(2F, S)`` phase matrix.
        """
        intensity = self._subgrid_intensity(sub, band)
        return band_values_at_pixels(intensity, band, rows, cols, self.fft)

    def intensity_at_pixels(
        self, mask_ffts: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Aerial intensity of ``(B, H, W)`` mask spectra at S pixels.

        Returns ``(B, S)`` values mathematically identical to
        ``intensity_from_mask_ffts(mask_ffts)[:, rows, cols]`` (<= 1e-12
        absolute — the exact zero-padded FFT resample and the direct DFT
        gather are the same linear map evaluated in different summation
        orders).  On the compact band path the full-grid inverse
        transform never happens: cost drops from O(B H W log(H W)) to one
        ``(B, 2F) x (2F, S)`` GEMM after the subgrid convolution.
        Non-compact and legacy-spatial sets fall back to the dense
        intensity plus a fancy-index gather, which is exact by
        construction.
        """
        if mask_ffts.ndim != 3:
            raise LithoError(
                f"mask spectra must be 3-D (B, H, W), got shape {mask_ffts.shape}"
            )
        shape = tuple(mask_ffts.shape[-2:])
        self._validate_grid(shape)
        rows, cols = _validate_pixel_set(shape, rows, cols)
        if self.is_native:
            band = self.band_spectra(shape)
            if band.compact:
                sub = self._gather_band(mask_ffts, band)
                return self._sparse_band_values(sub, band, rows, cols)
        return self._full_grid_intensity(mask_ffts, shape)[:, rows, cols]

    def sparse_intensity_from_rfft(
        self,
        mask_rffts: np.ndarray,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
    ) -> np.ndarray:
        """Sparse intensity from half-width real-input spectra.

        The fast path of the sparse EPE pipeline: callers forward-
        transform their real mask stack once with :meth:`FFTBackend.
        rfft2` (about half the cost of the full ``fft2``) and share the
        result across the focus and defocus kernel sets; the pupil band
        is reconstructed by Hermitian symmetry.  Only available on the
        compact band path — the dense fallback needs full spectra, so
        callers without a compact band should compute ``fft2`` and use
        :meth:`intensity_at_pixels` instead.
        """
        if mask_rffts.ndim != 3:
            raise LithoError(
                "mask rfft spectra must be 3-D (B, H, W//2+1), got shape "
                f"{mask_rffts.shape}"
            )
        shape = (int(shape[0]), int(shape[1]))
        if mask_rffts.shape[-2:] != (shape[0], shape[1] // 2 + 1):
            raise LithoError(
                f"rfft spectra {mask_rffts.shape[-2:]} do not match grid "
                f"{shape} (expected ({shape[0]}, {shape[1] // 2 + 1}))"
            )
        self._validate_grid(shape)
        rows, cols = _validate_pixel_set(shape, rows, cols)
        if not self.is_native:
            raise LithoError(
                "sparse_intensity_from_rfft needs a frequency-native "
                "kernel set; legacy spatial sets must gather from the "
                "dense path (intensity_at_pixels)"
            )
        band = self.band_spectra(shape)
        if not band.compact:
            raise LithoError(
                "sparse_intensity_from_rfft needs a compact pupil band; "
                f"the {shape} grid's band covers it — use "
                "intensity_at_pixels on full spectra instead"
            )
        sub = self._gather_band_rfft(mask_rffts, band)
        return self._sparse_band_values(sub, band, rows, cols)

    def subgrid_intensity_from_rfft(
        self, mask_rffts: np.ndarray, shape: tuple[int, int]
    ) -> np.ndarray:
        """Exact aerial intensity on the pupil-band subgrid, ``(B, m0, m1)``.

        The band-limited intensity is fully determined by its subgrid
        samples (``m >= 4b + 1`` per axis), so this is the cheapest exact
        representation of the aerial image — the surrogate trainer uses it
        as ground-truth labels, and :func:`band_values_at_pixels` lifts
        either these or surrogate predictions to full-grid pixels.
        Requires a frequency-native compact-band set, like
        :meth:`sparse_intensity_from_rfft`.
        """
        if mask_rffts.ndim != 3:
            raise LithoError(
                "mask rfft spectra must be 3-D (B, H, W//2+1), got shape "
                f"{mask_rffts.shape}"
            )
        shape = (int(shape[0]), int(shape[1]))
        if mask_rffts.shape[-2:] != (shape[0], shape[1] // 2 + 1):
            raise LithoError(
                f"rfft spectra {mask_rffts.shape[-2:]} do not match grid "
                f"{shape} (expected ({shape[0]}, {shape[1] // 2 + 1}))"
            )
        self._validate_grid(shape)
        if not self.is_native:
            raise LithoError(
                "subgrid_intensity_from_rfft needs a frequency-native "
                "kernel set"
            )
        band = self.band_spectra(shape)
        if not band.compact:
            raise LithoError(
                "subgrid_intensity_from_rfft needs a compact pupil band; "
                f"the {shape} grid's band covers it"
            )
        sub = self._gather_band_rfft(mask_rffts, band)
        return self.fft.to_host(self._subgrid_intensity(sub, band))

    def _full_grid_intensity(
        self, mask_ffts, shape: tuple[int, int]
    ) -> np.ndarray:
        fft = self.fft
        if not fft.is_numpy:
            # The dense fallback exists for non-compact bands and legacy
            # spatial sets — host-only paths by design (the device win
            # lives on the compact band pipeline).
            mask_ffts = fft.to_host(mask_ffts)
            fft = self._host_fft()
        kernel_ffts = self.kernel_spectra(shape)
        weights = self.weights_for(shape)
        intensity = np.zeros(mask_ffts.shape, dtype=np.float64)
        if fft.name == "scipy" and fft.workers > 1 and mask_ffts.shape[0] > 1:
            # Threaded backend: one (B, H, W) inverse transform per kernel
            # lets the workers split the batch axis.
            for weight, kernel_fft in zip(weights, kernel_ffts):
                field_k = fft.ifft2(mask_ffts * kernel_fft, axes=(-2, -1))
                term = field_k.real**2
                term += field_k.imag**2
                term *= weight
                intensity += term
            return intensity
        # Per-mask inner loop: 2-D transforms on contiguous slices are
        # faster than one (B, H, W) batched transform on a single core
        # (smaller working set) and bit-for-bit identical to it.
        for mask_fft, out in zip(mask_ffts, intensity):
            for weight, kernel_fft in zip(weights, kernel_ffts):
                field_k = fft.ifft2(mask_fft * kernel_fft, axes=(-2, -1))
                term = field_k.real**2
                term += field_k.imag**2
                term *= weight
                out += term
        return intensity

    def fields_from_mask_fft(self, mask_fft: np.ndarray) -> np.ndarray:
        """Per-kernel coherent fields ``(K, H, W)`` for one mask spectrum.

        Used by gradient-based optimizers (pixel ILT) that need the
        fields themselves, not just the summed intensity; pair with
        :meth:`weights_for` on the same shape.  Host-side always (the
        pixel-ILT gradient loop is numpy-native).
        """
        mask_fft = self.fft.to_host(mask_fft)
        if mask_fft.ndim != 2:
            raise LithoError(
                f"mask spectrum must be 2-D, got shape {mask_fft.shape}"
            )
        kernel_ffts = self.kernel_spectra(mask_fft.shape)
        return self._host_fft().ifft2(mask_fft[None] * kernel_ffts, axes=(-2, -1))

    # -- spatial materialization (persistence / visualization) ---------------
    def spatial_kernels(self) -> tuple[np.ndarray, np.ndarray]:
        """Canonical spatial ``(weights, kernels)`` for saving / plotting.

        Native sets materialize the square ``period_nm`` lattice once
        (uncropped — the full periodic kernel) and normalize so an open
        frame images to 1.0; legacy sets return their stored arrays.
        """
        if not self.is_native:
            return self.weights, self.kernels
        if self._canonical is None:
            tcc = build_tcc(
                self.source,
                period_nm=self.period_nm,
                defocus_nm=self.defocus_nm,
                wavelength_nm=self.wavelength_nm,
                numerical_aperture=self.numerical_aperture,
            )
            weights, kernels = socs_kernels(
                tcc,
                self.pixel_nm,
                max_kernels=self.max_kernels,
                energy_fraction=self.energy_fraction,
            )
            sums = kernels.sum(axis=(1, 2))
            open_frame = float(np.sum(weights * np.abs(sums) ** 2))
            if open_frame <= 0:
                raise LithoError(
                    "kernel set images an open frame to zero intensity"
                )
            self._canonical = (weights / open_frame, kernels)
        return self._canonical

    # -- persistence ---------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the set: spatial kernels plus (native) optics metadata."""
        weights, kernels = self.spatial_kernels()
        extras: dict[str, object] = {}
        if self.cutoff_per_nm is not None:
            extras["cutoff_per_nm"] = self.cutoff_per_nm
        if self.is_native:
            extras.update(
                source_shape=self.source.shape,
                source_sigma=self.source.sigma,
                source_sigma_in=self.source.sigma_in,
                source_sigma_out=self.source.sigma_out,
                wavelength_nm=self.wavelength_nm,
                numerical_aperture=self.numerical_aperture,
                max_kernels=self.max_kernels,
                energy_fraction=self.energy_fraction,
                period_nm=self.period_nm,
            )
        np.savez_compressed(
            path,
            weights=weights,
            kernels=kernels,
            pixel_nm=self.pixel_nm,
            defocus_nm=self.defocus_nm,
            **extras,
        )

    @classmethod
    def load(
        cls,
        path: str,
        fft_backend: str = "auto",
        fft_workers: int | None = None,
        device: str | None = None,
    ) -> "OpticalKernelSet":
        """Reload a saved set.

        The transform backend is an execution choice, not physics, so it
        is never persisted; pass ``fft_backend="numpy"`` explicitly when
        bit-for-bit reproducibility with a pre-save numpy-backend set is
        required (the ``"auto"`` default may resolve to threaded scipy
        on multi-core hosts, ~1e-12 from numpy).
        """
        with np.load(path) as data:
            cutoff = (
                float(data["cutoff_per_nm"]) if "cutoff_per_nm" in data else None
            )
            if "source_shape" in data:
                # Full optics metadata present: reconstruct frequency-native.
                source = SourceSpec(
                    shape=str(data["source_shape"]),
                    sigma=float(data["source_sigma"]),
                    sigma_in=float(data["source_sigma_in"]),
                    sigma_out=float(data["source_sigma_out"]),
                )
                return cls(
                    pixel_nm=float(data["pixel_nm"]),
                    defocus_nm=float(data["defocus_nm"]),
                    source=source,
                    wavelength_nm=float(data["wavelength_nm"]),
                    numerical_aperture=float(data["numerical_aperture"]),
                    max_kernels=int(data["max_kernels"]),
                    energy_fraction=float(data["energy_fraction"]),
                    period_nm=float(data["period_nm"]),
                    cutoff_per_nm=cutoff,
                    fft_backend=fft_backend,
                    fft_workers=fft_workers,
                    device=device,
                )
            return cls(
                pixel_nm=float(data["pixel_nm"]),
                defocus_nm=float(data["defocus_nm"]),
                weights=np.asarray(data["weights"]),
                kernels=np.asarray(data["kernels"]),
                cutoff_per_nm=cutoff,
                fft_backend=fft_backend,
                fft_workers=fft_workers,
                device=device,
            )


@lru_cache(maxsize=8)
def build_kernel_set(
    pixel_nm: float = 4.0,
    defocus_nm: float = 0.0,
    source: SourceSpec = SourceSpec(),
    period_nm: float = 2048.0,
    max_kernels: int = 12,
    energy_fraction: float = 0.995,
    wavelength_nm: float = WAVELENGTH_NM,
    numerical_aperture: float = NUMERICAL_APERTURE,
    fft_backend: str = "auto",
    fft_workers: int | None = None,
    device: str | None = None,
    spectra_store: object | None = None,
) -> OpticalKernelSet:
    """Build (and cache) a frequency-native :class:`OpticalKernelSet`.

    Construction is lazy: per-grid band spectra are built on first use
    for each simulated shape.  ``period_nm`` only sizes the canonical
    square-lattice spatial materialization used for persistence and
    visualization — there is no ambit crop anywhere, which is what makes
    the compact band engine exact.  ``spectra_store`` (a
    :class:`repro.litho.store.KernelSpectraStore`, which hashes by its
    root directory) persists finished band spectra across processes.
    """
    return OpticalKernelSet(
        pixel_nm=pixel_nm,
        defocus_nm=defocus_nm,
        source=source,
        wavelength_nm=wavelength_nm,
        numerical_aperture=numerical_aperture,
        max_kernels=max_kernels,
        energy_fraction=energy_fraction,
        period_nm=period_nm,
        cutoff_per_nm=numerical_aperture / wavelength_nm,
        fft_backend=fft_backend,
        fft_workers=fft_workers,
        device=device,
        spectra_store=spectra_store,
    )
