"""Pluggable FFT backend for the lithography engines.

Every forward/inverse transform in :mod:`repro.litho.kernels` (both the
full-grid reference path and the band-limited subgrid engine) runs
through one :class:`FFTBackend` so the whole simulate path can switch
transform libraries in a single place:

* ``"numpy"`` — ``np.fft``; single-threaded, bit-for-bit reproducible,
  and the backend the committed golden images were generated with.
* ``"scipy"`` — ``scipy.fft`` with ``workers=`` threading; on multi-core
  hosts the batched ``(B, H, W)`` transforms parallelize across the batch
  axis.  Results agree with numpy to ~1e-12 (both wrap pocketfft, but the
  SIMD kernels sum in a different order), which is far inside the 1e-9
  golden tolerance but *not* bit-for-bit.
* ``"auto"`` — scipy with threads when scipy is importable *and* more
  than one core is available, numpy otherwise.  Single-core hosts
  therefore keep exact bit-for-bit reproducibility with the seed history
  by construction.

Backends are resolved once per ``(name, workers)`` pair and shared; both
the single-mask and batched engines of one
:class:`~repro.litho.kernels.OpticalKernelSet` always use the same
backend, so batch-vs-single parity stays bit-for-bit regardless of the
library chosen.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import LithoError

try:  # scipy is optional; everything falls back to np.fft without it.
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - depends on the environment
    _scipy_fft = None

FFT_BACKEND_NAMES = ("auto", "numpy", "scipy")


def _is_5_smooth(n: int) -> bool:
    for p in (2, 3, 5):
        while n % p == 0:
            n //= p
    return n == 1


def next_fast_len(n: int) -> int:
    """Smallest 5-smooth integer >= ``n`` (fast FFT length).

    When scipy is importable its C implementation drives the search;
    scipy's notion of "fast" admits factors of 7 and 11, so its answer is
    a *lower bound* that we re-check and advance past until it lands on a
    5-smooth value (subgrid sizes are part of the numerical contract —
    the chosen length must not depend on whether scipy is installed).
    The pure-python upward scan is the fallback and the reference.
    """
    if n < 1:
        raise LithoError(f"FFT length must be positive, got {n}")
    best = n
    while True:
        if _scipy_fft is not None:
            # next_fast_len(m) == m for any 7/11-smooth m, so each miss
            # strictly advances `best` and the loop terminates at the
            # first 5-smooth value, identical to the naive scan.
            best = _scipy_fft.next_fast_len(best)
        if _is_5_smooth(best):
            return best
        best += 1


def scipy_fft_available() -> bool:
    """Whether the scipy backend can actually be constructed."""
    return _scipy_fft is not None


@dataclass(frozen=True)
class FFTBackend:
    """2-D FFT entry points bound to one transform library.

    ``workers`` is the thread count handed to ``scipy.fft`` (ignored by
    the numpy backend, which is single-threaded).
    """

    name: str
    workers: int

    def fft2(self, a: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
        if self.name == "scipy":
            return _scipy_fft.fft2(a, axes=axes, workers=self.workers)
        return np.fft.fft2(a, axes=axes)

    def ifft2(self, a: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
        if self.name == "scipy":
            return _scipy_fft.ifft2(a, axes=axes, workers=self.workers)
        return np.fft.ifft2(a, axes=axes)

    def rfft2(self, a: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
        """Real-input forward transform (half-width spectrum along the
        last axis).  The sparse EPE path pairs this with a Hermitian
        band gather — roughly halving the forward-transform cost that
        dominates its runtime."""
        if self.name == "scipy":
            return _scipy_fft.rfft2(a, axes=axes, workers=self.workers)
        return np.fft.rfft2(a, axes=axes)


@lru_cache(maxsize=8)
def resolve_fft_backend(
    name: str = "auto", workers: int | None = None
) -> FFTBackend:
    """Build (and cache) the backend for a configuration name.

    Args:
        name: ``"auto"``, ``"numpy"`` or ``"scipy"``.  ``"scipy"`` falls
            back to numpy when scipy is not importable, matching the
            "use scipy when available" contract.
        workers: Thread count for scipy; ``None`` means all cores.
    """
    if name not in FFT_BACKEND_NAMES:
        raise LithoError(
            f"unknown FFT backend {name!r}; choose one of {FFT_BACKEND_NAMES}"
        )
    cores = os.cpu_count() or 1
    resolved_workers = cores if workers is None else int(workers)
    if resolved_workers < 1:
        raise LithoError(f"fft workers must be >= 1, got {workers}")
    if name == "auto":
        name = (
            "scipy"
            if scipy_fft_available() and resolved_workers > 1 and cores > 1
            else "numpy"
        )
    elif name == "scipy" and not scipy_fft_available():
        name = "numpy"
    return FFTBackend(name=name, workers=resolved_workers)
