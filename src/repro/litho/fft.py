"""Backward-compatible shim over :mod:`repro.backend`.

The pluggable FFT backend that used to live here grew into the full
array/device backend (:class:`repro.backend.ArrayBackend`): one
abstraction now carries the array namespace, the FFT entry points,
host/device movement and the dtype policy for every numerical layer —
litho kernels, sparse metrology, and the surrogate.  This module
re-exports the old names so existing imports keep working:

* :class:`FFTBackend` is an alias of :class:`~repro.backend.ArrayBackend`.
* :func:`resolve_fft_backend` forwards to
  :func:`~repro.backend.resolve_backend` (host spellings unchanged).
* :func:`next_fast_len` / :func:`scipy_fft_available` moved wholesale.

New code should import from :mod:`repro.backend` directly.
"""

from __future__ import annotations

from repro.backend import (
    BACKEND_NAMES,
    FFT_BACKEND_NAMES,
    ArrayBackend,
    FFTBackend,
    _is_5_smooth,
    cupy_available,
    next_fast_len,
    resolve_backend,
    resolve_fft_backend,
    scipy_fft_available,
    torch_available,
)

__all__ = [
    "BACKEND_NAMES",
    "FFT_BACKEND_NAMES",
    "ArrayBackend",
    "FFTBackend",
    "cupy_available",
    "next_fast_len",
    "resolve_backend",
    "resolve_fft_backend",
    "scipy_fft_available",
    "torch_available",
]
