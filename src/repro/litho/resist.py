"""Constant-threshold resist model.

The ICCAD-2013 contest (and the ML-OPC literature built on it) evaluates
printed contours with a constant intensity threshold; exposure-dose
variation divides the effective threshold.
"""

from __future__ import annotations

import numpy as np

from repro.constants import RESIST_THRESHOLD
from repro.errors import LithoError


def printed_image(
    aerial: np.ndarray,
    threshold: float = RESIST_THRESHOLD,
    dose: float = 1.0,
) -> np.ndarray:
    """Binary printed image: resist clears where ``dose * I >= threshold``."""
    if threshold <= 0:
        raise LithoError(f"threshold must be positive, got {threshold}")
    if dose <= 0:
        raise LithoError(f"dose must be positive, got {dose}")
    return (np.asarray(aerial) * dose >= threshold).astype(np.uint8)
