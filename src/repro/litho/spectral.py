"""Band-limited spectral screening engine for batched lithography.

The optical system transmits no spatial frequency above the coherent
cutoff ``(1 + sigma_out) * NA / lambda``, so on production grids the
kernel spectra carry almost all of their energy inside a small
low-frequency box.  :class:`SpectralConvolver` exploits that support:

1. take the mask spectra only on the transmitted band (``~(2b+1)^2`` of
   ``H*W`` coefficients per axis radius ``b``),
2. run the per-kernel inverse transforms on a small ``m x m`` subgrid
   with ``m >= 4b + 1`` — large enough that the *squared* field (band
   radius ``2b``) is alias-free,
3. accumulate the intensity on the subgrid and resample it to the full
   grid with one zero-padded FFT interpolation per corner.

Steps 2-3 are exact for a strictly band-limited kernel; the only
approximation is truncating the out-of-band leakage that spatial
cropping to the kernel ambit introduces (measured ~1e-3 max absolute
intensity error on the benchmark clips, i.e. well below a 0.1 nm
contour shift).  This engine is therefore a *screening* path: use it to
rank candidate masks cheaply (RL action scoring, coarse sweeps) and the
exact path (:meth:`OpticalKernelSet.convolve_intensity_batch`) for
reported metrology.  It typically runs 3-6x faster than the exact
per-mask loop because the per-kernel inverse FFTs shrink from ``H x W``
to ``m x m``.

Subgrid plans (band indices + prescaled kernel sub-spectra) are cached
per grid shape in a bounded LRU, sharing the kernel set's full-grid FFT
cache for construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import LithoError
from repro.litho.kernels import OpticalKernelSet


def next_fast_len(n: int) -> int:
    """Smallest 5-smooth integer >= ``n`` (fast FFT length)."""
    if n < 1:
        raise LithoError(f"FFT length must be positive, got {n}")
    best = n
    while True:
        m = best
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        if m == 1:
            return best
        best += 1


def _band_indices(n: int, radius: int) -> np.ndarray:
    """Indices of the centred frequency band of ``radius`` on an n-grid."""
    return np.r_[0 : radius + 1, n - radius : n]


@dataclass(frozen=True)
class _Plan:
    """Precomputed band bookkeeping for one full-grid shape."""

    shape: tuple[int, int]
    band: tuple[int, int]
    subgrid: tuple[int, int]
    effective: bool
    rows_src: np.ndarray
    cols_src: np.ndarray
    rows_dst: np.ndarray
    cols_dst: np.ndarray
    up_rows_src: np.ndarray
    up_cols_src: np.ndarray
    up_rows_dst: np.ndarray
    up_cols_dst: np.ndarray
    kernel_sub_spectra: np.ndarray | None


class SpectralConvolver:
    """Approximate batched intensity engine for one kernel set.

    ``band_scale`` widens (``> 1``) or narrows the retained frequency
    band relative to the pupil cutoff; 1.0 keeps exactly the transmitted
    band and is the accuracy/speed point quoted above.
    """

    def __init__(
        self, kernel_set: OpticalKernelSet, band_scale: float = 1.0
    ) -> None:
        if kernel_set.cutoff_per_nm is None:
            raise LithoError(
                "kernel set carries no pupil cutoff (legacy file?); "
                "spectral screening needs cutoff_per_nm"
            )
        if band_scale <= 0:
            raise LithoError(f"band_scale must be positive, got {band_scale}")
        self.kernel_set = kernel_set
        self.band_scale = band_scale
        self._plans: "OrderedDict[tuple[int, int], _Plan]" = OrderedDict()

    # -- plan construction --------------------------------------------------
    def _band_radius(self, n: int) -> int:
        period_nm = n * self.kernel_set.pixel_nm
        radius = int(
            np.ceil(self.kernel_set.cutoff_per_nm * period_nm * self.band_scale)
        )
        return min(radius, (n - 1) // 2)

    def plan(self, shape: tuple[int, int]) -> _Plan:
        """Band/subgrid plan for one grid shape (built once, LRU-cached)."""
        key = (int(shape[0]), int(shape[1]))
        cached = self._plans.get(key)
        if cached is not None:
            self._plans.move_to_end(key)
            return cached
        rows, cols = key
        b0, b1 = self._band_radius(rows), self._band_radius(cols)
        m0, m1 = next_fast_len(4 * b0 + 1), next_fast_len(4 * b1 + 1)
        effective = m0 < rows and m1 < cols
        rows_src = _band_indices(rows, b0)
        cols_src = _band_indices(cols, b1)
        rows_dst = _band_indices(m0, b0)
        cols_dst = _band_indices(m1, b1)
        sub_spectra = None
        if effective:
            full = self.kernel_set.kernel_spectra(key)
            scale = (m0 * m1) / (rows * cols)
            sub_spectra = np.zeros(
                (self.kernel_set.count, m0, m1), dtype=np.complex128
            )
            sub_spectra[:, rows_dst[:, None], cols_dst[None, :]] = (
                full[:, rows_src[:, None], cols_src[None, :]] * scale
            )
        built = _Plan(
            shape=key,
            band=(b0, b1),
            subgrid=(m0, m1),
            effective=effective,
            rows_src=rows_src,
            cols_src=cols_src,
            rows_dst=rows_dst,
            cols_dst=cols_dst,
            up_rows_src=_band_indices(m0, 2 * b0),
            up_cols_src=_band_indices(m1, 2 * b1),
            up_rows_dst=_band_indices(rows, 2 * b0),
            up_cols_dst=_band_indices(cols, 2 * b1),
            kernel_sub_spectra=sub_spectra,
        )
        self._plans[key] = built
        while len(self._plans) > self.kernel_set.fft_cache_capacity:
            self._plans.popitem(last=False)
        return built

    # -- convolution --------------------------------------------------------
    def convolve_intensity_batch(self, masks: np.ndarray) -> np.ndarray:
        """Screening intensities for a ``(B, H, W)`` mask stack.

        Falls back to the exact batched path when the grid is too small
        for the band to pay off (``m >= H``), so callers can use it
        unconditionally.
        """
        stack = self.kernel_set.validate_mask_batch(masks)
        if not self.plan(stack.shape[1:]).effective:
            return self.kernel_set.convolve_intensity_batch(stack)
        mask_ffts = self.kernel_set.fft.fft2(stack, axes=(-2, -1))
        return self.intensity_from_mask_ffts(mask_ffts)

    def intensity_from_mask_ffts(self, mask_ffts: np.ndarray) -> np.ndarray:
        """Screening intensities from precomputed full-grid mask spectra."""
        if mask_ffts.ndim != 3:
            raise LithoError(
                f"mask spectra must be 3-D (B, H, W), got shape {mask_ffts.shape}"
            )
        rows, cols = mask_ffts.shape[-2:]
        plan = self.plan((rows, cols))
        if not plan.effective:
            return self.kernel_set.intensity_from_mask_ffts(mask_ffts)
        batch = mask_ffts.shape[0]
        m0, m1 = plan.subgrid
        fft = self.kernel_set.fft
        sub = np.zeros((batch, m0, m1), dtype=np.complex128)
        sub[:, plan.rows_dst[:, None], plan.cols_dst[None, :]] = mask_ffts[
            :, plan.rows_src[:, None], plan.cols_src[None, :]
        ]
        intensity = np.zeros((batch, m0, m1), dtype=np.float64)
        for weight, kernel_sub in zip(
            self.kernel_set.weights, plan.kernel_sub_spectra
        ):
            field_k = fft.ifft2(sub * kernel_sub, axes=(-2, -1))
            intensity += weight * (field_k.real**2 + field_k.imag**2)
        # Exact zero-padded FFT resampling of the (band-limited) intensity.
        spectrum = fft.fft2(intensity, axes=(-2, -1))
        upscale = (rows * cols) / (m0 * m1)
        full = np.zeros((batch, rows, cols), dtype=np.complex128)
        full[:, plan.up_rows_dst[:, None], plan.up_cols_dst[None, :]] = (
            spectrum[:, plan.up_rows_src[:, None], plan.up_cols_src[None, :]]
            * upscale
        )
        return fft.ifft2(full, axes=(-2, -1)).real
