"""Aerial-image computation (thin wrapper over a kernel set)."""

from __future__ import annotations

import numpy as np

from repro.litho.kernels import OpticalKernelSet


def aerial_image(mask: np.ndarray, kernel_set: OpticalKernelSet) -> np.ndarray:
    """Partially-coherent aerial intensity of a rasterized mask.

    ``I(x) = sum_k w_k |(h_k * m)(x)|^2`` with circular convolution; the
    clip designs keep patterns away from the window border, so wraparound
    never reaches printable features.
    """
    return kernel_set.convolve_intensity(np.asarray(mask))
