"""Projection pupil with paraxial defocus.

The pupil is an ideal low-pass disk of radius ``NA / wavelength``.  Defocus
is modelled with the standard paraxial quadratic phase
``exp(-i * pi * wavelength * z * |f|^2)``, which is accurate to a fraction
of a wave for the small (tens of nm) defocus excursions the process corners
use.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NUMERICAL_APERTURE, WAVELENGTH_NM
from repro.errors import LithoError


def pupil_function(
    freqs: np.ndarray,
    defocus_nm: float = 0.0,
    wavelength_nm: float = WAVELENGTH_NM,
    numerical_aperture: float = NUMERICAL_APERTURE,
) -> np.ndarray:
    """Complex pupil transmission at the given frequency samples.

    Args:
        freqs: ``(n, 2)`` spatial-frequency samples (cycles/nm).
        defocus_nm: Focal-plane offset ``z``; 0 for nominal focus.
        wavelength_nm: Exposure wavelength.
        numerical_aperture: Projection-lens NA.

    Returns:
        ``(n,)`` complex array: 0 outside the pupil disk, unit-magnitude
        (defocus phase only) inside.
    """
    if wavelength_nm <= 0 or numerical_aperture <= 0:
        raise LithoError("wavelength and NA must be positive")
    cutoff = numerical_aperture / wavelength_nm
    f_sq = freqs[:, 0] ** 2 + freqs[:, 1] ** 2
    inside = f_sq <= cutoff * cutoff
    phase = np.exp(-1j * np.pi * wavelength_nm * defocus_nm * f_sq)
    return np.where(inside, phase, 0.0 + 0.0j)
