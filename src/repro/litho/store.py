"""Disk-persistent kernel-spectra store.

Frequency-native kernel sets build their band-limited SOCS spectra per
grid shape (:meth:`repro.litho.kernels.OpticalKernelSet.band_spectra`).
The build — a per-grid TCC assembly plus an eigendecomposition — costs
~20-50 ms per shape, which is cached in-process but paid again by every
fresh worker.  :class:`KernelSpectraStore` persists the finished
:class:`~repro.litho.kernels.GridBandSpectra` to disk, keyed by an
*optics fingerprint* (every input of the build: pixel pitch, focus,
source, wavelength, NA, SOCS truncation knobs) plus the grid shape, so a
warm store turns the per-shape warmup into one ``.npz`` read.

Correctness properties:

* The spectra build is FFT-free (pure ``numpy.linalg.eigh`` over the
  TCC), so stored spectra are independent of the configured FFT backend
  and a store can be shared across backends without keying on them.
* Stored arrays are persisted bit-for-bit (``savez``, no compression of
  the float payload semantics), so a warm load reproduces the in-process
  build exactly — simulation results do not depend on store state.
* Writes are atomic (temp file + ``os.replace``), so concurrent workers
  warming the same store can never serve a torn file.
* Unreadable, truncated, or mismatched entries are treated as misses:
  the spectra are rebuilt and the entry rewritten.

The store is opt-in: set ``LithoConfig(spectra_store="/path")``, or
export ``REPRO_SPECTRA_STORE=/path`` and let the ``python -m repro`` CLI
pick it up via :meth:`KernelSpectraStore.from_env` (library callers who
want the env fallback call ``from_env`` themselves — a
``LithographySimulator`` alone never reads the environment).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import zipfile

import numpy as np

from repro.errors import LithoError

STORE_FORMAT_VERSION = 2
"""Bump when the on-disk layout or the spectra semantics change; entries
with another version are ignored (treated as cold).  Version 2 added a
content checksum over the array payloads — a bit-flipped entry (disk
rot, foreign tools) is detected on load and rebuilt instead of silently
corrupting every simulation that warms from it."""

ORPHAN_TMP_MAX_AGE_S = 3600.0
"""Temp files older than this are presumed orphaned by a killed writer
and swept on the next :func:`open_store` of their root (an in-flight
atomic write lives milliseconds, not an hour)."""

_OPEN_STORES: dict[str, "KernelSpectraStore"] = {}
_OPEN_LOCK = threading.Lock()


def _normalize_root(root: str) -> str:
    """Canonical identity of a store directory.

    ``expanduser`` + ``realpath`` so a ``~``-prefixed path, a symlinked
    root, or a trailing slash all resolve to one key — two spellings of
    one directory must share one singleton (and one set of stats), never
    race each other as separate instances.
    """
    return os.path.realpath(os.path.expanduser(root))


def open_store(root: str) -> "KernelSpectraStore":
    """Per-root singleton store, so every simulator pointed at one
    directory shares one stats-bearing instance (kernel sets are cached
    process-wide and would otherwise report against a stale object)."""
    key = _normalize_root(root)
    with _OPEN_LOCK:
        store = _OPEN_STORES.get(key)
        if store is None:
            store = KernelSpectraStore(key)
            _OPEN_STORES[key] = store
            created = True
        else:
            created = False
    if created:
        # First open in this process: reclaim temp files abandoned by
        # writers that died mid-save (concurrent shard workers make
        # those a real possibility, not a theoretical one).
        store.sweep_orphans()
    return store

SPECTRA_STORE_ENV = "REPRO_SPECTRA_STORE"
"""Environment variable naming a default store directory."""


def optics_fingerprint(kernel_set) -> str:
    """Hex digest of every input that determines a set's band spectra.

    Two kernel sets with equal fingerprints build bit-identical
    :class:`~repro.litho.kernels.GridBandSpectra` for every grid shape,
    so their store entries are interchangeable.  The FFT backend is
    deliberately excluded — the build never runs a transform.
    """
    if not kernel_set.is_native:
        raise LithoError(
            "legacy spatial kernel sets have no band spectra to fingerprint"
        )
    source = kernel_set.source
    payload = {
        "version": STORE_FORMAT_VERSION,
        "pixel_nm": repr(float(kernel_set.pixel_nm)),
        "defocus_nm": repr(float(kernel_set.defocus_nm)),
        "source_shape": source.shape,
        "source_sigma": repr(float(source.sigma)),
        "source_sigma_in": repr(float(source.sigma_in)),
        "source_sigma_out": repr(float(source.sigma_out)),
        "wavelength_nm": repr(float(kernel_set.wavelength_nm)),
        "numerical_aperture": repr(float(kernel_set.numerical_aperture)),
        "max_kernels": int(kernel_set.max_kernels),
        "energy_fraction": repr(float(kernel_set.energy_fraction)),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:20]


def _entry_checksum(
    shape, weights, band, subgrid, compact, sub_spectra
) -> str:
    """Content digest of one store entry: every metadata field plus the
    raw bytes of both array payloads.  ``load`` recomputes and compares,
    so a bit flip anywhere in the entry reads as a miss, never as
    subtly-wrong spectra."""
    digest = hashlib.sha256()
    digest.update(json.dumps({
        "version": STORE_FORMAT_VERSION,
        "shape": [int(v) for v in shape],
        "band": [int(v) for v in band],
        "subgrid": [int(v) for v in subgrid],
        "compact": bool(compact),
    }, sort_keys=True).encode("utf-8"))
    digest.update(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
    digest.update(
        np.ascontiguousarray(sub_spectra, dtype=np.complex128).tobytes()
    )
    return digest.hexdigest()


class KernelSpectraStore:
    """One directory of persisted per-(optics, shape) band spectra.

    Instances hash and compare by their (absolute) root path, so they can
    participate in :func:`repro.litho.kernels.build_kernel_set`'s cache
    key — two simulators pointing at the same directory share one kernel
    set.
    """

    def __init__(self, root: str) -> None:
        if not root:
            raise LithoError("spectra store needs a directory path")
        self.root = _normalize_root(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._stats_lock = threading.Lock()

    # -- identity -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, KernelSpectraStore) and other.root == self.root

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.root))

    def __repr__(self) -> str:
        return f"KernelSpectraStore(root={self.root!r})"

    @classmethod
    def from_env(cls) -> "KernelSpectraStore | None":
        """Store named by ``REPRO_SPECTRA_STORE``, or ``None`` if unset."""
        root = os.environ.get(SPECTRA_STORE_ENV, "").strip()
        return open_store(root) if root else None

    # -- paths --------------------------------------------------------------
    def entry_path(self, fingerprint: str, shape: tuple[int, int]) -> str:
        return os.path.join(
            self.root, f"{fingerprint}_{int(shape[0])}x{int(shape[1])}.npz"
        )

    def stats(self) -> dict[str, int]:
        with self._stats_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
            }

    def entry_count(self) -> int:
        """Number of persisted spectra files currently in the store
        (in-flight/orphaned ``.tmp-spectra-*`` files don't count)."""
        try:
            return sum(
                1
                for name in os.listdir(self.root)
                if name.endswith(".npz") and not name.startswith(".")
            )
        except OSError:
            return 0

    def sweep_orphans(self, max_age_s: float = ORPHAN_TMP_MAX_AGE_S) -> int:
        """Delete temp files abandoned by writers that died mid-save.

        An atomic write holds its ``.tmp-spectra-*`` file for
        milliseconds; anything older than ``max_age_s`` is an orphan
        (e.g. a shard worker killed between ``mkstemp`` and
        ``os.replace``).  Races are benign: a concurrent sweeper or the
        original writer finishing first just makes the unlink a no-op.
        Returns the number of files removed.
        """
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        now = time.time()
        removed = 0
        for name in names:
            if not name.startswith(".tmp-spectra-"):
                continue
            path = os.path.join(self.root, name)
            try:
                if now - os.path.getmtime(path) >= max_age_s:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass
        return removed

    # -- persistence --------------------------------------------------------
    def save(self, fingerprint: str, spectra) -> str:
        """Persist one built :class:`GridBandSpectra` (atomic write,
        content-checksummed)."""
        # Local import: litho must not import the service package at
        # module load (service builds on litho, not the reverse).
        from repro.service.faults import corrupt_file, maybe_fault

        os.makedirs(self.root, exist_ok=True)
        path = self.entry_path(fingerprint, spectra.shape)
        checksum = _entry_checksum(
            spectra.shape, spectra.weights, spectra.band,
            spectra.subgrid, spectra.compact, spectra.sub_spectra,
        )
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-spectra-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    version=STORE_FORMAT_VERSION,
                    shape=np.asarray(spectra.shape, dtype=np.int64),
                    weights=spectra.weights,
                    band=np.asarray(spectra.band, dtype=np.int64),
                    subgrid=np.asarray(spectra.subgrid, dtype=np.int64),
                    compact=bool(spectra.compact),
                    sub_spectra=spectra.sub_spectra,
                    checksum=checksum,
                )
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if maybe_fault("store.save", path) is not None:
            # Mid-file lands in array payload: the kind of silent bit
            # rot only the content checksum can catch (the zip layer
            # parses fine, the numbers are just wrong).
            corrupt_file(path, offset=os.path.getsize(path) // 2)
        with self._stats_lock:
            self.writes += 1
        return path

    def load(self, fingerprint: str, shape: tuple[int, int]):
        """Reload spectra for one (optics, shape), or ``None`` on a miss.

        Any unreadable or inconsistent entry counts as a miss: the caller
        rebuilds and overwrites it.
        """
        from repro.litho.kernels import GridBandSpectra, _band_indices
        from repro.service.faults import maybe_fault

        maybe_fault("store.load", fingerprint)
        key = (int(shape[0]), int(shape[1]))
        path = self.entry_path(fingerprint, key)
        try:
            with np.load(path) as data:
                if int(data["version"]) != STORE_FORMAT_VERSION:
                    raise ValueError("store format version mismatch")
                stored_shape = tuple(int(v) for v in data["shape"])
                if stored_shape != key:
                    raise ValueError("stored shape mismatch")
                weights = np.asarray(data["weights"], dtype=np.float64)
                band = tuple(int(v) for v in data["band"])
                subgrid = tuple(int(v) for v in data["subgrid"])
                compact = bool(data["compact"])
                sub_spectra = np.asarray(
                    data["sub_spectra"], dtype=np.complex128
                )
                stored_checksum = str(data["checksum"])
            if sub_spectra.shape != (len(weights), *subgrid):
                raise ValueError("stored sub_spectra shape mismatch")
            if len(band) != 2 or len(subgrid) != 2:
                raise ValueError("stored band metadata malformed")
            if _entry_checksum(
                key, weights, band, subgrid, compact, sub_spectra
            ) != stored_checksum:
                raise ValueError("stored content checksum mismatch")
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            # Concurrent readers/writers only ever observe a complete old
            # or complete new entry (atomic replace); everything else —
            # torn copies from foreign tools, version skew, deleted files
            # — lands here and is rebuilt.
            with self._stats_lock:
                self.misses += 1
            return None
        rows, cols = key
        b0, b1 = band
        m0, m1 = subgrid
        with self._stats_lock:
            self.hits += 1
        # The index vectors are pure functions of (shape, band, subgrid);
        # rebuilding them here keeps the on-disk payload minimal.
        return GridBandSpectra(
            shape=key,
            weights=weights,
            band=(b0, b1),
            subgrid=(m0, m1),
            compact=compact,
            sub_spectra=sub_spectra,
            rows_src=_band_indices(rows, b0),
            cols_src=_band_indices(cols, b1),
            rows_dst=_band_indices(m0, b0),
            cols_dst=_band_indices(m1, b1),
            up_rows_src=_band_indices(m0, 2 * b0),
            up_cols_src=_band_indices(m1, 2 * b1),
            up_rows_dst=_band_indices(rows, 2 * b0),
            up_cols_dst=_band_indices(cols, 2 * b1),
        )
