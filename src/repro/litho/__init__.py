"""Partially-coherent lithography simulation substrate.

The paper evaluates masks with a Calibre-compatible simulator from an
industry partner.  We reproduce the same physics class used by the academic
baselines (ICCAD-2013 contest style): Hopkins imaging decomposed into a sum
of coherent systems (SOCS).  The transmission cross coefficient (TCC) is
built *frequency-natively* — directly on each simulation grid's DFT
frequency lattice — and eigendecomposed into exactly band-limited kernel
spectra, so the compact pupil-band convolution engine is exact (there is
no separate screening mode).  A constant-threshold resist model with
dose/defocus process corners yields printed contours and the PV band.
"""

from repro.backend import (
    ArrayBackend,
    FFTBackend,
    next_fast_len,
    resolve_backend,
    resolve_fft_backend,
    scipy_fft_available,
    torch_available,
)
from repro.litho.source import SourceSpec, source_weights
from repro.litho.pupil import pupil_function
from repro.litho.tcc import build_tcc, build_tcc_grid, socs_kernels, socs_spectra
from repro.litho.kernels import (
    GridBandSpectra,
    OpticalKernelSet,
    build_kernel_set,
)
from repro.litho.imaging import aerial_image
from repro.litho.resist import printed_image
from repro.litho.process import ProcessCorner, nominal_corner, standard_corners
from repro.litho.simulator import LithographySimulator, LithoConfig, LithoResult
from repro.litho.store import KernelSpectraStore, open_store, optics_fingerprint

__all__ = [
    "ArrayBackend",
    "FFTBackend",
    "next_fast_len",
    "resolve_backend",
    "resolve_fft_backend",
    "scipy_fft_available",
    "torch_available",
    "SourceSpec",
    "source_weights",
    "pupil_function",
    "build_tcc",
    "build_tcc_grid",
    "socs_kernels",
    "socs_spectra",
    "GridBandSpectra",
    "OpticalKernelSet",
    "build_kernel_set",
    "aerial_image",
    "printed_image",
    "ProcessCorner",
    "nominal_corner",
    "standard_corners",
    "LithographySimulator",
    "LithoConfig",
    "LithoResult",
    "KernelSpectraStore",
    "open_store",
    "optics_fingerprint",
]
