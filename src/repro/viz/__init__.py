"""Visualization: terminal ASCII rendering and PGM image dumps (Fig. 6)."""

from repro.viz.ascii_art import ascii_image
from repro.viz.pgm import save_pgm

__all__ = ["ascii_image", "save_pgm"]
