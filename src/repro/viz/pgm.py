"""PGM (portable graymap) image dumps — dependency-free Fig. 6 panels."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def save_pgm(image: np.ndarray, path: str) -> None:
    """Write a 2-D array as binary PGM (P5), auto-scaled to 0..255.

    Row 0 of the array (layout bottom) is written as the image's bottom row.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ReproError(f"expected a 2-D image, got shape {arr.shape}")
    peak = arr.max()
    scaled = (arr / peak * 255.0 if peak > 0 else arr).astype(np.uint8)
    flipped = scaled[::-1]  # PGM rows go top-down; layout y goes up
    header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode()
    with open(path, "wb") as handle:
        handle.write(header + flipped.tobytes())
