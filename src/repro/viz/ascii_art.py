"""Terminal rendering of binary/gray layout images."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

_SHADES = " .:-=+*#%@"


def ascii_image(image: np.ndarray, width: int = 64) -> str:
    """Downsample a 2-D image to an ASCII block (row 0 printed last so the
    layout's +y points up on screen)."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ReproError(f"expected a 2-D image, got shape {arr.shape}")
    rows, cols = arr.shape
    width = min(width, cols)
    height = max(1, int(round(width * rows / cols / 2)))  # chars are ~2:1
    row_edges = np.linspace(0, rows, height + 1).astype(int)
    col_edges = np.linspace(0, cols, width + 1).astype(int)
    peak = arr.max() if arr.max() > 0 else 1.0
    lines = []
    for r in range(height - 1, -1, -1):
        line = []
        for c in range(width):
            block = arr[row_edges[r] : row_edges[r + 1], col_edges[c] : col_edges[c + 1]]
            level = float(block.mean()) / peak
            line.append(_SHADES[min(int(level * (len(_SHADES) - 1) + 0.5), 9)])
        lines.append("".join(line))
    return "\n".join(lines)
