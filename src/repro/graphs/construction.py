"""Segment graph construction (paper Section 3.2, "Graph Construction").

Each graph node is one boundary segment; an undirected edge connects two
nodes whenever their control points are closer than a threshold (250 nm in
the paper).  The node set and edge set are fixed for the whole OPC run —
only node features are refreshed as the mask moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import GRAPH_EDGE_THRESHOLD_NM
from repro.errors import GraphError
from repro.geometry.segmentation import Segment


@dataclass
class SegmentGraph:
    """Fixed-topology proximity graph over a clip's segments.

    Attributes:
        segments: The node list (graph node ``i`` is ``segments[i]``).
        neighbors: Adjacency lists by node index (sorted, no self loops).
        threshold_nm: Distance threshold used to build the edges.
    """

    segments: list[Segment]
    neighbors: list[list[int]]
    threshold_nm: float
    _edges: list[tuple[int, int]] | None = field(default=None, repr=False)

    @property
    def n_nodes(self) -> int:
        return len(self.segments)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Undirected edge list with ``i < j``."""
        if self._edges is None:
            self._edges = [
                (i, j)
                for i, adj in enumerate(self.neighbors)
                for j in adj
                if i < j
            ]
        return self._edges

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def degree(self, node: int) -> int:
        return len(self.neighbors[node])

    def to_networkx(self):
        """Optional networkx view, for analysis and tests."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_nodes))
        graph.add_edges_from(self.edges)
        return graph


def build_segment_graph(
    segments: list[Segment],
    threshold_nm: float = GRAPH_EDGE_THRESHOLD_NM,
) -> SegmentGraph:
    """Connect segments whose control points are within ``threshold_nm``."""
    if not segments:
        raise GraphError("cannot build a graph over zero segments")
    if threshold_nm <= 0:
        raise GraphError(f"threshold must be positive, got {threshold_nm}")

    controls = np.asarray([s.control for s in segments], dtype=np.float64)
    deltas = controls[:, None, :] - controls[None, :, :]
    distances = np.hypot(deltas[..., 0], deltas[..., 1])
    close = distances < threshold_nm
    np.fill_diagonal(close, False)

    neighbors = [sorted(np.nonzero(close[i])[0].tolist()) for i in range(len(segments))]
    return SegmentGraph(
        segments=list(segments), neighbors=neighbors, threshold_nm=threshold_nm
    )
