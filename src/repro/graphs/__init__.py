"""Segment-graph construction and RNN visit ordering."""

from repro.graphs.construction import SegmentGraph, build_segment_graph
from repro.graphs.ordering import bfs_order, nearest_neighbor_order, snake_order

__all__ = [
    "SegmentGraph",
    "build_segment_graph",
    "snake_order",
    "nearest_neighbor_order",
    "bfs_order",
]
