"""Visit orders for the RNN's sequential decision pass.

The paper processes node embeddings "sequentially" with an RNN but does
not specify the order.  We provide three deterministic, locality-
preserving options; the default (snake order) sorts control points into
horizontal bands traversed boustrophedon-style, so consecutive RNN steps
are spatial neighbours — which is what lets the hidden state coordinate
nearby segments.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graphs.construction import SegmentGraph


def snake_order(graph: SegmentGraph, band_nm: float = 150.0) -> list[int]:
    """Boustrophedon order: sort into y-bands, alternate x direction."""
    if band_nm <= 0:
        raise GraphError(f"band height must be positive, got {band_nm}")
    controls = np.asarray([s.control for s in graph.segments])
    bands = np.floor(controls[:, 1] / band_nm).astype(np.int64)
    order: list[int] = []
    for band_no, band in enumerate(np.unique(bands)):
        members = np.nonzero(bands == band)[0]
        xs = controls[members, 0]
        ys = controls[members, 1]
        ascending = band_no % 2 == 0
        keys = np.lexsort((ys, xs if ascending else -xs))
        order.extend(members[keys].tolist())
    return order


def nearest_neighbor_order(graph: SegmentGraph) -> list[int]:
    """Greedy chain: start at the lexicographically first control point,
    repeatedly hop to the nearest unvisited segment."""
    controls = np.asarray([s.control for s in graph.segments])
    n = len(controls)
    start = int(np.lexsort((controls[:, 0], controls[:, 1]))[0])
    visited = np.zeros(n, dtype=bool)
    order = [start]
    visited[start] = True
    current = start
    for _ in range(n - 1):
        deltas = controls - controls[current]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        dists[visited] = np.inf
        current = int(np.argmin(dists))
        visited[current] = True
        order.append(current)
    return order


def bfs_order(graph: SegmentGraph) -> list[int]:
    """Breadth-first order over the proximity graph, restarting at the
    lowest-index unvisited node for each component."""
    n = graph.n_nodes
    visited = [False] * n
    order: list[int] = []
    for root in range(n):
        if visited[root]:
            continue
        queue = deque([root])
        visited[root] = True
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbor in graph.neighbors[node]:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    queue.append(neighbor)
    return order


ORDERINGS = {
    "snake": snake_order,
    "nearest": nearest_neighbor_order,
    "bfs": bfs_order,
}


def get_ordering(name: str):
    """Look up an ordering strategy by name."""
    try:
        return ORDERINGS[name]
    except KeyError:
        raise GraphError(
            f"unknown ordering {name!r}; choose from {sorted(ORDERINGS)}"
        ) from None
