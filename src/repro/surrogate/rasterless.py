"""Rasterless band features: analytic pupil-band DFT of slab geometry.

The antialiased raster of a rectilinear mask is a sum of per-slab
pixel-coverage outer products (see :func:`repro.geometry.raster.rasterize`),
so any DFT coefficient of the raster factorizes per slab into a product
of two one-dimensional coverage transforms:

    F[kr, kc] = sum_slabs  (sum_r wy[r] e^{-2 pi i kr r / H})
                         * (sum_c wx[c] e^{-2 pi i kc c / W})

and each one-dimensional sum has a closed form (fringe pixels plus a
geometric series over the fully covered interior).  The pupil band holds
only ``(2 b0 + 1) x (b1 + 1)`` coefficients, so screening can go straight
from polygon slabs to band features without ever building the ``H x W``
image — this removes the rasterization *and* the full-width gather GEMM
from the surrogate's hot path.  Values agree with rasterize-then-gather
to float round-off (same linear map, different summation order).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SurrogateError
from repro.geometry.raster import Grid, slab_decomposition
from repro.litho.kernels import (
    GridBandSpectra,
    _band_indices,
    band_coeffs_to_subgrid,
)


def interval_coverage_dft(
    lo: np.ndarray, hi: np.ndarray, n_pixels: int, freqs: np.ndarray
) -> np.ndarray:
    """Closed-form ``sum_p w_p z^p`` for pixel coverage of ``[lo, hi]``.

    ``w_p = |[p, p + 1] ∩ [lo, hi]|`` (pixel units) and
    ``z = exp(-2 pi i f / n_pixels)`` — the 1-D DFT of the antialiased
    coverage of one interval, evaluated at frequencies ``freqs`` for a
    whole batch of intervals at once.

    Args:
        lo, hi: ``(S,)`` interval bounds in pixel units, already clipped
            to ``[0, n_pixels]`` with ``lo < hi``.
        freqs: ``(K,)`` integer DFT frequencies (negative values fine).

    Returns:
        ``(S, K)`` complex transform values.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    theta = (-2j * np.pi / n_pixels) * np.asarray(freqs, dtype=np.float64)
    first = np.floor(lo).astype(np.int64)
    last = np.ceil(hi).astype(np.int64) - 1
    z_first = np.exp(first[:, None] * theta[None, :])
    z_last = np.exp(last[:, None] * theta[None, :])
    single = first == last
    head = np.where(single, hi - lo, first + 1 - lo)
    out = head[:, None] * z_first
    multi = ~single
    if np.any(multi):
        out[multi] += (hi - last)[multi, None] * z_last[multi]
    interior = last - first - 1
    has_interior = interior > 0
    if np.any(has_interior):
        z = np.exp(theta)
        at_one = np.isclose(z, 1.0)
        denom = np.where(at_one, 1.0, 1.0 - z)
        # sum_{p = first + 1}^{last - 1} z^p  (geometric series)
        geo = (z_first[has_interior] * z - z_last[has_interior]) / denom
        geo[:, at_one] = interior[has_interior, None].astype(np.float64)
        out[has_interior] += geo
    return out


def _collect_slabs(
    polygon_sets: list, grid: Grid
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Window-clipped slabs of every mask, flattened with per-mask counts."""
    px = grid.pixel_nm
    x_max = grid.cols * px
    y_max = grid.rows * px
    x_lo, x_hi, y_lo, y_hi, counts = [], [], [], [], []
    for polygons in polygon_sets:
        count = 0
        for polygon in polygons:
            for sx_lo, sx_hi, sy_lo, sy_hi in slab_decomposition(polygon):
                a = max(sx_lo - grid.x0, 0.0)
                b = min(sx_hi - grid.x0, x_max)
                c = max(sy_lo - grid.y0, 0.0)
                d = min(sy_hi - grid.y0, y_max)
                if a >= b or c >= d:
                    continue
                x_lo.append(a / px)
                x_hi.append(b / px)
                y_lo.append(c / px)
                y_hi.append(d / px)
                count += 1
        counts.append(count)
    return (
        np.array(x_lo),
        np.array(x_hi),
        np.array(y_lo),
        np.array(y_hi),
        np.array(counts, dtype=np.int64),
    )


def polygon_band_coeffs(
    polygon_sets: list, grid: Grid, band: GridBandSpectra
) -> np.ndarray:
    """Pupil-band DFT coefficients of each mask's antialiased raster.

    ``polygon_sets`` is one list of rectilinear polygons per mask (assumed
    mutually disjoint per mask, as :func:`~repro.geometry.raster.rasterize`
    assumes).  Returns ``(B, 2 b0 + 1, b1 + 1)`` complex coefficients in
    the same frequency order as the cached gather matrices — equal to
    ``rasterize`` followed by the band gather, computed without the image.
    """
    if grid.shape != band.shape:
        raise SurrogateError(
            f"grid shape {grid.shape} does not match band shape {band.shape}"
        )
    b0, b1 = band.band
    row_freqs = _band_indices(grid.rows, b0)
    col_freqs = _band_indices(grid.cols, b1)
    x_lo, x_hi, y_lo, y_hi, counts = _collect_slabs(polygon_sets, grid)
    coeffs = np.zeros(
        (len(polygon_sets), row_freqs.size, col_freqs.size),
        dtype=np.complex128,
    )
    if x_lo.size == 0:
        return coeffs
    row_dft = interval_coverage_dft(y_lo, y_hi, grid.rows, row_freqs)
    col_dft = interval_coverage_dft(x_lo, x_hi, grid.cols, col_freqs)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for index in range(len(polygon_sets)):
        lo, hi = offsets[index], offsets[index + 1]
        if lo == hi:
            continue
        coeffs[index] = row_dft[lo:hi].T @ col_dft[lo:hi]
    return coeffs


def rasterless_subgrid_masks(
    polygon_sets: list, grid: Grid, band: GridBandSpectra
) -> np.ndarray:
    """Band-limited subgrid mask stack straight from polygon slabs.

    Matches ``band_limited_mask_subgrid_direct(rasterize(...), band)`` to
    float round-off — the surrogate screening feature fast path.
    """
    return band_coeffs_to_subgrid(polygon_band_coeffs(polygon_sets, grid, band), band)
