"""Learned litho surrogate: CFNO-lite screening with exact verification.

The subsystem ROADMAP item 3 asked for: autograd spectral ops power a
band-limited Fourier neural operator (:class:`CFNOLite`) that predicts
per-corner aerial intensity on the pupil-band subgrid; the exact engine
labels its training data (:mod:`repro.surrogate.data`), litho-guided
self-training closes the fidelity gap (:mod:`repro.surrogate.train`);
and the ``surrogate`` service engine (:class:`SurrogateOPC`) uses it to
*screen* candidate moves only — every reported number still comes from
exact metrology.
"""

from repro.surrogate.data import (
    SurrogateDataset,
    exact_subgrid_labels,
    generate_dataset,
    perturbed_masks,
)
from repro.surrogate.engine import SurrogateConfig, SurrogateOPC, SurrogateScreener
from repro.surrogate.model import (
    CFNOLite,
    SurrogateModel,
    pupil_modes,
    surrogate_features,
    surrogate_features_from_polygons,
)
from repro.surrogate.rasterless import (
    interval_coverage_dft,
    polygon_band_coeffs,
    rasterless_subgrid_masks,
)
from repro.surrogate.train import (
    SurrogateTrainConfig,
    TrainReport,
    load_surrogate,
    save_surrogate,
    train_surrogate,
)

__all__ = [
    "CFNOLite",
    "SurrogateConfig",
    "SurrogateDataset",
    "SurrogateModel",
    "SurrogateOPC",
    "SurrogateScreener",
    "SurrogateTrainConfig",
    "TrainReport",
    "exact_subgrid_labels",
    "generate_dataset",
    "interval_coverage_dft",
    "load_surrogate",
    "perturbed_masks",
    "polygon_band_coeffs",
    "pupil_modes",
    "rasterless_subgrid_masks",
    "save_surrogate",
    "surrogate_features",
    "surrogate_features_from_polygons",
    "train_surrogate",
]
