"""CFNO-lite: a band-limited Fourier neural operator litho surrogate.

The model maps band-limited mask rasters to per-corner aerial intensity
on the pupil-band *subgrid* — the cheapest alias-free representation of
both quantities (see ``GridBandSpectra``).  The architecture mirrors the
physics: the exact SOCS forward model is

    I(x) = sum_k w_k |h_k * m|^2(x),

and the real/imaginary parts of each band-limited coherent field
``h_k * m`` are themselves realizable as single real-output spectral-conv
channels, so

    SpectralConv2d(1 -> width) -> channelwise square -> 1x1 Conv2d

*contains* the exact operator (width >= 2K channels per corner) and
training recovers it from labeled pairs.  Running on the ~30x30 subgrid
instead of the 256^2 full grid is where the 10-100x screening speed
comes from; :func:`~repro.litho.kernels.band_values_at_pixels` lifts
predictions to full-grid measure-point pixels through the same resample
map exact metrology uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.errors import SurrogateError
from repro.litho.kernels import (
    GridBandSpectra,
    OpticalKernelSet,
    band_limited_mask_subgrid_direct,
    band_values_at_pixels,
)
from repro.metrology.contour import ContourStencilPlan, SparseAerial
from repro.metrology.epe import measure_epe_grouped_sparse
from repro.nn import Conv2d, Module, SpectralConv2d, Tensor
from repro.surrogate.rasterless import rasterless_subgrid_masks

#: Output channels: nominal-focus and defocus aerial intensity.  The
#: dose corners share the defocus aerial (see ``LithoResult``), so two
#: channels cover all three process corners.
CORNERS = 2


class CFNOLite(Module):
    """Spectral-conv encoder + squared-field mixing head."""

    def __init__(
        self,
        modes: tuple[int, int],
        width: int = 24,
        corners: int = CORNERS,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.modes = (int(modes[0]), int(modes[1]))
        self.width = int(width)
        self.corners = int(corners)
        if self.width < 1 or self.corners < 1:
            raise SurrogateError(
                f"width/corners must be >= 1, got {width}/{corners}"
            )
        self.spectral = SpectralConv2d(1, self.width, self.modes, rng=rng)
        self.mix = Conv2d(self.width, self.corners, kernel_size=1, rng=rng)
        # Keyed (h, w, backend.array_identity): the matrices are built
        # host-side once, then materialized per array namespace/device so
        # a backend swap can never serve matrices resident elsewhere.
        self._fast_idft: dict[tuple, tuple] = {}

    def forward(self, x: Tensor) -> Tensor:
        """``(B, 1, m0, m1)`` band-limited mask -> ``(B, corners, m0, m1)``."""
        fields = self.spectral(x)
        return self.mix(fields * fields)

    def _fast_idft_matrices(
        self, h: int, w: int, backend: ArrayBackend
    ) -> tuple:
        """Cached inverse-DFT matrices lifting the band-limited spectrum.

        The mixed spectrum is zero outside ``2 m1`` rows and ``m2``
        columns, so the inverse transform is two small GEMMs instead of
        ``B * width`` pocketfft calls (whose per-transform overhead
        dominates at 30x30): ``fields = Re(rows_mat @ S @ cols_mat)``
        with the rfft column-Hermitian doubling folded into
        ``cols_mat``.  Both matrices are built in host float64/complex128
        and held in the backend's native representation (a passthrough
        for the numpy family, a device tensor for torch).
        """
        key = (h, w, backend.array_identity)
        cached = self._fast_idft.get(key)
        if cached is not None:
            return cached
        m1, m2 = self.modes
        row_freqs = np.concatenate([np.arange(m1), np.arange(h - m1, h)])
        rows_mat = (
            np.exp((2j * np.pi / h) * np.outer(np.arange(h), row_freqs)) / h
        )
        doubling = np.full(m2, 2.0)
        doubling[0] = 1.0
        if w % 2 == 0 and m2 - 1 == w // 2:
            doubling[-1] = 1.0
        cols_mat = (
            np.exp((2j * np.pi / w) * np.outer(np.arange(m2), np.arange(w)))
            * (doubling[:, None] / w)
        )
        pair = (backend.to_device(rows_mat), backend.to_device(cols_mat))
        self._fast_idft[key] = pair
        return pair

    def forward_fast(self, x, backend: ArrayBackend | None = None):
        """Inference-only array forward, equal to :meth:`forward` to
        float round-off.

        The autograd path builds a Tensor graph per op; at screening
        batch sizes that Python overhead costs more than the arithmetic.
        This replays the same math — band-limited spectral mix, square,
        1x1 channel mix — directly on arrays, with the inverse transform
        done by cached band-limited DFT GEMMs.

        ``backend=None`` (and any numpy-family backend) executes the
        historical host-numpy path bit-for-bit; under the torch backend
        the rfft2 and both GEMMs run on ``backend.device`` and the
        result is returned device-resident (callers hand it to
        :func:`~repro.litho.kernels.band_values_at_pixels`, which
        converts to host at the boundary).  All intermediates are pinned
        float64/complex128 regardless of ``torch.set_default_dtype``.
        """
        backend = backend or resolve_backend("numpy", 1)
        x = backend.asarray_f64(x)
        if x.ndim != 4 or x.shape[1] != 1:
            raise SurrogateError(
                "forward_fast expects (B, 1, m0, m1) input, got "
                f"{tuple(x.shape)}"
            )
        m1, m2 = self.modes
        h, w = int(x.shape[-2]), int(x.shape[-1])
        spec = backend.rfft2(x, axes=(-2, -1))
        w_pos = backend.to_device(
            self.spectral.weight_pos.data[..., 0]
            + 1j * self.spectral.weight_pos.data[..., 1]
        )
        w_neg = backend.to_device(
            self.spectral.weight_neg.data[..., 0]
            + 1j * self.spectral.weight_neg.data[..., 1]
        )
        mixed = backend.concat(
            [
                backend.einsum("bcij,ocij->boij", spec[:, :, :m1, :m2], w_pos),
                backend.einsum(
                    "bcij,ocij->boij", spec[:, :, h - m1 :, :m2], w_neg
                ),
            ],
            axis=2,
        )
        rows_mat, cols_mat = self._fast_idft_matrices(h, w, backend)
        fields = (rows_mat @ mixed @ cols_mat).real
        squared = fields * fields
        out = backend.einsum(
            "oc,bchw->bohw",
            backend.to_device(self.mix.weight.data[:, :, 0, 0]),
            squared,
        )
        return out + backend.to_device(self.mix.bias.data.reshape(1, -1, 1, 1))


def pupil_modes(band: GridBandSpectra) -> tuple[int, int]:
    """Spectral-conv mode counts covering the optics pupil band.

    ``(b0 + 1, b1 + 1)`` retains rows ``-b0..b0`` (positive and negative
    halves) and columns ``0..b1`` of the half-width spectrum — exactly
    the frequencies the projection optics pass, and nothing more.
    """
    b0, b1 = band.band
    return (b0 + 1, b1 + 1)


def _focus_kernel_set(simulator) -> OpticalKernelSet:
    nominal = simulator.corners()[0]
    return simulator.kernel_set(nominal.defocus_nm)


def _band_geometry(simulator, grid) -> tuple[GridBandSpectra, OpticalKernelSet]:
    """The grid's compact pupil band and the focus kernel set."""
    kernel_set = _focus_kernel_set(simulator)
    band = kernel_set.band_spectra(grid.shape)
    if not band.compact:
        raise SurrogateError(
            f"the {grid.shape} grid's pupil band is not compact; the "
            "surrogate only accelerates band-limited grids"
        )
    return band, kernel_set


def surrogate_features(
    masks: np.ndarray, simulator, grid
) -> tuple[np.ndarray, GridBandSpectra, OpticalKernelSet]:
    """Model input features for a ``(B, H, W)`` mask raster stack.

    The pupil-band gather yields the band-limited mask on the subgrid
    (physical 0..1 transmission scale) — everything the optics can see of
    the mask — via the direct separable-DFT route
    (:func:`~repro.litho.kernels.band_limited_mask_subgrid_direct`),
    which skips the full-grid forward FFT entirely.  Returns the ``(B,
    1, m0, m1)`` feature stack together with the band geometry and the
    focus kernel set (whose phase-matrix cache the prediction path
    reuses).  Masks may arrive device-resident under a device backend;
    features stay in the kernel set's native array representation.
    """
    band, kernel_set = _band_geometry(simulator, grid)
    masks = kernel_set.fft.asarray_f64(masks)
    if masks.ndim != 3:
        raise SurrogateError(
            f"mask stack must be 3-D (B, H, W), got shape {tuple(masks.shape)}"
        )
    sub = band_limited_mask_subgrid_direct(masks, band, kernel_set.fft)
    return sub[:, None, :, :], band, kernel_set


def surrogate_features_from_polygons(
    polygon_sets: list, simulator, grid
) -> tuple[np.ndarray, GridBandSpectra, OpticalKernelSet]:
    """:func:`surrogate_features` straight from mask polygons, no raster.

    One list of rectilinear polygons per candidate mask; the analytic
    slab transform (:mod:`repro.surrogate.rasterless`) produces the same
    band-limited subgrid features as rasterize-then-gather to float
    round-off, at a fraction of the cost — the screening hot path.
    """
    band, kernel_set = _band_geometry(simulator, grid)
    sub = rasterless_subgrid_masks(polygon_sets, grid, band)
    return sub[:, None, :, :], band, kernel_set


@dataclass
class SurrogateModel:
    """A trained CFNO-lite plus the litho-facing prediction paths."""

    net: CFNOLite

    def predict_subgrid(
        self, masks: np.ndarray, simulator, grid
    ) -> tuple[np.ndarray, GridBandSpectra, OpticalKernelSet]:
        """Predicted per-corner subgrid intensity ``(B, corners, m0, m1)``.

        Always returns host numpy; under a device backend the forward
        runs on-device and only the final intensity crosses back.
        """
        features, band, kernel_set = surrogate_features(masks, simulator, grid)
        backend = kernel_set.fft
        predicted = backend.to_host(self.net.forward_fast(features, backend))
        return predicted, band, kernel_set

    def predict_epe_totals(
        self,
        masks: np.ndarray,
        simulator,
        grid,
        plan: ContourStencilPlan,
        threshold: float,
    ) -> np.ndarray:
        """Predicted summed-|EPE| per mask, for candidate *ranking* only.

        The nominal-corner prediction lifts to the plan's stencil pixels
        through :func:`~repro.litho.kernels.band_values_at_pixels` (the
        same direct DFT gather exact sparse metrology uses) and resolves
        through the shared contour-crossing rule — so the only
        approximation in the loop is the learned intensity itself.
        Never report these numbers: the exact engine re-evaluates
        whichever candidate wins.
        """
        features, band, kernel_set = surrogate_features(masks, simulator, grid)
        return self._totals_from_features(features, band, kernel_set, plan, threshold)

    def predict_epe_totals_from_polygons(
        self,
        polygon_sets: list,
        simulator,
        grid,
        plan: ContourStencilPlan,
        threshold: float,
    ) -> np.ndarray:
        """:meth:`predict_epe_totals` from mask polygons via the rasterless
        feature path — what the screener calls per candidate panel."""
        features, band, kernel_set = surrogate_features_from_polygons(
            polygon_sets, simulator, grid
        )
        return self._totals_from_features(features, band, kernel_set, plan, threshold)

    def _totals_from_features(
        self,
        features: np.ndarray,
        band: GridBandSpectra,
        kernel_set: OpticalKernelSet,
        plan: ContourStencilPlan,
        threshold: float,
    ) -> np.ndarray:
        backend = kernel_set.fft
        predicted = self.net.forward_fast(features, backend)
        focus = backend.ascontiguous(predicted[:, 0])
        values = band_values_at_pixels(
            focus, band, plan.pixel_rows, plan.pixel_cols, backend
        )
        reports = measure_epe_grouped_sparse(
            [SparseAerial(plan, row) for row in values], threshold
        )
        return np.array([report.total_abs for report in reports])
