"""Seeded training data for the litho surrogate, labeled by the exact engine.

The exact engine is cheap enough to mint unlimited labeled pairs: masks
are OPC-shaped perturbations of real via-bench clips (per-segment offset
vectors, the same state space screening explores), and labels are the
exact per-corner aerial intensity on the pupil-band subgrid
(:meth:`~repro.litho.kernels.OpticalKernelSet.subgrid_intensity_from_rfft`
— a handful of 30x30 FFTs per sample, no full-grid work).  Everything is
driven by one ``numpy`` Generator so a fixed seed reproduces the dataset
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.via_bench import generate_via_clip
from repro.errors import DataError, SurrogateError
from repro.geometry.mask_edit import MaskState
from repro.geometry.raster import Grid, rasterize
from repro.geometry.segmentation import fragment_clip


def exact_subgrid_labels(masks: np.ndarray, simulator, grid) -> np.ndarray:
    """Exact ``(B, 2, m0, m1)`` subgrid intensity at both focus corners."""
    masks = np.asarray(masks, dtype=np.float64)
    nominal, inner, _ = simulator.corners()
    focus_set = simulator.kernel_set(nominal.defocus_nm)
    defocus_set = simulator.kernel_set(inner.defocus_nm)
    rffts = focus_set.fft.rfft2(masks, axes=(-2, -1))
    focus = focus_set.subgrid_intensity_from_rfft(rffts, grid.shape)
    defocus = defocus_set.subgrid_intensity_from_rfft(rffts, grid.shape)
    return np.stack([focus, defocus], axis=1)


@dataclass
class SurrogateDataset:
    """Mask rasters plus exact subgrid-intensity labels on one grid."""

    masks: np.ndarray
    labels: np.ndarray
    grid: Grid

    def __post_init__(self) -> None:
        if self.masks.ndim != 3 or self.labels.ndim != 4:
            raise SurrogateError(
                f"expected (N, H, W) masks and (N, C, m0, m1) labels, got "
                f"{self.masks.shape} / {self.labels.shape}"
            )
        if len(self.masks) != len(self.labels):
            raise SurrogateError(
                f"{len(self.masks)} masks but {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.masks)

    def extended(self, masks: np.ndarray, labels: np.ndarray) -> "SurrogateDataset":
        """New dataset with extra (mask, label) pairs appended."""
        return SurrogateDataset(
            masks=np.concatenate([self.masks, masks]),
            labels=np.concatenate([self.labels, labels]),
            grid=self.grid,
        )


def perturbed_masks(
    clips: list,
    simulator,
    rng: np.random.Generator,
    samples_per_clip: int,
    max_offset_nm: int = 4,
) -> tuple[np.ndarray, Grid]:
    """OPC-shaped mask rasters: random per-segment offsets of real clips.

    Per clip: the unbiased initial mask plus ``samples_per_clip - 1``
    random integer offset vectors in ``[-max_offset_nm, max_offset_nm]``
    (accumulated move-set steps — the states screening actually visits).
    All clips must share one grid shape so the rasters stack.
    """
    if not clips:
        raise SurrogateError("perturbed_masks needs at least one clip")
    if samples_per_clip < 1:
        raise SurrogateError(
            f"samples_per_clip must be >= 1, got {samples_per_clip}"
        )
    grid = simulator.grid_for(clips[0])
    rasters = []
    for clip in clips:
        clip_grid = simulator.grid_for(clip)
        if clip_grid.shape != grid.shape:
            raise SurrogateError(
                f"clip {clip.name!r} rasterizes to {clip_grid.shape}, "
                f"expected {grid.shape} — dataset clips must share a shape"
            )
        segments = fragment_clip(clip)
        base = MaskState.initial(clip, segments)
        states = [base]
        for _ in range(samples_per_clip - 1):
            offsets = rng.integers(
                -max_offset_nm, max_offset_nm + 1, size=len(segments)
            ).astype(np.float64)
            states.append(base.moved(offsets))
        rasters.extend(
            rasterize(state.mask_polygons(), clip_grid) for state in states
        )
    return np.stack(rasters), grid


def dataset_clips(seed: int, n_clips: int, clip_nm: float) -> list:
    """Deterministic via-bench clips for dataset generation.

    Rejection sampling can be infeasible for a given placement seed at
    small clip windows (a centrally placed first via may leave no legal
    spot for the second), so infeasible seeds are skipped by a
    deterministic scan — the same ``seed`` always yields the same clips.
    """
    if n_clips < 1:
        raise SurrogateError(f"n_clips must be >= 1, got {n_clips}")
    clips: list = []
    placement_seed = 9973 * seed + 101
    while len(clips) < n_clips:
        try:
            clips.append(
                generate_via_clip(
                    f"surr-d{seed}-{len(clips)}",
                    n_vias=2,
                    seed=placement_seed,
                    clip_nm=clip_nm,
                )
            )
        except DataError:
            pass
        placement_seed += 1
    return clips


def generate_dataset(
    simulator,
    seed: int = 0,
    n_clips: int = 4,
    samples_per_clip: int = 16,
    clip_nm: float = 1024.0,
) -> SurrogateDataset:
    """Seeded dataset: perturbed via-clip masks with exact labels."""
    rng = np.random.default_rng(seed)
    clips = dataset_clips(seed, n_clips, clip_nm)
    masks, grid = perturbed_masks(clips, simulator, rng, samples_per_clip)
    labels = exact_subgrid_labels(masks, simulator, grid)
    return SurrogateDataset(masks=masks, labels=labels, grid=grid)
