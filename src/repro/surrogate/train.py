"""Surrogate training: seeded supervised fit + litho-guided self-training.

The base fit is plain minibatch Adam on MSE between the CFNO-lite's
predicted subgrid intensity and exact labels.  The CFNO paper's
litho-guided self-training then closes the fidelity gap on the states the
model will actually see: each round mints a fresh pool of self-predicted
perturbation samples, scores the model's own predictions against exact
simulation (cheap — labels live on the tiny subgrid), and re-labels the
*worst-fidelity* samples into the training set before continuing.  The
exact engine is the guide; the model picks its own hard examples.

Everything is driven by one seeded Generator and the deterministic
checkpoint writer, so a fixed seed reproduces the checkpoint bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SurrogateError
from repro.nn import Adam, Tensor, load_checkpoint, no_grad, save_checkpoint
from repro.surrogate.data import (
    SurrogateDataset,
    dataset_clips,
    exact_subgrid_labels,
    generate_dataset,
    perturbed_masks,
)
from repro.surrogate.model import (
    CFNOLite,
    SurrogateModel,
    pupil_modes,
    surrogate_features,
)

#: ``extra`` key naming the checkpoint flavour; load_surrogate rejects
#: checkpoints written by anything else.
CHECKPOINT_KIND = "cfno-lite"


@dataclass(frozen=True)
class SurrogateTrainConfig:
    """Knobs for :func:`train_surrogate` (all defaults CI-sized)."""

    width: int = 24
    n_clips: int = 4
    samples_per_clip: int = 16
    clip_nm: float = 1024.0
    steps: int = 300
    batch_size: int = 16
    lr: float = 3e-3
    seed: int = 0
    selftrain_rounds: int = 2
    selftrain_pool: int = 24
    selftrain_keep: int = 8
    selftrain_steps: int = 100

    def __post_init__(self) -> None:
        if self.width < 1 or self.steps < 1 or self.batch_size < 1:
            raise SurrogateError(
                "width, steps, and batch_size must all be >= 1"
            )
        if self.lr <= 0:
            raise SurrogateError(f"lr must be positive, got {self.lr}")
        if self.selftrain_rounds < 0 or self.selftrain_keep < 1:
            raise SurrogateError(
                "selftrain_rounds must be >= 0 and selftrain_keep >= 1"
            )
        if self.selftrain_keep > self.selftrain_pool:
            raise SurrogateError(
                f"selftrain_keep {self.selftrain_keep} exceeds the pool "
                f"{self.selftrain_pool}"
            )


@dataclass
class TrainReport:
    """What training did, for logs and the bench record."""

    steps: int = 0
    samples: int = 0
    final_loss: float = float("nan")
    selftrain_rounds: list[dict] = field(default_factory=list)


def _epoch_loss(net: CFNOLite, features: np.ndarray, labels: np.ndarray) -> float:
    """Full-dataset MSE (no gradients)."""
    with no_grad():
        pred = net(Tensor(features))
        return float(((pred - Tensor(labels)) ** 2).mean().data)


def _fit(
    net: CFNOLite,
    optimizer: Adam,
    features: np.ndarray,
    labels: np.ndarray,
    steps: int,
    batch_size: int,
    rng: np.random.Generator,
) -> float:
    """Minibatch Adam on MSE; returns the last minibatch loss."""
    count = len(features)
    loss_value = float("nan")
    order = np.zeros(0, dtype=np.int64)
    cursor = 0
    for _ in range(steps):
        if cursor + batch_size > len(order):
            order = rng.permutation(count)
            cursor = 0
        pick = order[cursor : cursor + batch_size]
        cursor += batch_size
        batch = Tensor(features[pick])
        target = Tensor(labels[pick])
        loss = ((net(batch) - target) ** 2).mean()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        loss_value = float(loss.data)
    return loss_value


def train_surrogate(
    simulator,
    config: SurrogateTrainConfig = SurrogateTrainConfig(),
    dataset: SurrogateDataset | None = None,
) -> tuple[SurrogateModel, TrainReport]:
    """Train a CFNO-lite surrogate against the exact engine.

    ``dataset`` overrides the seeded default corpus (used by tests and by
    in-situ engine calibration on a request's own clip).  Deterministic
    under a fixed config: same seed, same simulator optics -> bit-
    identical parameters.
    """
    rng = np.random.default_rng(config.seed)
    if dataset is None:
        dataset = generate_dataset(
            simulator,
            seed=config.seed,
            n_clips=config.n_clips,
            samples_per_clip=config.samples_per_clip,
            clip_nm=config.clip_nm,
        )
    features, band, _ = surrogate_features(
        dataset.masks, simulator, dataset.grid
    )
    net = CFNOLite(
        modes=pupil_modes(band),
        width=config.width,
        corners=dataset.labels.shape[1],
        rng=rng,
    )
    optimizer = Adam(net.parameters(), lr=config.lr)
    report = TrainReport(samples=len(dataset))

    _fit(
        net, optimizer, features, dataset.labels,
        config.steps, config.batch_size, rng,
    )
    report.steps = config.steps

    # -- litho-guided self-training ----------------------------------------
    for round_index in range(config.selftrain_rounds):
        pool_clips = dataset_clips(
            seed=config.seed * 1000 + round_index + 1,
            n_clips=config.n_clips,
            clip_nm=config.clip_nm,
        )
        per_clip = max(1, -(-config.selftrain_pool // len(pool_clips)))
        pool_masks, _ = perturbed_masks(
            pool_clips, simulator, rng, per_clip
        )
        pool_masks = pool_masks[: config.selftrain_pool]
        pool_features, _, _ = surrogate_features(
            pool_masks, simulator, dataset.grid
        )
        with no_grad():
            predicted = net(Tensor(pool_features)).numpy()
        exact = exact_subgrid_labels(pool_masks, simulator, dataset.grid)
        fidelity = ((predicted - exact) ** 2).mean(axis=(1, 2, 3))
        worst = np.argsort(fidelity, kind="stable")[::-1][: config.selftrain_keep]
        dataset = dataset.extended(pool_masks[worst], exact[worst])
        features = np.concatenate([features, pool_features[worst]])
        _fit(
            net, optimizer, features, dataset.labels,
            config.selftrain_steps, config.batch_size, rng,
        )
        report.steps += config.selftrain_steps
        report.samples = len(dataset)
        report.selftrain_rounds.append({
            "round": round_index,
            "pool": int(len(pool_masks)),
            "relabeled": int(len(worst)),
            "worst_mse": float(fidelity[worst].max()),
            "mean_mse": float(fidelity.mean()),
        })

    report.final_loss = _epoch_loss(net, features, dataset.labels)
    return SurrogateModel(net=net), report


# -- persistence -------------------------------------------------------------

def save_surrogate(path: str, model: SurrogateModel) -> None:
    """Atomic, versioned, fingerprinted checkpoint of a trained surrogate."""
    net = model.net
    save_checkpoint(
        path,
        net.state_dict(),
        extra={
            "kind": CHECKPOINT_KIND,
            "modes": np.asarray(net.modes, dtype=np.int64),
            "width": net.width,
            "corners": net.corners,
        },
    )


def load_surrogate(path: str) -> SurrogateModel:
    """Rebuild a surrogate from a :func:`save_surrogate` checkpoint."""
    state, extra = load_checkpoint(path)
    kind = str(extra["kind"][()]) if "kind" in extra else ""
    if kind != CHECKPOINT_KIND:
        raise SurrogateError(
            f"not a {CHECKPOINT_KIND} checkpoint: {path!r} (kind={kind!r})"
        )
    try:
        modes = tuple(int(m) for m in np.asarray(extra["modes"]))
        width = int(extra["width"])
        corners = int(extra["corners"])
    except KeyError as exc:
        raise SurrogateError(
            f"surrogate checkpoint {path!r} is missing metadata: {exc}"
        ) from None
    net = CFNOLite(modes=modes, width=width, corners=corners)
    net.load_state_dict(state)
    return SurrogateModel(net=net)
