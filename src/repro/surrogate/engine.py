"""The ``surrogate`` service engine: learned screening, exact reporting.

The engine runs the same damped-feedback loop as the model-based
baseline, but each iteration proposes a *panel* of candidate move vectors
(the five uniform moves plus EPE-feedback corrections at two gains) and
lets the CFNO-lite surrogate rank them — only the predicted-best
candidate pays for an exact evaluation, via the screener opt-in of
:meth:`~repro.rl.env.OPCEnvironment.score_moves`.  Every state the
trajectory visits therefore carries exact metrology; surrogate numbers
never leave the ranking step, so the service's 1e-6 nm verification
drift gate holds trivially (the final mask re-verifies bit-for-bit).

A checkpoint trained offline (``train-surrogate`` CLI) is the fast path;
without one the engine self-calibrates per grid shape on the first
clip's own perturbation neighbourhood — slower on the first clip, warm
afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.constants import MOVE_SET_NM
from repro.core.agent import OptimizeResult
from repro.errors import ConfigError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithographySimulator
from repro.rl.env import EnvState, OPCEnvironment
from repro.rl.imitation import quantize_to_move_set
from repro.rl.trajectory import Trajectory, TrajectoryStep
from repro.surrogate.data import SurrogateDataset, exact_subgrid_labels, perturbed_masks
from repro.surrogate.model import SurrogateModel
from repro.surrogate.train import SurrogateTrainConfig, load_surrogate, train_surrogate


class SurrogateScreener:
    """Adapter: a trained surrogate as a ``score_moves`` screener.

    ``score_candidates`` returns the predicted summed-|EPE| per candidate
    (lower is better).  Clips without measure points degenerate to
    zeros — every candidate ties, and the stable argsort keeps the first.
    """

    def __init__(self, model: SurrogateModel) -> None:
        self.model = model

    def score_candidates(
        self, env: OPCEnvironment, state: EnvState, candidates: np.ndarray
    ) -> np.ndarray:
        plan = env.measure_plan()
        if plan is None or not plan.n_points:
            return np.zeros(len(candidates))
        move_set = np.asarray(MOVE_SET_NM, dtype=np.float64)
        polygon_sets = [
            state.mask.moved(move_set[row]).mask_polygons()
            for row in candidates
        ]
        return self.model.predict_epe_totals_from_polygons(
            polygon_sets, env.simulator, env.grid, plan,
            env.simulator.config.threshold,
        )


@dataclass(frozen=True)
class SurrogateConfig:
    """Settings for the surrogate screening engine."""

    checkpoint: str | None = None
    width: int = 24
    calibrate_samples: int = 24
    calibrate_steps: int = 160
    seed: int = 0
    max_updates: int = 10
    gain: float = 0.5
    gain_decay: float = 0.15
    deadband_nm: float = 1.2
    max_step_nm: float = 2.0
    early_exit_threshold: float = 4.0
    early_exit_mode: str = "per_target"
    initial_bias_nm: float = 0.0
    epe_search_nm: float = 40.0
    screen_keep: int = 1

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigError(f"gain must be positive, got {self.gain}")
        if self.gain_decay < 0 or self.deadband_nm < 0:
            raise ConfigError("gain_decay and deadband_nm must be non-negative")
        if self.early_exit_mode not in ("per_target", "per_point"):
            raise ConfigError(f"unknown early_exit_mode {self.early_exit_mode!r}")
        if self.screen_keep < 1:
            raise ConfigError(f"screen_keep must be >= 1, got {self.screen_keep}")
        if self.calibrate_samples < 2 or self.calibrate_steps < 1:
            raise ConfigError(
                "calibrate_samples must be >= 2 and calibrate_steps >= 1"
            )


class SurrogateOPC:
    """Surrogate-screened feedback OPC with exact final metrology."""

    name = "surrogate"

    def __init__(
        self, config: SurrogateConfig, simulator: LithographySimulator
    ) -> None:
        self.config = config
        self.simulator = simulator
        self._checkpoint_model: SurrogateModel | None = None
        self._calibrated: dict[tuple[int, int], SurrogateModel] = {}

    # -- model acquisition ---------------------------------------------------
    def _model_for(self, clip: Clip, env: OPCEnvironment) -> SurrogateModel:
        if self.config.checkpoint:
            if self._checkpoint_model is None:
                self._checkpoint_model = load_surrogate(self.config.checkpoint)
            return self._checkpoint_model
        shape = env.grid.shape
        model = self._calibrated.get(shape)
        if model is None:
            model = self._calibrate(clip)
            self._calibrated[shape] = model
        return model

    def _calibrate(self, clip: Clip) -> SurrogateModel:
        """Self-calibrate on the clip's own perturbation neighbourhood.

        Deterministic (seeded) and shape-cached: later clips sharing the
        grid shape reuse the model — screening only needs ranking
        fidelity, not per-clip refitting.
        """
        rng = np.random.default_rng(self.config.seed)
        masks, grid = perturbed_masks(
            [clip], self.simulator, rng, self.config.calibrate_samples
        )
        labels = exact_subgrid_labels(masks, self.simulator, grid)
        dataset = SurrogateDataset(masks=masks, labels=labels, grid=grid)
        train_config = SurrogateTrainConfig(
            width=self.config.width,
            steps=self.config.calibrate_steps,
            seed=self.config.seed,
            selftrain_rounds=0,
        )
        model, _ = train_surrogate(
            self.simulator, train_config, dataset=dataset
        )
        return model

    # -- optimization loop ---------------------------------------------------
    def optimize(
        self,
        clip: Clip,
        max_updates: int | None = None,
        early_exit: bool = True,
    ) -> OptimizeResult:
        start = time.perf_counter()
        env = OPCEnvironment(
            clip,
            self.simulator,
            initial_bias_nm=self.config.initial_bias_nm,
            epe_search_nm=self.config.epe_search_nm,
        )
        screener = SurrogateScreener(self._model_for(clip, env))
        limit = max_updates if max_updates is not None else self.config.max_updates
        state = env.reset()
        trajectory = Trajectory(epe_initial=state.total_epe)
        exited = False
        steps = 0
        for _ in range(limit):
            if early_exit and self._early_exit(clip, state):
                exited = True
                break
            candidates = self._candidates(env, state, steps)
            scored = env.score_moves(
                state, candidates,
                screener=screener, screen_keep=self.config.screen_keep,
            )
            best_index, best = max(
                (
                    (index, pair)
                    for index, pair in enumerate(scored)
                    if pair is not None
                ),
                key=lambda item: item[1][1],
            )
            state, reward = best
            steps += 1
            trajectory.append(
                TrajectoryStep(
                    actions=candidates[best_index],
                    reward=reward,
                    epe_after=state.total_epe,
                    pvband_after=state.pvband,
                )
            )
        return OptimizeResult(
            clip_name=clip.name,
            final_state=state,
            trajectory=trajectory,
            steps=steps,
            runtime_s=time.perf_counter() - start,
            early_exited=exited,
        )

    def _candidates(
        self, env: OPCEnvironment, state: EnvState, step: int
    ) -> np.ndarray:
        """The per-step panel: uniform moves + two damped feedback rows."""
        rows = [env.uniform_move_candidates()]
        for gain_scale in (1.0, 0.5):
            gain = (
                self.config.gain * gain_scale
                / (1.0 + self.config.gain_decay * step)
            )
            moves = np.clip(
                np.round(-gain * state.seg_epe),
                -self.config.max_step_nm,
                self.config.max_step_nm,
            )
            moves[np.abs(state.seg_epe) < self.config.deadband_nm] = 0.0
            rows.append(quantize_to_move_set(moves)[None, :])
        return np.concatenate(rows, axis=0)

    def _early_exit(self, clip: Clip, state: EnvState) -> bool:
        if self.config.early_exit_mode == "per_target":
            return (
                state.total_epe / clip.target_count
                < self.config.early_exit_threshold
            )
        return state.mean_epe < self.config.early_exit_threshold
