"""DAMO-profile baseline: one-shot generative mask correction.

DAMO (Chen et al., ICCAD'20) is a conditional-GAN mask generator: a single
network inference produces the corrected mask, with no test-time
iteration or exploration.  Training a cGAN is out of scope for a CPU-only
numpy substrate, so this surrogate reproduces DAMO's *behavioural profile*
in Table 1 instead: a regression network learns to predict final segment
offsets from the initial layout state (supervised by the model-based
engine, exactly the "bounded by the dataset quality" limitation the paper
discusses), then applies them in one shot.  It is by far the fastest
engine and — with no feedback loop — the least accurate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.mbopc import MBOPC, MBOPCConfig
from repro.core.agent import OptimizeResult
from repro.errors import RLError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithographySimulator
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.rl.env import OPCEnvironment
from repro.rl.trajectory import Trajectory, TrajectoryStep
from repro.squish.features import NodeFeatureEncoder


@dataclass(frozen=True)
class DamoConfig:
    """One-shot predictor settings."""

    window_nm: float = 500.0
    encode_size: int = 32
    embed_dim: int = 128
    max_offset_nm: float = 10.0
    learning_rate: float = 1e-3
    epochs: int = 60
    teacher_updates: int = 10
    initial_bias_nm: float = 0.0
    seed: int = 5


class _OffsetRegressor(Module):
    """Shared CNN -> scalar offset per segment, bounded by tanh."""

    def __init__(self, config: DamoConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        final_spatial = config.encode_size // 8
        self.max_offset = config.max_offset_nm
        self.net = Sequential(
            Conv2d(3, 8, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(8, 16, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(16, 32, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(32 * final_spatial * final_spatial, config.embed_dim, rng=rng),
            ReLU(),
            Linear(config.embed_dim, 1, rng=rng),
        )

    def forward(self, features: np.ndarray) -> Tensor:
        raw = self.net(Tensor(features))
        return F.tanh(raw * (1.0 / self.max_offset)) * self.max_offset


class DamoLikeOPC:
    """Single-inference mask corrector (the "DAMO" column of Table 1)."""

    name = "damo"

    def __init__(self, config: DamoConfig, simulator: LithographySimulator) -> None:
        self.config = config
        self.simulator = simulator
        self.model = _OffsetRegressor(config)
        self.encoder = NodeFeatureEncoder(
            window_nm=config.window_nm, out_size=config.encode_size, channels=3
        )
        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate)

    # -- training ------------------------------------------------------------
    def train(self, clips: list[Clip], verbose: bool = False) -> list[float]:
        """Supervised regression onto the model-based engine's offsets."""
        if not clips:
            raise RLError("training requires at least one clip")
        teacher = MBOPC(
            MBOPCConfig(
                max_updates=self.config.teacher_updates,
                initial_bias_nm=self.config.initial_bias_nm,
            ),
            self.simulator,
        )
        features: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for clip in clips:
            env = OPCEnvironment(
                clip, self.simulator, initial_bias_nm=self.config.initial_bias_nm
            )
            initial = env.reset()
            outcome = teacher.optimize(clip, early_exit=False)
            features.append(self.encoder.encode_all(initial.mask))
            labels.append(
                outcome.final_state.mask.offsets - initial.mask.offsets
            )
        x = np.concatenate(features, axis=0)
        y = np.concatenate(labels, axis=0)[:, None]
        losses: list[float] = []
        for epoch in range(self.config.epochs):
            self.optimizer.zero_grad()
            pred = self.model(x)
            loss = ((pred - Tensor(y)) ** 2.0).mean()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
            if verbose:
                print(f"[damo] epoch {epoch}: mse {loss.item():.4f}")
        return losses

    # -- inference ------------------------------------------------------------
    def optimize(self, clip: Clip, **_ignored) -> OptimizeResult:
        """One forward pass, one mask update, one evaluation."""
        start = time.perf_counter()
        env = OPCEnvironment(
            clip, self.simulator, initial_bias_nm=self.config.initial_bias_nm
        )
        initial = env.reset()
        with no_grad():
            offsets = self.model(self.encoder.encode_all(initial.mask)).numpy()[:, 0]
        state = env.evaluate(initial.mask.moved(np.round(offsets)))
        trajectory = Trajectory(epe_initial=initial.total_epe)
        trajectory.append(
            TrajectoryStep(
                actions=np.round(offsets).astype(int),
                reward=0.0,
                epe_after=state.total_epe,
                pvband_after=state.pvband,
            )
        )
        return OptimizeResult(
            clip_name=clip.name,
            final_state=state,
            trajectory=trajectory,
            steps=1,
            runtime_s=time.perf_counter() - start,
            early_exited=False,
        )
