"""Model-based OPC: the Calibre stand-in.

Commercial OPC engines iterate: simulate, measure per-segment EPE, move
each segment against its error with a damped feedback gain, repeat until
convergence or the iteration budget runs out.  This module implements that
loop on our substrate.  It doubles as the phase-1 imitation teacher (its
per-step decision rule is :func:`repro.rl.imitation.greedy_teacher_actions`
restricted to the +/-2 nm move set).

Each iteration's corner sweep runs through the environment's simulator
facade, which computes the focus and defocus aerials from one shared
forward FFT feeding the exact pupil-band subgrid engine (the
batched-corner path of
:meth:`~repro.litho.simulator.LithographySimulator.simulate_batch`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.agent import OptimizeResult
from repro.errors import ConfigError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithographySimulator
from repro.rl.env import OPCEnvironment
from repro.rl.imitation import quantize_to_move_set
from repro.rl.trajectory import Trajectory, TrajectoryStep


@dataclass(frozen=True)
class MBOPCConfig:
    """Feedback-loop settings."""

    gain: float = 0.5
    gain_decay: float = 0.15
    deadband_nm: float = 1.2
    max_updates: int = 10
    early_exit_threshold: float = 4.0
    early_exit_mode: str = "per_target"
    initial_bias_nm: float = 0.0
    max_step_nm: float = 2.0
    epe_search_nm: float = 40.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigError(f"gain must be positive, got {self.gain}")
        if self.gain_decay < 0 or self.deadband_nm < 0:
            raise ConfigError("gain_decay and deadband_nm must be non-negative")
        if self.early_exit_mode not in ("per_target", "per_point"):
            raise ConfigError(f"unknown early_exit_mode {self.early_exit_mode!r}")


class MBOPC:
    """Iterative EPE-feedback OPC (the "Calibre" column of the tables)."""

    name = "mbopc"

    def __init__(
        self, config: MBOPCConfig, simulator: LithographySimulator
    ) -> None:
        self.config = config
        self.simulator = simulator

    def optimize(
        self,
        clip: Clip,
        max_updates: int | None = None,
        early_exit: bool = True,
    ) -> OptimizeResult:
        start = time.perf_counter()
        env = OPCEnvironment(
            clip,
            self.simulator,
            initial_bias_nm=self.config.initial_bias_nm,
            epe_search_nm=self.config.epe_search_nm,
        )
        limit = max_updates if max_updates is not None else self.config.max_updates
        state = env.reset()
        trajectory = Trajectory(epe_initial=state.total_epe)
        exited = False
        steps = 0
        for _ in range(limit):
            if early_exit and self._early_exit(clip, state):
                exited = True
                break
            actions = self._decide(state.seg_epe, steps)
            state, reward = env.step(state, actions)
            steps += 1
            trajectory.append(
                TrajectoryStep(
                    actions=actions,
                    reward=reward,
                    epe_after=state.total_epe,
                    pvband_after=state.pvband,
                )
            )
        return OptimizeResult(
            clip_name=clip.name,
            final_state=state,
            trajectory=trajectory,
            steps=steps,
            runtime_s=time.perf_counter() - start,
            early_exited=exited,
        )

    def _decide(self, seg_epe: np.ndarray, step: int) -> np.ndarray:
        """Damped feedback: the gain decays with the iteration count and a
        deadband holds converged segments still (prevents limit cycles)."""
        gain = self.config.gain / (1.0 + self.config.gain_decay * step)
        moves = np.clip(
            np.round(-gain * seg_epe),
            -self.config.max_step_nm,
            self.config.max_step_nm,
        )
        moves[np.abs(seg_epe) < self.config.deadband_nm] = 0.0
        return quantize_to_move_set(moves)

    def _early_exit(self, clip: Clip, state) -> bool:
        if self.config.early_exit_mode == "per_target":
            return state.total_epe / clip.target_count < self.config.early_exit_threshold
        return state.mean_epe < self.config.early_exit_threshold
