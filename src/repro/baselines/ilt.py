"""Pixel-based inverse lithography (extension baseline).

MOSAIC-style ILT: parameterize the mask as a sigmoid of a continuous
pixel field, differentiate the squared contour error through the SOCS
imaging model and the sigmoid resist approximation, and descend.  The
gradients are derived analytically over the FFT convolutions (this runs
on raw numpy, not the autograd framework — the images are large and the
expression is a fixed pipeline).

This is *not* part of the paper's comparison tables; it is the classic
numerical-optimization alternative (refs [5, 6] in the paper) and powers
an extension bench contrasting edge-based and pixel-based OPC.

Per-iteration coherent fields come from the kernel set's cached per-grid
band spectra (scattered to full-grid transfer functions by
:meth:`~repro.litho.kernels.OpticalKernelSet.kernel_spectra`, with
weights from :meth:`~repro.litho.kernels.OpticalKernelSet.weights_for`),
every transform runs through the set's pluggable FFT backend, and the
final corner sweep runs through the batched simulator path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.agent import OptimizeResult
from repro.errors import ConfigError
from repro.geometry.layout import Clip
from repro.geometry.raster import rasterize
from repro.litho.simulator import LithographySimulator
from repro.metrology.epe import measure_epe
from repro.metrology.pvband import pvband_area
from repro.geometry.segmentation import fragment_clip
from repro.rl.trajectory import Trajectory, TrajectoryStep


@dataclass(frozen=True)
class ILTConfig:
    """Gradient-descent settings."""

    iterations: int = 30
    step_size: float = 2.0
    mask_steepness: float = 4.0
    resist_steepness: float = 50.0
    initial_bias_logit: float = 1.5

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError("need at least one ILT iteration")
        if self.step_size <= 0:
            raise ConfigError("step size must be positive")


class PixelILT:
    """Pixel-domain gradient-descent mask optimizer."""

    name = "ilt"

    def __init__(self, config: ILTConfig, simulator: LithographySimulator) -> None:
        self.config = config
        self.simulator = simulator

    def optimize(self, clip: Clip, **_ignored) -> OptimizeResult:
        start = time.perf_counter()
        grid = self.simulator.grid_for(clip)
        target = rasterize(clip.targets, grid).astype(np.float64)
        segments = fragment_clip(clip)
        kernel_set = self.simulator.kernel_set(0.0)
        threshold = self.simulator.config.threshold
        cfg = self.config

        # Logit field initialized from the target with a positive bias so
        # target pixels start transparent.
        field = cfg.initial_bias_logit * (2.0 * target - 1.0)
        kernel_ffts = kernel_set.kernel_spectra(target.shape)
        weights = kernel_set.weights_for(target.shape)
        fft = kernel_set.fft

        trajectory: Trajectory | None = None
        for _ in range(cfg.iterations):
            mask = _sigmoid(cfg.mask_steepness * field)
            mask_fft = fft.fft2(mask)
            fields_k = kernel_set.fields_from_mask_fft(mask_fft)
            intensity = np.zeros_like(mask)
            for w, ck in zip(weights, fields_k):
                intensity += w * (ck.real**2 + ck.imag**2)

            printed_soft = _sigmoid(cfg.resist_steepness * (intensity - threshold))
            error = printed_soft - target
            if trajectory is None:
                trajectory = Trajectory(epe_initial=float(np.abs(error).sum()))

            # dL/dI for L = sum(error^2)
            g = 2.0 * error * cfg.resist_steepness * printed_soft * (1 - printed_soft)
            grad_mask = np.zeros_like(mask)
            for w, ck, kf in zip(weights, fields_k, kernel_ffts):
                corr = fft.ifft2(fft.fft2(g * ck) * np.conj(kf))
                grad_mask += w * 2.0 * corr.real
            grad_field = (
                grad_mask * cfg.mask_steepness * mask * (1 - mask)
            )
            field -= cfg.step_size * grad_field
            trajectory.append(
                TrajectoryStep(
                    actions=np.zeros(0, dtype=int),
                    reward=0.0,
                    epe_after=float(np.abs(error).sum()),
                    pvband_after=0.0,
                )
            )

        final_mask = (_sigmoid(cfg.mask_steepness * field) >= 0.5).astype(np.uint8)
        result = self.simulator.simulate_batch(final_mask[None], grid)[0]
        epe = measure_epe(result.aerial, grid, segments, threshold)
        pvb = pvband_area(result.inner, result.outer, grid.pixel_nm)
        runtime = time.perf_counter() - start
        return _IltOutcome(
            clip_name=clip.name,
            epe_total=epe.total_abs,
            pvband=pvb,
            mask_image=final_mask,
            trajectory=trajectory,
            runtime_s=runtime,
        )


@dataclass
class _IltOutcome:
    """ILT result record (pixel masks have no segment state)."""

    clip_name: str
    epe_total: float
    pvband: float
    mask_image: np.ndarray
    trajectory: Trajectory
    runtime_s: float
    steps: int = 0
    early_exited: bool = False

    def __post_init__(self) -> None:
        self.steps = self.trajectory.length

    @property
    def epe_curve(self) -> list[float]:
        return self.trajectory.epe_curve


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
