"""Baseline OPC engines the paper compares against.

* :class:`~repro.baselines.mbopc.MBOPC` — iterative model-based OPC, the
  stand-in for the commercial Calibre engine (and the phase-1 teacher);
* :class:`~repro.baselines.rlopc.RLOPC` — reimplementation of RL-OPC [12]:
  per-segment independent decisions, no GNN/RNN, no modulator;
* :class:`~repro.baselines.damo.DamoLikeOPC` — DAMO-profile one-shot
  generative surrogate: single-inference correction, no exploration;
* :class:`~repro.baselines.ilt.PixelILT` — pixel-based inverse lithography
  (MOSAIC-style gradient descent), provided as an extension baseline.
"""

from repro.baselines.mbopc import MBOPC
from repro.baselines.rlopc import RLOPC
from repro.baselines.damo import DamoLikeOPC
from repro.baselines.ilt import PixelILT

__all__ = ["MBOPC", "RLOPC", "DamoLikeOPC", "PixelILT"]
