"""RL-OPC [Liang et al., TCAD'23] reimplementation.

The baseline the paper positions CAMO against: an RL agent that decides
each segment's movement *independently* from its local 3-channel adaptive
squish features — no graph fusion, no sequential coordination, no
modulator.  Training is the same two-phase recipe (imitation then
REINFORCE) so that the only differences from CAMO are the ones the paper
credits: spatial correlation handling and modulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.agent import OptimizeResult
from repro.errors import RLError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithographySimulator
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor, no_grad
from repro.rl.env import EnvState, OPCEnvironment
from repro.rl.imitation import collect_teacher_actions, greedy_teacher_actions
from repro.rl.reinforce import policy_gradient_step, select_log_probs
from repro.rl.trajectory import Trajectory, TrajectoryStep
from repro.squish.features import NodeFeatureEncoder


@dataclass(frozen=True)
class RLOPCConfig:
    """RL-OPC hyper-parameters (mirrors the CAMO repro profile scale)."""

    window_nm: float = 500.0
    encode_size: int = 32
    embed_dim: int = 128
    learning_rate: float = 3e-4
    momentum: float = 0.9
    imitation_epochs: int = 10
    imitation_steps: int = 5
    imitation_weighting: str = "unit"
    rl_epochs: int = 5
    max_updates: int = 10
    early_exit_threshold: float = 4.0
    early_exit_mode: str = "per_target"
    initial_bias_nm: float = 0.0
    max_grad_norm: float = 10.0
    seed: int = 77

    @classmethod
    def metal(cls, **overrides) -> "RLOPCConfig":
        base = cls(
            max_updates=15,
            early_exit_threshold=1.0,
            early_exit_mode="per_point",
        )
        return replace(base, **overrides)


class RlOpcPolicy(Module):
    """Shared CNN -> MLP; each segment classified independently."""

    def __init__(self, config: RLOPCConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(config.seed)
        final_spatial = config.encode_size // 8
        self.net = Sequential(
            Conv2d(3, 8, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(8, 16, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(16, 32, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(32 * final_spatial * final_spatial, config.embed_dim, rng=rng),
            ReLU(),
            Linear(config.embed_dim, 5, rng=rng),
        )

    def forward(self, features: np.ndarray) -> Tensor:
        return self.net(Tensor(features))


class RLOPC:
    """Independent per-segment RL OPC engine."""

    name = "rlopc"

    def __init__(self, config: RLOPCConfig, simulator: LithographySimulator) -> None:
        self.config = config
        self.simulator = simulator
        self.policy = RlOpcPolicy(config)
        self.encoder = NodeFeatureEncoder(
            window_nm=config.window_nm, out_size=config.encode_size, channels=3
        )
        self.optimizer = SGD(
            self.policy.parameters(),
            lr=config.learning_rate,
            momentum=config.momentum,
        )
        self.rng = np.random.default_rng(config.seed)
        self._envs: dict[str, OPCEnvironment] = {}

    def _env(self, clip: Clip) -> OPCEnvironment:
        env = self._envs.get(clip.name)
        if env is None:
            env = OPCEnvironment(
                clip, self.simulator, initial_bias_nm=self.config.initial_bias_nm
            )
            self._envs[clip.name] = env
        return env

    def _logits(self, state: EnvState) -> Tensor:
        return self.policy(self.encoder.encode_all(state.mask))

    # -- training ----------------------------------------------------------
    def train(self, clips: list[Clip], verbose: bool = False) -> dict[str, list[float]]:
        if not clips:
            raise RLError("training requires at least one clip")
        history: dict[str, list[float]] = {"imitation_logp": [], "rl_reward": []}
        teacher_data = {
            clip.name: [
                (self.encoder.encode_all(state.mask), actions, reward)
                for state, actions, reward in collect_teacher_actions(
                    self._env(clip), steps=self.config.imitation_steps,
                    teacher=greedy_teacher_actions,
                )
            ]
            for clip in clips
        }
        unit_weight = self.config.imitation_weighting == "unit"
        for _ in range(self.config.imitation_epochs):
            epoch_logp = 0.0
            for clip in clips:
                for features, actions, reward in teacher_data[clip.name]:
                    logits = self.policy(features)
                    log_prob = select_log_probs(logits, actions)
                    weight = 1.0 if unit_weight else reward
                    policy_gradient_step(
                        self.optimizer, log_prob, weight,
                        max_grad_norm=self.config.max_grad_norm,
                    )
                    epoch_logp += log_prob.item()
            history["imitation_logp"].append(epoch_logp)
        for _ in range(self.config.rl_epochs):
            epoch_reward = 0.0
            for clip in clips:
                env = self._env(clip)
                state = env.reset()
                for _ in range(self.config.max_updates):
                    logits = self._logits(state)
                    probs = F.softmax(logits, axis=-1).numpy()
                    actions = self._sample(probs)
                    next_state, reward = env.step(state, actions)
                    log_prob = select_log_probs(logits, actions)
                    policy_gradient_step(
                        self.optimizer, log_prob, reward,
                        max_grad_norm=self.config.max_grad_norm,
                    )
                    epoch_reward += reward
                    state = next_state
            history["rl_reward"].append(epoch_reward)
        return history

    def _sample(self, distribution: np.ndarray) -> np.ndarray:
        cumulative = distribution.cumsum(axis=1)
        draws = self.rng.random((len(distribution), 1))
        return (draws > cumulative).sum(axis=1)

    # -- inference ------------------------------------------------------------
    def optimize(
        self,
        clip: Clip,
        max_updates: int | None = None,
        early_exit: bool = True,
    ) -> OptimizeResult:
        start = time.perf_counter()
        env = self._env(clip)
        limit = max_updates if max_updates is not None else self.config.max_updates
        state = env.reset()
        trajectory = Trajectory(epe_initial=state.total_epe)
        exited = False
        steps = 0
        for _ in range(limit):
            if early_exit and self._early_exit(clip, state):
                exited = True
                break
            with no_grad():
                logits = self._logits(state)
            actions = logits.numpy().argmax(axis=1)
            state, reward = env.step(state, actions)
            steps += 1
            trajectory.append(
                TrajectoryStep(
                    actions=actions,
                    reward=reward,
                    epe_after=state.total_epe,
                    pvband_after=state.pvband,
                )
            )
        return OptimizeResult(
            clip_name=clip.name,
            final_state=state,
            trajectory=trajectory,
            steps=steps,
            runtime_s=time.perf_counter() - start,
            early_exited=exited,
        )

    def _early_exit(self, clip: Clip, state: EnvState) -> bool:
        if self.config.early_exit_mode == "per_target":
            return state.total_epe / clip.target_count < self.config.early_exit_threshold
        return state.mean_epe < self.config.early_exit_threshold
