"""CAMO configuration.

One dataclass holds every hyper-parameter of the paper plus the scale
knobs that keep a numpy implementation tractable.  The paper-fidelity
values are noted next to each field; ``CamoConfig.paper_via()`` /
``paper_metal()`` build them, while the default constructor is the
reduced-but-faithful "repro" profile used by tests and benches.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.constants import (
    DISCOUNT_GAMMA,
    FEATURE_WINDOW_NM,
    GRAPH_EDGE_THRESHOLD_NM,
    LEARNING_RATE,
    METAL_EARLY_EXIT_EPE_PER_POINT,
    METAL_MAX_UPDATES,
    MODULATOR_B,
    MODULATOR_K,
    MODULATOR_N,
    REWARD_BETA,
    REWARD_EPSILON,
    VIA_EARLY_EXIT_EPE_PER_VIA,
    VIA_INITIAL_BIAS_NM,
    VIA_MAX_UPDATES,
)
from repro.errors import ConfigError


@dataclass(frozen=True)
class CamoConfig:
    """All CAMO knobs.  Defaults are the fast "repro" profile."""

    # -- feature encoding ----------------------------------------------------
    window_nm: float = FEATURE_WINDOW_NM       # paper: 500
    encode_size: int = 32                      # paper: 128 (via) / 64 (metal)
    channels: int = 6

    # -- graph -----------------------------------------------------------------
    graph_threshold_nm: float = GRAPH_EDGE_THRESHOLD_NM  # paper: 250
    ordering: str = "snake"

    # -- policy network --------------------------------------------------------
    embed_dim: int = 256                       # paper: RNN input size 256
    encoder_tail: str = "gap"                  # "gap" (translation-robust)
                                               # or "flatten"
    sage_layers: int = 2
    rnn_hidden: int = 64                       # paper: hidden state 64
    rnn_layers: int = 3                        # paper: 3 recurrent layers
    n_actions: int = 5
    use_gnn: bool = True
    use_rnn: bool = True

    # -- modulator ----------------------------------------------------------------
    use_modulator: bool = True
    policy_temperature: float = 1.0
    """Softens the policy inside the Eq. 6 product at decision time
    (``softmax(logits / T)``).  T > 1 limits how far a confidently-wrong
    policy can override the modulator on unseen layouts."""
    modulator_k: float = MODULATOR_K           # paper: 0.02
    modulator_n: int = MODULATOR_N             # paper: 4
    modulator_b: float = MODULATOR_B           # paper: 1
    modulator_mode: str = "matched"            # paper: "polynomial"
    modulator_sigma: float = 0.75
    modulator_gain_decay: float = 0.12
    """Per-iteration damping of the modulator's effective EPE (the classic
    decaying-feedback schedule; 0 disables)."""
    modulator_epe_scale: float = 0.5           # 1 / MEEF of our simulator
    modulator_hold_bias: float = 0.75
    modulator_hold_width_nm: float = 1.2
    """Preference bump on the zero movement for converged segments (the
    model-based deadband principle in modulator form; polynomial mode)."""

    # -- training -------------------------------------------------------------
    learning_rate: float = 1e-3
    optimizer: str = "adam"                    # repro profile; paper: "sgd"
    momentum: float = 0.9                      # sgd only; compensates the
                                               # reduced epoch budget
    gamma: float = DISCOUNT_GAMMA
    reward_epsilon: float = REWARD_EPSILON     # paper: 0.1
    reward_beta: float = REWARD_BETA           # paper: 1
    imitation_epochs: int = 40                 # paper: 500
    imitation_steps: int = 5                   # paper: five-step trajectories
    imitation_weighting: str = "unit"          # "unit" (behaviour cloning) or
                                               # "reward" (Eq. 7 literal)
    imitation_bias_offsets: tuple[float, ...] = (0.0, 5.0, -4.0)
    """Extra initial-bias offsets for teacher rollouts: covers under- and
    over-sized starting masks so the policy sees both EPE signs."""
    train_on_modulated: bool = True
    """Apply the modulator's log-preference offset to the logits inside the
    training loss, so the policy learns the *residual* the modulator does
    not already provide and training matches the Eq. 6 decision rule."""
    rl_epochs: int = 3
    rl_learning_rate: float | None = None
    """Phase-2 learning rate; defaults to 0.3x the phase-1 rate (single-
    sample REINFORCE is noisier than behaviour cloning)."""
    rl_population: int = 1
    """Number of phase-2 trajectories advanced in lockstep per clip.
    ``1`` (the default) runs the original sequential loop and reproduces
    its training histories bit-for-bit.  ``P > 1`` samples P action
    vectors per step, evaluates them through one batched litho +
    metrology call, and folds the per-trajectory EMA-baseline advantages
    into one accumulated policy-gradient step — the population throughput
    path (see ``benchmarks/bench_train_throughput.py``)."""
    rl_eval_mode: str = "exact"
    """Deprecated and ignored: the unified band-limited litho engine is
    always exact, so there is no screening mode to select.  ``"spectral"``
    is still accepted (with a ``DeprecationWarning``) so existing configs
    keep constructing; any other value raises."""
    rl_population_bias_offsets: tuple[float, ...] = ()
    """Deterministic per-trajectory initial-bias jitter for population
    training (satellite of the start-state diversification follow-up):
    trajectory ``p`` starts from ``initial_bias_nm + offsets[p % len]``,
    mirroring how imitation diversifies its teacher rollouts.  The empty
    default keeps every trajectory on the shared ``reset()`` start, so
    existing population histories (and P=1 runs) are unchanged."""
    max_grad_norm: float = 10.0
    seed: int = 2024

    # -- optimization loop ------------------------------------------------------
    max_updates: int = VIA_MAX_UPDATES         # paper: 10 (via) / 15 (metal)
    early_exit_threshold: float = VIA_EARLY_EXIT_EPE_PER_VIA
    early_exit_mode: str = "per_target"        # "per_target" | "per_point"
    initial_bias_nm: float = VIA_INITIAL_BIAS_NM
    epe_search_nm: float = 40.0
    candidate_lookahead: bool = False
    """At inference, score the policy's action vector against the five
    uniform segment moves in one batched litho call and take the best
    reward (one-step lookahead through
    :meth:`~repro.rl.env.OPCEnvironment.score_moves`)."""

    def __post_init__(self) -> None:
        if self.encode_size % 8:
            raise ConfigError("encode_size must be divisible by 8 (CNN strides)")
        if self.early_exit_mode not in ("per_target", "per_point"):
            raise ConfigError(f"unknown early_exit_mode {self.early_exit_mode!r}")
        if self.imitation_weighting not in ("unit", "reward"):
            raise ConfigError(
                f"unknown imitation_weighting {self.imitation_weighting!r}"
            )
        if self.optimizer not in ("sgd", "adam"):
            raise ConfigError(f"unknown optimizer {self.optimizer!r}")
        if self.rl_population < 1:
            raise ConfigError(
                f"rl_population must be >= 1, got {self.rl_population}"
            )
        if self.rl_eval_mode not in ("exact", "spectral"):
            raise ConfigError(f"unknown rl_eval_mode {self.rl_eval_mode!r}")
        if self.rl_eval_mode != "exact":
            warnings.warn(
                "rl_eval_mode is deprecated and ignored: the unified "
                "band-limited litho engine is always exact",
                DeprecationWarning,
                stacklevel=3,
            )
        if not all(
            isinstance(offset, (int, float)) for offset in
            self.rl_population_bias_offsets
        ):
            raise ConfigError("rl_population_bias_offsets must be numbers")
        if self.encoder_tail not in ("gap", "flatten"):
            raise ConfigError(f"unknown encoder_tail {self.encoder_tail!r}")
        if self.sage_layers < 1:
            raise ConfigError("need at least one GraphSAGE layer")
        if self.n_actions != 5:
            raise ConfigError("the movement set is fixed at 5 actions")

    # -- profiles ----------------------------------------------------------------
    @classmethod
    def repro_via(cls, **overrides) -> "CamoConfig":
        """Fast profile for via layers (default scale)."""
        return cls(**overrides)

    @classmethod
    def repro_metal(cls, **overrides) -> "CamoConfig":
        """Fast profile for metal layers."""
        base = cls(
            max_updates=METAL_MAX_UPDATES,
            early_exit_threshold=METAL_EARLY_EXIT_EPE_PER_POINT,
            early_exit_mode="per_point",
            initial_bias_nm=0.0,
        )
        return replace(base, **overrides)

    @classmethod
    def paper_via(cls, **overrides) -> "CamoConfig":
        """Full paper-scale settings for via layers (slow on CPU)."""
        base = cls(
            encode_size=128,
            imitation_epochs=500,
            rl_epochs=50,
            optimizer="sgd",
            learning_rate=LEARNING_RATE,
        )
        return replace(base, **overrides)

    @classmethod
    def paper_metal(cls, **overrides) -> "CamoConfig":
        """Full paper-scale settings for metal layers (slow on CPU)."""
        base = cls(
            encode_size=64,
            imitation_epochs=500,
            rl_epochs=50,
            optimizer="sgd",
            learning_rate=LEARNING_RATE,
            max_updates=METAL_MAX_UPDATES,
            early_exit_threshold=METAL_EARLY_EXIT_EPE_PER_POINT,
            early_exit_mode="per_point",
            initial_bias_nm=0.0,
        )
        return replace(base, **overrides)

    @classmethod
    def smoke(cls, **overrides) -> "CamoConfig":
        """Minimal settings for CI-speed tests."""
        base = cls(
            encode_size=16,
            embed_dim=32,
            rnn_hidden=16,
            rnn_layers=1,
            sage_layers=1,
            imitation_epochs=2,
            rl_epochs=1,
            max_updates=3,
        )
        return replace(base, **overrides)
