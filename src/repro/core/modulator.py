"""The OPC-inspired modulator (paper Section 3.2, Fig. 4).

Given a segment's signed EPE, the modulator produces a preference vector
over the five movements ``[m1..m5] = [-2, -1, 0, +1, +2]`` nm:

1. sample five points evenly across ``[0, EPE]``, ordered descending
   (``x1 > x2 > ... > x5``);
2. project through ``f(x) = k x^n + b`` (even ``n``; paper: 0.02 x^4 + 1);
3. softmax-normalize into the preference vector ``p_hat``.

Because ``f`` is even-powered, a large *positive* EPE (contour outside the
target — overflow) concentrates preference on ``m1`` (inward), a large
*negative* EPE on ``m5`` (outward), and a small EPE leaves the preference
nearly uniform — exactly the properties the paper postulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import MODULATOR_B, MODULATOR_K, MODULATOR_N
from repro.errors import ConfigError


@dataclass(frozen=True)
class Modulator:
    """Projection-function modulator ``f(x) = k x^n + b``.

    ``epe_scale`` converts raw EPE (nm) into expected-movement units before
    projection: with a mask-error-enhancement factor of ``M`` (printed-edge
    nm per mask-edge nm), the movement that cancels an error of ``E`` nm is
    ``E / M``, so the preference should peak there.  The paper's simulator
    is calibrated such that this factor is ~1; ours has MEEF around 2.5-3,
    hence the default scale below.
    """

    k: float = MODULATOR_K
    n: int = MODULATOR_N
    b: float = MODULATOR_B
    epe_scale: float = 1.0
    hold_bias: float = 0.0
    hold_width_nm: float = 1.0
    mode: str = "polynomial"
    sigma: float = 0.75
    """``mode="polynomial"`` is the paper's construction (five samples of
    ``f`` across [0, EPE], softmax-normalized).  ``mode="matched"`` is this
    reproduction's calibrated variant: the preference for movement ``m_i``
    is a Gaussian in ``(scaled EPE + m_i)`` — it peaks at the movement that
    cancels the predicted printed-edge error, i.e. proportional feedback
    control in preference form.  The polynomial mode needs a strong policy
    for fine control (the paper trains one for 500 epochs); matched mode
    keeps the engine convergent at reduced training budgets."""

    def __post_init__(self) -> None:
        if self.k <= 0 or self.b <= 0:
            raise ConfigError(f"k and b must be positive, got k={self.k}, b={self.b}")
        if self.n <= 0 or self.n % 2:
            raise ConfigError(f"n must be a positive even integer, got {self.n}")
        if self.epe_scale <= 0:
            raise ConfigError(f"epe_scale must be positive, got {self.epe_scale}")
        if self.hold_bias < 0:
            raise ConfigError(f"hold_bias must be non-negative, got {self.hold_bias}")
        if self.hold_width_nm <= 0:
            raise ConfigError(
                f"hold_width_nm must be positive, got {self.hold_width_nm}"
            )
        if self.mode not in ("polynomial", "matched"):
            raise ConfigError(f"unknown modulator mode {self.mode!r}")
        if self.sigma <= 0:
            raise ConfigError(f"sigma must be positive, got {self.sigma}")

    def projection(self, x: np.ndarray) -> np.ndarray:
        """``f(x) = k x^n + b`` elementwise."""
        return self.k * np.asarray(x, dtype=np.float64) ** self.n + self.b

    def preference(self, epe_nm: float) -> np.ndarray:
        """Preference vector ``p_hat`` (length 5) for one segment's EPE."""
        return self.preference_batch(np.asarray([epe_nm]))[0]

    def preference_batch(
        self, epe_nm: np.ndarray, gain: float = 1.0
    ) -> np.ndarray:
        """Vectorized preferences: ``(n_segments, 5)`` rows sum to one.

        ``gain`` damps the effective EPE (standard decaying-feedback OPC
        iteration schedules pass ``1 / (1 + decay * step)``).
        """
        raw = np.asarray(epe_nm, dtype=np.float64)
        epe = raw * self.epe_scale * gain
        if self.mode == "matched":
            return self._matched_preferences(epe)
        # Five evenly spaced samples across [0, EPE], descending:
        # EPE > 0 -> [EPE, 3EPE/4, EPE/2, EPE/4, 0]
        # EPE < 0 -> [0, EPE/4, ..., EPE]  (0 > EPE/4 > ... > EPE)
        fractions_pos = np.linspace(1.0, 0.0, 5)
        fractions_neg = np.linspace(0.0, 1.0, 5)
        fractions = np.where(epe[:, None] >= 0, fractions_pos, fractions_neg)
        samples = epe[:, None] * fractions
        projected = self.projection(samples)
        shifted = projected - projected.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        prefs = exp / exp.sum(axis=1, keepdims=True)
        if self.hold_bias > 0:
            # Converged segments should prefer holding still: a small bump
            # on the zero movement that fades as |EPE| grows past the
            # deadband width.  This is the deadband principle of
            # conventional model-based OPC in the modulator's
            # multiplicative form (uses *raw* EPE — the deadband is a
            # printed-edge tolerance, independent of MEEF scaling).
            bump = 1.0 + self.hold_bias * np.exp(-((raw / self.hold_width_nm) ** 2))
            prefs[:, 2] *= bump
            prefs /= prefs.sum(axis=1, keepdims=True)
        return prefs

    def _matched_preferences(self, scaled_epe: np.ndarray) -> np.ndarray:
        """Gaussian preference around the error-cancelling movement.

        ``scaled_epe`` is the printed-edge error expressed in mask-movement
        units (raw EPE times 1/MEEF); movement ``m`` leaves a residual of
        ``scaled_epe + m``, and the preference decays with that residual.
        Clipping keeps huge errors mapped onto the extreme movements.
        """
        clipped = np.clip(scaled_epe, -3.0, 3.0)
        moves = np.arange(-2.0, 3.0)
        residual = clipped[:, None] + moves[None, :]
        logits = -((residual / self.sigma) ** 2)
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def log_preference_batch(
        self, epe_nm: np.ndarray, gain: float = 1.0
    ) -> np.ndarray:
        """``ln p_hat`` per segment — the additive logit offset equivalent
        of Eq. 6's elementwise product, used to train the policy *against
        the modulated distribution* (residual learning).  Preferences are
        floored so fully-suppressed movements stay finite in logit space."""
        return np.log(np.maximum(self.preference_batch(epe_nm, gain=gain), 1e-12))

    def modulate(
        self,
        probabilities: np.ndarray,
        epe_nm: np.ndarray,
        gain: float = 1.0,
    ) -> np.ndarray:
        """Eq. 6 inner product: ``p_hat (.) pi`` renormalized per segment.

        ``probabilities`` is ``(n, 5)`` policy output; returns the modulated
        distribution used for sampling / argmax decisions.
        """
        probs = np.asarray(probabilities, dtype=np.float64)
        prefs = self.preference_batch(np.asarray(epe_nm), gain=gain)
        if probs.shape != prefs.shape:
            raise ConfigError(
                f"probability shape {probs.shape} != preference shape {prefs.shape}"
            )
        mixed = probs * prefs
        total = mixed.sum(axis=1, keepdims=True)
        # A segment with an all-zero row (degenerate policy) falls back to
        # the preference alone.
        fallback = total[:, 0] <= 0
        if fallback.any():
            mixed[fallback] = prefs[fallback]
            total = mixed.sum(axis=1, keepdims=True)
        return mixed / total
