"""CAMO: correlation-aware mask optimization with modulated RL.

This package is the paper's contribution proper: the OPC-inspired
modulator (Section 3.2, Fig. 4), the correlation-aware policy network
(shared CNN encoder -> GraphSAGE feature fusing -> RNN sequential decision
-> 5-way movement head), and the two-phase-trained CAMO agent
(Algorithm 1) with modulated inference (Eq. 6).
"""

from repro.core.config import CamoConfig
from repro.core.modulator import Modulator
from repro.core.policy import CamoPolicy
from repro.core.agent import CAMO

__all__ = ["CamoConfig", "Modulator", "CamoPolicy", "CAMO"]
