"""The correlation-aware policy network.

Architecture (paper Section 3.2 + our documented reading of it):

1. a *shared* CNN reduces each node's ``(6, s, s)`` squish tensor to a
   compact vector — the node feature;
2. GraphSAGE levels fuse features along the proximity-graph edges to
   produce 256-d node embeddings (paper Eq. 4);
3. a 3-layer Elman RNN walks the embeddings in a spatial visit order,
   coordinating neighbouring segments through its hidden state (Eq. 5);
4. a ``64 x 5`` head yields one 5-way movement distribution per segment.

``use_gnn`` / ``use_rnn`` flags swap stages 2 / 3 for identity /
per-node MLP — the ablation grid reported in the benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CamoConfig
from repro.errors import NNError
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.rnn import ElmanRNN
from repro.nn.sage import GraphSAGEConv
from repro.nn.tensor import Tensor


class CamoPolicy(Module):
    """CNN -> GraphSAGE -> RNN -> FC policy (one distribution per node)."""

    def __init__(self, config: CamoConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)

        if config.encoder_tail == "gap":
            tail: tuple = (
                GlobalAvgPool2d(),
                Linear(64, config.embed_dim, rng=rng),
                ReLU(),
            )
        else:
            final_spatial = config.encode_size // 8
            tail = (
                Flatten(),
                Linear(64 * final_spatial * final_spatial, config.embed_dim, rng=rng),
                ReLU(),
            )
        self.encoder = Sequential(
            Conv2d(config.channels, 16, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(16, 32, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(32, 64, 3, stride=2, padding=1, rng=rng),
            ReLU(),
            *tail,
        )

        if config.use_gnn:
            for index in range(config.sage_layers):
                setattr(
                    self,
                    f"sage{index}",
                    GraphSAGEConv(config.embed_dim, config.embed_dim, rng=rng),
                )

        if config.use_rnn:
            self.rnn = ElmanRNN(
                config.embed_dim,
                config.rnn_hidden,
                num_layers=config.rnn_layers,
                rng=rng,
            )
        else:
            self.node_mlp = Sequential(
                Linear(config.embed_dim, config.rnn_hidden, rng=rng), ReLU()
            )
        self.head = Linear(config.rnn_hidden, config.n_actions, rng=rng)

    # -- forward ------------------------------------------------------------
    def forward(
        self,
        features: np.ndarray,
        adjacency: np.ndarray,
        order: list[int],
    ) -> Tensor:
        """Movement logits ``(n_segments, 5)`` in original segment order.

        Args:
            features: ``(n, channels, s, s)`` node feature tensors.
            adjacency: Row-normalized mean-aggregation matrix.
            order: RNN visit order (a permutation of node indices).
        """
        n = features.shape[0]
        if sorted(order) != list(range(n)):
            raise NNError("order must be a permutation of node indices")
        embeddings = self.encoder(Tensor(features))

        if self.config.use_gnn:
            for index in range(self.config.sage_layers):
                embeddings = getattr(self, f"sage{index}")(embeddings, adjacency)

        if self.config.use_rnn:
            ordered = embeddings[np.asarray(order)]
            hidden = self.rnn(ordered)
            inverse = np.argsort(np.asarray(order))
            hidden = hidden[inverse]
        else:
            hidden = self.node_mlp(embeddings)

        return self.head(hidden)

    def forward_population(
        self,
        features: np.ndarray,
        adjacency: np.ndarray,
        order: list[int],
    ) -> Tensor:
        """Movement logits ``(P, n, 5)`` for P independent states of one clip.

        The population shares the clip's graph and visit order but owns
        distinct masks (population-based RL training), so the whole
        forward runs as one batched graph: the CNN sees ``(P * n)`` nodes
        at once, GraphSAGE broadcasts the shared adjacency over the
        population axis, and the RNN advances P sequences per time step
        with a ``(P, hidden)`` state.  The batching never mixes rows;
        each population row matches what :meth:`forward` computes for
        that state alone to within a few ulps (batched matmuls may sum
        in a different order — not bit-for-bit).  The graph holds ~P
        times fewer ops, which is what makes the accumulated population
        policy-gradient step cheap.

        Args:
            features: ``(P, n, channels, s, s)`` node feature tensors.
        """
        if features.ndim != 5:
            raise NNError(
                f"expected (P, n, c, s, s) population features, got "
                f"{features.shape}"
            )
        population, n = features.shape[:2]
        if sorted(order) != list(range(n)):
            raise NNError("order must be a permutation of node indices")
        flat = features.reshape(population * n, *features.shape[2:])
        embeddings = self.encoder(Tensor(flat)).reshape(population, n, -1)

        if self.config.use_gnn:
            for index in range(self.config.sage_layers):
                embeddings = getattr(self, f"sage{index}")(embeddings, adjacency)

        if self.config.use_rnn:
            order_arr = np.asarray(order)
            ordered = embeddings[:, order_arr]
            hidden = self.rnn.forward_batch(ordered.transpose(1, 0, 2))
            hidden = hidden.transpose(1, 0, 2)[:, np.argsort(order_arr)]
        else:
            hidden = self.node_mlp(embeddings)

        return self.head(hidden)

    def probabilities(
        self,
        features: np.ndarray,
        adjacency: np.ndarray,
        order: list[int],
    ) -> Tensor:
        """Per-segment softmax distributions ``pi(a | s)``, ``(n, 5)``."""
        return F.softmax(self.forward(features, adjacency, order), axis=-1)
