"""The CAMO agent: two-phase training (Algorithm 1) and modulated
inference (Eq. 6).

A :class:`CAMO` instance owns the policy network, the modulator and one
optimization context per clip (environment + segment graph + visit order,
all fixed for the clip's lifetime, as the paper prescribes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.constants import MOVE_SET_NM
from repro.core.config import CamoConfig
from repro.core.modulator import Modulator
from repro.core.policy import CamoPolicy
from repro.errors import RLError
from repro.geometry.layout import Clip
from repro.graphs.construction import SegmentGraph, build_segment_graph
from repro.graphs.ordering import get_ordering
from repro.litho.simulator import LithographySimulator
from repro.nn.functional import softmax
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor, no_grad
from repro.nn.sage import mean_adjacency
from repro.rl.env import EnvState, OPCEnvironment
from repro.rl.imitation import (
    collect_teacher_actions_population,
    greedy_teacher_actions,
)
from repro.rl.reinforce import (
    policy_gradient_step,
    population_gradient_step,
    select_log_probs,
    select_log_probs_population,
)
from repro.rl.trajectory import Trajectory, TrajectoryStep
from repro.squish.features import NodeFeatureEncoder


@dataclass
class OptimizeResult:
    """Outcome of one CAMO inference run on a clip."""

    clip_name: str
    final_state: EnvState
    trajectory: Trajectory
    steps: int
    runtime_s: float
    early_exited: bool

    @property
    def epe_total(self) -> float:
        return self.final_state.total_epe

    @property
    def pvband(self) -> float:
        return self.final_state.pvband

    @property
    def epe_curve(self) -> list[float]:
        return self.trajectory.epe_curve


@dataclass
class _ClipContext:
    env: OPCEnvironment
    graph: SegmentGraph
    adjacency: np.ndarray
    order: list[int]
    teacher_samples: list | None = field(default=None, repr=False)


class CAMO:
    """Correlation-aware mask optimization with modulated RL."""

    def __init__(
        self, config: CamoConfig, simulator: LithographySimulator
    ) -> None:
        self.config = config
        self.simulator = simulator
        self.policy = CamoPolicy(config)
        self.modulator = Modulator(
            k=config.modulator_k,
            n=config.modulator_n,
            b=config.modulator_b,
            epe_scale=config.modulator_epe_scale,
            hold_bias=config.modulator_hold_bias,
            hold_width_nm=config.modulator_hold_width_nm,
            mode=config.modulator_mode,
            sigma=config.modulator_sigma,
        )
        self.encoder = NodeFeatureEncoder(
            window_nm=config.window_nm,
            out_size=config.encode_size,
            channels=config.channels,
        )
        self.optimizer = self._make_optimizer(config.learning_rate)
        self.rng = np.random.default_rng(config.seed)
        self._contexts: dict[str, _ClipContext] = {}

    def _make_optimizer(self, lr: float):
        if self.config.optimizer == "adam":
            return Adam(self.policy.parameters(), lr=lr)
        return SGD(self.policy.parameters(), lr=lr, momentum=self.config.momentum)

    # -- context management -----------------------------------------------------
    def context(self, clip: Clip) -> _ClipContext:
        """Environment + fixed graph/ordering for a clip (built once)."""
        ctx = self._contexts.get(clip.name)
        if ctx is None:
            env = OPCEnvironment(
                clip,
                self.simulator,
                initial_bias_nm=self.config.initial_bias_nm,
                epe_search_nm=self.config.epe_search_nm,
                reward_epsilon=self.config.reward_epsilon,
                reward_beta=self.config.reward_beta,
            )
            graph = build_segment_graph(
                env.segments, threshold_nm=self.config.graph_threshold_nm
            )
            ctx = _ClipContext(
                env=env,
                graph=graph,
                adjacency=mean_adjacency(graph),
                order=get_ordering(self.config.ordering)(graph),
            )
            self._contexts[clip.name] = ctx
        return ctx

    # -- policy evaluation ------------------------------------------------------
    def _logits(self, ctx: _ClipContext, state: EnvState) -> Tensor:
        features = self.encoder.encode_all(state.mask)
        return self.policy(features, ctx.adjacency, ctx.order)

    def _gain(self, step: int) -> float:
        return 1.0 / (1.0 + self.config.modulator_gain_decay * step)

    def _decision_distribution(
        self, ctx: _ClipContext, state: EnvState, logits: Tensor, step: int = 0
    ) -> np.ndarray:
        """Modulated (or raw) per-segment distributions for action choice."""
        temperature = max(self.config.policy_temperature, 1e-6)
        probs = softmax(logits * (1.0 / temperature), axis=-1).numpy()
        if not self.config.use_modulator:
            return probs
        return self.modulator.modulate(probs, state.seg_epe, gain=self._gain(step))

    def _sample_actions(self, distribution: np.ndarray) -> np.ndarray:
        cumulative = distribution.cumsum(axis=1)
        draws = self.rng.random((len(distribution), 1))
        # Float rounding can leave cumulative[-1] slightly below 1.0, in
        # which case a draw above it would index past the move set.
        return np.minimum(
            (draws > cumulative).sum(axis=1), distribution.shape[1] - 1
        )

    # -- early exit ------------------------------------------------------------
    def _early_exit(self, clip: Clip, state: EnvState) -> bool:
        threshold = self.config.early_exit_threshold
        if self.config.early_exit_mode == "per_target":
            return state.total_epe / clip.target_count < threshold
        return state.mean_epe < threshold

    # -- training (Algorithm 1) -----------------------------------------------
    def train(self, clips: list[Clip], verbose: bool = False) -> dict[str, list[float]]:
        """Two-phase training; returns loss/reward histories."""
        if not clips:
            raise RLError("training requires at least one clip")
        history: dict[str, list[float]] = {"imitation_logp": [], "rl_reward": []}
        self._train_imitation(clips, history, verbose)
        self._train_rl(clips, history, verbose)
        return history

    def _train_imitation(
        self, clips: list[Clip], history: dict[str, list[float]], verbose: bool
    ) -> None:
        """Phase 1: mimic the model-based teacher (no modulator involved).

        With ``imitation_weighting="unit"`` every teacher action gets unit
        weight (behaviour cloning) — necessary so that the teacher's *hold*
        decisions near convergence, whose environment reward is ~0, are
        learned too.  ``"reward"`` reproduces Eq. 7 literally.
        """
        for clip in clips:
            ctx = self.context(clip)
            if ctx.teacher_samples is None:
                # All bias-offset trajectories roll in lockstep: one
                # batched litho + metrology call per teacher step, with
                # samples bit-for-bit equal to (and ordered like) the
                # sequential per-offset rollouts.
                starts = [
                    ctx.env.reset(bias_nm=self.config.initial_bias_nm + offset)
                    for offset in self.config.imitation_bias_offsets
                ]
                rollout = [
                    sample
                    for trajectory in collect_teacher_actions_population(
                        ctx.env,
                        steps=self.config.imitation_steps,
                        teacher=greedy_teacher_actions,
                        initial_states=starts,
                    )
                    for sample in trajectory
                ]
                # Teacher states never change across epochs: encode the
                # features (and the modulator's logit offset) once.
                ctx.teacher_samples = [
                    (
                        self.encoder.encode_all(state.mask),
                        actions,
                        reward,
                        self.modulator.log_preference_batch(state.seg_epe),
                    )
                    for state, actions, reward in rollout
                ]
        unit_weight = self.config.imitation_weighting == "unit"
        for epoch in range(self.config.imitation_epochs):
            epoch_logp = 0.0
            for clip in clips:
                ctx = self.context(clip)
                for features, actions, reward, log_pref in ctx.teacher_samples:
                    logits = self.policy(features, ctx.adjacency, ctx.order)
                    if self.config.use_modulator and self.config.train_on_modulated:
                        logits = logits + Tensor(log_pref)
                    log_prob = select_log_probs(logits, actions)
                    weight = 1.0 if unit_weight else reward
                    policy_gradient_step(
                        self.optimizer, log_prob, weight,
                        max_grad_norm=self.config.max_grad_norm,
                    )
                    epoch_logp += log_prob.item()
            history["imitation_logp"].append(epoch_logp)
            if verbose:
                print(f"[imitation] epoch {epoch}: sum log-prob {epoch_logp:.2f}")

    def _rl_optimizer(self):
        rl_lr = (
            self.config.rl_learning_rate
            if self.config.rl_learning_rate is not None
            else 0.3 * self.config.learning_rate
        )
        return self._make_optimizer(rl_lr)

    def _train_rl(
        self, clips: list[Clip], history: dict[str, list[float]], verbose: bool
    ) -> None:
        """Phase 2: modulated exploration with Eq. 7 updates.

        ``rl_population == 1`` runs the original sequential loop
        (bit-for-bit reproducible histories); a larger population routes
        through the lockstep population loop.  (The retired
        ``rl_eval_mode`` knob no longer affects routing — every litho
        call is exact.)
        """
        if self.config.rl_population > 1:
            self._train_rl_population(clips, history, verbose)
        else:
            self._train_rl_sequential(clips, history, verbose)

    def _train_rl_sequential(
        self, clips: list[Clip], history: dict[str, list[float]], verbose: bool
    ) -> None:
        """One trajectory at a time with per-step Eq. 7 updates.

        An exponential-moving-average reward baseline turns the raw reward
        into an advantage — plain REINFORCE with batch size 1 is otherwise
        too noisy and can undo the imitation phase.
        """
        rl_optimizer = self._rl_optimizer()
        baseline = 0.0
        baseline_initialized = False
        for epoch in range(self.config.rl_epochs):
            epoch_reward = 0.0
            for clip in clips:
                ctx = self.context(clip)
                state = ctx.env.reset()
                for step in range(self.config.max_updates):
                    logits = self._logits(ctx, state)
                    distribution = self._decision_distribution(
                        ctx, state, logits, step
                    )
                    actions = self._sample_actions(distribution)
                    next_state, reward = ctx.env.step(state, actions)
                    if not baseline_initialized:
                        baseline = reward
                        baseline_initialized = True
                    advantage = reward - baseline
                    baseline = 0.8 * baseline + 0.2 * reward
                    # Eq. 7 uses the unmodulated policy output; with
                    # train_on_modulated we instead differentiate through
                    # the modulated distribution that was actually sampled.
                    if self.config.use_modulator and self.config.train_on_modulated:
                        log_pref = self.modulator.log_preference_batch(
                            state.seg_epe, gain=self._gain(step)
                        )
                        log_prob = select_log_probs(logits + Tensor(log_pref), actions)
                    else:
                        log_prob = select_log_probs(logits, actions)
                    policy_gradient_step(
                        rl_optimizer, log_prob, advantage,
                        max_grad_norm=self.config.max_grad_norm,
                    )
                    epoch_reward += reward
                    state = next_state
                    if self._early_exit(clip, state):
                        break
            history["rl_reward"].append(epoch_reward)
            if verbose:
                print(f"[rl] epoch {epoch}: total reward {epoch_reward:.3f}")

    def _population_distributions(
        self, logits_data: np.ndarray, seg_epes: np.ndarray, step: int
    ) -> np.ndarray:
        """Modulated per-segment distributions for a ``(P, n, 5)`` stack."""
        temperature = max(self.config.policy_temperature, 1e-6)
        probs = softmax(Tensor(logits_data * (1.0 / temperature)), axis=-1).numpy()
        if not self.config.use_modulator:
            return probs
        gain = self._gain(step)
        return np.stack(
            [
                self.modulator.modulate(member, seg_epe, gain=gain)
                for member, seg_epe in zip(probs, seg_epes)
            ]
        )

    def _train_rl_population(
        self, clips: list[Clip], history: dict[str, list[float]], verbose: bool
    ) -> None:
        """Phase 2 over a lockstep population of P trajectories per clip.

        Per step: P modulated action samples from one batched policy
        forward (:meth:`CamoPolicy.forward_population`), one batched
        litho + metrology transition
        (:meth:`~repro.rl.env.OPCEnvironment.step_batch`), and one
        accumulated policy-gradient step over the per-trajectory
        EMA-baseline advantages.  Each baseline slot persists across
        clips and epochs, mirroring the sequential loop's single EMA
        baseline.  Trajectories that reach the early-exit criterion drop
        out of the batch individually.  Node features for the whole
        population are encoded through one shared scanline union per
        segment (:meth:`NodeFeatureEncoder.encode_all_population`).
        """
        population = self.config.rl_population
        offsets = self.config.rl_population_bias_offsets
        rl_optimizer = self._rl_optimizer()
        baselines = np.zeros(population, dtype=np.float64)
        initialized = np.zeros(population, dtype=bool)
        for epoch in range(self.config.rl_epochs):
            epoch_reward = 0.0
            for clip in clips:
                ctx = self.context(clip)
                if offsets:
                    # Deterministic per-trajectory bias jitter decorrelates
                    # the population; all P starts are evaluated through
                    # one batched litho + metrology call.
                    states = ctx.env.reset_population(
                        [
                            self.config.initial_bias_nm
                            + offsets[p % len(offsets)]
                            for p in range(population)
                        ]
                    )
                else:
                    # reset() is deterministic, so the population shares
                    # one evaluated start state (EnvState is immutable);
                    # the trajectories diverge at the first sampled
                    # actions.
                    start = ctx.env.reset()
                    states = [start] * population
                active = list(range(population))
                for step in range(self.config.max_updates):
                    features = self.encoder.encode_all_population(
                        [states[p].mask for p in active]
                    )
                    logits = self.policy.forward_population(
                        features, ctx.adjacency, ctx.order
                    )
                    seg_epes = np.stack([states[p].seg_epe for p in active])
                    distributions = self._population_distributions(
                        logits.numpy(), seg_epes, step
                    )
                    flat = distributions.reshape(-1, self.config.n_actions)
                    actions = self._sample_actions(flat).reshape(
                        len(active), ctx.env.n_segments
                    )
                    stepped = ctx.env.step_batch(
                        [states[p] for p in active], actions
                    )
                    rewards = np.asarray([reward for _, reward in stepped])
                    slots = np.asarray(active)
                    fresh = ~initialized[slots]
                    baselines[slots[fresh]] = rewards[fresh]
                    initialized[slots[fresh]] = True
                    advantages = rewards - baselines[slots]
                    baselines[slots] = 0.8 * baselines[slots] + 0.2 * rewards
                    if self.config.use_modulator and self.config.train_on_modulated:
                        gain = self._gain(step)
                        log_pref = np.stack(
                            [
                                self.modulator.log_preference_batch(
                                    seg_epe, gain=gain
                                )
                                for seg_epe in seg_epes
                            ]
                        )
                        log_probs = select_log_probs_population(
                            logits + Tensor(log_pref), actions
                        )
                    else:
                        log_probs = select_log_probs_population(logits, actions)
                    population_gradient_step(
                        rl_optimizer, log_probs, advantages,
                        max_grad_norm=self.config.max_grad_norm,
                    )
                    epoch_reward += float(rewards.sum())
                    survivors = []
                    for index, p in enumerate(active):
                        states[p] = stepped[index][0]
                        if not self._early_exit(clip, states[p]):
                            survivors.append(p)
                    active = survivors
                    if not active:
                        break
            history["rl_reward"].append(epoch_reward)
            if verbose:
                print(
                    f"[rl/pop{population}] epoch {epoch}: "
                    f"total reward {epoch_reward:.3f}"
                )

    # -- inference (Eq. 6) -----------------------------------------------------
    def optimize(
        self,
        clip: Clip,
        max_updates: int | None = None,
        early_exit: bool = True,
    ) -> OptimizeResult:
        """Run modulated greedy OPC on one clip."""
        start = time.perf_counter()
        ctx = self.context(clip)
        limit = max_updates if max_updates is not None else self.config.max_updates
        state = ctx.env.reset()
        trajectory = Trajectory(epe_initial=state.total_epe)
        exited = False
        steps = 0
        for _ in range(limit):
            if early_exit and self._early_exit(clip, state):
                exited = True
                break
            with no_grad():
                logits = self._logits(ctx, state)
            distribution = self._decision_distribution(ctx, state, logits, steps)
            actions = distribution.argmax(axis=1)
            if self.config.candidate_lookahead:
                # Score the policy's move against the five uniform moves in
                # ONE batched litho call and keep the best-reward candidate.
                # Duplicate rows are scored once, and the all-hold candidate
                # is a free no-op: its next state is the current one and its
                # reward exactly 0, so it never needs a simulation.
                hold_row = np.full(
                    ctx.env.n_segments, MOVE_SET_NM.index(0), dtype=np.int64
                )
                seen = {hold_row.tobytes()}
                rows = []
                for row in (actions, *ctx.env.uniform_move_candidates()):
                    key = row.tobytes()
                    if key not in seen:
                        seen.add(key)
                        rows.append(row)
                scored = ctx.env.score_moves(state, np.stack(rows))
                # Hold goes last so reward ties keep the policy's move.
                options = [
                    (row, nxt, rew) for row, (nxt, rew) in zip(rows, scored)
                ] + [(hold_row, state, 0.0)]
                actions, state, reward = max(options, key=lambda o: o[2])
            else:
                state, reward = ctx.env.step(state, actions)
            steps += 1
            trajectory.append(
                TrajectoryStep(
                    actions=actions,
                    reward=reward,
                    epe_after=state.total_epe,
                    pvband_after=state.pvband,
                )
            )
        return OptimizeResult(
            clip_name=clip.name,
            final_state=state,
            trajectory=trajectory,
            steps=steps,
            runtime_s=time.perf_counter() - start,
            early_exited=exited,
        )

    # -- persistence ------------------------------------------------------------
    def save(self, path: str) -> None:
        self.policy.save(path)

    def load(self, path: str) -> None:
        self.policy.load(path)
