"""Physical constants and project-wide defaults.

All lengths are in nanometres unless a name says otherwise.  The optical
settings follow the ICCAD-2013 mask-optimization contest conventions
(193 nm ArF immersion lithography), which is the regime the CAMO paper's
benchmarks and academic baselines target.
"""

from __future__ import annotations

# --- Optics (193i, ICCAD-13 style) -----------------------------------------
WAVELENGTH_NM: float = 193.0
"""ArF excimer laser wavelength."""

NUMERICAL_APERTURE: float = 1.35
"""Immersion-lithography numerical aperture."""

PARTIAL_COHERENCE_SIGMA: float = 0.7
"""Partial-coherence factor of the circular illumination source."""

ANNULAR_SIGMA_IN: float = 0.5
ANNULAR_SIGMA_OUT: float = 0.8
"""Inner / outer sigma of the annular source option."""

RESIST_THRESHOLD: float = 0.225
"""Constant-threshold resist model cut level (ICCAD-13 value)."""

DEFOCUS_NM: float = 25.0
"""Defocus excursion used for the off-nominal process corners."""

DOSE_VARIATION: float = 0.02
"""Relative dose excursion (+/- 2%) for process corners."""

# --- Geometry / OPC ---------------------------------------------------------
PIXEL_NM: float = 4.0
"""Default rasterization pitch: one pixel is 4 nm x 4 nm."""

VIA_SIZE_NM: int = 70
"""Via pattern edge length (paper: 70 nm x 70 nm)."""

VIA_CLIP_NM: int = 2000
"""Via-layer clip edge length (paper: 2 um x 2 um)."""

METAL_CLIP_NM: int = 1500
"""Metal-layer clip edge length (paper: 1500 nm x 1500 nm)."""

MEASURE_SPACING_NM: int = 60
"""Measure-point spacing on metal primary-direction edges (paper value)."""

GRAPH_EDGE_THRESHOLD_NM: float = 250.0
"""Control points closer than this are connected in the segment graph."""

FEATURE_WINDOW_NM: float = 500.0
"""Squish-encoding neighbourhood window edge length around a control point."""

MOVE_SET_NM: tuple[int, ...] = (-2, -1, 0, 1, 2)
"""The five segment movements {m1..m5}; negative = inward, positive = outward."""

MAX_SEGMENT_OFFSET_NM: int = 24
"""Clamp on accumulated per-segment offset so polygons cannot self-invert."""

VIA_INITIAL_BIAS_NM: int = 3
"""Initial mask bias: every via edge starts 3 nm outward (paper setup)."""

# --- RL hyper-parameters (paper Section 4.1) --------------------------------
REWARD_EPSILON: float = 0.1
"""The small constant in the EPE term of the reward (Eq. 3)."""

REWARD_BETA: float = 1.0
"""Relative weight of the PV-band term in the reward (Eq. 3)."""

LEARNING_RATE: float = 3e-4
"""SGD learning rate used by the paper."""

DISCOUNT_GAMMA: float = 0.99
"""Trajectory discount factor."""

MODULATOR_K: float = 0.02
MODULATOR_N: int = 4
MODULATOR_B: float = 1.0
"""Projection function f(x) = k x^n + b; paper uses 0.02 x^4 + 1."""

# --- Early exit / iteration limits (paper Sections 4.2, 4.3) ----------------
VIA_MAX_UPDATES: int = 10
VIA_EARLY_EXIT_EPE_PER_VIA: float = 4.0
METAL_MAX_UPDATES: int = 15
METAL_EARLY_EXIT_EPE_PER_POINT: float = 1.0
