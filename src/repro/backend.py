"""One array/device backend for the whole numerical core.

Every hot-path array operation in the litho engine, the sparse EPE
pipeline and the CFNO-lite surrogate routes through a single
:class:`ArrayBackend` — the array namespace (``xp``), the 2-D FFT entry
points, host/device movement, and the dtype policy all live here, so the
entire screening/verification stack switches execution substrate behind
one knob:

* ``"numpy"`` — ``np.fft`` + host BLAS; single-threaded, bit-for-bit
  reproducible, and the backend the committed golden images were
  generated with.
* ``"scipy"`` — numpy arrays with ``scipy.fft`` transforms under
  ``workers=`` threading; agrees with numpy to ~1e-12 (both wrap
  pocketfft, different SIMD summation order), far inside the 1e-9
  golden tolerance but *not* bit-for-bit.
* ``"torch"`` — arrays live as ``torch.Tensor`` on ``device`` (CPU
  always; CUDA when available).  All work runs in explicit
  float64/complex128 — ``torch.set_default_dtype`` can never leak in —
  so CPU parity with numpy is ~1e-12 (EPE parity gated at <= 1e-9 nm by
  ``benchmarks/bench_backend.py``).  Requested explicitly only; never
  chosen by ``"auto"``.
* ``"cupy"`` — reserved seam.  The name resolves (and reports a clear
  error until the adapter set is wired), so configs/CLI flags are
  forward-compatible.
* ``"auto"`` — scipy with threads when scipy is importable *and* more
  than one core is available, numpy otherwise.  ``auto`` never picks a
  device backend: device execution is an explicit opt-in.

Backends are resolved once per ``(name, workers, device)`` triple and
shared.  Cached transform-derived artifacts downstream (phase matrices,
band DFT matrices, surrogate DFT GEMMs, legacy kernel spectra) key on
:attr:`ArrayBackend.identity` / :attr:`ArrayBackend.array_identity`, so
swapping the backend can never serve arrays resident on the wrong
device or spectra computed by another library's transform.

Dtype policy
------------

All real arrays are float64 and all spectra are complex128, explicitly,
on every backend.  The numpy backend inherits this from the engine's
literal dtypes; the torch adapter pins ``dtype=torch.float64`` /
``torch.complex128`` at every tensor creation and conversion, so the
process-global ``torch.set_default_dtype`` (float32 out of the box) has
no effect on any value this package computes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import LithoError

try:  # scipy is optional; everything falls back to np.fft without it.
    import scipy.fft as _scipy_fft
except ImportError:  # pragma: no cover - depends on the environment
    _scipy_fft = None

try:  # torch is optional; the torch backend resolves only when importable.
    import torch as _torch
except ImportError:  # pragma: no cover - depends on the environment
    _torch = None

try:  # cupy seam: detection only until the adapter set is wired.
    import cupy as _cupy  # pragma: no cover - depends on the environment
except ImportError:  # pragma: no cover - depends on the environment
    _cupy = None

BACKEND_NAMES = ("auto", "numpy", "scipy", "torch", "cupy")

#: The pre-array-API spellings accepted by the deprecated ``fft_backend=``
#: knob (host transform libraries only).
FFT_BACKEND_NAMES = ("auto", "numpy", "scipy")


def _is_5_smooth(n: int) -> bool:
    for p in (2, 3, 5):
        while n % p == 0:
            n //= p
    return n == 1


def next_fast_len(n: int) -> int:
    """Smallest 5-smooth integer >= ``n`` (fast FFT length).

    When scipy is importable its C implementation drives the search;
    scipy's notion of "fast" admits factors of 7 and 11, so its answer is
    a *lower bound* that we re-check and advance past until it lands on a
    5-smooth value (subgrid sizes are part of the numerical contract —
    the chosen length must not depend on whether scipy is installed).
    The pure-python upward scan is the fallback and the reference.
    """
    if n < 1:
        raise LithoError(f"FFT length must be positive, got {n}")
    best = n
    while True:
        if _scipy_fft is not None:
            # next_fast_len(m) == m for any 7/11-smooth m, so each miss
            # strictly advances `best` and the loop terminates at the
            # first 5-smooth value, identical to the naive scan.
            best = _scipy_fft.next_fast_len(best)
        if _is_5_smooth(best):
            return best
        best += 1


def scipy_fft_available() -> bool:
    """Whether the scipy backend can actually be constructed."""
    return _scipy_fft is not None


def torch_available() -> bool:
    """Whether the torch backend can actually be constructed."""
    return _torch is not None


def cupy_available() -> bool:
    """Whether cupy is importable (the backend itself is still a seam)."""
    return _cupy is not None


@dataclass(frozen=True)
class ArrayBackend:
    """Array namespace + FFT entry points + device policy, as one value.

    ``workers`` is the thread count handed to ``scipy.fft`` (ignored by
    the numpy and torch backends).  ``device`` is ``"cpu"`` for the host
    backends and ``"cpu"``/``"cuda"``/``"cuda:N"`` for torch.

    The numpy and scipy backends share numpy's array namespace — scipy
    only swaps the transform library — so code running under either
    executes literally the same numpy operations outside the FFT calls.
    """

    name: str
    workers: int
    device: str = "cpu"

    # -- identity ------------------------------------------------------------
    @property
    def identity(self) -> tuple:
        """Full cache identity: transform library + threading + device.

        Key FFT-*derived* caches with this — two backends differing in
        any component may produce (slightly) different transform output
        or arrays resident in different memory.
        """
        return (self.name, self.workers, self.device)

    @property
    def array_identity(self) -> tuple:
        """Identity of the array *representation* only.

        Host-built constants (phase matrices, DFT matrices) are
        identical under numpy and scipy — both hold numpy arrays — and
        only need re-materializing per array namespace + device.  Keying
        residency caches with this instead of :attr:`identity` lets the
        numpy and scipy backends share one host copy.
        """
        if self.is_numpy:
            return ("numpy", "cpu")
        return (self.name, self.device)

    @property
    def is_numpy(self) -> bool:
        """True when arrays are host numpy (numpy and scipy backends)."""
        return self.name in ("numpy", "scipy")

    @property
    def xp(self):
        """The array namespace module (``numpy`` or ``torch``)."""
        return _torch if self.name == "torch" else np

    # -- dtype policy (explicit everywhere; see module docstring) ------------
    @property
    def float64(self):
        return _torch.float64 if self.name == "torch" else np.float64

    @property
    def complex128(self):
        return _torch.complex128 if self.name == "torch" else np.complex128

    @property
    def int64(self):
        return _torch.int64 if self.name == "torch" else np.int64

    # -- host/device movement ------------------------------------------------
    def to_device(self, a):
        """Move an array to this backend's native representation.

        Numpy/scipy: a passthrough for ndarrays (same object, same
        bits).  Torch: ``torch.Tensor`` on :attr:`device`, preserving
        the numpy dtype (float64 -> torch.float64, complex128 ->
        torch.complex128).
        """
        if self.name == "torch":
            if isinstance(a, _torch.Tensor):
                return a if str(a.device) == self.device else a.to(self.device)
            return _torch.as_tensor(
                np.ascontiguousarray(a), device=self.device
            )
        if isinstance(a, np.ndarray):
            return a
        return np.asarray(self.to_host(a))

    def to_host(self, a):
        """The host-numpy view/copy of an array (ndarray passthrough)."""
        if isinstance(a, np.ndarray):
            return a
        if _torch is not None and isinstance(a, _torch.Tensor):
            return a.detach().cpu().numpy()
        return np.asarray(a)

    def index(self, a: np.ndarray):
        """An integer index array usable for advanced indexing here.

        Numpy/scipy: the array itself.  Torch: an int64 index tensor on
        :attr:`device` (CUDA tensors cannot be fancy-indexed with host
        arrays).
        """
        if self.name == "torch":
            return _torch.as_tensor(
                np.ascontiguousarray(a), dtype=_torch.int64,
                device=self.device,
            )
        return a

    def asarray_f64(self, a):
        """``a`` as this backend's native float64 array (no-copy when
        already native float64)."""
        if self.name == "torch":
            t = self.to_device(a)
            return t if t.dtype == _torch.float64 else t.to(_torch.float64)
        return np.asarray(self.to_host(a), dtype=np.float64)

    # -- construction / namespace ops ---------------------------------------
    def zeros(self, shape, dtype):
        if self.name == "torch":
            return _torch.zeros(tuple(shape), dtype=dtype, device=self.device)
        return np.zeros(shape, dtype)

    def empty(self, shape, dtype):
        if self.name == "torch":
            return _torch.empty(tuple(shape), dtype=dtype, device=self.device)
        return np.empty(shape, dtype)

    def concat(self, arrays, axis: int = 0):
        if self.name == "torch":
            return _torch.cat(list(arrays), dim=axis)
        return np.concatenate(arrays, axis=axis)

    def einsum(self, subscripts: str, *operands):
        if self.name == "torch":
            return _torch.einsum(subscripts, *operands)
        return np.einsum(subscripts, *operands)

    def ascontiguous(self, a):
        if self.name == "torch":
            return a.contiguous()
        return np.ascontiguousarray(a)

    # -- FFT entry points ----------------------------------------------------
    def fft2(self, a, axes: tuple[int, int] = (-2, -1)):
        if self.name == "scipy":
            return _scipy_fft.fft2(a, axes=axes, workers=self.workers)
        if self.name == "torch":
            return _torch.fft.fft2(self.to_device(a), dim=axes)
        return np.fft.fft2(a, axes=axes)

    def ifft2(self, a, axes: tuple[int, int] = (-2, -1)):
        if self.name == "scipy":
            return _scipy_fft.ifft2(a, axes=axes, workers=self.workers)
        if self.name == "torch":
            return _torch.fft.ifft2(self.to_device(a), dim=axes)
        return np.fft.ifft2(a, axes=axes)

    def rfft2(self, a, axes: tuple[int, int] = (-2, -1)):
        """Real-input forward transform (half-width spectrum along the
        last axis).  The sparse EPE path pairs this with a Hermitian
        band gather — roughly halving the forward-transform cost that
        dominates its runtime."""
        if self.name == "scipy":
            return _scipy_fft.rfft2(a, axes=axes, workers=self.workers)
        if self.name == "torch":
            return _torch.fft.rfft2(
                self.asarray_f64(a), dim=axes
            )
        return np.fft.rfft2(a, axes=axes)


#: Backward-compatible alias: the FFT backend grew into the full array
#: backend (PR 10); existing ``FFTBackend`` callers keep working.
FFTBackend = ArrayBackend


@lru_cache(maxsize=16)
def resolve_backend(
    name: str = "auto",
    workers: int | None = None,
    device: str | None = None,
) -> ArrayBackend:
    """Build (and cache) the array backend for a configuration name.

    Args:
        name: One of :data:`BACKEND_NAMES`.  ``"scipy"`` falls back to
            numpy when scipy is not importable (matching the historical
            "use scipy when available" contract); ``"torch"`` raises
            when torch is absent — a device request degrading silently
            to host would invalidate the caller's throughput
            assumptions.
        workers: Thread count for scipy transforms; ``None`` = all cores.
        device: Torch device string (``"cpu"``, ``"cuda"``,
            ``"cuda:1"``); ``None`` picks CUDA when available, else CPU.
            Host backends accept only ``None``/``"cpu"``.
    """
    if name not in BACKEND_NAMES:
        raise LithoError(
            f"unknown array backend {name!r}; choose one of {BACKEND_NAMES}"
        )
    cores = os.cpu_count() or 1
    resolved_workers = cores if workers is None else int(workers)
    if resolved_workers < 1:
        raise LithoError(f"fft workers must be >= 1, got {workers}")
    if name == "auto":
        name = (
            "scipy"
            if scipy_fft_available() and resolved_workers > 1 and cores > 1
            else "numpy"
        )
    elif name == "scipy" and not scipy_fft_available():
        name = "numpy"
    if name == "cupy":
        if _cupy is None:
            raise LithoError(
                "backend 'cupy' requested but cupy is not importable"
            )
        raise LithoError(
            "the cupy backend is a reserved seam: its FFT/GEMM adapters "
            "are not wired yet (use backend='torch' for device execution)"
        )
    if name == "torch":
        if _torch is None:
            raise LithoError(
                "backend 'torch' requested but torch is not importable; "
                "install CPU torch or choose a host backend"
            )
        if device is None:
            device = "cuda" if _torch.cuda.is_available() else "cpu"
        if device.startswith("cuda") and not _torch.cuda.is_available():
            raise LithoError(
                f"torch device {device!r} requested but CUDA is not available"
            )
        return ArrayBackend(
            name="torch", workers=resolved_workers, device=device
        )
    if device not in (None, "cpu"):
        raise LithoError(
            f"backend {name!r} is host-only; device={device!r} is not valid"
        )
    return ArrayBackend(name=name, workers=resolved_workers, device="cpu")


def resolve_fft_backend(
    name: str = "auto", workers: int | None = None
) -> ArrayBackend:
    """Deprecated spelling of :func:`resolve_backend` (host-era API).

    Kept callable — including for the extended backend names — so
    pre-array-API callers and configs keep resolving.
    """
    return resolve_backend(name, workers)
