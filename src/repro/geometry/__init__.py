"""Rectilinear geometry substrate: rects, polygons, clips, rasterization,
boundary fragmentation, segment-offset mask editing and SRAF insertion.

This package provides everything the OPC engines need to represent a layout
clip and to turn per-segment movement decisions back into mask polygons.
"""

from repro.geometry.rect import Rect
from repro.geometry.polygon import Polygon
from repro.geometry.layout import Clip
from repro.geometry.raster import Grid, rasterize
from repro.geometry.segmentation import Segment, fragment_clip, fragment_polygon
from repro.geometry.mask_edit import MaskState, apply_offsets
from repro.geometry.sraf import insert_srafs

__all__ = [
    "Rect",
    "Polygon",
    "Clip",
    "Grid",
    "rasterize",
    "Segment",
    "fragment_clip",
    "fragment_polygon",
    "MaskState",
    "apply_offsets",
    "insert_srafs",
]
