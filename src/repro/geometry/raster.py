"""Rasterization of rectilinear polygons onto nanometre pixel grids.

The lithography simulator operates on binary mask images; this module maps
between nm-space geometry and pixel space.  Filling uses per-row scanline
crossing counts against vertical edges, which is exact for rectilinear
polygons evaluated at pixel centres.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import RasterError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Grid:
    """A uniform pixel grid covering a window.

    Pixel ``(row, col)`` has its centre at
    ``(x0 + (col + 0.5) * pixel_nm,  y0 + (row + 0.5) * pixel_nm)``.
    Row 0 is the *bottom* row (y increases with row index), matching layout
    coordinates rather than image conventions.
    """

    x0: float
    y0: float
    pixel_nm: float
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.pixel_nm <= 0:
            raise RasterError(f"pixel size must be positive, got {self.pixel_nm}")
        if self.rows <= 0 or self.cols <= 0:
            raise RasterError(f"empty grid: {self.rows} x {self.cols}")

    @classmethod
    def for_window(cls, window: Rect, pixel_nm: float) -> "Grid":
        """Grid exactly covering ``window`` (dimensions rounded up)."""
        cols = int(np.ceil(window.width / pixel_nm))
        rows = int(np.ceil(window.height / pixel_nm))
        return cls(window.x0, window.y0, pixel_nm, rows, cols)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def window(self) -> Rect:
        return Rect(
            self.x0,
            self.y0,
            self.x0 + self.cols * self.pixel_nm,
            self.y0 + self.rows * self.pixel_nm,
        )

    # -- coordinate transforms ---------------------------------------------
    def x_centers(self) -> np.ndarray:
        return self.x0 + (np.arange(self.cols) + 0.5) * self.pixel_nm

    def y_centers(self) -> np.ndarray:
        return self.y0 + (np.arange(self.rows) + 0.5) * self.pixel_nm

    def nm_to_fractional_index(self, x: float, y: float) -> tuple[float, float]:
        """Map nm coordinates to fractional (row, col) pixel-centre indices."""
        col = (x - self.x0) / self.pixel_nm - 0.5
        row = (y - self.y0) / self.pixel_nm - 0.5
        return (row, col)

    def contains(self, x: float, y: float) -> bool:
        return self.window.contains_point(x, y)


def rasterize(
    polygons: Iterable[Polygon], grid: Grid, antialias: bool = True
) -> np.ndarray:
    """Graytone image of the union of ``polygons`` on ``grid``.

    With ``antialias=True`` (the default, and what the lithography
    simulator needs) each pixel holds the exact fractional area covered by
    the geometry, so sub-pixel mask-edge movements change the image
    smoothly — without this, OPC moves smaller than the pixel pitch would
    be invisible and the apparent MEEF explodes.  ``antialias=False``
    returns the classic 0/1 pixel-centre membership image.

    Polygons are assumed mutually disjoint (targets + SRAFs always are);
    the result is clipped to [0, 1] regardless.
    """
    image = np.zeros(grid.shape, dtype=np.float64)
    for polygon in polygons:
        for x_lo, x_hi, y_lo, y_hi in slab_decomposition(polygon):
            _add_slab_coverage(image, grid, x_lo, x_hi, y_lo, y_hi)
    np.clip(image, 0.0, 1.0, out=image)
    if not antialias:
        return (image >= 0.5).astype(np.uint8)
    return image


def slab_decomposition(polygon: Polygon):
    """Split a rectilinear polygon into disjoint axis-aligned slabs.

    Cutting at every distinct vertex y gives horizontal bands inside which
    the polygon's cross-section is a fixed union of x-intervals.  Public
    because the antialiased raster is exactly the sum of the slabs'
    pixel-coverage outer products — consumers (e.g. the surrogate's
    rasterless feature path) can evaluate linear functionals of the
    raster directly from these slabs without building the image.
    """
    verts = polygon.vertices
    n = len(verts)
    vertical_edges = []
    for i in range(n):
        (ax, ay), (bx, by) = verts[i], verts[(i + 1) % n]
        if ax == bx:
            vertical_edges.append((ax, min(ay, by), max(ay, by)))
    if not vertical_edges:
        raise RasterError("polygon has no vertical edges")
    y_cuts = sorted({v[1] for v in verts})
    for y_lo, y_hi in zip(y_cuts, y_cuts[1:]):
        y_mid = (y_lo + y_hi) / 2
        crossings = sorted(
            ex for ex, ey0, ey1 in vertical_edges if ey0 <= y_mid < ey1
        )
        for k in range(0, len(crossings) - 1, 2):
            yield (crossings[k], crossings[k + 1], y_lo, y_hi)


def _add_slab_coverage(
    image: np.ndarray,
    grid: Grid,
    x_lo: float,
    x_hi: float,
    y_lo: float,
    y_hi: float,
) -> None:
    """Accumulate the exact pixel-coverage of one rectangle."""
    px = grid.pixel_nm
    x_lo = max(x_lo, grid.x0)
    y_lo = max(y_lo, grid.y0)
    x_hi = min(x_hi, grid.x0 + grid.cols * px)
    y_hi = min(y_hi, grid.y0 + grid.rows * px)
    if x_lo >= x_hi or y_lo >= y_hi:
        return
    col_lo = int((x_lo - grid.x0) // px)
    col_hi = int(np.ceil((x_hi - grid.x0) / px))
    row_lo = int((y_lo - grid.y0) // px)
    row_hi = int(np.ceil((y_hi - grid.y0) / px))

    cols = np.arange(col_lo, col_hi)
    rows = np.arange(row_lo, row_hi)
    col_starts = grid.x0 + cols * px
    row_starts = grid.y0 + rows * px
    wx = (np.minimum(col_starts + px, x_hi) - np.maximum(col_starts, x_lo)) / px
    wy = (np.minimum(row_starts + px, y_hi) - np.maximum(row_starts, y_lo)) / px
    image[row_lo:row_hi, col_lo:col_hi] += np.outer(wy, wx)


def bilinear_sample(image: np.ndarray, grid: Grid, x: float, y: float) -> float:
    """Bilinearly interpolate a scalar field stored on ``grid`` at nm point.

    Out-of-window points clamp to the border value, which is the right
    behaviour for intensity fields that have decayed to background there.
    """
    row_f, col_f = grid.nm_to_fractional_index(x, y)
    row_f = float(np.clip(row_f, 0.0, grid.rows - 1.0))
    col_f = float(np.clip(col_f, 0.0, grid.cols - 1.0))
    r0 = int(np.floor(row_f))
    c0 = int(np.floor(col_f))
    r1 = min(r0 + 1, grid.rows - 1)
    c1 = min(c0 + 1, grid.cols - 1)
    fr = row_f - r0
    fc = col_f - c0
    top = image[r0, c0] * (1 - fc) + image[r0, c1] * fc
    bottom = image[r1, c0] * (1 - fc) + image[r1, c1] * fc
    return float(top * (1 - fr) + bottom * fr)


def _bilinear_weights(
    grid: Grid, xs: Sequence[float], ys: Sequence[float]
) -> tuple[np.ndarray, ...]:
    """Corner indices and fractional weights shared by the samplers."""
    xs_arr = np.asarray(xs, dtype=np.float64)
    ys_arr = np.asarray(ys, dtype=np.float64)
    col_f = np.clip((xs_arr - grid.x0) / grid.pixel_nm - 0.5, 0.0, grid.cols - 1.0)
    row_f = np.clip((ys_arr - grid.y0) / grid.pixel_nm - 0.5, 0.0, grid.rows - 1.0)
    r0 = np.floor(row_f).astype(np.int64)
    c0 = np.floor(col_f).astype(np.int64)
    r1 = np.minimum(r0 + 1, grid.rows - 1)
    c1 = np.minimum(c0 + 1, grid.cols - 1)
    return r0, c0, r1, c1, row_f - r0, col_f - c0


def bilinear_sample_many(
    image: np.ndarray, grid: Grid, xs: Sequence[float], ys: Sequence[float]
) -> np.ndarray:
    """Vectorized :func:`bilinear_sample` over matching coordinate arrays."""
    r0, c0, r1, c1, fr, fc = _bilinear_weights(grid, xs, ys)
    top = image[r0, c0] * (1 - fc) + image[r0, c1] * fc
    bottom = image[r1, c0] * (1 - fc) + image[r1, c1] * fc
    return top * (1 - fr) + bottom * fr


def bilinear_sample_stack(
    images: np.ndarray, grid: Grid, xs: Sequence[float], ys: Sequence[float]
) -> np.ndarray:
    """Sample the *same* nm points on a ``(B, H, W)`` image stack.

    One gather per corner covers the whole batch; each row is bit-for-bit
    identical to :func:`bilinear_sample_many` on that image (the per-point
    index/weight arithmetic is shared and the blend broadcasts the same
    elementwise operations).

    Returns:
        ``(B, n)`` sampled values.
    """
    stack = np.asarray(images)
    if stack.ndim != 3:
        raise RasterError(
            f"image stack must be 3-D (B, H, W), got shape {stack.shape}"
        )
    r0, c0, r1, c1, fr, fc = _bilinear_weights(grid, xs, ys)
    top = stack[:, r0, c0] * (1 - fc) + stack[:, r0, c1] * fc
    bottom = stack[:, r1, c0] * (1 - fc) + stack[:, r1, c1] * fc
    return top * (1 - fr) + bottom * fr
