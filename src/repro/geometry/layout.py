"""Layout clips: the unit of work for every OPC engine in this project.

A :class:`Clip` bundles the target patterns (what we want printed), any
sub-resolution assist features (SRAFs — printed on the mask but not meant to
resolve), and metadata such as the layer kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import GeometryError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Clip:
    """A rectangular layout window with target patterns and optional SRAFs.

    Attributes:
        name: Benchmark identifier, e.g. ``"V3"`` or ``"M10"``.
        bbox: The clip window in nanometres.
        targets: Design polygons that must print.
        srafs: Assist polygons present on the mask but not in the target.
        layer: ``"via"`` or ``"metal"`` — selects fragmentation and
            measure-point rules.
        metadata: Free-form extras (via count, generator seed...).
    """

    name: str
    bbox: Rect
    targets: tuple[Polygon, ...]
    srafs: tuple[Polygon, ...] = ()
    layer: str = "via"
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.layer not in ("via", "metal"):
            raise GeometryError(f"unknown layer kind: {self.layer!r}")
        if not self.targets:
            raise GeometryError(f"clip {self.name!r} has no target polygons")
        for poly in (*self.targets, *self.srafs):
            if not self.bbox.contains_rect(poly.bbox):
                raise GeometryError(
                    f"clip {self.name!r}: polygon bbox {poly.bbox} outside window"
                )

    @property
    def target_count(self) -> int:
        return len(self.targets)

    def with_srafs(self, srafs: tuple[Polygon, ...]) -> "Clip":
        """Return a copy with the SRAF set replaced."""
        return replace(self, srafs=srafs)

    def without_srafs(self) -> "Clip":
        return replace(self, srafs=())

    def all_polygons(self) -> tuple[Polygon, ...]:
        """Targets followed by SRAFs (the full initial mask content)."""
        return (*self.targets, *self.srafs)
