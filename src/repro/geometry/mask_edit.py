"""Mask reconstruction from per-segment offsets.

OPC in this project is *edge-based*: the target polygon boundary is
fragmented once (see :mod:`repro.geometry.segmentation`) and each fragment
carries an accumulated offset along its outward normal.  This module turns
``(polygon, fragments, offsets)`` back into a rectilinear mask polygon,
inserting perpendicular jogs where neighbouring fragments sit at different
offsets and intersecting offset lines at corners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MAX_SEGMENT_OFFSET_NM
from repro.errors import GeometryError
from repro.geometry.layout import Clip
from repro.geometry.polygon import Polygon
from repro.geometry.segmentation import Segment


def apply_offsets(
    segments: list[Segment], offsets: np.ndarray | list[float]
) -> Polygon:
    """Rebuild one polygon from its CCW fragment list and offset vector.

    ``offsets[i]`` is the accumulated outward displacement (nm, negative =
    inward) of ``segments[i]``.  Fragments must all belong to the same
    polygon and be given in boundary order.
    """
    offs = np.asarray(offsets, dtype=np.float64)
    if len(segments) != len(offs):
        raise GeometryError(
            f"{len(segments)} segments but {len(offs)} offsets"
        )
    if len(segments) < 4:
        raise GeometryError("need at least 4 fragments to rebuild a polygon")

    levels = []
    for segment, off in zip(segments, offs):
        nx, ny = segment.normal
        shift = off * (ny if segment.axis == "h" else nx)
        levels.append(segment.level + shift)

    vertices: list[tuple[float, float]] = []
    n = len(segments)
    for i in range(n):
        j = (i + 1) % n
        seg_i, seg_j = segments[i], segments[j]
        if seg_i.axis != seg_j.axis:
            # Corner: intersect the two offset lines.
            if seg_i.axis == "h":
                vertices.append((levels[j], levels[i]))
            else:
                vertices.append((levels[i], levels[j]))
        else:
            # Same-axis junction: jog at the shared fragment boundary.
            if seg_i.axis == "h":
                x_shared = seg_i.b[0]
                vertices.append((x_shared, levels[i]))
                vertices.append((x_shared, levels[j]))
            else:
                y_shared = seg_i.b[1]
                vertices.append((levels[i], y_shared))
                vertices.append((levels[j], y_shared))

    return Polygon(tuple(vertices))


@dataclass
class MaskState:
    """The evolving mask: a clip, its fragmentation, and accumulated offsets.

    Immutable-in-practice: :meth:`moved` returns a new state.  Offsets are
    clamped to ``+/- max_offset`` so reconstructed polygons stay simple.
    """

    clip: Clip
    segments: list[Segment]
    offsets: np.ndarray
    max_offset: int = MAX_SEGMENT_OFFSET_NM
    _polygons: tuple[Polygon, ...] | None = field(default=None, repr=False)

    @classmethod
    def initial(
        cls,
        clip: Clip,
        segments: list[Segment],
        bias_nm: float = 0.0,
        max_offset: int = MAX_SEGMENT_OFFSET_NM,
    ) -> "MaskState":
        """Starting state; ``bias_nm`` applies a uniform outward bias
        (the paper starts via masks 3 nm outward)."""
        offsets = np.full(len(segments), float(bias_nm), dtype=np.float64)
        return cls(clip=clip, segments=segments, offsets=offsets, max_offset=max_offset)

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def moved(self, deltas: np.ndarray | list[float]) -> "MaskState":
        """New state with ``deltas`` (nm per segment) added and clamped."""
        deltas_arr = np.asarray(deltas, dtype=np.float64)
        if deltas_arr.shape != self.offsets.shape:
            raise GeometryError(
                f"delta shape {deltas_arr.shape} != offsets shape {self.offsets.shape}"
            )
        new_offsets = np.clip(
            self.offsets + deltas_arr, -self.max_offset, self.max_offset
        )
        return MaskState(
            clip=self.clip,
            segments=self.segments,
            offsets=new_offsets,
            max_offset=self.max_offset,
        )

    def mask_polygons(self) -> tuple[Polygon, ...]:
        """Current mask: offset target polygons plus untouched SRAFs."""
        if self._polygons is None:
            by_poly: dict[int, list[int]] = {}
            for k, segment in enumerate(self.segments):
                by_poly.setdefault(segment.poly_index, []).append(k)
            rebuilt: list[Polygon] = []
            for poly_index in range(len(self.clip.targets)):
                seg_ids = by_poly.get(poly_index)
                if not seg_ids:
                    rebuilt.append(self.clip.targets[poly_index])
                    continue
                segs = [self.segments[k] for k in seg_ids]
                rebuilt.append(apply_offsets(segs, self.offsets[seg_ids]))
            self._polygons = (*rebuilt, *self.clip.srafs)
        return self._polygons
