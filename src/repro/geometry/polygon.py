"""Rectilinear (Manhattan) polygons.

A polygon is a closed, simple, axis-aligned boundary stored as an ordered
vertex list.  All OPC mask shapes in this project are rectilinear, which
lets segment movement stay exact: every edge is horizontal or vertical and
moves along its outward normal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import GeometryError
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Edge:
    """One directed boundary edge from ``a`` to ``b`` (axis-aligned)."""

    a: tuple[float, float]
    b: tuple[float, float]

    @property
    def axis(self) -> str:
        """``'h'`` for horizontal edges, ``'v'`` for vertical ones."""
        return "h" if self.a[1] == self.b[1] else "v"

    @property
    def length(self) -> float:
        return abs(self.b[0] - self.a[0]) + abs(self.b[1] - self.a[1])

    @property
    def midpoint(self) -> tuple[float, float]:
        return ((self.a[0] + self.b[0]) / 2, (self.a[1] + self.b[1]) / 2)

    @property
    def direction(self) -> tuple[int, int]:
        """Unit direction of travel along the edge."""
        dx = self.b[0] - self.a[0]
        dy = self.b[1] - self.a[1]
        length = abs(dx) + abs(dy)
        return (round(dx / length), round(dy / length))

    @property
    def outward_normal(self) -> tuple[int, int]:
        """Unit outward normal, assuming the polygon is counter-clockwise.

        For a CCW boundary the interior lies to the left of the direction of
        travel, so the outward normal is the right-hand perpendicular.
        """
        dx, dy = self.direction
        return (dy, -dx)


@dataclass(frozen=True)
class Polygon:
    """A simple rectilinear polygon with counter-clockwise vertex order.

    Vertices are ``(x, y)`` nanometre pairs; the boundary closes implicitly
    from the last vertex back to the first.  Construction validates
    rectilinearity and normalizes orientation to CCW.
    """

    vertices: tuple[tuple[float, float], ...] = field()

    def __post_init__(self) -> None:
        verts = [tuple(map(float, v)) for v in self.vertices]
        if len(verts) < 4:
            raise GeometryError(f"polygon needs >= 4 vertices, got {len(verts)}")
        cleaned = _drop_redundant_vertices(verts)
        if len(cleaned) < 4:
            raise GeometryError("polygon degenerates after vertex cleanup")
        for i, a in enumerate(cleaned):
            b = cleaned[(i + 1) % len(cleaned)]
            if a[0] != b[0] and a[1] != b[1]:
                raise GeometryError(f"non-rectilinear edge {a} -> {b}")
        if _signed_area(cleaned) < 0:
            cleaned = cleaned[::-1]
        if _signed_area(cleaned) == 0:
            raise GeometryError("zero-area polygon")
        object.__setattr__(self, "vertices", tuple(cleaned))

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """Four-vertex CCW polygon from a rect."""
        return cls(
            (
                (rect.x0, rect.y0),
                (rect.x1, rect.y0),
                (rect.x1, rect.y1),
                (rect.x0, rect.y1),
            )
        )

    # -- queries ----------------------------------------------------------
    @property
    def area(self) -> float:
        """Enclosed area (always positive: vertices are CCW)."""
        return _signed_area(list(self.vertices))

    @property
    def perimeter(self) -> float:
        return sum(edge.length for edge in self.edges())

    @property
    def bbox(self) -> Rect:
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def edges(self) -> Iterator[Edge]:
        """Iterate boundary edges in CCW order."""
        n = len(self.vertices)
        for i in range(n):
            yield Edge(self.vertices[i], self.vertices[(i + 1) % n])

    def contains_point(self, x: float, y: float) -> bool:
        """Even-odd point-in-polygon test (boundary points count as inside)."""
        inside = False
        n = len(self.vertices)
        for i in range(n):
            ax, ay = self.vertices[i]
            bx, by = self.vertices[(i + 1) % n]
            if ax == bx:  # vertical edge
                if x == ax and min(ay, by) <= y <= max(ay, by):
                    return True
                if min(ay, by) <= y < max(ay, by) and x < ax:
                    inside = not inside
            else:  # horizontal edge
                if y == ay and min(ax, bx) <= x <= max(ax, bx):
                    return True
        return inside

    def is_simple(self) -> bool:
        """True iff no two non-adjacent edges intersect.

        Quadratic check — boundaries here have at most a few hundred edges.
        """
        edge_list = list(self.edges())
        n = len(edge_list)
        for i in range(n):
            for j in range(i + 1, n):
                if j == i or (j == (i + 1) % n) or (i == (j + 1) % n):
                    continue
                if _edges_cross(edge_list[i], edge_list[j]):
                    return False
        return True

    # -- editing ----------------------------------------------------------
    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon(tuple((x + dx, y + dy) for x, y in self.vertices))

    def scaled(self, factor: float) -> "Polygon":
        if factor <= 0:
            raise GeometryError(f"scale factor must be positive, got {factor}")
        return Polygon(tuple((x * factor, y * factor) for x, y in self.vertices))


def _signed_area(vertices: list[tuple[float, float]]) -> float:
    """Shoelace signed area: positive for CCW order."""
    total = 0.0
    n = len(vertices)
    for i in range(n):
        x0, y0 = vertices[i]
        x1, y1 = vertices[(i + 1) % n]
        total += x0 * y1 - x1 * y0
    return total / 2.0


def _drop_redundant_vertices(
    vertices: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Remove consecutive duplicates and collinear middle vertices."""
    dedup: list[tuple[float, float]] = []
    for vertex in vertices:
        if not dedup or dedup[-1] != vertex:
            dedup.append(vertex)
    if len(dedup) > 1 and dedup[0] == dedup[-1]:
        dedup.pop()
    result: list[tuple[float, float]] = []
    n = len(dedup)
    for i in range(n):
        prev_v = dedup[(i - 1) % n]
        cur = dedup[i]
        nxt = dedup[(i + 1) % n]
        collinear_x = prev_v[0] == cur[0] == nxt[0]
        collinear_y = prev_v[1] == cur[1] == nxt[1]
        if not (collinear_x or collinear_y):
            result.append(cur)
    return result


def _edges_cross(e1: Edge, e2: Edge) -> bool:
    """True iff two axis-aligned edges properly intersect or overlap."""
    if e1.axis == e2.axis:
        if e1.axis == "h":
            if e1.a[1] != e2.a[1]:
                return False
            lo1, hi1 = sorted((e1.a[0], e1.b[0]))
            lo2, hi2 = sorted((e2.a[0], e2.b[0]))
            return max(lo1, lo2) < min(hi1, hi2)
        if e1.a[0] != e2.a[0]:
            return False
        lo1, hi1 = sorted((e1.a[1], e1.b[1]))
        lo2, hi2 = sorted((e2.a[1], e2.b[1]))
        return max(lo1, lo2) < min(hi1, hi2)
    horizontal, vertical = (e1, e2) if e1.axis == "h" else (e2, e1)
    hy = horizontal.a[1]
    vx = vertical.a[0]
    hx_lo, hx_hi = sorted((horizontal.a[0], horizontal.b[0]))
    vy_lo, vy_hi = sorted((vertical.a[1], vertical.b[1]))
    return hx_lo < vx < hx_hi and vy_lo < hy < vy_hi
