"""Axis-aligned rectangle in nanometre coordinates."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]`` with ``x0 < x1, y0 < y1``.

    Coordinates are nanometres.  Rects are immutable; editing operations
    return new instances.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.x0 < self.x1 and self.y0 < self.y1):
            raise GeometryError(
                f"degenerate rect: ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rect centred on ``(cx, cy)``."""
        return cls(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

    @classmethod
    def square(cls, cx: float, cy: float, size: float) -> "Rect":
        """Build a square of edge ``size`` centred on ``(cx, cy)``."""
        return cls.from_center(cx, cy, size, size)

    # -- queries ----------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    def contains_point(self, x: float, y: float) -> bool:
        """True iff ``(x, y)`` lies inside or on the boundary."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely inside (or on) this rect."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def intersects(self, other: "Rect") -> bool:
        """True iff the two rects overlap with positive area."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def distance_to(self, other: "Rect") -> float:
        """Euclidean gap between two rects (0 when they touch or overlap)."""
        dx = max(0.0, max(self.x0, other.x0) - min(self.x1, other.x1))
        dy = max(0.0, max(self.y0, other.y0) - min(self.y1, other.y1))
        return (dx * dx + dy * dy) ** 0.5

    # -- editing ----------------------------------------------------------
    def expanded(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margin) every side by ``margin``."""
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Smallest rect covering both."""
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )
