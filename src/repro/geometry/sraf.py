"""Rule-based sub-resolution assist feature (SRAF) insertion.

The paper inserts SRAFs with Calibre before CAMO starts and keeps them in
the squish encoding.  We reproduce the standard rule-based flavour: thin
scatter bars placed parallel to each via edge at a fixed centre distance,
dropped whenever they would collide with a target, another SRAF, or the
clip boundary.  Bars are sub-resolution (20 nm wide) so they never print
under the nominal threshold, but they steepen the image slope at via edges.
"""

from __future__ import annotations

from repro.geometry.layout import Clip
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

SRAF_WIDTH_NM: float = 20.0
SRAF_LENGTH_NM: float = 80.0
SRAF_DISTANCE_NM: float = 100.0
"""Distance from via centre to scatter-bar centreline."""

SRAF_CLEARANCE_NM: float = 25.0
"""Minimum gap between an SRAF and any other shape."""


def insert_srafs(clip: Clip) -> Clip:
    """Return a copy of ``clip`` with rule-based scatter bars added.

    Only meaningful for via layers; metal clips are returned unchanged
    (matching the paper, which only mentions SRAFs for the via experiments).
    """
    if clip.layer != "via":
        return clip

    placed: list[Rect] = []
    obstacles = [poly.bbox for poly in clip.targets]

    for target in clip.targets:
        cx, cy = target.bbox.center
        candidates = (
            # horizontal bars above / below
            Rect.from_center(cx, cy + SRAF_DISTANCE_NM, SRAF_LENGTH_NM, SRAF_WIDTH_NM),
            Rect.from_center(cx, cy - SRAF_DISTANCE_NM, SRAF_LENGTH_NM, SRAF_WIDTH_NM),
            # vertical bars left / right
            Rect.from_center(cx + SRAF_DISTANCE_NM, cy, SRAF_WIDTH_NM, SRAF_LENGTH_NM),
            Rect.from_center(cx - SRAF_DISTANCE_NM, cy, SRAF_WIDTH_NM, SRAF_LENGTH_NM),
        )
        for bar in candidates:
            if _placeable(bar, clip.bbox, obstacles, placed):
                placed.append(bar)

    srafs = tuple(Polygon.from_rect(bar) for bar in placed)
    return clip.with_srafs(srafs)


def _placeable(
    bar: Rect, window: Rect, obstacles: list[Rect], placed: list[Rect]
) -> bool:
    if not window.contains_rect(bar):
        return False
    for rect in obstacles:
        if bar.expanded(SRAF_CLEARANCE_NM).intersects(rect):
            return False
    for rect in placed:
        if bar.expanded(SRAF_CLEARANCE_NM).intersects(rect):
            return False
    return True
