"""Boundary fragmentation: polygons -> movable segments.

Follows the paper's conventions:

* **via** patterns: each polygon edge is one segment, with the EPE measure
  point at the edge centre;
* **metal** patterns: edges along the primary (horizontal) routing direction
  are evenly split so that measure points sit 60 nm apart at segment centres
  and any remainder is absorbed by the two line-end fragments; edges along
  the secondary direction (line ends) form a single segment each, without a
  measure point.

Segments are emitted in counter-clockwise boundary order per polygon, which
is what :mod:`repro.geometry.mask_edit` needs to rebuild mask polygons from
per-segment offsets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import MEASURE_SPACING_NM
from repro.errors import SegmentationError
from repro.geometry.layout import Clip
from repro.geometry.polygon import Edge, Polygon


@dataclass(frozen=True)
class Segment:
    """One movable fragment of a polygon boundary.

    Attributes:
        index: Global segment index within the clip.
        poly_index: Which target polygon this fragment belongs to.
        a, b: Fragment endpoints in CCW walk order.
        axis: ``'h'`` or ``'v'``.
        normal: Unit outward normal ``(nx, ny)``.
        control: Fragment midpoint — the control point used for feature
            windows and graph construction.
        measure_point: EPE measure-point location on the *target* edge, or
            ``None`` for unmeasured (line-end) fragments.
    """

    index: int
    poly_index: int
    a: tuple[float, float]
    b: tuple[float, float]
    axis: str
    normal: tuple[int, int]
    control: tuple[float, float]
    measure_point: tuple[float, float] | None

    @property
    def length(self) -> float:
        return abs(self.b[0] - self.a[0]) + abs(self.b[1] - self.a[1])

    @property
    def level(self) -> float:
        """The coordinate the fragment moves: y for 'h' segments, x for 'v'."""
        return self.a[1] if self.axis == "h" else self.a[0]


def fragment_polygon(
    polygon: Polygon,
    poly_index: int,
    layer: str,
    start_index: int = 0,
    spacing: float = MEASURE_SPACING_NM,
) -> list[Segment]:
    """Fragment one polygon boundary into CCW-ordered segments."""
    if layer == "via":
        splitter = _via_edge_fragments
    elif layer == "metal":
        splitter = lambda edge: _metal_edge_fragments(edge, spacing)  # noqa: E731
    else:
        raise SegmentationError(f"unknown layer kind: {layer!r}")

    segments: list[Segment] = []
    index = start_index
    for edge in polygon.edges():
        for a, b, measure in splitter(edge):
            control = ((a[0] + b[0]) / 2, (a[1] + b[1]) / 2)
            segments.append(
                Segment(
                    index=index,
                    poly_index=poly_index,
                    a=a,
                    b=b,
                    axis=edge.axis,
                    normal=edge.outward_normal,
                    control=control,
                    measure_point=measure,
                )
            )
            index += 1
    return segments


def fragment_clip(clip: Clip, spacing: float = MEASURE_SPACING_NM) -> list[Segment]:
    """Fragment every target polygon of a clip (SRAFs are never fragmented)."""
    segments: list[Segment] = []
    for poly_index, polygon in enumerate(clip.targets):
        segments.extend(
            fragment_polygon(
                polygon,
                poly_index,
                clip.layer,
                start_index=len(segments),
                spacing=spacing,
            )
        )
    if not segments:
        raise SegmentationError(f"clip {clip.name!r} produced no segments")
    return segments


def measure_points(segments: list[Segment]) -> list[tuple[float, float]]:
    """All measure-point locations, in segment order."""
    return [s.measure_point for s in segments if s.measure_point is not None]


_Fragment = tuple[tuple[float, float], tuple[float, float], tuple[float, float] | None]


def _via_edge_fragments(edge: Edge) -> list[_Fragment]:
    """Via rule: the whole edge is one fragment, measured at its centre."""
    return [(edge.a, edge.b, edge.midpoint)]


def _metal_edge_fragments(edge: Edge, spacing: float) -> list[_Fragment]:
    """Metal rule: split primary-direction (horizontal) edges at measure
    points spaced ``spacing`` apart; vertical edges are single unmeasured
    line-end fragments."""
    if edge.axis == "v":
        return [(edge.a, edge.b, None)]

    length = edge.length
    n_points = int(length // spacing)
    if n_points == 0:
        # Too short for an evenly-spaced point: single unmeasured fragment.
        return [(edge.a, edge.b, None)]

    y = edge.a[1]
    direction = edge.direction[0]  # +1 walking right, -1 walking left
    x_start = edge.a[0]
    margin = (length - (n_points - 1) * spacing) / 2
    # Measure points along the walk direction.
    points = [x_start + direction * (margin + i * spacing) for i in range(n_points)]
    # Fragment boundaries at midpoints between consecutive measure points.
    cuts = [x_start]
    for i in range(n_points - 1):
        cuts.append((points[i] + points[i + 1]) / 2)
    cuts.append(edge.b[0])

    fragments: list[_Fragment] = []
    for i in range(n_points):
        a = (cuts[i], y)
        b = (cuts[i + 1], y)
        fragments.append((a, b, (points[i], y)))
    return fragments
