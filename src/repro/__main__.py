"""``python -m repro`` — the command-line front door.

Six subcommands, all built on :class:`repro.service.MaskOptService`:

* ``optimize``  — run one engine over a clip suite (generated tiny /
  via / metal benches), print the rows, optionally dump JSON.
* ``train-surrogate`` — train the CFNO-lite litho surrogate on a seeded
  exact-labeled dataset (with litho-guided self-training) and save a
  checkpoint for ``optimize --engine surrogate --opt checkpoint=...``.
* ``serve``     — run the suite through the always-on async daemon
  (:class:`repro.service.MaskOptDaemon`): persistent warm worker pools,
  work-stealing dispatch, admission control, streaming verification.
* ``resume``    — finish an interrupted ``optimize --journal`` / ``serve
  --journal`` run from its outcome journal: completed clips are replayed
  from disk, only the unfinished ones are re-dispatched.
* ``table``     — regenerate the paper's Table 1 / Table 2 through the
  service-routed experiment drivers.
* ``bench-info``— show the serving environment: version, FFT backend,
  engine registry, kernel-spectra store state.

Examples::

    python -m repro optimize --suite tiny --engine mbopc
    python -m repro optimize --suite via --count 2 --engine camo \
        --opt policy_temperature=1e6 --json results.json
    python -m repro optimize --suite via --engine mbopc --workers 4 \
        --store /tmp/spectra --journal sweep.journal
    python -m repro resume --suite via --engine mbopc --workers 4 \
        --store /tmp/spectra --journal sweep.journal
    python -m repro serve --suite via --count 4 --engine mbopc \
        --workers 2 --stats-json serve_stats.json
    python -m repro table --which 1 --scale smoke
    python -m repro bench-info

``optimize --workers N`` process-shards the suite: N spawned workers
split the clip list, rebuild the engine from the same config, share the
kernel-spectra store, and stream results back while verification drains
full shape bins concurrently (:mod:`repro.service.sharding`).  Sharded
numbers are bit-for-bit identical to ``--workers 1``.

Serving knobs: ``--retries N`` caps re-dispatch after infrastructure
faults (worker crash, stall kill), ``--deadline S`` bounds each clip's
wall-clock, and ``--journal PATH`` appends every admission and verified
result to a crash-safe write-ahead log (:mod:`repro.service.journal`)
that ``resume`` replays.

The kernel-spectra store directory comes from ``--store`` or the
``REPRO_SPECTRA_STORE`` environment variable; with either set, fresh
processes skip the per-shape TCC warmup (:mod:`repro.litho.store`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from repro.errors import ReproError
from repro.version import __version__


def _coerce_override_value(raw: str) -> Any:
    """Best-effort scalar coercion for ``--opt`` values.

    Beyond plain JSON this accepts what people actually type on a shell:
    ``True``/``FALSE`` capitalization variants, bare scientific notation
    and leading-dot floats (``1e-3``, ``.5``, ``+2``), and ``None``.  A
    value wrapped in matching quotes is *always* a string with the
    quotes stripped — ``--opt 'tag="1e-3"'`` stays ``"1e-3"``, never
    0.001 — because that is the only way to force a numeric-looking
    string through.
    """
    text = raw.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("null", "none"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_override(text: str) -> tuple[str, Any]:
    """``key=value`` with scalar value coercion (int/float/bool/str)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} must look like key=value"
        )
    key, raw = text.split("=", 1)
    key = key.strip()
    if not key:
        raise argparse.ArgumentTypeError(
            f"override {text!r} has an empty key"
        )
    return key, _coerce_override_value(raw)


def _nonneg_int(text: str) -> int:
    """Argparse type for ``--retries``: a non-negative integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse type for ``--deadline``: a positive number of seconds."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def _write_json(path: str, payload: Any) -> None:
    """Atomic JSON dump: temp file in the destination directory, then
    ``os.replace`` — a killed CLI never leaves a torn half-written file
    where a monitoring script expects parseable output."""
    import tempfile

    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-json-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _build_clips(args) -> list:
    """Clip list for ``--suite`` / ``--count`` / ``--names``.

    ``--count 0`` (the default) means "the suite's own size" (one clip
    for the generated tiny suite); a positive count truncates — and, for
    tiny, *generates* — that many clips.  ``--names`` selects from the
    fixed via/metal benches and is an error with ``--suite tiny``
    (whose clips are generated on demand, so there is nothing to select
    from — silently ignoring the flag ran the wrong clips).  Name
    filtering applies before ``--count`` truncation.
    """
    from repro.data.metal_bench import metal_test_suite
    from repro.data.via_bench import generate_via_clip, via_test_suite

    if args.count < 0:
        raise ReproError(f"--count must be >= 0, got {args.count}")
    if args.suite == "tiny":
        if args.names:
            raise ReproError(
                "--names selects clips from the fixed via/metal suites; "
                "the tiny suite is generated on demand (use --count to "
                "size it)"
            )
        return [
            generate_via_clip(
                f"tiny{i + 1}", n_vias=2, seed=7 + i, clip_nm=1024.0
            )
            for i in range(args.count or 1)
        ]
    clips = via_test_suite() if args.suite == "via" else metal_test_suite()
    if args.names:
        wanted = {name.strip() for name in args.names.split(",")}
        clips = [clip for clip in clips if clip.name in wanted]
        missing = wanted - {clip.name for clip in clips}
        if missing:
            raise ReproError(
                f"unknown clip name(s): {', '.join(sorted(missing))}"
            )
    if args.count:
        clips = clips[: args.count]
    return clips


def _store_root(args) -> str | None:
    from repro.litho.store import KernelSpectraStore

    if getattr(args, "store", None):
        return args.store
    store = KernelSpectraStore.from_env()
    return store.root if store is not None else None


def cmd_optimize(args) -> int:
    from repro.litho.simulator import LithoConfig
    from repro.service import MaskOptService, OptRequest

    config = LithoConfig(
        pixel_nm=args.pixel_nm,
        max_kernels=args.max_kernels,
        backend=args.backend,
        device=args.device,
        fft_backend=args.fft_backend,
        spectra_store=_store_root(args),
    )
    service = MaskOptService(litho_config=config)
    clips = _build_clips(args)
    if not clips:
        raise ReproError("no clips selected")
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    overrides = dict(args.opt or [])
    verify = not args.no_verify
    shard_kwargs: dict[str, Any] = {}
    if args.retries is not None:
        shard_kwargs["retries"] = args.retries
    if args.deadline is not None:
        shard_kwargs["deadline_s"] = args.deadline
    if args.workers > 1 or args.journal:
        # Process-sharded sweep: N spawned workers share the spectra
        # store and stream outcomes back for overlapped verification.
        # --journal routes here even at --workers 1: journaling needs
        # the spawnable EngineSpec whose fingerprint stamps each record.
        results = service.run_suite_sharded(
            args.engine, clips, workers=args.workers,
            engine_overrides=overrides, verify=verify,
            journal=args.journal, **shard_kwargs,
        )
    else:
        for clip in clips:
            service.submit(OptRequest(
                clip=clip,
                engine=args.engine,
                engine_overrides=overrides,
                verify=verify,
            ))
        results = service.run_all(verify=verify)

    header = (
        f"{'clip':12s} {'EPE (nm)':>10s} {'PVB (nm^2)':>12s} "
        f"{'RT (s)':>8s} {'steps':>5s}  verified"
    )
    print(f"repro optimize: engine={args.engine} suite={args.suite} "
          f"clips={len(clips)} pixel={args.pixel_nm} nm "
          f"workers={args.workers}")
    print(header)
    verified_marks = {"verified": "ok", "unverified": "-",
                      "unverifiable": "n/a"}
    for result in results:
        verified = verified_marks.get(result.outcome, result.outcome)
        print(
            f"{result.clip_name:12s} {result.epe_nm:10.3f} "
            f"{result.pvband_nm2:12.1f} {result.runtime_s:8.2f} "
            f"{result.steps:5d}  {verified}"
        )
    total_epe = sum(result.epe_nm for result in results)
    total_rt = sum(result.runtime_s for result in results)
    print(f"{'total':12s} {total_epe:10.3f} {'':12s} {total_rt:8.2f}")
    stats = service.stats()
    print(f"verification: {stats['verify_items']} masks in "
          f"{stats['verify_batch_calls']} batched litho calls")
    if "spectra_store" in stats:
        store = stats["spectra_store"]
        print(f"spectra store: {store['root']} "
              f"(hits {store['hits']}, writes {store['writes']})")
    if args.journal:
        print(f"journal: {args.journal} (resume with `python -m repro "
              f"resume --journal {args.journal} ...`)")

    if args.json:
        payload = {
            "command": "optimize",
            "engine": args.engine,
            "suite": args.suite,
            "workers": args.workers,
            "engine_overrides": overrides,
            "results": [result.to_dict() for result in results],
            "totals": {"epe_nm": total_epe, "runtime_s": total_rt},
            "service_stats": stats,
            "version": __version__,
        }
        _write_json(args.json, payload)
        print(f"wrote {args.json}")
    return 0


def cmd_resume(args) -> int:
    """Finish an interrupted journaled run: replay completed clips from
    the journal, re-dispatch only the remainder, print the merged
    suite."""
    from repro.litho.simulator import LithoConfig
    from repro.service import MaskOptService, resume_suite

    config = LithoConfig(
        pixel_nm=args.pixel_nm,
        max_kernels=args.max_kernels,
        backend=args.backend,
        device=args.device,
        fft_backend=args.fft_backend,
        spectra_store=_store_root(args),
    )
    service = MaskOptService(litho_config=config)
    clips = _build_clips(args)
    if not clips:
        raise ReproError("no clips selected")
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    overrides = dict(args.opt or [])
    run_kwargs: dict[str, Any] = {}
    if args.retries is not None:
        run_kwargs["retries"] = args.retries
    if args.deadline is not None:
        run_kwargs["deadline_s"] = args.deadline
    results, replayed = resume_suite(
        service, args.engine, clips, args.journal,
        workers=args.workers, engine_overrides=overrides,
        verify=not args.no_verify, **run_kwargs,
    )
    print(f"repro resume: engine={args.engine} suite={args.suite} "
          f"clips={len(clips)} workers={args.workers} "
          f"journal={args.journal}")
    print(f"replayed {replayed} completed clip(s) from the journal, "
          f"re-ran {len(clips) - replayed}")
    print(f"{'clip':12s} {'EPE (nm)':>10s} {'PVB (nm^2)':>12s} "
          f"{'RT (s)':>8s} {'steps':>5s}  verified")
    verified_marks = {"verified": "ok", "unverified": "-",
                      "unverifiable": "n/a"}
    for result in results:
        verified = verified_marks.get(result.outcome, result.outcome)
        print(
            f"{result.clip_name:12s} {result.epe_nm:10.3f} "
            f"{result.pvband_nm2:12.1f} {result.runtime_s:8.2f} "
            f"{result.steps:5d}  {verified}"
        )
    total_epe = sum(result.epe_nm for result in results)
    total_rt = sum(result.runtime_s for result in results)
    print(f"{'total':12s} {total_epe:10.3f} {'':12s} {total_rt:8.2f}")
    if args.json:
        payload = {
            "command": "resume",
            "engine": args.engine,
            "suite": args.suite,
            "workers": args.workers,
            "engine_overrides": overrides,
            "journal": args.journal,
            "replayed": replayed,
            "results": [result.to_dict() for result in results],
            "totals": {"epe_nm": total_epe, "runtime_s": total_rt},
            "version": __version__,
        }
        _write_json(args.json, payload)
        print(f"wrote {args.json}")
    return 0


def cmd_serve(args) -> int:
    """Drive the always-on daemon: submit the suite as individual
    requests (retrying through ``ServiceBusy`` backpressure), stream
    results back in completion order, and report serving stats."""
    import asyncio

    from repro.errors import ServiceBusy
    from repro.litho.simulator import LithoConfig
    from repro.service import MaskOptDaemon, OptRequest

    config = LithoConfig(
        pixel_nm=args.pixel_nm,
        max_kernels=args.max_kernels,
        backend=args.backend,
        device=args.device,
        fft_backend=args.fft_backend,
        spectra_store=_store_root(args),
    )
    clips = _build_clips(args)
    if not clips:
        raise ReproError("no clips selected")
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    overrides = dict(args.opt or [])
    verify = not args.no_verify

    daemon_kwargs: dict[str, Any] = {}
    if args.retries is not None:
        daemon_kwargs["retries"] = args.retries
    if args.deadline is not None:
        daemon_kwargs["deadline_s"] = args.deadline

    async def run():
        daemon = MaskOptDaemon(
            litho_config=config,
            workers=args.workers,
            dispatch=args.dispatch,
            max_pending=args.max_pending,
            journal=args.journal,
            **daemon_kwargs,
        )
        async with daemon:
            tickets = []
            for clip in clips:
                request = OptRequest(
                    clip=clip, engine=args.engine,
                    engine_overrides=overrides, verify=verify,
                )
                while True:
                    try:
                        tickets.append(await daemon.submit(request))
                        break
                    except ServiceBusy:
                        # Admission control said back off; results keep
                        # streaming while we wait for headroom.
                        await asyncio.sleep(0.05)
            results = []
            async for result in daemon.results(tickets):
                results.append(result)
            return results, daemon.stats()

    results, stats = asyncio.run(run())
    print(f"repro serve: engine={args.engine} suite={args.suite} "
          f"clips={len(clips)} workers={args.workers} "
          f"dispatch={args.dispatch}")
    print(f"{'clip':12s} {'EPE (nm)':>10s} {'PVB (nm^2)':>12s} "
          f"{'RT (s)':>8s} {'steps':>5s}  verified")
    verified_marks = {"verified": "ok", "unverified": "-",
                      "unverifiable": "n/a"}
    for result in sorted(results, key=lambda r: r.request_id):
        verified = verified_marks.get(result.outcome, result.outcome)
        print(
            f"{result.clip_name:12s} {result.epe_nm:10.3f} "
            f"{result.pvband_nm2:12.1f} {result.runtime_s:8.2f} "
            f"{result.steps:5d}  {verified}"
        )
    service_stats = stats["service"]
    print(f"daemon: {stats['submitted']} submitted, "
          f"{stats['completed']} completed, {stats['failed']} failed, "
          f"{stats['rejected']} shed by admission control")
    print(f"verification: {service_stats['verify_items']} masks in "
          f"{service_stats['verify_batch_calls']} batched litho calls")
    if args.journal:
        print(f"journal: {args.journal}")
    if args.stats_json:
        payload = {
            "command": "serve",
            "engine": args.engine,
            "suite": args.suite,
            "workers": args.workers,
            "dispatch": args.dispatch,
            "results": [result.to_dict() for result in results],
            "daemon_stats": stats,
            "version": __version__,
        }
        _write_json(args.stats_json, payload)
        print(f"wrote {args.stats_json}")
    return 0


def cmd_train_surrogate(args) -> int:
    """Train the CFNO-lite litho surrogate and save a checkpoint.

    The dataset is seeded and exact-labeled, training is deterministic
    (same flags -> byte-identical checkpoint), and litho-guided
    self-training rounds re-label the worst self-predicted samples with
    the exact engine before continuing.
    """
    import time

    from repro.litho.simulator import LithoConfig, LithographySimulator
    from repro.surrogate import (
        SurrogateTrainConfig,
        save_surrogate,
        train_surrogate,
    )

    config = LithoConfig(
        pixel_nm=args.pixel_nm,
        max_kernels=args.max_kernels,
        backend=args.backend,
        device=args.device,
        fft_backend=args.fft_backend,
        spectra_store=_store_root(args),
    )
    simulator = LithographySimulator(config)
    train_config = SurrogateTrainConfig(
        width=args.width,
        n_clips=args.clips,
        samples_per_clip=args.samples,
        clip_nm=args.clip_nm,
        steps=args.steps,
        lr=args.lr,
        seed=args.seed,
        selftrain_rounds=args.selftrain_rounds,
        selftrain_pool=args.selftrain_pool,
        selftrain_keep=args.selftrain_keep,
        selftrain_steps=args.selftrain_steps,
    )
    start = time.perf_counter()
    model, report = train_surrogate(simulator, train_config)
    elapsed = time.perf_counter() - start
    save_surrogate(args.out, model)
    print(f"repro train-surrogate: width={args.width} steps={report.steps} "
          f"samples={report.samples} seed={args.seed}")
    print(f"final loss    : {report.final_loss:.3e}")
    for index, round_info in enumerate(report.selftrain_rounds):
        print(f"self-train {index + 1}  : relabeled "
              f"{round_info['relabeled']}/{round_info['pool']} pool samples "
              f"(worst MSE {round_info['worst_mse']:.3e}, "
              f"mean {round_info['mean_mse']:.3e})")
    print(f"train time    : {elapsed:.1f} s")
    print(f"checkpoint    : {args.out}")
    if args.json:
        payload = {
            "command": "train-surrogate",
            "checkpoint": args.out,
            "config": {
                "width": args.width,
                "n_clips": args.clips,
                "samples_per_clip": args.samples,
                "clip_nm": args.clip_nm,
                "steps": args.steps,
                "lr": args.lr,
                "seed": args.seed,
                "selftrain_rounds": args.selftrain_rounds,
                "selftrain_pool": args.selftrain_pool,
                "selftrain_keep": args.selftrain_keep,
                "selftrain_steps": args.selftrain_steps,
            },
            "report": {
                "steps": report.steps,
                "samples": report.samples,
                "final_loss": report.final_loss,
                "selftrain_rounds": report.selftrain_rounds,
            },
            "train_time_s": elapsed,
            "version": __version__,
        }
        _write_json(args.json, payload)
        print(f"wrote {args.json}")
    return 0


def cmd_table(args) -> int:
    from repro.eval import experiments

    if args.which == 1:
        text, _ = experiments.table1(args.scale)
    else:
        text, _ = experiments.table2(args.scale)
    print(text)
    return 0


def cmd_bench_info(args) -> int:
    from repro.backend import (
        resolve_backend,
        scipy_fft_available,
        torch_available,
    )
    from repro.litho.simulator import LithoConfig, LithographySimulator
    from repro.litho.store import SPECTRA_STORE_ENV, open_store
    from repro.service import available_engines

    requested = args.backend
    if args.fft_backend is not None and requested == "auto":
        requested = args.fft_backend
    backend = resolve_backend(requested, device=args.device)
    print(f"repro {__version__}")
    print(f"python        : {sys.version.split()[0]}")
    print(f"cpu cores     : {os.cpu_count()}")
    print(f"scipy fft     : {'available' if scipy_fft_available() else 'absent'}")
    print(f"torch         : {'available' if torch_available() else 'absent'}")
    print(f"array backend : {requested!r} -> {backend.name} "
          f"(workers={backend.workers}, device={backend.device})")
    print(f"engines       : {', '.join(available_engines())}")

    root = _store_root(args)
    if root:
        store = open_store(root)
        print(f"spectra store : {store.root} ({store.entry_count()} entries)")
    else:
        print(f"spectra store : disabled (set --store or "
              f"${SPECTRA_STORE_ENV})")

    config = LithoConfig(
        pixel_nm=args.pixel_nm, max_kernels=args.max_kernels,
        backend=args.backend, device=args.device,
        fft_backend=args.fft_backend, spectra_store=root,
    )
    simulator = LithographySimulator(config)
    n = int(args.window_nm / config.pixel_nm)
    band = simulator.kernel_set(0.0).band_spectra((n, n))
    print(f"sample grid   : {n}x{n} @ {config.pixel_nm} nm -> "
          f"K={band.count} kernels, pupil band {band.band}, "
          f"subgrid {band.subgrid} (compact={band.compact})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_litho_knobs(p, max_kernels_default: int) -> None:
        p.add_argument("--pixel-nm", type=float, default=4.0,
                       help="raster pitch (default 4 nm)")
        p.add_argument("--max-kernels", type=int, default=max_kernels_default,
                       help="SOCS kernel cap per corner")
        p.add_argument("--backend", default="auto",
                       choices=["auto", "numpy", "scipy", "torch", "cupy"],
                       help="array/device backend (default auto: scipy "
                            "threads when available, else numpy; torch "
                            "must be requested explicitly)")
        p.add_argument("--device", default=None, metavar="DEV",
                       help="device for the torch backend (cpu, cuda, "
                            "cuda:N; default: cuda when available)")
        p.add_argument("--fft-backend", default=None,
                       choices=["auto", "numpy", "scipy"],
                       help="deprecated alias of --backend (host "
                            "transform libraries only)")
        p.add_argument("--store", default=None, metavar="DIR",
                       help="kernel-spectra store directory "
                            "(default: $REPRO_SPECTRA_STORE)")

    def add_delivery_knobs(p) -> None:
        p.add_argument("--retries", type=_nonneg_int, default=None,
                       metavar="N",
                       help="re-dispatch attempts after an infrastructure "
                            "fault (worker crash, stall kill) per clip "
                            "(default 2; engine exceptions never retry)")
        p.add_argument("--deadline", type=_positive_float, default=None,
                       metavar="SECONDS",
                       help="per-clip wall-clock budget from dispatch "
                            "(default: none)")
        p.add_argument("--journal", default=None, metavar="PATH",
                       help="append admissions and verified results to a "
                            "crash-safe journal; finish an interrupted "
                            "run with `python -m repro resume`")

    opt = sub.add_parser(
        "optimize", help="optimize a clip suite through the service"
    )
    opt.add_argument("--engine", default="mbopc",
                     help="registry engine name (default mbopc; see "
                          "bench-info for the list)")
    opt.add_argument("--suite", default="tiny",
                     choices=["tiny", "via", "metal"],
                     help="clip source (default: one tiny generated via clip)")
    opt.add_argument("--count", type=int, default=0,
                     help="limit the number of clips (0 = suite default)")
    opt.add_argument("--names", default=None,
                     help="comma-separated clip names to keep (via/metal)")
    opt.add_argument("--opt", action="append", type=_parse_override,
                     metavar="KEY=VALUE",
                     help="engine config override (repeatable)")
    opt.add_argument("--workers", type=int, default=1, metavar="N",
                     help="process-shard the suite across N spawned "
                          "workers sharing one kernel-spectra store; "
                          "verification streams while workers optimize "
                          "(default 1 = in-process)")
    opt.add_argument("--no-verify", action="store_true",
                     help="skip the batched re-simulation cross-check")
    opt.add_argument("--json", default=None, metavar="PATH",
                     help="write machine-readable results to PATH "
                          "(atomic write)")
    add_delivery_knobs(opt)
    add_litho_knobs(opt, max_kernels_default=6)
    opt.set_defaults(func=cmd_optimize)

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted --journal run from its journal",
    )
    resume.add_argument("--engine", default="mbopc",
                        help="registry engine name (must match the "
                             "journaled run)")
    resume.add_argument("--suite", default="tiny",
                        choices=["tiny", "via", "metal"],
                        help="clip source (must match the journaled run)")
    resume.add_argument("--count", type=int, default=0,
                        help="limit the number of clips (0 = suite default)")
    resume.add_argument("--names", default=None,
                        help="comma-separated clip names to keep "
                             "(via/metal)")
    resume.add_argument("--opt", action="append", type=_parse_override,
                        metavar="KEY=VALUE",
                        help="engine config override (must match the "
                             "journaled run)")
    resume.add_argument("--workers", type=int, default=1, metavar="N",
                        help="workers for the re-dispatched remainder")
    resume.add_argument("--no-verify", action="store_true",
                        help="skip the batched re-simulation cross-check")
    resume.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable results to PATH "
                             "(atomic write)")
    resume.add_argument("--journal", required=True, metavar="PATH",
                        help="outcome journal of the interrupted run")
    resume.add_argument("--retries", type=_nonneg_int, default=None,
                        metavar="N",
                        help="re-dispatch attempts after an "
                             "infrastructure fault (default 2)")
    resume.add_argument("--deadline", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="per-clip wall-clock budget (default: none)")
    add_litho_knobs(resume, max_kernels_default=6)
    resume.set_defaults(func=cmd_resume)

    serve = sub.add_parser(
        "serve", help="run the suite through the always-on async daemon"
    )
    serve.add_argument("--engine", default="mbopc",
                       help="registry engine name (default mbopc)")
    serve.add_argument("--suite", default="tiny",
                       choices=["tiny", "via", "metal"],
                       help="clip source (default: one tiny generated "
                            "via clip)")
    serve.add_argument("--count", type=int, default=0,
                       help="limit the number of clips (0 = suite default)")
    serve.add_argument("--names", default=None,
                       help="comma-separated clip names to keep (via/metal)")
    serve.add_argument("--opt", action="append", type=_parse_override,
                       metavar="KEY=VALUE",
                       help="engine config override (repeatable)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="persistent warm workers per engine pool "
                            "(default 2)")
    serve.add_argument("--dispatch", default="steal",
                       choices=["steal", "static"],
                       help="work-stealing shared queue (default) or the "
                            "static round-robin baseline")
    serve.add_argument("--max-pending", type=int, default=32, metavar="N",
                       help="per-tenant admission bound before requests "
                            "are shed with ServiceBusy (default 32)")
    serve.add_argument("--no-verify", action="store_true",
                       help="skip the batched re-simulation cross-check")
    serve.add_argument("--stats-json", default=None, metavar="PATH",
                       help="write results + serving metrics JSON to PATH "
                            "(atomic write)")
    add_delivery_knobs(serve)
    add_litho_knobs(serve, max_kernels_default=6)
    serve.set_defaults(func=cmd_serve)

    train = sub.add_parser(
        "train-surrogate",
        help="train the CFNO-lite litho surrogate and save a checkpoint",
    )
    train.add_argument("--out", required=True, metavar="PATH",
                       help="checkpoint output path (.npz, atomic write)")
    train.add_argument("--width", type=int, default=24,
                       help="spectral channels (default 24 = 2 corners x "
                            "max-kernels coherent fields)")
    train.add_argument("--clips", type=int, default=4,
                       help="generated via clips in the dataset (default 4)")
    train.add_argument("--samples", type=int, default=16,
                       help="perturbed masks per clip (default 16)")
    train.add_argument("--clip-nm", type=float, default=1024.0,
                       help="dataset clip window (default 1024 nm)")
    train.add_argument("--steps", type=int, default=400,
                       help="base Adam steps (default 400)")
    train.add_argument("--lr", type=float, default=3e-3,
                       help="Adam learning rate (default 3e-3)")
    train.add_argument("--seed", type=int, default=0,
                       help="dataset + init seed; fixed seed reproduces "
                            "the checkpoint byte for byte (default 0)")
    train.add_argument("--selftrain-rounds", type=int, default=2,
                       help="litho-guided self-training rounds (default 2; "
                            "0 disables)")
    train.add_argument("--selftrain-pool", type=int, default=16,
                       help="candidate pool per self-training round")
    train.add_argument("--selftrain-keep", type=int, default=6,
                       help="worst-fidelity samples re-labeled exactly and "
                            "appended per round")
    train.add_argument("--selftrain-steps", type=int, default=100,
                       help="fine-tune steps after each round")
    train.add_argument("--json", default=None, metavar="PATH",
                       help="write the training report to PATH (atomic "
                            "write)")
    add_litho_knobs(train, max_kernels_default=6)
    train.set_defaults(func=cmd_train_surrogate)

    table = sub.add_parser(
        "table", help="regenerate paper Table 1 / Table 2 via the service"
    )
    table.add_argument("--which", type=int, default=1, choices=[1, 2])
    table.add_argument("--scale", default=None,
                       choices=["smoke", "repro", "paper"],
                       help="effort profile (default: REPRO_SCALE or 'repro')")
    table.set_defaults(func=cmd_table)

    info = sub.add_parser(
        "bench-info", help="print the serving environment and optics summary"
    )
    info.add_argument("--window-nm", type=float, default=1024.0,
                      help="sample window for the band summary")
    add_litho_knobs(info, max_kernels_default=6)
    info.set_defaults(func=cmd_bench_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
