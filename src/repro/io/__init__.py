"""Layout I/O: a minimal GDSII stream writer/reader and a JSON clip format."""

from repro.io.gds import read_gds_polygons, write_gds
from repro.io.clipjson import clip_from_json, clip_to_json, load_clip, save_clip

__all__ = [
    "write_gds",
    "read_gds_polygons",
    "clip_to_json",
    "clip_from_json",
    "save_clip",
    "load_clip",
]
